#!/usr/bin/env bash
# Monitor determinism matrix: the continuous-monitoring workload must
# render a byte-identical nodes list and report Data section at every
# seeds x threads x tasks cell, over 30 simulated days under the
# rolling-outages chaos plan (both outage waves lift inside the horizon,
# so the matrix exercises liveness, death AND rebirth detection).
#
# Shared by scripts/ci.sh (as one stage) and the dedicated
# monitor-determinism job in .github/workflows/ci.yml. Assumes the
# release profile is already built (it builds on demand otherwise).
set -euo pipefail
cd "$(dirname "$0")/.."

scratch="$(mktemp -d -t flock-monitor-matrix-XXXXXX)"
trap 'rm -rf "$scratch"' EXIT

for seed in 1 1234 9999; do
  for w in 1 8; do
    for n in 64 10000; do
      tag="mon-s$seed-w$w-t$n"
      cargo run -q --release -p flock-repro -- \
        --monitor --scale small --seed "$seed" --workers "$w" --tasks "$n" \
        --chaos rolling-outages --sim-days 30 \
        --nodes "$scratch/$tag.nodes" \
        --report "$scratch/$tag.report.txt" >/dev/null 2>&1
      test -s "$scratch/$tag.nodes"
      if ! cmp -s "$scratch/mon-s$seed-w1-t64.nodes" "$scratch/$tag.nodes"; then
        echo "DETERMINISM FAILURE: seed $seed monitor nodes list (workers=$w tasks=$n) differs from workers=1 tasks=64" >&2
        exit 1
      fi
      sed -n '/^=== BEGIN DATA TIER/,/^=== END DATA TIER/p' \
        "$scratch/$tag.report.txt" >"$scratch/$tag.report.data"
      test -s "$scratch/$tag.report.data"
      if ! cmp -s "$scratch/mon-s$seed-w1-t64.report.data" "$scratch/$tag.report.data"; then
        echo "DETERMINISM FAILURE: seed $seed monitor report Data section (workers=$w tasks=$n) differs from workers=1 tasks=64" >&2
        exit 1
      fi
    done
  done
  # The matrix is only meaningful if the chaos plan actually killed and
  # revived instances: demand at least one observed rebirth.
  if ! grep -Eq '^  rebirths: [1-9]' "$scratch/mon-s$seed-w1-t64.report.data"; then
    echo "MONITOR FAILURE: seed $seed saw no instance rebirth under rolling-outages" >&2
    exit 1
  fi
  echo "    seed $seed: monitor {1,8} threads x {64,10000} tasks byte-identical (nodes list + report data tier)"
done
echo "monitor determinism matrix passed."

#!/usr/bin/env bash
# Local CI gate: formatting, lints, the tier-1 build + test suite, and a
# smoke pass over every bench target (including the throughput bench, which
# in --test mode does not rewrite the committed BENCH_pipeline.json).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo run -p flock-lint -- --workspace"
cargo run -q -p flock-lint -- --workspace

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test --workspace"
cargo test --workspace -q

echo "==> cargo bench -p flock-bench -- --test (smoke)"
cargo bench -p flock-bench -- --test

echo "CI gate passed."

#!/usr/bin/env bash
# Local CI gate: formatting, lints, the call-graph static analyses
# (flock-analyze tier-taint + interprocedural lock order, plus the
# --sched-race bounded model checker), the tier-1 build + test suite, a smoke
# pass over every bench target (including the throughput bench, which in
# --test mode does not append to the committed BENCH_history.jsonl), the
# determinism matrix (seeds x worker counts must stamp byte-identically),
# the scheduler determinism matrix (the discrete-event scheduler at any
# threads x tasks point must stamp byte-identically with the legacy pool),
# the monitor determinism matrix (the continuous-monitoring workload must
# render byte-identical nodes lists and report Data sections at any
# threads x tasks point, through a chaos plan with instance rebirth),
# a chaos-scenario smoke crawl, a run-dashboard smoke (self-contained
# HTML whose fenced Data region is also byte-compared in both matrices,
# plus a --diff view that must flag chaos divergence), and an advisory
# throughput-regression check. The same script backs
# .github/workflows/ci.yml.
#
# Every stage prints a named banner on entry and its wall-clock seconds on
# exit, so a matrix failure in CI logs pins down both the stage and — via
# the per-cell messages below — the exact seed/threads/tasks cell.
set -euo pipefail
cd "$(dirname "$0")/.."

scratch="$(mktemp -d -t flock-ci-XXXXXX)"
trap 'rm -rf "$scratch"' EXIT

stage_name=""
stage_start=0
stage_end() {
  if [ -n "$stage_name" ]; then
    echo "    [timing] ${stage_name}: $((SECONDS - stage_start))s"
  fi
}
stage() {
  stage_end
  stage_name="$1"
  stage_start=$SECONDS
  echo "==> $1"
}

stage "cargo fmt --check"
cargo fmt --check

stage "cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

stage "cargo run -p flock-lint -- --workspace"
cargo run -q -p flock-lint -- --workspace

stage "cargo run -p flock-analyze -- --workspace"
cargo run -q -p flock-analyze -- --workspace

stage "cargo run -p flock-analyze -- --sched-race"
cargo run -q -p flock-analyze -- --sched-race

stage "cargo build --release"
cargo build --release

stage "cargo test --workspace"
cargo test --workspace -q

stage "cargo bench -p flock-bench -- --test (smoke)"
cargo bench -p flock-bench -- --test

stage "repro --metrics smoke"
metrics_out="$scratch/metrics.json"
cargo run -q --release -p flock-repro -- \
  --scale small --seed 1234 --metrics "$metrics_out" headline >/dev/null
test -s "$metrics_out"
grep -q '"flock.apis.search.granted"' "$metrics_out"

stage "determinism matrix (seeds x workers must stamp byte-identically)"
for seed in 1 1234 9999; do
  for w in 1 8; do
    cargo run -q --release -p flock-repro -- \
      --scale small --seed "$seed" --workers "$w" \
      --report "$scratch/s$seed-w$w.report.txt" \
      --dashboard "$scratch/s$seed-w$w.dash.html" \
      "stamp=$scratch/s$seed-w$w.stamp" headline >/dev/null 2>&1
  done
  if ! cmp -s "$scratch/s$seed-w1.stamp" "$scratch/s$seed-w8.stamp"; then
    echo "DETERMINISM FAILURE: seed $seed stamps differ between workers=1 and workers=8" >&2
    exit 1
  fi
  # The run report's fenced Data-tier section is part of the determinism
  # contract too: carve it out and compare it across worker counts.
  for w in 1 8; do
    sed -n '/^=== BEGIN DATA TIER/,/^=== END DATA TIER/p' \
      "$scratch/s$seed-w$w.report.txt" >"$scratch/s$seed-w$w.report.data"
    test -s "$scratch/s$seed-w$w.report.data"
    # So is the dashboard's fenced Data region — every chart pixel in it
    # (geometry included) must be byte-identical across worker counts.
    sed -n '/^<!--=== BEGIN DASHBOARD DATA TIER ===-->$/,/^<!--=== END DASHBOARD DATA TIER ===-->$/p' \
      "$scratch/s$seed-w$w.dash.html" >"$scratch/s$seed-w$w.dash.data"
    test -s "$scratch/s$seed-w$w.dash.data"
  done
  if ! cmp -s "$scratch/s$seed-w1.report.data" "$scratch/s$seed-w8.report.data"; then
    echo "DETERMINISM FAILURE: seed $seed report Data sections differ between workers=1 and workers=8" >&2
    exit 1
  fi
  if ! cmp -s "$scratch/s$seed-w1.dash.data" "$scratch/s$seed-w8.dash.data"; then
    echo "DETERMINISM FAILURE: seed $seed dashboard Data regions differ between workers=1 and workers=8" >&2
    exit 1
  fi
  echo "    seed $seed: workers=1 == workers=8 (stamp + report data tier + dashboard data region)"
done

stage "scheduler determinism matrix (seeds x threads x tasks must match the legacy stamps)"
for seed in 1 1234 9999; do
  for w in 1 8; do
    for n in 64 10000; do
      tag="sched-s$seed-w$w-t$n"
      cargo run -q --release -p flock-repro -- \
        --scale small --seed "$seed" --workers "$w" --tasks "$n" \
        --report "$scratch/$tag.report.txt" \
        --dashboard "$scratch/$tag.dash.html" \
        "stamp=$scratch/$tag.stamp" headline >/dev/null 2>&1
      # The scheduler is an execution detail: its stamp must be
      # byte-identical to the legacy-pool stamp of the same seed.
      if ! cmp -s "$scratch/s$seed-w1.stamp" "$scratch/$tag.stamp"; then
        echo "DETERMINISM FAILURE: seed $seed scheduler stamp (workers=$w tasks=$n) differs from the legacy pool" >&2
        exit 1
      fi
      sed -n '/^=== BEGIN DATA TIER/,/^=== END DATA TIER/p' \
        "$scratch/$tag.report.txt" >"$scratch/$tag.report.data"
      test -s "$scratch/$tag.report.data"
      if ! cmp -s "$scratch/s$seed-w1.report.data" "$scratch/$tag.report.data"; then
        echo "DETERMINISM FAILURE: seed $seed scheduler report Data section (workers=$w tasks=$n) differs from the legacy pool" >&2
        exit 1
      fi
      sed -n '/^<!--=== BEGIN DASHBOARD DATA TIER ===-->$/,/^<!--=== END DASHBOARD DATA TIER ===-->$/p' \
        "$scratch/$tag.dash.html" >"$scratch/$tag.dash.data"
      test -s "$scratch/$tag.dash.data"
      if ! cmp -s "$scratch/s$seed-w1.dash.data" "$scratch/$tag.dash.data"; then
        echo "DETERMINISM FAILURE: seed $seed scheduler dashboard Data region (workers=$w tasks=$n) differs from the legacy pool" >&2
        exit 1
      fi
    done
  done
  echo "    seed $seed: scheduler {1,8} threads x {64,10000} tasks == legacy (stamp + report data tier + dashboard data region)"
done

stage "monitor determinism matrix (seeds x threads x tasks, 30 days under rolling outages)"
# rolling-outages lifts both outage waves inside the horizon, so the
# matrix exercises liveness, death AND rebirth detection; the nodes list
# and the report's Data section must be byte-identical at every cell.
# The loop lives in its own script so the dedicated monitor-determinism
# CI job can run exactly the same cells without re-running the rest of
# this gate.
scripts/monitor_matrix.sh

stage "report smoke (repro --report under chaos: fences, attribution, extension-keyed format)"
report_out="$scratch/report.txt"
cargo run -q --release -p flock-repro -- \
  --scale small --seed 1234 --chaos rate-limit-storm --workers 8 \
  --report "$report_out" headline >/dev/null 2>&1
test -s "$report_out"
grep -q 'wait attribution' "$report_out"
grep -q 'retry_after_storm=[1-9]' "$report_out"

stage "dashboard smoke (self-contained HTML, trend charts, --diff flags chaos divergence)"
calm_report="$scratch/calm.report.txt"
cargo run -q --release -p flock-repro -- \
  --scale small --seed 1234 --chaos calm --workers 8 \
  --report "$calm_report" headline >/dev/null 2>&1
dash_out="$scratch/storm.dash.html"
cargo run -q --release -p flock-repro -- \
  --scale small --seed 1234 --chaos rate-limit-storm --workers 8 \
  --report "$scratch/storm.report.html" \
  --dashboard "$dash_out" --diff "$calm_report" headline >/dev/null 2>&1
# The --report extension convention: .html selects the HTML renderer.
grep -q '<html' "$scratch/storm.report.html"
test -s "$dash_out"
# One gated trend chart per bench metric, fed by the committed history.
for key in search-qps expand-secs sched-speedup monitor-checks peak-rss; do
  grep -q "trend-$key" "$dash_out"
done
# Self-contained: a dashboard must never fetch external JS/CSS/fonts.
if grep -Eq 'src=|href=|@import|url\(|<script' "$dash_out"; then
  echo "DASHBOARD FAILURE: external resource reference in $dash_out" >&2
  exit 1
fi
# The diff view must flag the chaos-impact counter divergence between the
# calm and rate-limit-storm runs.
if ! grep -E '<tr class="chg">' "$dash_out" | grep -q 'chaos'; then
  echo "DASHBOARD FAILURE: --diff did not flag divergent chaos lines" >&2
  exit 1
fi
echo "    dashboard: 5 trend charts, self-contained, diff flags chaos divergence"

stage "chaos smoke (repro --chaos rate-limit-storm must degrade gracefully)"
chaos_log="$scratch/chaos.log"
cargo run -q --release -p flock-repro -- \
  --scale small --seed 1234 --chaos rate-limit-storm headline \
  >/dev/null 2>"$chaos_log"
grep -q '\[repro\] chaos scenario: rate-limit-storm' "$chaos_log"
grep -q '\[repro\] coverage:' "$chaos_log"
grep '\[repro\] coverage:' "$chaos_log"

stage "bench_check (advisory: throughput + monitor trend regression)"
if ! scripts/bench_check.sh; then
  echo "WARNING: bench_check reported a regression (advisory only; not failing the gate)" >&2
fi

stage_end
echo "CI gate passed."

#!/usr/bin/env bash
# Local CI gate: formatting, lints, the call-graph static analyses
# (flock-analyze tier-taint + interprocedural lock order, plus the
# --sched-race bounded model checker), the tier-1 build + test suite, a smoke
# pass over every bench target (including the throughput bench, which in
# --test mode does not append to the committed BENCH_history.jsonl), the
# determinism matrix (seeds x worker counts must stamp byte-identically),
# the scheduler determinism matrix (the discrete-event scheduler at any
# threads x tasks point must stamp byte-identically with the legacy pool),
# a chaos-scenario smoke crawl, and an advisory throughput-regression
# check. The same script backs .github/workflows/ci.yml.
set -euo pipefail
cd "$(dirname "$0")/.."

scratch="$(mktemp -d -t flock-ci-XXXXXX)"
trap 'rm -rf "$scratch"' EXIT

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo run -p flock-lint -- --workspace"
cargo run -q -p flock-lint -- --workspace

echo "==> cargo run -p flock-analyze -- --workspace"
cargo run -q -p flock-analyze -- --workspace

echo "==> cargo run -p flock-analyze -- --sched-race"
cargo run -q -p flock-analyze -- --sched-race

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test --workspace"
cargo test --workspace -q

echo "==> cargo bench -p flock-bench -- --test (smoke)"
cargo bench -p flock-bench -- --test

echo "==> repro --metrics smoke"
metrics_out="$scratch/metrics.json"
cargo run -q --release -p flock-repro -- \
  --scale small --seed 1234 --metrics "$metrics_out" headline >/dev/null
test -s "$metrics_out"
grep -q '"flock.apis.search.granted"' "$metrics_out"

echo "==> determinism matrix (seeds x workers must stamp byte-identically)"
for seed in 1 1234 9999; do
  for w in 1 8; do
    cargo run -q --release -p flock-repro -- \
      --scale small --seed "$seed" --workers "$w" \
      --report "$scratch/s$seed-w$w.report.txt" \
      "stamp=$scratch/s$seed-w$w.stamp" headline >/dev/null 2>&1
  done
  if ! cmp -s "$scratch/s$seed-w1.stamp" "$scratch/s$seed-w8.stamp"; then
    echo "DETERMINISM FAILURE: seed $seed stamps differ between workers=1 and workers=8" >&2
    exit 1
  fi
  # The run report's fenced Data-tier section is part of the determinism
  # contract too: carve it out and compare it across worker counts.
  for w in 1 8; do
    sed -n '/^=== BEGIN DATA TIER/,/^=== END DATA TIER/p' \
      "$scratch/s$seed-w$w.report.txt" >"$scratch/s$seed-w$w.report.data"
    test -s "$scratch/s$seed-w$w.report.data"
  done
  if ! cmp -s "$scratch/s$seed-w1.report.data" "$scratch/s$seed-w8.report.data"; then
    echo "DETERMINISM FAILURE: seed $seed report Data sections differ between workers=1 and workers=8" >&2
    exit 1
  fi
  echo "    seed $seed: workers=1 == workers=8 (stamp + report data tier)"
done

echo "==> scheduler determinism matrix (seeds x threads x tasks must match the legacy stamps)"
for seed in 1 1234 9999; do
  for w in 1 8; do
    for n in 64 10000; do
      tag="sched-s$seed-w$w-t$n"
      cargo run -q --release -p flock-repro -- \
        --scale small --seed "$seed" --workers "$w" --tasks "$n" \
        --report "$scratch/$tag.report.txt" \
        "stamp=$scratch/$tag.stamp" headline >/dev/null 2>&1
      # The scheduler is an execution detail: its stamp must be
      # byte-identical to the legacy-pool stamp of the same seed.
      if ! cmp -s "$scratch/s$seed-w1.stamp" "$scratch/$tag.stamp"; then
        echo "DETERMINISM FAILURE: seed $seed scheduler stamp (workers=$w tasks=$n) differs from the legacy pool" >&2
        exit 1
      fi
      sed -n '/^=== BEGIN DATA TIER/,/^=== END DATA TIER/p' \
        "$scratch/$tag.report.txt" >"$scratch/$tag.report.data"
      test -s "$scratch/$tag.report.data"
      if ! cmp -s "$scratch/s$seed-w1.report.data" "$scratch/$tag.report.data"; then
        echo "DETERMINISM FAILURE: seed $seed scheduler report Data section (workers=$w tasks=$n) differs from the legacy pool" >&2
        exit 1
      fi
    done
  done
  echo "    seed $seed: scheduler {1,8} threads x {64,10000} tasks == legacy (stamp + report data tier)"
done

echo "==> report smoke (repro --report under chaos: fences, attribution, HTML twin)"
report_out="$scratch/report.txt"
cargo run -q --release -p flock-repro -- \
  --scale small --seed 1234 --chaos rate-limit-storm --workers 8 \
  --report "$report_out" headline >/dev/null 2>&1
test -s "$report_out"
test -s "$scratch/report.html"
grep -q 'wait attribution' "$report_out"
grep -q 'retry_after_storm=[1-9]' "$report_out"

echo "==> chaos smoke (repro --chaos rate-limit-storm must degrade gracefully)"
chaos_log="$scratch/chaos.log"
cargo run -q --release -p flock-repro -- \
  --scale small --seed 1234 --chaos rate-limit-storm headline \
  >/dev/null 2>"$chaos_log"
grep -q '\[repro\] chaos scenario: rate-limit-storm' "$chaos_log"
grep -q '\[repro\] coverage:' "$chaos_log"
grep '\[repro\] coverage:' "$chaos_log"

echo "==> bench_check (advisory: >20% throughput regression)"
if ! scripts/bench_check.sh; then
  echo "WARNING: bench_check reported a throughput regression (advisory only; not failing the gate)" >&2
fi

echo "CI gate passed."

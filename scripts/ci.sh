#!/usr/bin/env bash
# Local CI gate: formatting, lints, the tier-1 build + test suite, and a
# smoke pass over every bench target (including the throughput bench, which
# in --test mode does not rewrite the committed BENCH_pipeline.json).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo run -p flock-lint -- --workspace"
cargo run -q -p flock-lint -- --workspace

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test --workspace"
cargo test --workspace -q

echo "==> cargo bench -p flock-bench -- --test (smoke)"
cargo bench -p flock-bench -- --test

echo "==> repro --metrics smoke"
metrics_out="$(mktemp -t flock-metrics-XXXXXX.json)"
trap 'rm -f "$metrics_out"' EXIT
cargo run -q --release -p flock-repro -- \
  --scale small --seed 1234 --metrics "$metrics_out" headline >/dev/null
test -s "$metrics_out"
grep -q '"flock.apis.search.granted"' "$metrics_out"

echo "CI gate passed."

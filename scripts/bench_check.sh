#!/usr/bin/env bash
# Throughput regression check: re-run the pipeline bench in --test (smoke)
# mode and compare the measured numbers against the committed
# BENCH_pipeline.json. Fails (exit 1) when either headline number regresses
# by more than 20%:
#
#   * search: measured indexed qps < 0.8 x committed indexed_qps
#   * crawl:  measured expand_secs  > 1.2 x committed expand_secs
#             (checked per worker count the smoke run covers: 1 and 4)
#
# Smoke mode never rewrites the committed artifact, so this is safe to run
# on every push. Wall-clock numbers are noisy on shared runners — ci.sh
# treats a failure here as a warning, and the CI workflow runs it in a
# separate advisory (continue-on-error) job.
set -euo pipefail
cd "$(dirname "$0")/.."

baseline="BENCH_pipeline.json"
if [ ! -f "$baseline" ]; then
  echo "bench_check: no committed $baseline; run 'cargo bench -p flock-bench --bench throughput' first" >&2
  exit 1
fi

echo "==> cargo bench -p flock-bench --bench throughput -- --test"
log="$(mktemp -t flock-bench-XXXXXX.log)"
trap 'rm -f "$log"' EXIT
cargo bench -p flock-bench --bench throughput -- --test 2>"$log"
cat "$log" >&2

# Measured values from the bench's stderr lines:
#   search: indexed 5569 qps vs scan 123 qps (45.1x)
#   expand: workers=1 0.769s
measured_qps="$(awk '/^search: indexed/ { print $3; exit }' "$log")"
if [ -z "$measured_qps" ]; then
  echo "bench_check: could not parse search qps from bench output" >&2
  exit 1
fi

# Committed baselines from BENCH_pipeline.json. The file is
# pretty-printed with one key per line, so line-oriented parsing is
# reliable; expand_secs follows its workers line inside each CrawlPoint.
base_qps="$(awk -F'[:,]' '/"indexed_qps"/ { gsub(/ /, "", $2); print $2; exit }' "$baseline")"

fail=0
if awk -v m="$measured_qps" -v b="$base_qps" 'BEGIN { exit !(m < 0.8 * b) }'; then
  echo "bench_check: SEARCH REGRESSION: measured ${measured_qps} qps < 80% of committed ${base_qps} qps" >&2
  fail=1
else
  echo "bench_check: search ok (${measured_qps} qps vs committed ${base_qps} qps)"
fi

for w in 1 4; do
  measured_secs="$(awk -v w="$w" '$1 == "expand:" && $2 == "workers=" w { sub(/s$/, "", $3); print $3; exit }' "$log")"
  base_secs="$(awk -v w="$w" -F'[:,]' '
    /"workers"/ { gsub(/ /, "", $2); cur = $2 }
    /"expand_secs"/ && cur == w { gsub(/ /, "", $2); print $2; exit }
  ' "$baseline")"
  if [ -z "$measured_secs" ] || [ -z "$base_secs" ]; then
    echo "bench_check: could not parse expand timings for workers=$w" >&2
    exit 1
  fi
  if awk -v m="$measured_secs" -v b="$base_secs" 'BEGIN { exit !(m > 1.2 * b) }'; then
    echo "bench_check: CRAWL REGRESSION: workers=$w expand ${measured_secs}s > 120% of committed ${base_secs}s" >&2
    fail=1
  else
    echo "bench_check: expand workers=$w ok (${measured_secs}s vs committed ${base_secs}s)"
  fi
done

if [ "$fail" -ne 0 ]; then
  echo "bench_check: FAILED (>20% regression vs $baseline)" >&2
  exit 1
fi
echo "bench_check: passed."

#!/usr/bin/env bash
# Throughput regression check: re-run the pipeline bench in --test (smoke)
# mode and compare the measured numbers against the *trend* in the
# committed BENCH_history.jsonl — the median of the last 3 recorded
# entries, so one noisy recording can neither hide nor fake a regression.
# Fails (exit 1) when a headline number regresses by more than 20%:
#
#   * search: measured indexed qps < 0.8 x median indexed_qps
#   * crawl:  measured expand_secs  > 1.2 x median expand_secs
#             (checked per worker count the smoke run covers: 1 and 4)
#   * sched:  the discrete-event scheduler must still beat the
#             thread-per-worker baseline in the smoke run (>= 1x), and the
#             recorded history must hold the >= 3x acceptance bar at the
#             full 10k-connection scale (median over the window).
#   * memory: measured peak RSS (VmHWM of the smoke bench process) must
#             stay <= 1.2 x the median recorded peak_rss_bytes. The smoke
#             and full runs build the same small() world, so their peaks
#             are comparable; entries recorded before memory tracking
#             simply drop out of the median.
#   * monitor: a timeout-bounded long-horizon smoke (repro --monitor,
#             30 simulated days under rolling-outages) must complete, and
#             its checks/sec must stay >= 0.8 x the median recorded
#             checks_per_sec, with peak RSS <= 1.2 x the median.
#   * dashboard: repro --dashboard must render all five gated trend
#             charts (search qps, expand secs, sched speedup, monitor
#             checks/sec, peak RSS) from the committed history.
#
# Each trend gate needs a full 3-entry window of shape-matched history
# lines; with fewer it prints an explicit `SKIPPED (bootstrap)` line and
# skips only the history comparison — the smoke runs and their absolute
# assertions still gate.
#
# Smoke mode never appends to the committed history, so this is safe to
# run on every push. Wall-clock numbers are noisy on shared runners —
# ci.sh treats a failure here as a warning, and the CI workflow runs it in
# a separate advisory (continue-on-error) job.
set -euo pipefail
cd "$(dirname "$0")/.."

history="BENCH_history.jsonl"
if [ ! -f "$history" ]; then
  echo "bench_check: no committed $history; run 'cargo bench -p flock-bench --bench throughput' first" >&2
  exit 1
fi

window="$(mktemp -t flock-bench-window-XXXXXX)"
mwindow="$(mktemp -t flock-monitor-window-XXXXXX)"
log="$(mktemp -t flock-bench-XXXXXX.log)"
mlog="$(mktemp -t flock-monitor-XXXXXX.log)"
dash="$(mktemp -t flock-dash-XXXXXX.html)"
trap 'rm -f "$window" "$mwindow" "$log" "$mlog" "$dash"' EXIT
# Baseline window: the last 3 recorded *throughput-shaped* entries
# (newest last). The history also carries paper_scale and monitor entries
# with different shapes; selecting on a key the gates below read keeps
# them from occupying window slots.
grep '"indexed_qps"' "$history" | tail -n 3 >"$window" || true
window_count="$(wc -l <"$window")"
trend=1
if [ "$window_count" -lt 3 ]; then
  echo "bench_check: throughput trend gates SKIPPED (bootstrap): only ${window_count} throughput-shaped entries in ${history} (need 3)"
  trend=0
fi

# Median of newline-separated numbers on stdin (middle element; lower
# middle for an even count — the window is at most 3 entries anyway).
median() {
  sort -g | awk '{ v[NR] = $1 } END { if (NR == 0) exit 1; print v[int((NR + 1) / 2)] }'
}

if [ "$trend" -eq 1 ]; then
  # The history lines are compact serde JSON, so key:value adjacency is
  # stable and line-oriented extraction is reliable.
  base_qps="$(grep -o '"indexed_qps":[0-9.eE+-]*' "$window" | cut -d: -f2 | median)"
  base_sched_speedup="$(sed 's/.*"sched"://' "$window" | grep -o '"speedup":[0-9.eE+-]*' | cut -d: -f2 | median)"
  if [ -z "$base_qps" ] || [ -z "$base_sched_speedup" ]; then
    echo "bench_check: could not parse baseline medians from $history" >&2
    exit 1
  fi
fi

echo "==> cargo bench -p flock-bench --bench throughput -- --test"
cargo bench -p flock-bench --bench throughput -- --test 2>"$log"
cat "$log" >&2

# Measured values from the bench's stderr lines:
#   search: indexed 5569 qps vs scan 123 qps (45.1x)
#   expand: workers=1 0.769s
#   sched: 256 connections on 8 threads: scheduler 4813 rps vs threads 1604 rps (3.0x)
measured_qps="$(awk '/^search: indexed/ { print $3; exit }' "$log")"
measured_sched="$(awk '/^sched:/ { gsub(/[()x]/, "", $NF); print $NF; exit }' "$log")"
if [ -z "$measured_qps" ] || [ -z "$measured_sched" ]; then
  echo "bench_check: could not parse search qps / sched speedup from bench output" >&2
  exit 1
fi

fail=0
if [ "$trend" -eq 1 ]; then
  if awk -v m="$measured_qps" -v b="$base_qps" 'BEGIN { exit !(m < 0.8 * b) }'; then
    echo "bench_check: SEARCH REGRESSION: measured ${measured_qps} qps < 80% of median ${base_qps} qps" >&2
    fail=1
  else
    echo "bench_check: search ok (${measured_qps} qps vs median ${base_qps} qps)"
  fi

  for w in 1 4; do
    measured_secs="$(awk -v w="$w" '$1 == "expand:" && $2 == "workers=" w { sub(/s$/, "", $3); print $3; exit }' "$log")"
    base_secs="$(grep -o "\"workers\":$w,\"expand_secs\":[0-9.eE+-]*" "$window" | cut -d: -f3 | median)"
    if [ -z "$measured_secs" ] || [ -z "$base_secs" ]; then
      echo "bench_check: could not parse expand timings for workers=$w" >&2
      exit 1
    fi
    if awk -v m="$measured_secs" -v b="$base_secs" 'BEGIN { exit !(m > 1.2 * b) }'; then
      echo "bench_check: CRAWL REGRESSION: workers=$w expand ${measured_secs}s > 120% of median ${base_secs}s" >&2
      fail=1
    else
      echo "bench_check: expand workers=$w ok (${measured_secs}s vs median ${base_secs}s)"
    fi
  done
fi

# The sched smoke bar is absolute (scheduler must beat the thread
# baseline), so it gates even during bootstrap.
if awk -v m="$measured_sched" 'BEGIN { exit !(m < 1.0) }'; then
  echo "bench_check: SCHED REGRESSION: scheduler smoke speedup ${measured_sched}x < 1x thread baseline" >&2
  fail=1
else
  echo "bench_check: sched smoke ok (${measured_sched}x vs threads)"
fi
if [ "$trend" -eq 1 ]; then
  if awk -v b="$base_sched_speedup" 'BEGIN { exit !(b < 3.0) }'; then
    echo "bench_check: SCHED HISTORY: recorded median speedup ${base_sched_speedup}x < the 3x acceptance bar" >&2
    fail=1
  fi
fi

# Memory trend: compare the smoke run's peak RSS against the median of the
# recorded peak_rss_bytes. Entries recorded before memory tracking landed
# carry no mem block and contribute nothing to the median; until at least
# one entry has it, the gate is skipped (bootstrap).
measured_rss="$(awk '/^mem: peak rss/ { print $4; exit }' "$log")"
base_rss="$(grep -o '"peak_rss_bytes":[0-9]*' "$window" | cut -d: -f2 | median || true)"
if [ "$trend" -eq 0 ]; then
  echo "bench_check: memory trend gate SKIPPED (bootstrap): only ${window_count} throughput-shaped entries in ${history} (need 3)"
elif [ -z "$base_rss" ]; then
  echo "bench_check: no recorded peak_rss_bytes yet; skipping the memory gate"
elif [ -z "$measured_rss" ] || [ "$measured_rss" = "0" ]; then
  echo "bench_check: peak RSS unavailable on this host; skipping the memory gate"
elif awk -v m="$measured_rss" -v b="$base_rss" 'BEGIN { exit !(m > 1.2 * b) }'; then
  echo "bench_check: MEMORY REGRESSION: measured peak RSS ${measured_rss} bytes > 120% of median ${base_rss} bytes" >&2
  fail=1
else
  echo "bench_check: memory ok (peak RSS ${measured_rss} bytes vs median ${base_rss} bytes)"
fi

# Monitor long-horizon smoke: 30 simulated days of the continuous
# monitor under rolling-outages, hard-bounded by a 15-minute timeout so a
# virtual-clock hang fails loudly rather than wedging the job. The run
# itself is an absolute gate; the throughput/memory comparison against
# the recorded monitor entries is a median-of-3 trend gate like the ones
# above, with its own bootstrap skip while the history fills.
echo "==> repro --monitor --sim-days 30 --test (long-horizon smoke, timeout-bounded)"
if ! timeout 900 cargo run -q --release -p flock-repro -- \
  --monitor --scale small --seed 1234 --workers 8 --tasks 10000 \
  --chaos rolling-outages --sim-days 30 --test >/dev/null 2>"$mlog"; then
  cat "$mlog" >&2
  echo "bench_check: MONITOR SMOKE FAILED: repro --monitor did not complete within 900s" >&2
  exit 1
fi
cat "$mlog" >&2

# Measured values from the monitor's --test stderr lines:
#   monitor: 3567 checks in 0.10s (36456 checks/sec)
#   monitor: peak rss 105906176 bytes
measured_checks_rate="$(awk '/^monitor: .* checks\/sec\)$/ { gsub(/[()]/, "", $6); print $6; exit }' "$mlog")"
measured_mon_rss="$(awk '/^monitor: peak rss/ { print $4; exit }' "$mlog")"
if [ -z "$measured_checks_rate" ]; then
  echo "bench_check: could not parse checks/sec from monitor smoke output" >&2
  exit 1
fi

grep '"checks_per_sec"' "$history" | tail -n 3 >"$mwindow" || true
mwindow_count="$(wc -l <"$mwindow")"
if [ "$mwindow_count" -lt 3 ]; then
  echo "bench_check: monitor trend gate SKIPPED (bootstrap): only ${mwindow_count} monitor-shaped entries in ${history} (need 3)"
else
  base_checks_rate="$(grep -o '"checks_per_sec":[0-9.eE+-]*' "$mwindow" | cut -d: -f2 | median)"
  base_mon_rss="$(grep -o '"peak_rss_bytes":[0-9]*' "$mwindow" | cut -d: -f2 | median || true)"
  if [ -z "$base_checks_rate" ]; then
    echo "bench_check: could not parse baseline checks_per_sec median from $history" >&2
    exit 1
  fi
  if awk -v m="$measured_checks_rate" -v b="$base_checks_rate" 'BEGIN { exit !(m < 0.8 * b) }'; then
    echo "bench_check: MONITOR REGRESSION: measured ${measured_checks_rate} checks/sec < 80% of median ${base_checks_rate}" >&2
    fail=1
  else
    echo "bench_check: monitor ok (${measured_checks_rate} checks/sec vs median ${base_checks_rate})"
  fi
  if [ -z "$base_mon_rss" ]; then
    echo "bench_check: no recorded monitor peak_rss_bytes yet; skipping the monitor memory gate"
  elif [ -z "$measured_mon_rss" ] || [ "$measured_mon_rss" = "0" ]; then
    echo "bench_check: monitor peak RSS unavailable on this host; skipping the monitor memory gate"
  elif awk -v m="$measured_mon_rss" -v b="$base_mon_rss" 'BEGIN { exit !(m > 1.2 * b) }'; then
    echo "bench_check: MONITOR MEMORY REGRESSION: measured peak RSS ${measured_mon_rss} bytes > 120% of median ${base_mon_rss} bytes" >&2
    fail=1
  else
    echo "bench_check: monitor memory ok (peak RSS ${measured_mon_rss} bytes vs median ${base_mon_rss} bytes)"
  fi
fi

# Dashboard trend smoke: the run dashboard mirrors the gates above as
# SVG trend charts over the same shape-filtered history windows; all
# five gated series must render (a missing chart means the dashboard's
# view of the history diverged from this script's).
echo "==> repro --dashboard (trend chart smoke over $history)"
cargo run -q --release -p flock-repro -- \
  --scale small --seed 1234 --history "$history" --dashboard "$dash" \
  headline >/dev/null 2>&1
for key in search-qps expand-secs sched-speedup monitor-checks peak-rss; do
  if ! grep -q "trend-$key" "$dash"; then
    echo "bench_check: DASHBOARD SMOKE FAILED: missing trend chart trend-$key" >&2
    exit 1
  fi
done
echo "bench_check: dashboard trend charts ok (5 gated series rendered)"

if [ "$fail" -ne 0 ]; then
  echo "bench_check: FAILED (regression vs the $history trend)" >&2
  exit 1
fi
echo "bench_check: passed."

//! Property tests over the discrete-event executor: however the events
//! interleave — any mix of wait lengths, Ready yields, thread counts and
//! admission windows — the virtual clock only ever moves forward, and
//! every second it moves is charged to exactly one fired event.

use flock_sched::{AtomicClock, Clock, Executor, Step, Task};
use proptest::prelude::*;
use std::sync::Mutex;

/// A [`Clock`] wrapper journaling the time observed after every advance,
/// so the monotonicity of the interleaving itself can be asserted.
struct JournaledClock {
    inner: AtomicClock,
    observed: Mutex<Vec<u64>>,
}

impl Clock for JournaledClock {
    fn now(&self) -> u64 {
        self.inner.now()
    }

    fn advance_to(&self, deadline_secs: u64) -> u64 {
        let applied = self.inner.advance_to(deadline_secs);
        self.observed
            .lock()
            .expect("journal lock")
            .push(self.inner.now());
        applied
    }
}

/// Scripted task: alternates `readies` Ready yields with the scripted
/// relative waits, then finishes.
struct Scripted {
    readies: usize,
    waits: Vec<u64>,
    at: usize,
}

impl Task for Scripted {
    type Bill = ();
    fn poll(&mut self, now: u64) -> Step<()> {
        if self.readies > 0 {
            self.readies -= 1;
            return Step::Ready;
        }
        if self.at < self.waits.len() {
            let until = now.saturating_add(self.waits[self.at]);
            self.at += 1;
            return Step::Wait { until, bill: () };
        }
        Step::Done
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any interleaving of scheduler events yields a monotone clock, and
    /// the charged seconds tile the total movement exactly.
    #[test]
    fn interleavings_keep_the_clock_monotone(
        scripts in prop::collection::vec(
            (0usize..3, prop::collection::vec(0u64..5_000, 0..4)),
            1..40,
        ),
        threads in 1usize..9,
        window in 1usize..64,
        start in 0u64..1_000_000,
    ) {
        let clock = JournaledClock {
            inner: AtomicClock::new(start),
            observed: Mutex::new(Vec::new()),
        };
        let tasks: Vec<Scripted> = scripts
            .iter()
            .map(|(readies, waits)| Scripted {
                readies: *readies,
                waits: waits.clone(),
                at: 0,
            })
            .collect();
        let charged = Mutex::new(0u64);
        let ex = Executor::new(threads, window).expect("valid executor");
        ex.run(&clock, tasks, |_, applied| {
            *charged.lock().expect("charge lock") += applied;
        });
        let observed = clock.observed.lock().expect("journal lock").clone();
        let mut prev = start;
        for (i, t) in observed.iter().enumerate() {
            prop_assert!(
                *t >= prev,
                "clock moved backwards at advance {i}: {prev} -> {t}"
            );
            prev = *t;
        }
        let end = clock.inner.now();
        prop_assert!(end >= start);
        prop_assert_eq!(*charged.lock().expect("charge lock"), end - start);
    }
}

//! A loom-lite bounded model checker for the discrete-event executor.
//!
//! [`crate::Executor`] is deterministic *by construction*: admission
//! order, batch order, and charge attribution are all derived from
//! position-sorted data, and ties in the event queue break on a `seq`
//! assigned in deterministic order. The one place that determinism is a
//! *policy choice* rather than a law of the queue is a **tied batch**:
//! several events parked at the same virtual instant all fire together,
//! and the executor orders them by `seq`. Code driven by the executor
//! must therefore produce Data-tier output that does not depend on that
//! ordering — a task set whose artifact changes when two same-instant
//! events swap is scheduler-order-sensitive, which is exactly the class
//! of bug the two-tier contract forbids.
//!
//! This module checks that property exhaustively for small models. The
//! serial engine here mirrors the executor's loop — admission window,
//! ready-batch draining, clock advance to the earliest pending event,
//! first-fired-pays charging — but treats every tied batch of `k > 1`
//! events as a branch point and enumerates all `k!` orderings (Lehmer
//! decoding of a per-branch decision index, DFS over decision prefixes,
//! re-running the model from scratch for each schedule). Across every
//! schedule it asserts:
//!
//! 1. the model's **observed artifact** (its Data-tier bytes) is
//!    byte-identical to the first schedule's;
//! 2. **Σ charged seconds == total clock movement** — the "Σ wait
//!    buckets + work = duration" identity survives any tie order;
//! 3. the **final virtual clock** is identical across schedules.
//!
//! Ties wider than [`MAX_TIED`] are refused rather than sampled: a
//! truncated exploration that claims exhaustiveness would be worse than
//! an honest error.

use crate::{Step, Task};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Widest tied batch the explorer will permute (8! = 40 320 schedules
/// from a single branch point).
pub const MAX_TIED: usize = 8;

/// Result of an exhaustive exploration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Outcome {
    /// Schedules actually run (product of `k!` over branch points when
    /// not truncated).
    pub schedules: u64,
    /// Branch points (tied batches with more than one event) in a run.
    pub branch_points: usize,
    /// Widest tie encountered.
    pub max_tied: usize,
    /// True when `max_schedules` stopped the exploration early.
    pub truncated: bool,
}

/// Why an exploration failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExploreError {
    /// A tied batch exceeded [`MAX_TIED`]; the model is too wide to
    /// enumerate exhaustively.
    TooManyTied { tied: usize },
    /// A schedule produced different Data-tier bytes than schedule 0.
    /// `decisions` reproduces the offending schedule.
    ArtifactDivergence {
        schedule: u64,
        decisions: Vec<usize>,
    },
    /// Charged seconds did not sum to the clock movement of the run.
    ChargeLeak {
        schedule: u64,
        charged: u64,
        moved: u64,
    },
    /// A schedule ended at a different virtual time than schedule 0.
    ClockDivergence {
        schedule: u64,
        baseline: u64,
        got: u64,
    },
}

impl std::fmt::Display for ExploreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExploreError::TooManyTied { tied } => write!(
                f,
                "tied batch of {tied} events exceeds the exhaustive cap of {MAX_TIED}"
            ),
            ExploreError::ArtifactDivergence {
                schedule,
                decisions,
            } => write!(
                f,
                "Data-tier artifact diverged at schedule {schedule} \
                 (tie-order decisions {decisions:?}): output depends on \
                 same-instant event ordering"
            ),
            ExploreError::ChargeLeak {
                schedule,
                charged,
                moved,
            } => write!(
                f,
                "schedule {schedule} charged {charged}s for {moved}s of clock \
                 movement; the wait-accounting identity is broken"
            ),
            ExploreError::ClockDivergence {
                schedule,
                baseline,
                got,
            } => write!(
                f,
                "schedule {schedule} finished at t={got}, schedule 0 at \
                 t={baseline}: total duration depends on tie ordering"
            ),
        }
    }
}

impl std::error::Error for ExploreError {}

/// Exhaustive tie-permutation explorer. `window` mirrors the executor's
/// admission window (values below 1 are treated as 1); `max_schedules`
/// is a backstop against models with many independent branch points.
#[derive(Debug, Clone, Copy)]
pub struct Explorer {
    pub window: usize,
    pub max_schedules: u64,
}

impl Default for Explorer {
    fn default() -> Explorer {
        Explorer {
            window: usize::MAX,
            max_schedules: 250_000,
        }
    }
}

impl Explorer {
    /// Run `make()`'s task set under every tie ordering; `observe`
    /// extracts the Data-tier artifact bytes from the finished tasks.
    pub fn explore<S, Mk, Ob>(&self, mut make: Mk, observe: Ob) -> Result<Outcome, ExploreError>
    where
        S: Task,
        Mk: FnMut() -> Vec<S>,
        Ob: Fn(&[S]) -> Vec<u8>,
    {
        let mut decisions: Vec<usize> = Vec::new();
        let mut schedules = 0u64;
        let mut baseline: Option<(Vec<u8>, u64)> = None;
        let mut branch_points = 0usize;
        let mut max_tied = 0usize;
        loop {
            if schedules >= self.max_schedules {
                return Ok(Outcome {
                    schedules,
                    branch_points,
                    max_tied,
                    truncated: true,
                });
            }
            let mut tasks = make();
            let run = run_one(&mut tasks, self.window, &decisions, true, &mut |_, _| {})?;
            max_tied = max_tied.max(run.max_tied);
            branch_points = branch_points.max(run.arities.len());
            if run.charged != run.clock {
                return Err(ExploreError::ChargeLeak {
                    schedule: schedules,
                    charged: run.charged,
                    moved: run.clock,
                });
            }
            let obs = observe(&tasks);
            match &baseline {
                None => baseline = Some((obs, run.clock)),
                Some((base_obs, base_clock)) => {
                    if *base_clock != run.clock {
                        return Err(ExploreError::ClockDivergence {
                            schedule: schedules,
                            baseline: *base_clock,
                            got: run.clock,
                        });
                    }
                    if *base_obs != obs {
                        let effective: Vec<usize> = (0..run.arities.len())
                            .map(|i| decisions.get(i).copied().unwrap_or(0))
                            .collect();
                        return Err(ExploreError::ArtifactDivergence {
                            schedule: schedules,
                            decisions: effective,
                        });
                    }
                }
            }
            schedules += 1;
            // Odometer step over the decision vector: bump the deepest
            // branch that still has untried orderings, drop everything
            // after it (later branch arities may change under the new
            // prefix and are rediscovered on the re-run).
            let mut ds: Vec<usize> = (0..run.arities.len())
                .map(|i| decisions.get(i).copied().unwrap_or(0))
                .collect();
            let mut advanced = false;
            for i in (0..ds.len()).rev() {
                if ds[i] + 1 < run.arities[i] {
                    ds[i] += 1;
                    ds.truncate(i + 1);
                    advanced = true;
                    break;
                }
            }
            if !advanced {
                return Ok(Outcome {
                    schedules,
                    branch_points,
                    max_tied,
                    truncated: false,
                });
            }
            decisions = ds;
        }
    }
}

/// One serial run in canonical `(time, seq)` tie order — the ordering the
/// real [`crate::Executor`] uses — returning the finished tasks and the
/// final virtual clock. `charge` receives the same bills, in the same
/// order, with the same amounts as `Executor::run` would deliver.
pub fn canonical_run<S: Task>(
    window: usize,
    mut tasks: Vec<S>,
    mut charge: impl FnMut(&S::Bill, u64),
) -> (Vec<S>, u64) {
    // With `enumerate` off no branch is ever taken, so `run_one` cannot
    // fail; the fallback arm is unreachable but safer than an unwrap.
    let clock = match run_one(&mut tasks, window, &[], false, &mut charge) {
        Ok(run) => run.clock,
        Err(_) => 0,
    };
    (tasks, clock)
}

struct RunOut {
    /// Arity (`k!`) of each branch point encountered, in order.
    arities: Vec<usize>,
    charged: u64,
    clock: u64,
    max_tied: usize,
}

/// The serial mirror of the executor loop, with tie ordering decided by
/// `decisions` (Lehmer-decoded permutation indices, one per tied batch).
fn run_one<S, F>(
    tasks: &mut [S],
    window: usize,
    decisions: &[usize],
    enumerate: bool,
    charge: &mut F,
) -> Result<RunOut, ExploreError>
where
    S: Task,
    F: FnMut(&S::Bill, u64),
{
    let n = tasks.len();
    let window = window.max(1);
    let mut heap: BinaryHeap<Reverse<(u64, u64, usize)>> = BinaryHeap::new();
    let mut bills: Vec<Option<S::Bill>> = (0..n).map(|_| None).collect();
    let mut seq = 0u64;
    let mut next_admit = 0usize;
    let mut live = 0usize;
    let mut clock = 0u64;
    let mut out = RunOut {
        arities: Vec::new(),
        charged: 0,
        clock: 0,
        max_tied: 0,
    };
    let mut batch: Vec<usize> = Vec::new();
    while live < window && next_admit < n {
        batch.push(next_admit);
        next_admit += 1;
        live += 1;
    }
    while !batch.is_empty() {
        let mut next = Vec::new();
        for idx in std::mem::take(&mut batch) {
            match tasks[idx].poll(clock) {
                Step::Wait { until, bill } => {
                    seq += 1;
                    bills[idx] = Some(bill);
                    heap.push(Reverse((until, seq, idx)));
                }
                Step::Ready => next.push(idx),
                Step::Done => live -= 1,
            }
        }
        batch = next;
        while live < window && next_admit < n {
            batch.push(next_admit);
            next_admit += 1;
            live += 1;
        }
        if !batch.is_empty() {
            continue;
        }
        let Some(&Reverse((first, _, _))) = heap.peek() else {
            break;
        };
        let moved = first.saturating_sub(clock);
        clock = clock.max(first);
        // Everything due now fires together; since the clock never passes
        // a pending event, the whole popped set shares one timestamp —
        // this is the tied batch whose order is the legal nondeterminism.
        let mut tied: Vec<usize> = Vec::new();
        while let Some(&Reverse((t, _, idx))) = heap.peek() {
            if t > clock {
                break;
            }
            heap.pop();
            tied.push(idx);
        }
        out.max_tied = out.max_tied.max(tied.len());
        let order = if enumerate && tied.len() > 1 {
            if tied.len() > MAX_TIED {
                return Err(ExploreError::TooManyTied { tied: tied.len() });
            }
            let arity = factorial(tied.len());
            let d = decisions.get(out.arities.len()).copied().unwrap_or(0);
            out.arities.push(arity);
            permutation(&tied, d)
        } else {
            tied
        };
        let mut applied = moved;
        for idx in order {
            if let Some(bill) = bills[idx].take() {
                charge(&bill, applied);
                out.charged += applied;
            }
            applied = 0;
            batch.push(idx);
        }
    }
    out.clock = clock;
    Ok(out)
}

fn factorial(k: usize) -> usize {
    (1..=k).product()
}

/// The `code`-th permutation of `items` in lexicographic order (Lehmer
/// decoding). `code` beyond `k!` clamps rather than indexing out.
fn permutation(items: &[usize], mut code: usize) -> Vec<usize> {
    let mut pool = items.to_vec();
    let mut out = Vec::with_capacity(pool.len());
    for i in (1..=pool.len()).rev() {
        let f = factorial(i - 1);
        let idx = (code / f).min(pool.len().saturating_sub(1));
        code %= f;
        out.push(pool.remove(idx));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AtomicClock, Clock, Executor};
    use parking_lot::Mutex;

    /// The same scripted shape the executor tests use: `readies` Ready
    /// yields, then one Wait per entry (relative deadline), then Done.
    struct Scripted {
        id: usize,
        readies: usize,
        waits: Vec<u64>,
        at: usize,
        finished_at: Option<u64>,
    }

    impl Scripted {
        fn new(id: usize, readies: usize, waits: Vec<u64>) -> Scripted {
            Scripted {
                id,
                readies,
                waits,
                at: 0,
                finished_at: None,
            }
        }
    }

    impl Task for Scripted {
        type Bill = usize;
        fn poll(&mut self, now: u64) -> Step<usize> {
            if self.readies > 0 {
                self.readies -= 1;
                return Step::Ready;
            }
            if self.at < self.waits.len() {
                let until = now.saturating_add(self.waits[self.at]);
                self.at += 1;
                return Step::Wait {
                    until,
                    bill: self.id,
                };
            }
            self.finished_at = Some(now);
            Step::Done
        }
    }

    fn specs() -> Vec<(usize, Vec<u64>)> {
        (0..12)
            .map(|i| (i % 3, vec![(i as u64 * 37) % 50, (i as u64 * 11) % 30]))
            .collect()
    }

    #[test]
    fn canonical_run_matches_the_executor() {
        for window in [2, 5, 100] {
            let mk = || -> Vec<Scripted> {
                specs()
                    .into_iter()
                    .enumerate()
                    .map(|(id, (r, w))| Scripted::new(id, r, w))
                    .collect()
            };
            let clock = AtomicClock::new(0);
            let log = Mutex::new(Vec::new());
            let ex = Executor::new(1, window).expect("valid executor");
            let real = ex.run(&clock, mk(), |bill, applied| {
                log.lock().push((*bill, applied));
            });
            let mut model_log = Vec::new();
            let (model, end) = canonical_run(window, mk(), |bill, applied| {
                model_log.push((*bill, applied));
            });
            assert_eq!(model_log, log.into_inner(), "window={window}");
            assert_eq!(end, clock.now(), "window={window}");
            for (a, b) in real.iter().zip(model.iter()) {
                assert_eq!(a.finished_at, b.finished_at, "window={window}");
            }
        }
    }

    #[test]
    fn a_single_tie_enumerates_exactly_k_factorial_schedules() {
        for k in [2usize, 3, 4] {
            let outcome = Explorer::default()
                .explore(
                    || (0..k).map(|id| Scripted::new(id, 0, vec![10])).collect(),
                    |tasks: &[Scripted]| {
                        let mut ids: Vec<usize> = tasks.iter().map(|t| t.id).collect();
                        ids.sort_unstable();
                        format!("{ids:?}").into_bytes()
                    },
                )
                .expect("order-insensitive model");
            assert_eq!(outcome.schedules, factorial(k) as u64, "k={k}");
            assert_eq!(outcome.branch_points, 1);
            assert_eq!(outcome.max_tied, k);
            assert!(!outcome.truncated);
        }
    }

    #[test]
    fn ties_wider_than_the_cap_are_refused() {
        let err = Explorer::default()
            .explore(
                || (0..9).map(|id| Scripted::new(id, 0, vec![5])).collect(),
                |_: &[Scripted]| Vec::new(),
            )
            .expect_err("9-way tie must refuse");
        assert_eq!(err, ExploreError::TooManyTied { tied: 9 });
    }

    #[test]
    fn an_order_sensitive_artifact_is_caught() {
        // The artifact leaks the id of whichever tied task fired last.
        struct LastWriter {
            id: usize,
            slot: std::sync::Arc<Mutex<usize>>,
            parked: bool,
        }
        impl Task for LastWriter {
            type Bill = ();
            fn poll(&mut self, now: u64) -> Step<()> {
                if !self.parked {
                    self.parked = true;
                    return Step::Wait {
                        until: now + 3,
                        bill: (),
                    };
                }
                *self.slot.lock() = self.id;
                Step::Done
            }
        }
        let err = Explorer::default()
            .explore(
                || {
                    let slot = std::sync::Arc::new(Mutex::new(0));
                    (0..3)
                        .map(|id| LastWriter {
                            id,
                            slot: slot.clone(),
                            parked: false,
                        })
                        .collect::<Vec<_>>()
                },
                |tasks: &[LastWriter]| vec![*tasks[0].slot.lock() as u8],
            )
            .expect_err("order-sensitive model must diverge");
        assert!(
            matches!(err, ExploreError::ArtifactDivergence { .. }),
            "{err:?}"
        );
    }

    #[test]
    fn charge_identity_holds_across_all_schedules() {
        // Mixed ties and distinct deadlines; the model is insensitive but
        // every schedule's Σcharges==clock identity is asserted inside.
        let outcome = Explorer::default()
            .explore(
                || {
                    vec![
                        Scripted::new(0, 1, vec![10, 5]),
                        Scripted::new(1, 0, vec![10, 5]),
                        Scripted::new(2, 0, vec![15]),
                        Scripted::new(3, 2, vec![10]),
                    ]
                },
                |tasks: &[Scripted]| {
                    tasks
                        .iter()
                        .flat_map(|t| t.finished_at.unwrap_or(u64::MAX).to_be_bytes().to_vec())
                        .collect()
                },
            )
            .expect("insensitive model");
        assert!(outcome.schedules >= 6, "{outcome:?}");
        assert!(!outcome.truncated);
    }

    #[test]
    fn schedule_cap_truncates_honestly() {
        let outcome = Explorer {
            window: usize::MAX,
            max_schedules: 3,
        }
        .explore(
            || (0..4).map(|id| Scripted::new(id, 0, vec![10])).collect(),
            |_: &[Scripted]| Vec::new(),
        )
        .expect("cap is not an error");
        assert!(outcome.truncated);
        assert_eq!(outcome.schedules, 3);
    }
}

//! `flock-sched` — a deterministic discrete-event executor on virtual time.
//!
//! The crawler's original execution model was thread-per-worker: every
//! concurrent logical request occupied an OS thread, and all of them
//! contended on a single shared virtual clock with CAS races deciding who
//! pays for which wait. That flattens past a handful of workers and makes
//! "10,000 concurrent connections" unreachable. This crate replaces it
//! with the classic discrete-event loop:
//!
//! * **Logical tasks** ([`Task`]) are plain state machines — no async
//!   runtime, no boxed futures. Each `poll` runs the task until it either
//!   finishes ([`Step::Done`]), wants to be polled again in the same
//!   virtual instant ([`Step::Ready`]), or parks itself until a virtual
//!   deadline ([`Step::Wait`]).
//! * **The event queue** is a binary heap of `(virtual_time, seq, task)`
//!   entries. `seq` is a monotonically increasing tie-breaker assigned in
//!   deterministic order, so two events at the same instant always fire
//!   in the order they were scheduled — never in thread-race order.
//! * **The clock only moves when the ready set is empty.** While any task
//!   is `Ready`, the executor drains the batch; once nothing can run at
//!   the current instant, the clock jumps to the earliest pending event
//!   ([`Clock::advance_to`]) and every event now due joins the next
//!   batch. The seconds the clock actually moved are charged — exactly
//!   once, to the first event in `(time, seq)` order — through the
//!   caller's `charge` hook, which is how the crawler keeps its
//!   "Σ wait buckets + work = phase duration" identity.
//! * **A small OS-thread pool** (≤ the configured thread count) polls the
//!   batch concurrently: workers claim batch *positions* off an atomic
//!   cursor, results are folded back in batch order by a single
//!   coordinator between two barrier points. Every scheduling decision —
//!   admission order, event order, charge attribution — is made from
//!   position-sorted data, so a 1-thread and an 8-thread run produce the
//!   same event sequence by construction.
//!
//! The admission **window** bounds how many tasks are live at once
//! (the crawler's `--tasks` flag): with `n` inputs and a window of `w`,
//! at most `w` tasks are in flight and a completion admits the next
//! input, in input order.
//!
//! All deadline arithmetic saturates: a task may legitimately park itself
//! at `u64::MAX` (a pathological Retry-After) and the clock pins there
//! instead of wrapping around.

pub mod explore;

use flock_core::{FlockError, Result};
use flock_obs::trace;
use parking_lot::Mutex;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Barrier;

/// The virtual clock the executor schedules against. `advance_to` must be
/// a `max` (never move backwards) and must return the seconds actually
/// applied, so waits can be charged exactly once across racers.
pub trait Clock: Sync {
    /// Current virtual time in seconds.
    fn now(&self) -> u64;
    /// Advance to at least `deadline_secs`; returns the seconds the clock
    /// actually moved (zero when already past the deadline).
    fn advance_to(&self, deadline_secs: u64) -> u64;
}

/// A plain atomic virtual clock — the reference [`Clock`] used by tests
/// and benches that do not schedule against a full API server.
#[derive(Debug, Default)]
pub struct AtomicClock(AtomicU64);

impl AtomicClock {
    /// A clock starting at `start_secs`.
    pub fn new(start_secs: u64) -> AtomicClock {
        AtomicClock(AtomicU64::new(start_secs))
    }
}

impl Clock for AtomicClock {
    fn now(&self) -> u64 {
        self.0.load(Ordering::SeqCst)
    }

    fn advance_to(&self, deadline_secs: u64) -> u64 {
        let prev = self.0.fetch_max(deadline_secs, Ordering::SeqCst);
        deadline_secs.saturating_sub(prev)
    }
}

/// What a task wants after one poll.
#[derive(Debug)]
pub enum Step<B> {
    /// Park until the virtual clock reaches `until`. When the event
    /// fires, the seconds the clock moved for it are charged to `bill`
    /// through the executor's charge hook (zero for every event after the
    /// first at a given instant — the wait was already paid).
    Wait {
        /// Absolute virtual deadline in seconds.
        until: u64,
        /// Attribution payload handed back at fire time.
        bill: B,
    },
    /// Poll again in the current batch, at the same virtual instant.
    Ready,
    /// The task has produced its output and will not be polled again.
    Done,
}

/// A lightweight logical task: an explicit state machine polled by the
/// executor. Implementations typically hold their partial output and
/// whatever cursor/retry state a blocking implementation would keep on
/// its stack.
pub trait Task: Send {
    /// Attribution payload carried by [`Step::Wait`] events.
    type Bill: Send;
    /// Run until the next yield point. `now` is the current virtual time.
    fn poll(&mut self, now: u64) -> Step<Self::Bill>;
}

/// The discrete-event executor: a fixed OS-thread count and an admission
/// window for logical tasks.
#[derive(Debug, Clone, Copy)]
pub struct Executor {
    threads: usize,
    window: usize,
}

impl Executor {
    /// An executor multiplexing up to `window` live logical tasks over
    /// `threads` OS threads. Both must be at least 1 — a zero is a typed
    /// configuration error, not a silent clamp.
    pub fn new(threads: usize, window: usize) -> Result<Executor> {
        if threads == 0 {
            return Err(FlockError::InvalidConfig(
                "scheduler needs at least one OS thread (threads = 0)".to_string(),
            ));
        }
        if window == 0 {
            return Err(FlockError::InvalidConfig(
                "scheduler admission window must be at least one logical task (tasks = 0)"
                    .to_string(),
            ));
        }
        Ok(Executor { threads, window })
    }

    /// OS threads this executor polls with.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Admission window (maximum live logical tasks).
    pub fn window(&self) -> usize {
        self.window
    }

    /// Drive every task to [`Step::Done`] and hand the tasks back (their
    /// outputs live inside them). `charge` is invoked at event-fire time
    /// with each fired bill and the seconds of clock movement attributed
    /// to it; the sum of charged seconds equals the total clock movement.
    pub fn run<S, C, F>(&self, clock: &C, tasks: Vec<S>, charge: F) -> Vec<S>
    where
        S: Task,
        C: Clock,
        F: Fn(&S::Bill, u64) + Sync,
    {
        let n = tasks.len();
        if n == 0 {
            return tasks;
        }
        let threads = self.threads.min(n);
        let slots: Vec<Mutex<S>> = tasks.into_iter().map(Mutex::new).collect();
        let mut engine = Engine::new(n, self.window);
        engine.admit();
        let shared = Shared {
            engine: Mutex::new(engine),
            results: Mutex::new(Vec::new()),
            cursor: AtomicUsize::new(0),
            stop: AtomicBool::new(false),
            barrier: Barrier::new(threads),
        };
        crossbeam::scope(|scope| {
            for slot in 1..threads {
                let shared = &shared;
                let slots = &slots;
                let charge = &charge;
                scope.spawn(move |_| drive(slot, shared, slots, clock, charge));
            }
            // The calling thread is worker 0, so a 1-thread executor runs
            // fully inline — the serial and parallel paths are the same
            // code, which is what makes cross-thread-count determinism an
            // argument instead of a hope.
            drive(0, &shared, &slots, clock, &charge);
        })
        // flock-lint: allow(panic) a panicked task has poisoned the schedule; re-raise on the coordinator
        .expect("scheduler worker panicked");
        slots.into_iter().map(Mutex::into_inner).collect()
    }
}

/// Event-queue bookkeeping, owned by whichever thread is the coordinator
/// between rounds (the lock is uncontended there; workers only read the
/// prepared batch).
struct Engine<B> {
    /// Pending events: `Reverse((virtual_time, seq, task_index))` — a
    /// min-heap popping earliest time first, sequence order within a time.
    heap: BinaryHeap<Reverse<(u64, u64, usize)>>,
    /// Attribution payload for each parked task.
    bills: Vec<Option<B>>,
    /// Monotone tie-breaker, assigned in deterministic batch order.
    seq: u64,
    /// Next input index not yet admitted.
    next_admit: usize,
    /// Admitted and not yet `Done`.
    live: usize,
    window: usize,
    n: usize,
    /// Task indexes to poll this round.
    batch: Vec<usize>,
}

impl<B> Engine<B> {
    fn new(n: usize, window: usize) -> Engine<B> {
        Engine {
            heap: BinaryHeap::new(),
            bills: (0..n).map(|_| None).collect(),
            seq: 0,
            next_admit: 0,
            live: 0,
            window,
            n,
            batch: Vec::new(),
        }
    }

    /// Top the live set up to the window, in input order.
    fn admit(&mut self) {
        while self.live < self.window && self.next_admit < self.n {
            self.batch.push(self.next_admit);
            self.next_admit += 1;
            self.live += 1;
        }
    }

    /// Fold one poll result back in, in deterministic order. `Ready`
    /// tasks go to `next` (the front of the next batch).
    fn apply(&mut self, idx: usize, step: Step<B>, next: &mut Vec<usize>) {
        match step {
            Step::Wait { until, bill } => {
                self.seq += 1;
                self.bills[idx] = Some(bill);
                self.heap.push(Reverse((until, self.seq, idx)));
            }
            Step::Ready => next.push(idx),
            Step::Done => self.live -= 1,
        }
    }

    /// The ready set is empty: advance the clock to the earliest pending
    /// event and move everything now due into the batch. The first fired
    /// event (in `(time, seq)` order) is charged the full clock movement;
    /// the rest were waiting on an instant someone else already paid for
    /// and are charged zero.
    fn fire<C: Clock, F: Fn(&B, u64)>(&mut self, clock: &C, charge: &F) {
        let Some(&Reverse((first, _, _))) = self.heap.peek() else {
            return;
        };
        let mut applied = clock.advance_to(first);
        let now = clock.now();
        while let Some(&Reverse((t, _, idx))) = self.heap.peek() {
            if t > now {
                break;
            }
            self.heap.pop();
            if let Some(bill) = self.bills[idx].take() {
                charge(&bill, applied);
            }
            applied = 0;
            self.batch.push(idx);
        }
    }
}

struct Shared<B> {
    engine: Mutex<Engine<B>>,
    /// `(batch_position, task_index, step)` for the round in flight.
    results: Mutex<Vec<(usize, usize, Step<B>)>>,
    /// Next unclaimed batch position.
    cursor: AtomicUsize,
    stop: AtomicBool,
    barrier: Barrier,
}

/// One worker's round loop: batch-poll between two barrier points; the
/// barrier leader folds results back into the engine before releasing the
/// next round.
fn drive<S, C, F>(slot: usize, shared: &Shared<S::Bill>, slots: &[Mutex<S>], clock: &C, charge: &F)
where
    S: Task,
    C: Clock,
    F: Fn(&S::Bill, u64) + Sync,
{
    let _worker = trace::worker_scope(slot);
    loop {
        shared.barrier.wait();
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        let batch: Vec<usize> = shared.engine.lock().batch.clone();
        loop {
            let pos = shared.cursor.fetch_add(1, Ordering::SeqCst);
            if pos >= batch.len() {
                break;
            }
            let idx = batch[pos];
            let step = {
                let mut task = slots[idx].lock();
                // The task flag travels with the poll, not the thread:
                // API layers consult it to treat simulated latency as a
                // virtual-time event instead of a real sleep.
                let _task = trace::task_scope();
                task.poll(clock.now())
            };
            shared.results.lock().push((pos, idx, step));
        }
        if shared.barrier.wait().is_leader() {
            coordinate(shared, clock, charge);
        }
    }
}

/// Exactly one thread runs this between the round-end barrier and the
/// next round-start barrier: fold the round's results back in batch
/// order, admit, and — if nothing is ready — fire the event queue.
fn coordinate<B, C, F>(shared: &Shared<B>, clock: &C, charge: &F)
where
    C: Clock,
    F: Fn(&B, u64) + Sync,
{
    let mut engine = shared.engine.lock();
    let mut results = std::mem::take(&mut *shared.results.lock());
    // Completion order is thread noise; batch position is the contract.
    results.sort_by_key(|&(pos, _, _)| pos);
    engine.batch.clear();
    let mut next: Vec<usize> = Vec::new();
    for (_, idx, step) in results {
        engine.apply(idx, step, &mut next);
    }
    engine.batch = next;
    engine.admit();
    if engine.batch.is_empty() {
        engine.fire(clock, charge);
    }
    if engine.batch.is_empty() {
        shared.stop.store(true, Ordering::SeqCst);
    }
    shared.cursor.store(0, Ordering::SeqCst);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    /// A scripted task: `readies` Ready yields, then one Wait per entry
    /// of `waits` (relative to the clock at poll time), then Done.
    struct Scripted {
        id: usize,
        readies: usize,
        waits: Vec<u64>,
        at: usize,
        polls: usize,
        finished_at: Option<u64>,
    }

    impl Scripted {
        fn new(id: usize, readies: usize, waits: Vec<u64>) -> Scripted {
            Scripted {
                id,
                readies,
                waits,
                at: 0,
                polls: 0,
                finished_at: None,
            }
        }
    }

    impl Task for Scripted {
        type Bill = usize;
        fn poll(&mut self, now: u64) -> Step<usize> {
            self.polls += 1;
            if self.readies > 0 {
                self.readies -= 1;
                return Step::Ready;
            }
            if self.at < self.waits.len() {
                let until = now.saturating_add(self.waits[self.at]);
                self.at += 1;
                return Step::Wait {
                    until,
                    bill: self.id,
                };
            }
            self.finished_at = Some(now);
            Step::Done
        }
    }

    fn charges_of(threads: usize, window: usize, specs: &[(usize, Vec<u64>)]) -> Vec<(usize, u64)> {
        let clock = AtomicClock::new(0);
        let tasks: Vec<Scripted> = specs
            .iter()
            .enumerate()
            .map(|(id, (readies, waits))| Scripted::new(id, *readies, waits.clone()))
            .collect();
        let log = Mutex::new(Vec::new());
        let ex = Executor::new(threads, window).expect("valid executor");
        let done = ex.run(&clock, tasks, |bill, applied| {
            log.lock().push((*bill, applied));
        });
        assert!(done.iter().all(|t| t.finished_at.is_some()));
        log.into_inner()
    }

    #[test]
    fn zero_threads_or_window_is_a_typed_error() {
        assert!(matches!(
            Executor::new(0, 16),
            Err(FlockError::InvalidConfig(_))
        ));
        assert!(matches!(
            Executor::new(4, 0),
            Err(FlockError::InvalidConfig(_))
        ));
        assert!(Executor::new(1, 1).is_ok());
    }

    #[test]
    fn empty_task_set_is_a_no_op() {
        let clock = AtomicClock::new(7);
        let ex = Executor::new(4, 16).expect("valid executor");
        let out: Vec<Scripted> = ex.run(&clock, Vec::new(), |_, _| {});
        assert!(out.is_empty());
        assert_eq!(clock.now(), 7);
    }

    #[test]
    fn clock_advances_to_earliest_event_and_charges_the_first_firer() {
        // Task 0 parks at t=20, task 1 at t=10: the clock must visit 10
        // first (charging 10s to task 1), then 20 (charging 10s to task 0).
        let log = charges_of(1, 16, &[(0, vec![20]), (0, vec![10])]);
        assert_eq!(log, vec![(1, 10), (0, 10)]);
    }

    #[test]
    fn simultaneous_events_fire_in_seq_order_and_pay_once() {
        // Three tasks park at the same instant: exactly one pays the wait.
        let log = charges_of(1, 16, &[(0, vec![30]), (0, vec![30]), (0, vec![30])]);
        assert_eq!(log, vec![(0, 30), (1, 0), (2, 0)]);
    }

    #[test]
    fn ready_tasks_run_before_the_clock_moves() {
        let clock = AtomicClock::new(0);
        let tasks = vec![Scripted::new(0, 5, vec![]), Scripted::new(1, 0, vec![1000])];
        let ex = Executor::new(2, 16).expect("valid executor");
        let done = ex.run(&clock, tasks, |_, _| {});
        // Task 0 yielded Ready five times and finished without the clock
        // moving past task 1's park point.
        assert_eq!(done[0].polls, 6);
        assert_eq!(done[0].finished_at, Some(0));
        assert_eq!(clock.now(), 1000);
    }

    #[test]
    fn charges_are_identical_across_thread_counts() {
        let specs: Vec<(usize, Vec<u64>)> = (0..50)
            .map(|i| (i % 3, vec![(i as u64 * 37) % 200, (i as u64 * 11) % 90]))
            .collect();
        let serial = charges_of(1, 8, &specs);
        for threads in [2, 4, 8] {
            assert_eq!(charges_of(threads, 8, &specs), serial, "threads={threads}");
        }
        // Window size changes the virtual timeline (later admissions park
        // later), but never the identity: charged seconds sum exactly to
        // the clock movement of the run, at any window and thread count.
        for window in [1, 3, 50] {
            let clock = AtomicClock::new(0);
            let tasks: Vec<Scripted> = specs
                .iter()
                .enumerate()
                .map(|(id, (readies, waits))| Scripted::new(id, *readies, waits.clone()))
                .collect();
            let charged = AtomicU64::new(0);
            let ex = Executor::new(4, window).expect("valid executor");
            ex.run(&clock, tasks, |_, applied| {
                charged.fetch_add(applied, Ordering::SeqCst);
            });
            assert_eq!(
                charged.load(Ordering::SeqCst),
                clock.now(),
                "window={window}"
            );
        }
    }

    #[test]
    fn admission_window_bounds_live_tasks() {
        struct Counting<'a> {
            live: &'a AtomicUsize,
            peak: &'a AtomicUsize,
            started: bool,
            waits: usize,
        }
        impl Task for Counting<'_> {
            type Bill = ();
            fn poll(&mut self, now: u64) -> Step<()> {
                if !self.started {
                    self.started = true;
                    let l = self.live.fetch_add(1, Ordering::SeqCst) + 1;
                    self.peak.fetch_max(l, Ordering::SeqCst);
                }
                if self.waits > 0 {
                    self.waits -= 1;
                    return Step::Wait {
                        until: now + 5,
                        bill: (),
                    };
                }
                self.live.fetch_sub(1, Ordering::SeqCst);
                Step::Done
            }
        }
        let live = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        let tasks: Vec<Counting> = (0..100)
            .map(|i| Counting {
                live: &live,
                peak: &peak,
                started: false,
                waits: 1 + i % 3,
            })
            .collect();
        let clock = AtomicClock::new(0);
        let ex = Executor::new(4, 7).expect("valid executor");
        ex.run(&clock, tasks, |_, _| {});
        assert_eq!(live.load(Ordering::SeqCst), 0);
        assert!(
            peak.load(Ordering::SeqCst) <= 7,
            "window exceeded: {}",
            peak.load(Ordering::SeqCst)
        );
    }

    #[test]
    fn deadlines_near_u64_max_saturate_and_terminate() {
        // One task parks at u64::MAX, another at MAX-5: the clock pins at
        // MAX, charges sum to exactly MAX, and the run terminates.
        let log = charges_of(2, 16, &[(0, vec![u64::MAX]), (0, vec![u64::MAX - 5])]);
        let total: u64 = log.iter().map(|&(_, a)| a).sum();
        assert_eq!(total, u64::MAX);
        // A task that parks *again* at MAX from a clock already at MAX
        // still fires (zero movement) instead of hanging.
        let log2 = charges_of(1, 4, &[(0, vec![u64::MAX, u64::MAX, 10])]);
        let total2: u64 = log2.iter().map(|&(_, a)| a).sum();
        assert_eq!(total2, u64::MAX);
        assert_eq!(log2.len(), 3);
    }

    #[test]
    fn worker_slots_are_visible_to_tasks() {
        struct SlotProbe {
            seen: Option<usize>,
            scheduled: bool,
        }
        impl Task for SlotProbe {
            type Bill = ();
            fn poll(&mut self, _now: u64) -> Step<()> {
                self.seen = trace::current_worker();
                self.scheduled = trace::in_scheduled_task();
                Step::Done
            }
        }
        let clock = AtomicClock::new(0);
        let tasks: Vec<SlotProbe> = (0..32)
            .map(|_| SlotProbe {
                seen: None,
                scheduled: false,
            })
            .collect();
        let ex = Executor::new(4, 32).expect("valid executor");
        let done = ex.run(&clock, tasks, |_, _| {});
        assert!(done.iter().all(|t| matches!(t.seen, Some(w) if w < 4)));
        assert!(done.iter().all(|t| t.scheduled));
        // The flag does not leak outside the run.
        assert!(!trace::in_scheduled_task());
        assert_eq!(trace::current_worker(), None);
    }
}

//! # flock-repro — the figure-regeneration harness
//!
//! One entry point, [`MigrationStudy::run`], executes the entire
//! reproduction (world → API server → crawl → analysis) and renders every
//! figure of the paper as text, next to the paper's own numbers.
//!
//! The `repro` binary exposes each figure as a subcommand:
//!
//! ```text
//! cargo run -p flock-repro --release -- --scale medium headline
//! cargo run -p flock-repro --release -- fig5
//! cargo run -p flock-repro --release -- all
//! cargo run -p flock-repro --release -- experiments-md > EXPERIMENTS.md
//! ```

pub mod csv;
pub mod render;
pub mod study;

pub mod prelude {
    pub use crate::study::{FigureId, MigrationStudy};
}

pub use prelude::*;

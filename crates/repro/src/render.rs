//! Plain-text rendering of figure data: sparklines, bars, and CDF tables.
//!
//! The reproduction target is the *data* behind each figure; these helpers
//! make that data readable in a terminal without a plotting stack.

use flock_analysis::Ecdf;

const SPARK: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Render a numeric series as a sparkline.
pub fn sparkline(values: &[f64]) -> String {
    let max = values.iter().cloned().fold(f64::MIN, f64::max);
    let min = values.iter().cloned().fold(f64::MAX, f64::min);
    if values.is_empty() || !max.is_finite() || !min.is_finite() {
        return String::new();
    }
    let span = (max - min).max(1e-12);
    values
        .iter()
        .map(|v| {
            let idx = (((v - min) / span) * 7.0).round() as usize;
            SPARK[idx.min(7)]
        })
        .collect()
}

/// Render a labelled horizontal bar.
pub fn bar(label: &str, value: f64, max: f64, width: usize) -> String {
    let filled = if max > 0.0 {
        ((value / max) * width as f64).round() as usize
    } else {
        0
    };
    format!(
        "{:<32} {:>10.0} |{}{}|",
        truncate(label, 32),
        value,
        "█".repeat(filled.min(width)),
        " ".repeat(width.saturating_sub(filled)),
    )
}

/// Summarize an ECDF as a quantile row.
pub fn quantiles(label: &str, e: &Ecdf) -> String {
    if e.is_empty() {
        return format!("{label:<28} (no samples)");
    }
    format!(
        "{:<28} n={:<6} p10={:<9.3} p25={:<9.3} p50={:<9.3} p75={:<9.3} p90={:<9.3} mean={:.3}",
        truncate(label, 28),
        e.len(),
        e.quantile(0.10).unwrap_or(f64::NAN),
        e.quantile(0.25).unwrap_or(f64::NAN),
        e.quantile(0.50).unwrap_or(f64::NAN),
        e.quantile(0.75).unwrap_or(f64::NAN),
        e.quantile(0.90).unwrap_or(f64::NAN),
        e.mean(),
    )
}

fn truncate(s: &str, n: usize) -> String {
    if s.chars().count() <= n {
        s.to_string()
    } else {
        let cut: String = s.chars().take(n - 1).collect();
        format!("{cut}…")
    }
}

/// A two-column comparison line for paper-vs-measured values.
pub fn compare(name: &str, paper: f64, measured: f64, unit: &str) -> String {
    format!("  {name:<52} paper {paper:>9.2}{unit:<3} measured {measured:>9.2}{unit}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparkline_shape() {
        let s = sparkline(&[0.0, 1.0, 2.0, 3.0, 2.0, 1.0, 0.0]);
        assert_eq!(s.chars().count(), 7);
        assert!(s.starts_with('▁'));
        assert!(s.contains('█'));
        assert_eq!(sparkline(&[]), "");
        // Constant series stays at the bottom glyph.
        let flat = sparkline(&[5.0, 5.0, 5.0]);
        assert!(flat.chars().all(|c| c == '▁'));
    }

    #[test]
    fn bar_bounds() {
        let b = bar("mastodon.social", 100.0, 100.0, 20);
        assert!(b.contains(&"█".repeat(20)));
        let none = bar("x", 0.0, 100.0, 20);
        assert!(!none.contains('█'));
        let zero_max = bar("x", 5.0, 0.0, 20);
        assert!(!zero_max.contains('█'));
    }

    #[test]
    fn quantiles_rendering() {
        let e = Ecdf::new((1..=100).map(f64::from).collect());
        let q = quantiles("followers", &e);
        assert!(q.contains("p50=50"));
        assert!(q.contains("n=100"));
        let empty = quantiles("none", &Ecdf::new(vec![]));
        assert!(empty.contains("no samples"));
    }

    #[test]
    fn truncate_long_labels() {
        let b = bar(
            "an-extremely-long-instance-domain-name.would.overflow.example",
            1.0,
            1.0,
            5,
        );
        assert!(b.contains('…'));
    }
}

//! CSV export of every figure's data series, for external plotting.
//!
//! Each figure writes one tidy long-format file (`figN.csv`) with a header
//! row; CDFs are exported as `(x, P(X<=x))` curves, time series as
//! per-day/per-week rows, and rankings as labelled rows.

use crate::study::MigrationStudy;
use flock_analysis::prelude::*;
use flock_core::{FlockError, Result};
use std::fmt::Write as _;
use std::path::Path;

/// Quote a CSV field if it needs it.
fn field(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// An ECDF as `series,x,cdf` rows appended to `out`.
fn ecdf_rows(out: &mut String, series: &str, e: &Ecdf, points: usize) {
    for (x, p) in e.curve(points) {
        let _ = writeln!(out, "{},{x},{p}", field(series));
    }
}

impl MigrationStudy {
    /// Write `fig1.csv` … `fig16.csv` (plus `headline.csv` and
    /// `retention.csv`) into `dir`. Returns the number of files written.
    pub fn export_csv(&self, dir: &Path) -> Result<usize> {
        std::fs::create_dir_all(dir)
            .map_err(|e| FlockError::InvalidConfig(format!("mkdir {}: {e}", dir.display())))?;
        let mut written = 0;
        let mut write = |name: &str, content: String| -> Result<()> {
            std::fs::write(dir.join(name), content)
                .map_err(|e| FlockError::InvalidConfig(format!("write {name}: {e}")))?;
            written += 1;
            Ok(())
        };

        // fig1: day,series,interest
        {
            let mut s = String::from("day,series,interest\n");
            let r = &self.world.interest;
            for series in [&r.twitter_alternatives, &r.mastodon, &r.koo, &r.hive] {
                for (i, v) in series.values.iter().enumerate() {
                    let _ = writeln!(
                        s,
                        "{},{},{v}",
                        flock_core::Day(i as i32),
                        field(&series.name)
                    );
                }
            }
            write("fig1.csv", s)?;
        }
        // fig2: day,instance_links,keywords_hashtags
        {
            let f = fig2_collection(&self.dataset);
            let mut s = String::from("day,instance_links,keywords_hashtags\n");
            for (i, day) in f.days.iter().enumerate() {
                let _ = writeln!(
                    s,
                    "{day},{},{}",
                    f.instance_links[i], f.keywords_and_hashtags[i]
                );
            }
            write("fig2.csv", s)?;
        }
        // fig3: week_monday,registrations,logins,statuses (totals)
        {
            use std::collections::BTreeMap;
            let mut totals: BTreeMap<flock_core::Week, (u64, u64, u64)> = BTreeMap::new();
            for rows in self.dataset.weekly_activity.values() {
                for r in rows {
                    let e = totals.entry(r.week).or_default();
                    e.0 += r.registrations;
                    e.1 += r.logins;
                    e.2 += r.statuses;
                }
            }
            let mut s = String::from("week_monday,registrations,logins,statuses\n");
            for (w, (reg, log, st)) in totals {
                let _ = writeln!(s, "{},{reg},{log},{st}", w.monday());
            }
            write("fig3.csv", s)?;
        }
        // fig4: domain,before,after
        {
            let mut s = String::from("domain,before_takeover,after_takeover\n");
            for r in fig4_top_instances(&self.dataset, 30) {
                let _ = writeln!(s, "{},{},{}", field(&r.domain), r.before, r.after);
            }
            write("fig4.csv", s)?;
        }
        // fig5: frac_instances,frac_users
        {
            let c = fig5_centralization(&self.dataset);
            let mut s = String::from("frac_instances,frac_users\n");
            for (fi, fu) in &c.curve {
                let _ = writeln!(s, "{fi},{fu}");
            }
            write("fig5.csv", s)?;
        }
        // fig6: bucket,metric,x,cdf
        {
            let f = fig6_size_analysis(&self.dataset);
            let mut s = String::from("bucket,metric,x,cdf\n");
            for b in &f.buckets {
                for (metric, e) in [
                    ("followers", &b.followers),
                    ("followees", &b.followees),
                    ("statuses", &b.statuses),
                ] {
                    for (x, p) in e.curve(50) {
                        let _ = writeln!(s, "{},{metric},{x},{p}", field(&b.label));
                    }
                }
            }
            write("fig6.csv", s)?;
        }
        // fig7: series,x,cdf
        {
            let f = fig7_social_networks(&self.dataset);
            let mut s = String::from("series,x,cdf\n");
            ecdf_rows(&mut s, "twitter_followers", &f.twitter_followers, 100);
            ecdf_rows(&mut s, "twitter_followees", &f.twitter_followees, 100);
            ecdf_rows(&mut s, "mastodon_followers", &f.mastodon_followers, 100);
            ecdf_rows(&mut s, "mastodon_followees", &f.mastodon_followees, 100);
            write("fig7.csv", s)?;
        }
        // fig8 + fig10: series,x,cdf
        {
            let f = fig8_influence(&self.dataset);
            let mut s = String::from("series,x,cdf\n");
            ecdf_rows(&mut s, "migrated", &f.frac_migrated, 100);
            ecdf_rows(&mut s, "migrated_before", &f.frac_migrated_before, 100);
            ecdf_rows(&mut s, "same_instance", &f.frac_same_instance, 100);
            write("fig8.csv", s)?;
            let f = fig10_switcher_influence(&self.dataset);
            let mut s = String::from("series,x,cdf\n");
            ecdf_rows(&mut s, "at_first_instance", &f.frac_at_first, 100);
            ecdf_rows(&mut s, "at_second_instance", &f.frac_at_second, 100);
            ecdf_rows(&mut s, "at_second_before", &f.frac_at_second_before, 100);
            write("fig10.csv", s)?;
        }
        // fig9: from,to,count
        {
            let f = fig9_switching(&self.dataset);
            let mut s = String::from("from,to,count\n");
            for flow in &f.flows {
                let _ = writeln!(
                    s,
                    "{},{},{}",
                    field(&flow.from),
                    field(&flow.to),
                    flow.count
                );
            }
            write("fig9.csv", s)?;
        }
        // fig11: day,tweets,statuses
        {
            let f = fig11_activity(&self.dataset);
            let mut s = String::from("day,tweets,statuses\n");
            for (i, d) in f.days.iter().enumerate() {
                let _ = writeln!(s, "{d},{},{}", f.tweets[i], f.statuses[i]);
            }
            write("fig11.csv", s)?;
        }
        // fig12: source,before,after,growth_pct
        {
            let mut s = String::from("source,before,after,growth_pct\n");
            for r in fig12_sources(&self.dataset, 30) {
                let _ = writeln!(
                    s,
                    "{},{},{},{}",
                    field(&r.source),
                    r.before,
                    r.after,
                    r.growth_pct()
                );
            }
            write("fig12.csv", s)?;
        }
        // fig13: day,users
        {
            let f = fig13_crossposters(&self.dataset);
            let mut s = String::from("day,crossposter_users\n");
            for (i, d) in f.days.iter().enumerate() {
                let _ = writeln!(s, "{d},{}", f.users_per_day[i]);
            }
            write("fig13.csv", s)?;
        }
        // fig14: series,x,cdf
        {
            let f = fig14_similarity(&self.dataset);
            let mut s = String::from("series,x,cdf\n");
            ecdf_rows(&mut s, "identical", &f.identical, 100);
            ecdf_rows(&mut s, "similar", &f.similar, 100);
            write("fig14.csv", s)?;
        }
        // fig15: platform,hashtag,count
        {
            let f = fig15_hashtags(&self.dataset, 30);
            let mut s = String::from("platform,hashtag,count\n");
            for r in &f.twitter {
                let _ = writeln!(s, "twitter,{},{}", field(&r.tag), r.count);
            }
            for r in &f.mastodon {
                let _ = writeln!(s, "mastodon,{},{}", field(&r.tag), r.count);
            }
            write("fig15.csv", s)?;
        }
        // fig16: series,x,cdf
        {
            let f = fig16_toxicity(&self.dataset);
            let mut s = String::from("series,x,cdf\n");
            ecdf_rows(&mut s, "twitter", &f.twitter, 100);
            ecdf_rows(&mut s, "mastodon", &f.mastodon, 100);
            write("fig16.csv", s)?;
        }
        // headline: metric,paper,measured,unit,verdict
        {
            let r = self.headline();
            let mut s = String::from("metric,paper,measured,unit,verdict\n");
            for m in &r.metrics {
                let _ = writeln!(
                    s,
                    "{},{},{},{},{:?}",
                    field(&m.name),
                    m.paper,
                    m.measured,
                    field(&m.unit),
                    m.verdict()
                );
            }
            write("headline.csv", s)?;
        }
        // retention: week_offset,active_users
        {
            let r = flock_analysis::retention(&self.dataset);
            let mut s = String::from("weeks_after_takeover,active_status_posters\n");
            for (i, n) in r.weekly_active_users.iter().enumerate() {
                let _ = writeln!(s, "{i},{n}");
            }
            write("retention.csv", s)?;
        }
        Ok(written)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flock_fedisim::WorldConfig;
    use std::sync::OnceLock;

    fn study() -> &'static MigrationStudy {
        static CELL: OnceLock<MigrationStudy> = OnceLock::new();
        CELL.get_or_init(|| {
            MigrationStudy::run(&WorldConfig::small().with_seed(505)).expect("study")
        })
    }

    #[test]
    fn exports_every_figure() {
        let dir = std::env::temp_dir().join("flock_csv_test");
        let n = study().export_csv(&dir).unwrap();
        assert_eq!(n, 18, "16 figures + headline + retention");
        for name in [
            "fig1.csv",
            "fig5.csv",
            "fig9.csv",
            "fig16.csv",
            "headline.csv",
        ] {
            let content = std::fs::read_to_string(dir.join(name)).unwrap();
            assert!(content.lines().count() > 1, "{name} is empty");
            // Every row has the same number of fields as the header
            // (quoted-field-free files only, which these are by design).
            let cols = content.lines().next().unwrap().split(',').count();
            for line in content.lines().skip(1).take(20) {
                assert_eq!(line.split(',').count(), cols, "{name}: ragged row {line}");
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn csv_field_quoting() {
        assert_eq!(field("plain"), "plain");
        assert_eq!(field("has,comma"), "\"has,comma\"");
        assert_eq!(field("has\"quote"), "\"has\"\"quote\"");
    }
}

//! The end-to-end study object and per-figure renderers.

use crate::render::{bar, compare, quantiles, sparkline};
use flock_analysis::prelude::*;
use flock_analysis::retention::RetentionClass;
use flock_apis::ApiServer;
use flock_core::{Day, Result};
use flock_crawler::dataset::Dataset;
use flock_crawler::pipeline::{Crawler, CrawlerConfig};
use flock_fedisim::{World, WorldConfig};
use flock_obs::Registry;
use std::fmt::Write as _;
use std::str::FromStr;
use std::sync::Arc;

/// Identifier of a reproducible artifact (figure or headline table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FigureId {
    Fig1,
    Fig2,
    Fig3,
    Fig4,
    Fig5,
    Fig6,
    Fig7,
    Fig8,
    Fig9,
    Fig10,
    Fig11,
    Fig12,
    Fig13,
    Fig14,
    Fig15,
    Fig16,
    Headline,
}

impl FigureId {
    /// Every artifact, paper order.
    pub const ALL: [FigureId; 17] = [
        FigureId::Fig1,
        FigureId::Fig2,
        FigureId::Fig3,
        FigureId::Fig4,
        FigureId::Fig5,
        FigureId::Fig6,
        FigureId::Fig7,
        FigureId::Fig8,
        FigureId::Fig9,
        FigureId::Fig10,
        FigureId::Fig11,
        FigureId::Fig12,
        FigureId::Fig13,
        FigureId::Fig14,
        FigureId::Fig15,
        FigureId::Fig16,
        FigureId::Headline,
    ];

    /// What the artifact shows, as captioned in the paper.
    pub fn caption(self) -> &'static str {
        match self {
            FigureId::Fig1 => {
                "Fig 1: search interest for Twitter alternatives / Mastodon / Koo / Hive"
            }
            FigureId::Fig2 => "Fig 2: daily tweets with instance links vs migration keywords",
            FigureId::Fig3 => "Fig 3: weekly activity on Mastodon instances",
            FigureId::Fig4 => "Fig 4: top 30 Mastodon instances Twitter users migrated to",
            FigureId::Fig5 => "Fig 5: percentage of users on top-% instances",
            FigureId::Fig6 => "Fig 6: instance sizes and per-size follower/followee/status CDFs",
            FigureId::Fig7 => "Fig 7: follower/followee CDFs on Twitter vs Mastodon",
            FigureId::Fig8 => {
                "Fig 8: fraction of Twitter followees that migrated / earlier / same instance"
            }
            FigureId::Fig9 => "Fig 9: chord flows of instance switching",
            FigureId::Fig10 => "Fig 10: switchers' followees at first/second instance",
            FigureId::Fig11 => "Fig 11: daily tweets and statuses of migrated users",
            FigureId::Fig12 => "Fig 12: top 30 tweet sources before/after the takeover",
            FigureId::Fig13 => "Fig 13: daily users of cross-posting tools",
            FigureId::Fig14 => "Fig 14: fraction of statuses identical/similar to tweets",
            FigureId::Fig15 => "Fig 15: top 30 hashtags on each platform",
            FigureId::Fig16 => "Fig 16: per-user toxic-post fraction on each platform",
            FigureId::Headline => "Headline: every in-text statistic, paper vs measured",
        }
    }
}

impl FromStr for FigureId {
    type Err = String;
    fn from_str(s: &str) -> std::result::Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "fig1" => Ok(FigureId::Fig1),
            "fig2" => Ok(FigureId::Fig2),
            "fig3" => Ok(FigureId::Fig3),
            "fig4" => Ok(FigureId::Fig4),
            "fig5" => Ok(FigureId::Fig5),
            "fig6" => Ok(FigureId::Fig6),
            "fig7" => Ok(FigureId::Fig7),
            "fig8" => Ok(FigureId::Fig8),
            "fig9" => Ok(FigureId::Fig9),
            "fig10" => Ok(FigureId::Fig10),
            "fig11" => Ok(FigureId::Fig11),
            "fig12" => Ok(FigureId::Fig12),
            "fig13" => Ok(FigureId::Fig13),
            "fig14" => Ok(FigureId::Fig14),
            "fig15" => Ok(FigureId::Fig15),
            "fig16" => Ok(FigureId::Fig16),
            "headline" | "stats" | "tables" => Ok(FigureId::Headline),
            other => Err(format!("unknown figure id {other:?}")),
        }
    }
}

/// The fully-executed reproduction: a world, the API layer it was served
/// through, and the dataset the crawler extracted.
pub struct MigrationStudy {
    /// Ground truth (used only for reporting world scale, never analysis).
    pub world: Arc<World>,
    /// The crawled, observed dataset every figure is computed from.
    pub dataset: Dataset,
}

impl MigrationStudy {
    /// Generate the world, stand up the APIs, run the crawl.
    pub fn run(config: &WorldConfig) -> Result<MigrationStudy> {
        Self::run_with_obs(config, &Registry::new())
    }

    /// [`MigrationStudy::run`], recording pipeline telemetry — migration
    /// waves, per-endpoint-family API counters, crawl phase spans — into
    /// `obs` along the way.
    pub fn run_with_obs(config: &WorldConfig, obs: &Registry) -> Result<MigrationStudy> {
        let world = Arc::new(World::generate(config)?);
        flock_fedisim::emit_migration_telemetry(&world.accounts, obs);
        Self::run_configured(
            config,
            flock_apis::ApiConfig::default(),
            CrawlerConfig::default(),
            obs,
        )
    }

    /// Fully-configured run: caller controls the API layer (including its
    /// chaos `FaultPlan`) and the crawler (worker count, retry budgets) as
    /// well as the world. Used by the `repro` binary's `--chaos` and
    /// `--workers` flags.
    pub fn run_configured(
        config: &WorldConfig,
        api_config: flock_apis::ApiConfig,
        crawler_config: CrawlerConfig,
        obs: &Registry,
    ) -> Result<MigrationStudy> {
        let world = Arc::new(World::generate(config)?);
        flock_fedisim::emit_migration_telemetry(&world.accounts, obs);
        let api = ApiServer::with_obs(world.clone(), api_config, obs.clone())?;
        let dataset = Crawler::with_registry(&api, crawler_config, obs.clone())?.run()?;
        Ok(MigrationStudy { world, dataset })
    }

    /// Build the run report for this study's crawl. Everything placed in
    /// the report's Data-tier section is a function of (seed, scale,
    /// chaos scenario) only — the chaos plan is re-resolved from the
    /// scenario rather than read off the server, and worker count and
    /// virtual-duration stats are confined to the Sched-tier context.
    pub fn run_report(
        &self,
        obs: &Registry,
        scenario: Option<flock_chaos::Scenario>,
        seed: u64,
        workers: usize,
    ) -> Result<flock_obs::report::RunReport> {
        let (scenario_name, chaos_plan) = match scenario {
            Some(s) => {
                let plan = s.plan(seed).resolve(&self.world.outage_candidates())?;
                (s.to_string(), plan.describe())
            }
            None => ("none".to_string(), String::new()),
        };
        let ds = &self.dataset;
        let facts = vec![
            ("seed".to_string(), seed.to_string()),
            (
                "collected tweets".to_string(),
                ds.collected_tweets.len().to_string(),
            ),
            ("searched users".to_string(), ds.searched_users.to_string()),
            ("matched users".to_string(), ds.matched.len().to_string()),
            (
                "twitter timelines".to_string(),
                ds.twitter_timelines.len().to_string(),
            ),
            (
                "mastodon timelines".to_string(),
                ds.mastodon_timelines.len().to_string(),
            ),
            (
                "followee records".to_string(),
                ds.followees.len().to_string(),
            ),
            (
                "landing instances".to_string(),
                ds.landing_instances().len().to_string(),
            ),
            (
                "weekly-activity instances".to_string(),
                ds.weekly_activity.len().to_string(),
            ),
        ];
        // Coverage gaps: the per-phase summary plus a bounded, determin-
        // istically ordered sample of the individual items.
        const COVERAGE_ITEM_CAP: usize = 20;
        let mut coverage: Vec<String> = ds.coverage.summary().lines().map(str::to_string).collect();
        for it in ds.coverage.skipped.iter().take(COVERAGE_ITEM_CAP) {
            coverage.push(format!("[{}] {} — {}", it.phase, it.item, it.reason));
        }
        let elided = ds.coverage.skipped.len().saturating_sub(COVERAGE_ITEM_CAP);
        if elided > 0 {
            coverage.push(format!("… {elided} more items"));
        }
        let meta = flock_obs::report::ReportMeta {
            title: format!("flock run report — scenario {scenario_name}"),
            scenario: scenario_name,
            chaos_plan,
            facts,
            coverage,
            sched_context: vec![
                ("workers".to_string(), workers.to_string()),
                (
                    "virtual crawl duration (secs)".to_string(),
                    ds.stats.virtual_secs.to_string(),
                ),
            ],
            top_k: 10,
        };
        Ok(flock_obs::report::RunReport::build(obs, &meta))
    }

    /// The headline paper-vs-measured table.
    pub fn headline(&self) -> HeadlineReport {
        HeadlineReport::compute(&self.dataset)
    }

    /// Rendered headline table.
    pub fn headline_report(&self) -> String {
        self.headline().to_table()
    }

    /// Render one artifact.
    pub fn render(&self, id: FigureId) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "=== {} ===", id.caption());
        match id {
            FigureId::Fig1 => self.fig1(&mut out),
            FigureId::Fig2 => self.fig2(&mut out),
            FigureId::Fig3 => self.fig3(&mut out),
            FigureId::Fig4 => self.fig4(&mut out),
            FigureId::Fig5 => self.fig5(&mut out),
            FigureId::Fig6 => self.fig6(&mut out),
            FigureId::Fig7 => self.fig7(&mut out),
            FigureId::Fig8 => self.fig8(&mut out),
            FigureId::Fig9 => self.fig9(&mut out),
            FigureId::Fig10 => self.fig10(&mut out),
            FigureId::Fig11 => self.fig11(&mut out),
            FigureId::Fig12 => self.fig12(&mut out),
            FigureId::Fig13 => self.fig13(&mut out),
            FigureId::Fig14 => self.fig14(&mut out),
            FigureId::Fig15 => self.fig15(&mut out),
            FigureId::Fig16 => self.fig16(&mut out),
            FigureId::Headline => out.push_str(&self.headline_report()),
        }
        out
    }

    /// Render everything.
    pub fn render_all(&self) -> String {
        FigureId::ALL
            .iter()
            .map(|id| self.render(*id))
            .collect::<Vec<_>>()
            .join("\n")
    }

    fn fig1(&self, out: &mut String) {
        let r = &self.world.interest;
        for s in [&r.twitter_alternatives, &r.mastodon, &r.koo, &r.hive] {
            let Some(peak) = s
                .values
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map(|(i, _)| Day(i as i32))
            else {
                continue;
            };
            let _ = writeln!(
                out,
                "{:<22} {}  peak {}",
                s.name,
                sparkline(&s.values),
                peak
            );
        }
        let _ = writeln!(
            out,
            "(paper: spike on 2022-10-28, the day after the takeover)"
        );
    }

    fn fig2(&self, out: &mut String) {
        let f = fig2_collection(&self.dataset);
        let links: Vec<f64> = f.instance_links.iter().map(|v| *v as f64).collect();
        let kw: Vec<f64> = f.keywords_and_hashtags.iter().map(|v| *v as f64).collect();
        let _ = writeln!(out, "instance links        {}", sparkline(&links));
        let _ = writeln!(out, "keywords/hashtags     {}", sparkline(&kw));
        let _ = writeln!(
            out,
            "window {}  collected {} tweets from {} users (paper: 2,090,940 / 1,024,577)",
            day_span(&f.days),
            f.total_tweets,
            f.total_users
        );
    }

    fn fig3(&self, out: &mut String) {
        // Aggregate weekly activity across crawled instances.
        use std::collections::BTreeMap;
        let mut regs: BTreeMap<flock_core::Week, u64> = BTreeMap::new();
        let mut logins: BTreeMap<flock_core::Week, u64> = BTreeMap::new();
        let mut statuses: BTreeMap<flock_core::Week, u64> = BTreeMap::new();
        for rows in self.dataset.weekly_activity.values() {
            for r in rows {
                *regs.entry(r.week).or_default() += r.registrations;
                *logins.entry(r.week).or_default() += r.logins;
                *statuses.entry(r.week).or_default() += r.statuses;
            }
        }
        let series = |m: &BTreeMap<flock_core::Week, u64>| -> Vec<f64> {
            m.values().map(|v| *v as f64).collect()
        };
        let _ = writeln!(out, "registrations  {}", sparkline(&series(&regs)));
        let _ = writeln!(out, "logins         {}", sparkline(&series(&logins)));
        let _ = writeln!(out, "statuses       {}", sparkline(&series(&statuses)));
        if let (Some(first), Some(last)) = (regs.keys().next(), regs.keys().last()) {
            let _ = writeln!(
                out,
                "weeks {first} .. {last} over {} crawled instances (paper: surge after the takeover)",
                self.dataset.weekly_activity.len()
            );
        }
    }

    fn fig4(&self, out: &mut String) {
        let rows = fig4_top_instances(&self.dataset, 30);
        let max = rows
            .iter()
            .map(|r| (r.before + r.after) as f64)
            .fold(0.0, f64::max);
        for r in &rows {
            let _ = writeln!(
                out,
                "{}  (before {} / after {})",
                bar(&r.domain, (r.before + r.after) as f64, max, 40),
                r.before,
                r.after
            );
        }
        let pre = pre_takeover_account_fraction(&self.dataset) * 100.0;
        let _ = writeln!(
            out,
            "accounts created before the takeover: {pre:.2}% (paper: 21%)"
        );
    }

    fn fig5(&self, out: &mut String) {
        let c = fig5_centralization(&self.dataset);
        for pct in [5, 10, 15, 20, 25, 50, 75, 100] {
            let share = flock_analysis::top_fraction_share(
                &instance_sizes(&self.dataset)
                    .values()
                    .copied()
                    .collect::<Vec<_>>(),
                pct as f64 / 100.0,
            );
            let _ = writeln!(
                out,
                "top {pct:>3}% of instances -> {:>6.2}% of users",
                share * 100.0
            );
        }
        out.push_str(&compare(
            "users on top 25% of instances",
            96.0,
            c.top_quartile_share * 100.0,
            "%",
        ));
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "  landing instances: {} (paper: 2,879)   gini: {:.3}",
            c.n_instances, c.gini
        );
    }

    fn fig6(&self, out: &mut String) {
        let f = fig6_size_analysis(&self.dataset);
        let _ = writeln!(
            out,
            "(a) instance-size distribution: {:.2}% single-user (paper: 13.16%)",
            f.single_user_instance_fraction * 100.0
        );
        for b in &f.buckets {
            let _ = writeln!(
                out,
                "  {:<14} {:>5} instances {:>6} users",
                b.label, b.n_instances, b.n_users
            );
        }
        let head: Vec<String> = f
            .size_histogram
            .iter()
            .take(8)
            .map(|(size, n)| format!("{size}u×{n}"))
            .collect();
        let _ = writeln!(out, "  size histogram head: {}", head.join("  "));
        let _ = writeln!(
            out,
            "(b) followers   (c) followees   (d) statuses — per-user CDFs by bucket:"
        );
        for b in &f.buckets {
            let _ = writeln!(out, "  [{}]", b.label);
            let _ = writeln!(out, "    {}", quantiles("followers", &b.followers));
            let _ = writeln!(out, "    {}", quantiles("followees", &b.followees));
            let _ = writeln!(out, "    {}", quantiles("statuses", &b.statuses));
        }
        out.push_str(&compare(
            "single-user follower advantage",
            64.88,
            f.single_vs_rest_followers_pct,
            "%",
        ));
        let _ = writeln!(out);
        out.push_str(&compare(
            "single-user followee advantage",
            99.04,
            f.single_vs_rest_followees_pct,
            "%",
        ));
        let _ = writeln!(out);
        out.push_str(&compare(
            "single-user status advantage",
            121.14,
            f.single_vs_rest_statuses_pct,
            "%",
        ));
        let _ = writeln!(out);
        out.push_str(&compare(
            "users entering the analysis",
            50.59,
            f.analyzed_user_fraction * 100.0,
            "%",
        ));
        let _ = writeln!(out);
    }

    fn fig7(&self, out: &mut String) {
        let f = fig7_social_networks(&self.dataset);
        let _ = writeln!(
            out,
            "{}",
            quantiles("twitter followers", &f.twitter_followers)
        );
        let _ = writeln!(
            out,
            "{}",
            quantiles("twitter followees", &f.twitter_followees)
        );
        let _ = writeln!(
            out,
            "{}",
            quantiles("mastodon followers", &f.mastodon_followers)
        );
        let _ = writeln!(
            out,
            "{}",
            quantiles("mastodon followees", &f.mastodon_followees)
        );
        out.push_str(&compare(
            "median twitter followers",
            744.0,
            f.twitter_follower_median,
            "",
        ));
        let _ = writeln!(out);
        out.push_str(&compare(
            "median twitter followees",
            787.0,
            f.twitter_followee_median,
            "",
        ));
        let _ = writeln!(out);
        out.push_str(&compare(
            "median mastodon followers",
            38.0,
            f.mastodon_follower_median,
            "",
        ));
        let _ = writeln!(out);
        out.push_str(&compare(
            "median mastodon followees",
            48.0,
            f.mastodon_followee_median,
            "",
        ));
        let _ = writeln!(out);
        out.push_str(&compare(
            "no mastodon followers",
            6.01,
            f.mastodon_no_followers_pct,
            "%",
        ));
        let _ = writeln!(out);
        out.push_str(&compare(
            "median twitter age (years)",
            11.5,
            f.twitter_median_age_years,
            "",
        ));
        let _ = writeln!(out);
        out.push_str(&compare(
            "median mastodon age (days)",
            35.0,
            f.mastodon_median_age_days,
            "",
        ));
        let _ = writeln!(out);
    }

    fn fig8(&self, out: &mut String) {
        let f = fig8_influence(&self.dataset);
        let _ = writeln!(out, "{}", quantiles("frac migrated", &f.frac_migrated));
        let _ = writeln!(
            out,
            "{}",
            quantiles("frac migrated before", &f.frac_migrated_before)
        );
        let _ = writeln!(
            out,
            "{}",
            quantiles("frac same instance", &f.frac_same_instance)
        );
        out.push_str(&compare(
            "mean followees migrated",
            5.99,
            f.mean_migrated_pct,
            "%",
        ));
        let _ = writeln!(out);
        out.push_str(&compare(
            "no followee migrated",
            3.94,
            f.none_migrated_pct,
            "%",
        ));
        let _ = writeln!(out);
        out.push_str(&compare("first movers", 4.98, f.first_mover_pct, "%"));
        let _ = writeln!(out);
        out.push_str(&compare("last movers", 4.58, f.last_mover_pct, "%"));
        let _ = writeln!(out);
        out.push_str(&compare(
            "migrated followees earlier",
            45.76,
            f.mean_migrated_before_pct,
            "%",
        ));
        let _ = writeln!(out);
        out.push_str(&compare(
            "migrated followees same instance",
            14.72,
            f.mean_same_instance_pct,
            "%",
        ));
        let _ = writeln!(out);
        out.push_str(&compare(
            "co-location on mastodon.social",
            30.68,
            f.same_instance_on_flagship_pct,
            "%",
        ));
        let _ = writeln!(out);
        let _ = writeln!(out, "  sampled users with followee data: {}", f.n_sampled);
    }

    fn fig9(&self, out: &mut String) {
        let f = fig9_switching(&self.dataset);
        let max = f.flows.first().map(|x| x.count as f64).unwrap_or(0.0);
        for flow in f.flows.iter().take(20) {
            let _ = writeln!(
                out,
                "{}",
                bar(
                    &format!("{} -> {}", flow.from, flow.to),
                    flow.count as f64,
                    max,
                    30
                )
            );
        }
        out.push_str(&compare("users who switched", 4.09, f.switcher_pct, "%"));
        let _ = writeln!(out);
        out.push_str(&compare(
            "switches post-takeover",
            97.22,
            f.post_takeover_pct,
            "%",
        ));
        let _ = writeln!(out);
        let _ = writeln!(out, "  switchers observed: {}", f.n_switchers);
    }

    fn fig10(&self, out: &mut String) {
        let f = fig10_switcher_influence(&self.dataset);
        let _ = writeln!(
            out,
            "{}",
            quantiles("frac at first instance", &f.frac_at_first)
        );
        let _ = writeln!(
            out,
            "{}",
            quantiles("frac at second instance", &f.frac_at_second)
        );
        let _ = writeln!(
            out,
            "{}",
            quantiles("frac at second (before)", &f.frac_at_second_before)
        );
        out.push_str(&compare(
            "followees at first instance",
            11.4,
            f.mean_at_first_pct,
            "%",
        ));
        let _ = writeln!(out);
        out.push_str(&compare(
            "followees at second instance",
            46.98,
            f.mean_at_second_pct,
            "%",
        ));
        let _ = writeln!(out);
        out.push_str(&compare(
            "at second before switcher",
            77.42,
            f.mean_second_before_pct,
            "%",
        ));
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "  switchers with followee data: {}",
            f.n_switchers_with_followees
        );
    }

    fn fig11(&self, out: &mut String) {
        let f = fig11_activity(&self.dataset);
        let tweets: Vec<f64> = f.tweets.iter().map(|v| *v as f64).collect();
        let statuses: Vec<f64> = f.statuses.iter().map(|v| *v as f64).collect();
        let _ = writeln!(out, "tweets    {}", sparkline(&tweets));
        let _ = writeln!(out, "statuses  {}", sparkline(&statuses));
        let _ = writeln!(
            out,
            "days {}; total tweets {} statuses {}; twitter last/first week ratio {:.2} (paper: no decline)",
            day_span(&f.days),
            f.tweets.iter().sum::<u64>(),
            f.statuses.iter().sum::<u64>(),
            f.twitter_last_over_first_week,
        );
    }

    fn fig12(&self, out: &mut String) {
        let rows = fig12_sources(&self.dataset, 30);
        let _ = writeln!(
            out,
            "{:<32} {:>10} {:>10} {:>10}",
            "source", "before", "after", "growth%"
        );
        for r in &rows {
            let growth = r.growth_pct();
            let _ = writeln!(
                out,
                "{:<32} {:>10} {:>10} {:>10}",
                r.source,
                r.before,
                r.after,
                if growth.is_finite() {
                    format!("{growth:+.0}%")
                } else {
                    "new".to_string()
                }
            );
        }
        for (tool, paper) in [
            ("Mastodon-Twitter Crossposter", 1128.95),
            ("Moa Bridge", 1732.26),
        ] {
            if let Some(r) = rows.iter().find(|r| r.source == tool) {
                out.push_str(&compare(
                    &format!("{tool} growth"),
                    paper,
                    r.growth_pct(),
                    "%",
                ));
                let _ = writeln!(out);
            }
        }
    }

    fn fig13(&self, out: &mut String) {
        let f = fig13_crossposters(&self.dataset);
        let series: Vec<f64> = f.users_per_day.iter().map(|v| *v as f64).collect();
        let _ = writeln!(out, "daily cross-poster users  {}", sparkline(&series));
        out.push_str(&compare(
            "users ever using a cross-poster",
            5.73,
            f.ever_used_pct,
            "%",
        ));
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "(paper: rapid growth after the takeover, decline in late November)"
        );
    }

    fn fig14(&self, out: &mut String) {
        let f = fig14_similarity(&self.dataset);
        let _ = writeln!(out, "{}", quantiles("identical fraction", &f.identical));
        let _ = writeln!(out, "{}", quantiles("similar fraction", &f.similar));
        out.push_str(&compare(
            "mean identical statuses",
            1.53,
            f.mean_identical_pct,
            "%",
        ));
        let _ = writeln!(out);
        out.push_str(&compare(
            "mean similar statuses",
            16.57,
            f.mean_similar_pct,
            "%",
        ));
        let _ = writeln!(out);
        out.push_str(&compare(
            "fully different users",
            84.45,
            f.fully_different_pct,
            "%",
        ));
        let _ = writeln!(out);
        let _ = writeln!(out, "  users with both timelines: {}", f.n_users);
    }

    fn fig15(&self, out: &mut String) {
        let f = fig15_hashtags(&self.dataset, 30);
        let _ = writeln!(out, "{:<36} | mastodon", "twitter");
        for i in 0..30 {
            let left = f
                .twitter
                .get(i)
                .map(|r| format!("{:<28} {:>6}", r.tag, r.count))
                .unwrap_or_default();
            let right = f
                .mastodon
                .get(i)
                .map(|r| format!("{:<28} {:>6}", r.tag, r.count))
                .unwrap_or_default();
            if left.is_empty() && right.is_empty() {
                break;
            }
            let _ = writeln!(out, "{left:<36} | {right}");
        }
        let _ = writeln!(
            out,
            "(paper: diverse topics on Twitter; #fediverse/#TwitterMigration dominate Mastodon)"
        );
    }

    fn fig16(&self, out: &mut String) {
        let f = fig16_toxicity(&self.dataset);
        let _ = writeln!(out, "{}", quantiles("toxic frac (twitter)", &f.twitter));
        let _ = writeln!(out, "{}", quantiles("toxic frac (mastodon)", &f.mastodon));
        out.push_str(&compare(
            "toxic tweets (corpus)",
            5.49,
            f.twitter_corpus_pct,
            "%",
        ));
        let _ = writeln!(out);
        out.push_str(&compare(
            "toxic statuses (corpus)",
            2.80,
            f.mastodon_corpus_pct,
            "%",
        ));
        let _ = writeln!(out);
        out.push_str(&compare(
            "mean toxic tweets per user",
            4.02,
            f.twitter_user_mean_pct,
            "%",
        ));
        let _ = writeln!(out);
        out.push_str(&compare(
            "mean toxic statuses per user",
            2.07,
            f.mastodon_user_mean_pct,
            "%",
        ));
        let _ = writeln!(out);
        out.push_str(&compare(
            "toxic on both platforms",
            14.26,
            f.toxic_on_both_pct,
            "%",
        ));
        let _ = writeln!(out);
    }

    /// Render the §8 future-work retention extension.
    pub fn render_retention(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "=== Extension: retention (the paper's §8 future-work question) ==="
        );
        let r = flock_analysis::retention(&self.dataset);
        let share = |c: RetentionClass| {
            *r.counts.get(&c).unwrap_or(&0) as f64 / r.n_users.max(1) as f64 * 100.0
        };
        let _ = writeln!(
            out,
            "last-week behaviour of {} crawlable migrants:",
            r.n_users
        );
        let _ = writeln!(
            out,
            "  dual citizens (both platforms)   {:>6.2}%",
            share(RetentionClass::DualCitizen)
        );
        let _ = writeln!(
            out,
            "  fully migrated (Mastodon only)   {:>6.2}%",
            share(RetentionClass::FullyMigrated)
        );
        let _ = writeln!(
            out,
            "  returned to Twitter              {:>6.2}%",
            share(RetentionClass::Returned)
        );
        let _ = writeln!(
            out,
            "  dormant everywhere               {:>6.2}%",
            share(RetentionClass::Dormant)
        );
        let _ = writeln!(
            out,
            "mastodon retention {:.2}%   returned {:.2}%   late joiners (post-resignations accounts) {:.2}%",
            r.mastodon_retention_pct, r.returned_pct, r.late_joiner_pct
        );
        let curve: Vec<f64> = r.weekly_active_users.iter().map(|v| *v as f64).collect();
        let _ = writeln!(
            out,
            "weekly active status posters     {}",
            sparkline(&curve)
        );
        out
    }

    /// Render the topical-alignment extension (§5.2/§5.3's qualitative
    /// claims, quantified from observed hashtags).
    pub fn render_topics(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "=== Extension: topical alignment (quantifying §5.2/§5.3) ==="
        );
        let r = topic_report(&self.dataset, 5);
        let _ = writeln!(
            out,
            "most topically coherent instances (≥5 interest-typed users):"
        );
        for p in r.profiles.iter().take(10) {
            let _ = writeln!(
                out,
                "  {:<28} {:>4} users  modal topic {:<14} coherence {:>5.1}%",
                p.domain,
                p.n_users,
                p.modal_topic.as_deref().unwrap_or("-"),
                p.coherence * 100.0
            );
        }
        let _ = writeln!(
            out,
            "flagship (mastodon.social) coherence: {:.1}% — topical servers should sit far above it",
            r.flagship_coherence * 100.0
        );
        let _ = writeln!(
            out,
            "switchers aligned with destination's modal topic: {:.1}% (vs {:.1}% at their first instance)",
            r.switcher_alignment_pct, r.pre_switch_alignment_pct
        );
        let _ = writeln!(
            out,
            "(paper: switches flow from general-purpose to topic-specific instances)"
        );
        out
    }

    /// Generate EXPERIMENTS.md: the per-figure paper-vs-measured record.
    pub fn experiments_markdown(&self, config: &WorldConfig) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# EXPERIMENTS — paper vs measured\n");
        let _ = writeln!(
            out,
            "World: seed {}, {} searchable users, {} instances; identified {} migrants \
             on {} instances; crawl used {} API requests ({} rate-limit waits, {} virtual seconds).\n",
            config.seed,
            config.n_searchable_users,
            config.n_instances,
            self.dataset.matched.len(),
            self.dataset.landing_instances().len(),
            self.dataset.stats.requests,
            self.dataset.stats.rate_limited,
            self.dataset.stats.virtual_secs,
        );
        let _ = writeln!(
            out,
            "Absolute counts are scaled (the world is a simulator); the reproduction \
             target is each figure's *shape* and every reported proportion. `repro <figN>` \
             regenerates any figure below.\n"
        );
        for id in FigureId::ALL {
            let _ = writeln!(out, "## {}\n", id.caption());
            let _ = writeln!(out, "```text");
            let rendered = self.render(id);
            // Drop the duplicate banner line.
            let body: String = rendered.lines().skip(1).collect::<Vec<_>>().join("\n");
            out.push_str(&body);
            let _ = writeln!(out, "\n```\n");
        }
        let _ = writeln!(out, "## Reproduction verdicts\n");
        let _ = writeln!(
            out,
            "Bands: PASS < 33% relative error (or < 3 points absolute); \
             WARN < 75% (or < 8 points); FAIL otherwise.\n"
        );
        let _ = writeln!(out, "```text");
        out.push_str(&self.headline().to_verify_table());
        let _ = writeln!(out, "```\n");
        for (title, body) in [
            ("retention (§8 future work)", self.render_retention()),
            (
                "topical alignment (§5.2/§5.3 quantified)",
                self.render_topics(),
            ),
        ] {
            let _ = writeln!(out, "## Extension: {title}\n");
            let _ = writeln!(out, "```text");
            let body: String = body.lines().skip(1).collect::<Vec<_>>().join("\n");
            out.push_str(&body);
            let _ = writeln!(out, "\n```\n");
        }
        out
    }
}

/// `"first .. last"` of a day series, or `"-"` when the series is empty.
fn day_span(days: &[Day]) -> String {
    match (days.first(), days.last()) {
        (Some(a), Some(b)) => format!("{a} .. {b}"),
        _ => "-".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    fn study() -> &'static MigrationStudy {
        static CELL: OnceLock<MigrationStudy> = OnceLock::new();
        CELL.get_or_init(|| {
            MigrationStudy::run(&WorldConfig::small().with_seed(404)).expect("study")
        })
    }

    #[test]
    fn figure_ids_parse_round_trip() {
        for id in FigureId::ALL {
            if id == FigureId::Headline {
                assert_eq!("headline".parse::<FigureId>().unwrap(), id);
            } else {
                let s = format!("{id:?}").to_lowercase();
                assert_eq!(s.parse::<FigureId>().unwrap(), id);
            }
        }
        assert!("fig99".parse::<FigureId>().is_err());
    }

    #[test]
    fn every_figure_renders_nonempty() {
        let s = study();
        for id in FigureId::ALL {
            let text = s.render(id);
            assert!(text.lines().count() >= 2, "{id:?} rendered empty:\n{text}");
            assert!(text.contains("==="), "{id:?} missing banner");
        }
    }

    #[test]
    fn render_all_contains_all_banners() {
        let text = study().render_all();
        for id in FigureId::ALL {
            assert!(text.contains(id.caption()), "missing {id:?}");
        }
    }

    #[test]
    fn headline_report_lists_metrics() {
        let r = study().headline();
        assert!(r.n_matched > 50);
        assert!(r.metrics.len() > 30);
    }

    #[test]
    fn experiments_markdown_structure() {
        let config = WorldConfig::small().with_seed(404);
        let md = study().experiments_markdown(&config);
        assert!(md.starts_with("# EXPERIMENTS"));
        // One block per figure + the verdicts table + two extensions.
        assert_eq!(md.matches("```text").count(), FigureId::ALL.len() + 3);
        assert!(md.contains("Fig 5"));
        assert!(md.contains("paper"));
    }
}

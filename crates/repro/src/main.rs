//! `repro` — regenerate any figure of the paper from a fresh simulation.
//!
//! ```text
//! repro [--scale small|medium|paper|paper_scale] [--seed N] [--metrics PATH]
//!       [--report PATH] [--chaos SCENARIO] [--workers N] [--tasks N]
//!       <artifact>...
//!
//! artifacts: fig1 .. fig16, headline, all, experiments-md, retention,
//!            dump-dataset[=path] (anonymized JSON release, §3.4), verify,
//!            csv[=dir] (per-figure CSV export), stamp[=path]
//!            (determinism stamp: data-tier metrics snapshot + the
//!            stats-zeroed dataset — byte-identical for a given seed,
//!            scale and chaos scenario at any worker count)
//!
//! --metrics PATH writes the pipeline's telemetry (counters, histograms,
//! phase spans) after the crawl; the format follows the extension: JSON
//! for `.json`, Prometheus text exposition for `.prom`, the plain text
//! format otherwise.
//!
//! --report PATH writes the deterministic run report (phase timeline,
//! wait attribution, chaos impact, coverage gaps, slowest request
//! chains) as text to PATH plus an HTML twin next to it. The report's
//! Data-tier section is byte-identical across worker counts.
//!
//! --chaos SCENARIO crawls through a canned deterministic fault plan
//! seeded from the world seed: calm, rate-limit-storm, instance-massacre,
//! or flaky-federation.
//!
//! --workers N sets the OS threads of the parallel crawl phases; --tasks N
//! additionally runs those phases on the discrete-event scheduler with N
//! logical concurrent connections multiplexed over the worker threads.
//! Zero is rejected for both (typed config error), and the dataset — and
//! therefore every figure and the stamp — is byte-identical with or
//! without the scheduler.
//! ```

use flock_chaos::Scenario;
use flock_crawler::CrawlerConfig;
use flock_fedisim::WorldConfig;
use flock_obs::Registry;
use flock_repro::{FigureId, MigrationStudy};
use std::process::ExitCode;

fn usage() -> &'static str {
    "usage: repro [--scale small|medium|paper|paper_scale] [--seed N] [--metrics PATH] [--report PATH] \
     [--chaos calm|rate-limit-storm|instance-massacre|flaky-federation] [--workers N] [--tasks N] \
     <fig1..fig16|headline|all|experiments-md|stamp[=path]>..."
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut config = WorldConfig::medium();
    let mut artifacts: Vec<String> = Vec::new();
    let mut metrics_path: Option<String> = None;
    let mut report_path: Option<String> = None;
    let mut chaos: Option<Scenario> = None;
    let mut crawler_config = CrawlerConfig::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--chaos" => {
                i += 1;
                let Some(v) = args.get(i) else {
                    eprintln!("--chaos needs a scenario; {}", usage());
                    return ExitCode::FAILURE;
                };
                chaos = match v.parse::<Scenario>() {
                    Ok(s) => Some(s),
                    Err(e) => {
                        eprintln!("{e}; {}", usage());
                        return ExitCode::FAILURE;
                    }
                };
            }
            "--workers" => {
                i += 1;
                let Some(v) = args.get(i).and_then(|v| v.parse::<usize>().ok()) else {
                    eprintln!("--workers needs an integer; {}", usage());
                    return ExitCode::FAILURE;
                };
                crawler_config.workers = v;
            }
            "--tasks" => {
                i += 1;
                let Some(v) = args.get(i).and_then(|v| v.parse::<usize>().ok()) else {
                    eprintln!("--tasks needs an integer; {}", usage());
                    return ExitCode::FAILURE;
                };
                crawler_config.tasks = Some(v);
            }
            "--scale" => {
                i += 1;
                let Some(v) = args.get(i) else {
                    eprintln!("{}", usage());
                    return ExitCode::FAILURE;
                };
                config = match v.as_str() {
                    "small" => WorldConfig::small(),
                    "medium" => WorldConfig::medium(),
                    "paper" => WorldConfig::paper(),
                    "paper_scale" | "paper-scale" => WorldConfig::paper_scale(),
                    other => {
                        eprintln!("unknown scale {other:?}; {}", usage());
                        return ExitCode::FAILURE;
                    }
                };
            }
            "--seed" => {
                i += 1;
                let Some(v) = args.get(i).and_then(|v| v.parse::<u64>().ok()) else {
                    eprintln!("--seed needs an integer; {}", usage());
                    return ExitCode::FAILURE;
                };
                config.seed = v;
            }
            "--metrics" => {
                i += 1;
                let Some(v) = args.get(i) else {
                    eprintln!("--metrics needs a path; {}", usage());
                    return ExitCode::FAILURE;
                };
                metrics_path = Some(v.clone());
            }
            "--report" => {
                i += 1;
                let Some(v) = args.get(i) else {
                    eprintln!("--report needs a path; {}", usage());
                    return ExitCode::FAILURE;
                };
                report_path = Some(v.clone());
            }
            "--help" | "-h" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other => artifacts.push(other.to_string()),
        }
        i += 1;
    }
    if artifacts.is_empty() {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    }

    eprintln!(
        "[repro] generating world (seed {}, {} users, {} instances) and crawling…",
        config.seed, config.n_searchable_users, config.n_instances
    );
    let mut api_config = flock_apis::ApiConfig::default();
    if let Some(scenario) = chaos {
        // Seed the fault plan from the world seed: one seed fixes the
        // world AND the chaos, so reruns are byte-identical.
        api_config.chaos = scenario.plan(config.seed);
        eprintln!("[repro] chaos scenario: {scenario}");
    }
    let obs = Registry::new();
    let workers = crawler_config.workers;
    let study = match MigrationStudy::run_configured(&config, api_config, crawler_config, &obs) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("[repro] pipeline failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "[repro] identified {} migrants on {} instances ({} API requests)",
        study.dataset.matched.len(),
        study.dataset.landing_instances().len(),
        study.dataset.stats.requests
    );
    eprintln!(
        "[repro] coverage: {} items skipped",
        study.dataset.coverage.len()
    );
    if !study.dataset.coverage.is_empty() {
        for line in study.dataset.coverage.summary().lines() {
            eprintln!("[repro]   {line}");
        }
    }
    if let Some(path) = &metrics_path {
        let body = if path.ends_with(".json") {
            obs.export_json()
        } else if path.ends_with(".prom") {
            obs.export_prometheus()
        } else {
            obs.export_text()
        };
        if let Err(e) = std::fs::write(path, body) {
            eprintln!("[repro] metrics write failed ({path}): {e}");
            return ExitCode::FAILURE;
        }
        eprintln!(
            "[repro] wrote {} metrics and {} events to {path}",
            obs.metric_count(),
            obs.event_count()
        );
    }
    if let Some(path) = &report_path {
        let report = match study.run_report(&obs, chaos, config.seed, workers) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("[repro] report build failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        let html_path = match path.strip_suffix(".txt") {
            Some(stem) => format!("{stem}.html"),
            None => format!("{path}.html"),
        };
        if let Err(e) = std::fs::write(path, report.to_text()) {
            eprintln!("[repro] report write failed ({path}): {e}");
            return ExitCode::FAILURE;
        }
        if let Err(e) = std::fs::write(&html_path, report.to_html()) {
            eprintln!("[repro] report write failed ({html_path}): {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("[repro] wrote run report to {path} (+ {html_path})");
    }

    for a in &artifacts {
        match a.as_str() {
            "all" => {
                println!("{}", study.render_all());
                println!("{}", study.render_retention());
                println!("{}", study.render_topics());
            }
            "retention" => println!("{}", study.render_retention()),
            "topics" => println!("{}", study.render_topics()),
            "verify" => {
                let r = study.headline();
                println!("{}", r.to_verify_table());
                let (_, _, fails) = r.verdict_counts();
                if fails > 0 {
                    eprintln!("[repro] {fails} metrics FAILED reproduction bands");
                }
            }
            "experiments-md" => println!("{}", study.experiments_markdown(&config)),
            other if other.starts_with("csv") => {
                let dir = other
                    .split_once('=')
                    .map(|(_, p)| p.to_string())
                    .unwrap_or_else(|| "figures-csv".to_string());
                match study.export_csv(std::path::Path::new(&dir)) {
                    Ok(n) => eprintln!("[repro] wrote {n} CSV files to {dir}/"),
                    Err(e) => {
                        eprintln!("[repro] csv export failed: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            other if other.starts_with("stamp") => {
                let path = other
                    .split_once('=')
                    .map(|(_, p)| p.to_string())
                    .unwrap_or_else(|| "repro.stamp".to_string());
                // Data-tier snapshot + stats-zeroed dataset: everything in
                // the stamp is a function of (seed, scale, chaos plan), so
                // two runs differing only in worker count must produce
                // byte-identical stamp files.
                let mut ds = study.dataset.clone();
                ds.stats = Default::default();
                let dataset_json = match serde_json::to_string(&ds) {
                    Ok(j) => j,
                    Err(e) => {
                        eprintln!("[repro] stamp serialization failed: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                let body = format!("{}\n{}\n", obs.snapshot(), dataset_json);
                if let Err(e) = std::fs::write(&path, body) {
                    eprintln!("[repro] stamp write failed ({path}): {e}");
                    return ExitCode::FAILURE;
                }
                eprintln!("[repro] wrote determinism stamp to {path}");
            }
            other if other.starts_with("dump-dataset") => {
                let path = other
                    .split_once('=')
                    .map(|(_, p)| p.to_string())
                    .unwrap_or_else(|| "dataset.anon.json".to_string());
                let anon = match study.dataset.anonymized(config.seed) {
                    Ok(anon) => anon,
                    Err(e) => {
                        eprintln!("[repro] anonymization failed: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                if let Err(e) = anon.save(std::path::Path::new(&path)) {
                    eprintln!("[repro] dump failed: {e}");
                    return ExitCode::FAILURE;
                }
                eprintln!("[repro] wrote anonymized dataset to {path}");
            }
            other => match other.parse::<FigureId>() {
                Ok(id) => println!("{}", study.render(id)),
                Err(e) => {
                    eprintln!("{e}; {}", usage());
                    return ExitCode::FAILURE;
                }
            },
        }
    }
    ExitCode::SUCCESS
}

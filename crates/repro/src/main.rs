//! `repro` — regenerate any figure of the paper from a fresh simulation.
//!
//! ```text
//! repro [--scale small|medium|paper|paper_scale] [--seed N] [--metrics PATH]
//!       [--report PATH] [--chaos SCENARIO] [--workers N] [--tasks N]
//!       <artifact>...
//!
//! artifacts: fig1 .. fig16, headline, all, experiments-md, retention,
//!            dump-dataset[=path] (anonymized JSON release, §3.4), verify,
//!            csv[=dir] (per-figure CSV export), stamp[=path]
//!            (determinism stamp: data-tier metrics snapshot + the
//!            stats-zeroed dataset — byte-identical for a given seed,
//!            scale and chaos scenario at any worker count)
//!
//! --metrics PATH writes the pipeline's telemetry (counters, histograms,
//! phase spans) after the crawl; the format follows the extension: JSON
//! for `.json`, Prometheus text exposition for `.prom`, the plain text
//! format otherwise.
//!
//! --report PATH writes the deterministic run report (phase timeline,
//! wait attribution, chaos impact, coverage gaps, slowest request
//! chains); the format follows the extension — `.html` renders the
//! standalone HTML page, anything else the text format. The report's
//! Data-tier section is byte-identical across worker counts.
//!
//! --dashboard PATH renders the run dashboard: one self-contained HTML
//! file (inline SVG, no external resources) with trend charts over the
//! bench history (`--history PATH`, default BENCH_history.jsonl), the
//! phase-timeline Gantt, per-worker utilization heatmap, wait
//! attribution bars, the run report, and — with `--diff OTHER_REPORT` —
//! a side-by-side Data-tier diff against another run's report file.
//! The dashboard's Data-tier fence is byte-identical across worker
//! counts and task widths.
//!
//! --chaos SCENARIO crawls through a canned deterministic fault plan
//! seeded from the world seed: calm, rate-limit-storm, instance-massacre,
//! or flaky-federation.
//!
//! --workers N sets the OS threads of the parallel crawl phases; --tasks N
//! additionally runs those phases on the discrete-event scheduler with N
//! logical concurrent connections multiplexed over the worker threads.
//! Zero is rejected for both (typed config error), and the dataset — and
//! therefore every figure and the stamp — is byte-identical with or
//! without the scheduler.
//!
//! --monitor runs the continuous-monitoring workload instead of the crawl
//! pipeline: an orchestrator plus per-instance checker tasks on the
//! virtual clock, bootstrapped from the flagship instances and expanding
//! via peers-list discovery over `--sim-days` of simulated uptime
//! (`--workers` = executor threads, `--tasks` = admission window).
//! `--nodes PATH` writes the deterministic nodes-list artifact
//! (byte-identical across thread counts and admission windows),
//! `--checkpoint PATH` enables periodic checkpoint/resume, and `--test`
//! prints throughput + peak-RSS lines for the bench trend gate.
//! ```

use flock_chaos::Scenario;
use flock_crawler::CrawlerConfig;
use flock_fedisim::{World, WorldConfig};
use flock_monitor::MonitorConfig;
use flock_obs::Registry;
use flock_repro::{FigureId, MigrationStudy};
use std::process::ExitCode;
use std::sync::Arc;

fn usage() -> &'static str {
    "usage: repro [--scale small|medium|paper|paper_scale] [--seed N] [--metrics PATH] \
     [--report PATH (.html => HTML, else text)] \
     [--dashboard PATH [--diff OTHER_REPORT] [--history PATH]] \
     [--chaos calm|rate-limit-storm|instance-massacre|flaky-federation|rolling-outages] [--workers N] [--tasks N] \
     [--monitor [--sim-days N] [--nodes PATH] [--checkpoint PATH] [--test]] \
     <fig1..fig16|headline|all|experiments-md|stamp[=path]>..."
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut config = WorldConfig::medium();
    let mut artifacts: Vec<String> = Vec::new();
    let mut metrics_path: Option<String> = None;
    let mut report_path: Option<String> = None;
    let mut dashboard_path: Option<String> = None;
    let mut diff_path: Option<String> = None;
    let mut history_path = "BENCH_history.jsonl".to_string();
    let mut chaos: Option<Scenario> = None;
    let mut crawler_config = CrawlerConfig::default();
    let mut monitor = false;
    let mut sim_days: u64 = 30;
    let mut nodes_path: Option<String> = None;
    let mut checkpoint_path: Option<String> = None;
    let mut test_lines = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--monitor" => monitor = true,
            "--test" => test_lines = true,
            "--sim-days" => {
                i += 1;
                let Some(v) = args.get(i).and_then(|v| v.parse::<u64>().ok()) else {
                    eprintln!("--sim-days needs an integer; {}", usage());
                    return ExitCode::FAILURE;
                };
                sim_days = v;
            }
            "--nodes" => {
                i += 1;
                let Some(v) = args.get(i) else {
                    eprintln!("--nodes needs a path; {}", usage());
                    return ExitCode::FAILURE;
                };
                nodes_path = Some(v.clone());
            }
            "--checkpoint" => {
                i += 1;
                let Some(v) = args.get(i) else {
                    eprintln!("--checkpoint needs a path; {}", usage());
                    return ExitCode::FAILURE;
                };
                checkpoint_path = Some(v.clone());
            }
            "--chaos" => {
                i += 1;
                let Some(v) = args.get(i) else {
                    eprintln!("--chaos needs a scenario; {}", usage());
                    return ExitCode::FAILURE;
                };
                chaos = match v.parse::<Scenario>() {
                    Ok(s) => Some(s),
                    Err(e) => {
                        eprintln!("{e}; {}", usage());
                        return ExitCode::FAILURE;
                    }
                };
            }
            "--workers" => {
                i += 1;
                let Some(v) = args.get(i).and_then(|v| v.parse::<usize>().ok()) else {
                    eprintln!("--workers needs an integer; {}", usage());
                    return ExitCode::FAILURE;
                };
                crawler_config.workers = v;
            }
            "--tasks" => {
                i += 1;
                let Some(v) = args.get(i).and_then(|v| v.parse::<usize>().ok()) else {
                    eprintln!("--tasks needs an integer; {}", usage());
                    return ExitCode::FAILURE;
                };
                crawler_config.tasks = Some(v);
            }
            "--scale" => {
                i += 1;
                let Some(v) = args.get(i) else {
                    eprintln!("{}", usage());
                    return ExitCode::FAILURE;
                };
                config = match v.as_str() {
                    "small" => WorldConfig::small(),
                    "medium" => WorldConfig::medium(),
                    "paper" => WorldConfig::paper(),
                    "paper_scale" | "paper-scale" => WorldConfig::paper_scale(),
                    other => {
                        eprintln!("unknown scale {other:?}; {}", usage());
                        return ExitCode::FAILURE;
                    }
                };
            }
            "--seed" => {
                i += 1;
                let Some(v) = args.get(i).and_then(|v| v.parse::<u64>().ok()) else {
                    eprintln!("--seed needs an integer; {}", usage());
                    return ExitCode::FAILURE;
                };
                config.seed = v;
            }
            "--metrics" => {
                i += 1;
                let Some(v) = args.get(i) else {
                    eprintln!("--metrics needs a path; {}", usage());
                    return ExitCode::FAILURE;
                };
                metrics_path = Some(v.clone());
            }
            "--report" => {
                i += 1;
                let Some(v) = args.get(i) else {
                    eprintln!("--report needs a path; {}", usage());
                    return ExitCode::FAILURE;
                };
                report_path = Some(v.clone());
            }
            "--dashboard" => {
                i += 1;
                let Some(v) = args.get(i) else {
                    eprintln!("--dashboard needs a path; {}", usage());
                    return ExitCode::FAILURE;
                };
                dashboard_path = Some(v.clone());
            }
            "--diff" => {
                i += 1;
                let Some(v) = args.get(i) else {
                    eprintln!("--diff needs another run's report path; {}", usage());
                    return ExitCode::FAILURE;
                };
                diff_path = Some(v.clone());
            }
            "--history" => {
                i += 1;
                let Some(v) = args.get(i) else {
                    eprintln!("--history needs a path; {}", usage());
                    return ExitCode::FAILURE;
                };
                history_path = v.clone();
            }
            "--help" | "-h" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other => artifacts.push(other.to_string()),
        }
        i += 1;
    }
    if diff_path.is_some() && dashboard_path.is_none() {
        eprintln!("--diff only applies with --dashboard; {}", usage());
        return ExitCode::FAILURE;
    }
    let dashboard = dashboard_path.map(|path| DashboardCli {
        path,
        diff_path,
        history_path,
    });
    if monitor {
        if !artifacts.is_empty() {
            eprintln!("--monitor takes no figure artifacts; {}", usage());
            return ExitCode::FAILURE;
        }
        let mcli = MonitorCli {
            sim_days,
            nodes_path,
            checkpoint_path,
            test_lines,
            threads: crawler_config.workers,
            tasks: crawler_config.tasks.unwrap_or(64),
        };
        return run_monitor(
            &config,
            chaos,
            &mcli,
            metrics_path.as_deref(),
            report_path.as_deref(),
            dashboard.as_ref(),
        );
    }
    if artifacts.is_empty() {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    }

    eprintln!(
        "[repro] generating world (seed {}, {} users, {} instances) and crawling…",
        config.seed, config.n_searchable_users, config.n_instances
    );
    let mut api_config = flock_apis::ApiConfig::default();
    if let Some(scenario) = chaos {
        // Seed the fault plan from the world seed: one seed fixes the
        // world AND the chaos, so reruns are byte-identical.
        api_config.chaos = scenario.plan(config.seed);
        eprintln!("[repro] chaos scenario: {scenario}");
    }
    let obs = Registry::new();
    let workers = crawler_config.workers;
    let study = match MigrationStudy::run_configured(&config, api_config, crawler_config, &obs) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("[repro] pipeline failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "[repro] identified {} migrants on {} instances ({} API requests)",
        study.dataset.matched.len(),
        study.dataset.landing_instances().len(),
        study.dataset.stats.requests
    );
    eprintln!(
        "[repro] coverage: {} items skipped",
        study.dataset.coverage.len()
    );
    if !study.dataset.coverage.is_empty() {
        for line in study.dataset.coverage.summary().lines() {
            eprintln!("[repro]   {line}");
        }
    }
    if let Some(path) = &metrics_path {
        let body = if path.ends_with(".json") {
            obs.export_json()
        } else if path.ends_with(".prom") {
            obs.export_prometheus()
        } else {
            obs.export_text()
        };
        if let Err(e) = std::fs::write(path, body) {
            eprintln!("[repro] metrics write failed ({path}): {e}");
            return ExitCode::FAILURE;
        }
        eprintln!(
            "[repro] wrote {} metrics and {} events to {path}",
            obs.metric_count(),
            obs.event_count()
        );
    }
    if report_path.is_some() || dashboard.is_some() {
        let report = match study.run_report(&obs, chaos, config.seed, workers) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("[repro] report build failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Some(path) = &report_path {
            if let Err(e) = write_report(path, &report) {
                eprintln!("[repro] {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("[repro] wrote run report to {path}");
        }
        if let Some(dash) = &dashboard {
            // Worker counts and task widths stay out of the title: it
            // renders inside the dashboard's Data-tier fence.
            let title = format!(
                "flock run dashboard — crawl · seed {} · scenario {}",
                config.seed,
                scenario_label(chaos)
            );
            if let Err(e) = write_dashboard(dash, title, &obs, &report) {
                eprintln!("[repro] {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("[repro] wrote run dashboard to {}", dash.path);
        }
    }

    for a in &artifacts {
        match a.as_str() {
            "all" => {
                println!("{}", study.render_all());
                println!("{}", study.render_retention());
                println!("{}", study.render_topics());
            }
            "retention" => println!("{}", study.render_retention()),
            "topics" => println!("{}", study.render_topics()),
            "verify" => {
                let r = study.headline();
                println!("{}", r.to_verify_table());
                let (_, _, fails) = r.verdict_counts();
                if fails > 0 {
                    eprintln!("[repro] {fails} metrics FAILED reproduction bands");
                }
            }
            "experiments-md" => println!("{}", study.experiments_markdown(&config)),
            other if other.starts_with("csv") => {
                let dir = other
                    .split_once('=')
                    .map(|(_, p)| p.to_string())
                    .unwrap_or_else(|| "figures-csv".to_string());
                match study.export_csv(std::path::Path::new(&dir)) {
                    Ok(n) => eprintln!("[repro] wrote {n} CSV files to {dir}/"),
                    Err(e) => {
                        eprintln!("[repro] csv export failed: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            other if other.starts_with("stamp") => {
                let path = other
                    .split_once('=')
                    .map(|(_, p)| p.to_string())
                    .unwrap_or_else(|| "repro.stamp".to_string());
                // Data-tier snapshot + stats-zeroed dataset: everything in
                // the stamp is a function of (seed, scale, chaos plan), so
                // two runs differing only in worker count must produce
                // byte-identical stamp files.
                let mut ds = study.dataset.clone();
                ds.stats = Default::default();
                let dataset_json = match serde_json::to_string(&ds) {
                    Ok(j) => j,
                    Err(e) => {
                        eprintln!("[repro] stamp serialization failed: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                let body = format!("{}\n{}\n", obs.snapshot(), dataset_json);
                if let Err(e) = std::fs::write(&path, body) {
                    eprintln!("[repro] stamp write failed ({path}): {e}");
                    return ExitCode::FAILURE;
                }
                eprintln!("[repro] wrote determinism stamp to {path}");
            }
            other if other.starts_with("dump-dataset") => {
                let path = other
                    .split_once('=')
                    .map(|(_, p)| p.to_string())
                    .unwrap_or_else(|| "dataset.anon.json".to_string());
                let anon = match study.dataset.anonymized(config.seed) {
                    Ok(anon) => anon,
                    Err(e) => {
                        eprintln!("[repro] anonymization failed: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                if let Err(e) = anon.save(std::path::Path::new(&path)) {
                    eprintln!("[repro] dump failed: {e}");
                    return ExitCode::FAILURE;
                }
                eprintln!("[repro] wrote anonymized dataset to {path}");
            }
            other => match other.parse::<FigureId>() {
                Ok(id) => println!("{}", study.render(id)),
                Err(e) => {
                    eprintln!("{e}; {}", usage());
                    return ExitCode::FAILURE;
                }
            },
        }
    }
    ExitCode::SUCCESS
}

/// Dashboard CLI knobs (`--dashboard`, `--diff`, `--history`), already
/// parsed and defaulted.
struct DashboardCli {
    path: String,
    diff_path: Option<String>,
    history_path: String,
}

/// Stable scenario name for titles and labels (`"none"` without chaos).
fn scenario_label(chaos: Option<Scenario>) -> String {
    chaos
        .map(|s| s.to_string())
        .unwrap_or_else(|| "none".to_string())
}

/// Write a run report to `path`, picking the format from the extension:
/// `.html` renders the standalone HTML page, anything else the text
/// format whose Data fence CI byte-compares.
fn write_report(path: &str, report: &flock_obs::report::RunReport) -> Result<(), String> {
    let body = if path.ends_with(".html") {
        report.to_html()
    } else {
        report.to_text()
    };
    std::fs::write(path, body).map_err(|e| format!("report write failed ({path}): {e}"))
}

/// Render and write the run dashboard: parse the bench history (absent
/// file → empty trends, noted in the caption; malformed file → hard
/// error), read the `--diff` report's Data-tier fence when given, and
/// emit the single self-contained HTML file.
fn write_dashboard(
    cli: &DashboardCli,
    title: String,
    obs: &Registry,
    report: &flock_obs::report::RunReport,
) -> Result<(), String> {
    use flock_obs::dashboard as dash;
    let (history, history_note) = match std::fs::read_to_string(&cli.history_path) {
        Ok(text) => {
            let entries =
                dash::parse_history(&text).map_err(|e| format!("{}: {e}", cli.history_path))?;
            let note = format!("{} · {} entries", cli.history_path, entries.len());
            (entries, note)
        }
        Err(_) => (Vec::new(), format!("{} · not found", cli.history_path)),
    };
    let diff = match &cli.diff_path {
        Some(other) => {
            let text = std::fs::read_to_string(other)
                .map_err(|e| format!("diff report read failed ({other}): {e}"))?;
            // Diff Data tier against Data tier; a fence-less file (e.g. a
            // bare section dump) diffs whole.
            let other_data = dash::data_fence_slice(&text).unwrap_or(&text).to_string();
            Some(dash::DiffInput {
                ours_label: "this run".to_string(),
                other_label: other.clone(),
                other_data,
            })
        }
        None => None,
    };
    let meta = dash::DashboardMeta {
        title,
        history_note,
        diff,
    };
    let html = dash::render_dashboard(obs, report, &history, &meta);
    std::fs::write(&cli.path, html)
        .map_err(|e| format!("dashboard write failed ({}): {e}", cli.path))
}

/// Monitor-mode CLI knobs, already parsed and defaulted.
struct MonitorCli {
    sim_days: u64,
    nodes_path: Option<String>,
    checkpoint_path: Option<String>,
    test_lines: bool,
    threads: usize,
    tasks: usize,
}

/// Peak resident set size (`VmHWM` from `/proc/self/status`) in bytes;
/// 0 where procfs is unavailable. Measurement-only: feeds the bench
/// trend gate, never the Data tier.
fn peak_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
            return kb * 1024;
        }
    }
    0
}

/// The continuous-monitoring workload: generate the world, bootstrap the
/// roster from the flagship instances, and watch the fediverse for
/// `--sim-days` of virtual uptime.
fn run_monitor(
    config: &WorldConfig,
    chaos: Option<Scenario>,
    cli: &MonitorCli,
    metrics_path: Option<&str>,
    report_path: Option<&str>,
    dashboard: Option<&DashboardCli>,
) -> ExitCode {
    eprintln!(
        "[repro] generating world (seed {}, {} users, {} instances) and monitoring…",
        config.seed, config.n_searchable_users, config.n_instances
    );
    let mut api_config = flock_apis::ApiConfig::default();
    if let Some(scenario) = chaos {
        api_config.chaos = scenario.plan(config.seed);
        eprintln!("[repro] chaos scenario: {scenario}");
    }
    let world = match World::generate(config) {
        Ok(w) => Arc::new(w),
        Err(e) => {
            eprintln!("[repro] world generation failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let obs = Registry::new();
    let api = match flock_apis::ApiServer::with_obs(world.clone(), api_config, obs.clone()) {
        Ok(api) => api,
        Err(e) => {
            eprintln!("[repro] api server failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mcfg = MonitorConfig {
        sim_days: cli.sim_days,
        threads: cli.threads,
        tasks: cli.tasks,
        bootstrap: world.flagship_domains(),
        checkpoint_path: cli.checkpoint_path.as_ref().map(std::path::PathBuf::from),
        ..MonitorConfig::default()
    };
    // flock-lint: allow(determinism) wall-clock measures real throughput for the bench trend gate; never enters the Data tier
    let wall_start = std::time::Instant::now();
    let out = match flock_monitor::run(&api, &obs, &mcfg) {
        Ok(out) => out,
        Err(e) => {
            eprintln!("[repro] monitor failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let wall_secs = wall_start.elapsed().as_secs_f64();
    let alive = out
        .records
        .values()
        .filter(|r| r.state == flock_monitor::NodeState::Alive)
        .count();
    eprintln!(
        "[repro] monitored {} simulated days: {} nodes known ({} alive), {} checks in {} rounds{}",
        cli.sim_days,
        out.records.len(),
        alive,
        out.checks_total,
        out.rounds,
        match out.resumed_from_round {
            Some(r) => format!(" (resumed from round {r})"),
            None => String::new(),
        }
    );
    if !out.completed {
        eprintln!("[repro] monitor stopped before the horizon (checkpointed)");
    }

    let scenario_name = scenario_label(chaos);
    if let Some(path) = &cli.nodes_path {
        let body =
            flock_monitor::nodes_list(&out.records, config.seed, &scenario_name, cli.sim_days);
        if let Err(e) = std::fs::write(path, body) {
            eprintln!("[repro] nodes-list write failed ({path}): {e}");
            return ExitCode::FAILURE;
        }
        eprintln!(
            "[repro] wrote nodes list ({} domains) to {path}",
            out.records.len()
        );
    }
    if let Some(path) = metrics_path {
        let body = if path.ends_with(".json") {
            obs.export_json()
        } else if path.ends_with(".prom") {
            obs.export_prometheus()
        } else {
            obs.export_text()
        };
        if let Err(e) = std::fs::write(path, body) {
            eprintln!("[repro] metrics write failed ({path}): {e}");
            return ExitCode::FAILURE;
        }
    }
    if report_path.is_some() || dashboard.is_some() {
        let chaos_plan = match chaos {
            Some(s) => match s.plan(config.seed).resolve(&world.outage_candidates()) {
                Ok(plan) => plan.describe(),
                Err(e) => {
                    eprintln!("[repro] report build failed: {e}");
                    return ExitCode::FAILURE;
                }
            },
            None => String::new(),
        };
        let count = |state: flock_monitor::NodeState| {
            out.records.values().filter(|r| r.state == state).count()
        };
        // Facts are Data tier (scheduled-time-derived only); the executor
        // shape goes into the Sched context below the fence.
        let meta = flock_obs::report::ReportMeta {
            title: format!("flock monitor report — scenario {scenario_name}"),
            scenario: scenario_name.clone(),
            chaos_plan,
            facts: vec![
                ("seed".to_string(), config.seed.to_string()),
                ("simulated days".to_string(), cli.sim_days.to_string()),
                ("nodes known".to_string(), out.records.len().to_string()),
                (
                    "nodes alive".to_string(),
                    count(flock_monitor::NodeState::Alive).to_string(),
                ),
                (
                    "nodes dead".to_string(),
                    count(flock_monitor::NodeState::Dead).to_string(),
                ),
                (
                    "nodes unreachable".to_string(),
                    count(flock_monitor::NodeState::Unreachable).to_string(),
                ),
                ("checks".to_string(), out.checks_total.to_string()),
                ("rounds".to_string(), out.rounds.to_string()),
                (
                    "deaths".to_string(),
                    out.records
                        .values()
                        .map(|r| r.deaths)
                        .sum::<u64>()
                        .to_string(),
                ),
                (
                    "rebirths".to_string(),
                    out.records
                        .values()
                        .map(|r| r.rebirths)
                        .sum::<u64>()
                        .to_string(),
                ),
            ],
            coverage: Vec::new(),
            sched_context: vec![
                ("threads".to_string(), cli.threads.to_string()),
                ("tasks window".to_string(), cli.tasks.to_string()),
            ],
            top_k: 10,
        };
        let report = flock_obs::report::RunReport::build(&obs, &meta);
        if let Some(path) = report_path {
            if let Err(e) = write_report(path, &report) {
                eprintln!("[repro] {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("[repro] wrote run report to {path}");
        }
        if let Some(dash) = dashboard {
            // Thread counts and the admission window stay out of the
            // title: it renders inside the Data-tier fence.
            let title = format!(
                "flock run dashboard — monitor · seed {} · scenario {scenario_name}",
                config.seed
            );
            if let Err(e) = write_dashboard(dash, title, &obs, &report) {
                eprintln!("[repro] {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("[repro] wrote run dashboard to {}", dash.path);
        }
    }
    if cli.test_lines {
        let rate = if wall_secs > 0.0 {
            out.checks_total as f64 / wall_secs
        } else {
            0.0
        };
        eprintln!(
            "monitor: {} checks in {wall_secs:.2}s ({rate:.0} checks/sec)",
            out.checks_total
        );
        eprintln!("monitor: peak rss {} bytes", peak_rss_bytes());
    }
    ExitCode::SUCCESS
}

//! One benchmark per paper figure: the exact analysis code `repro <figN>`
//! runs, over a prebuilt crawled dataset. These are the regeneration costs
//! of every table and figure in the evaluation.

use criterion::{criterion_group, criterion_main, Criterion};
use flock_analysis::prelude::*;
use flock_bench::{bench_dataset, bench_world};
use flock_core::DetRng;
use std::hint::black_box;

fn fig1_interest(c: &mut Criterion) {
    c.bench_function("fig1_interest_series", |b| {
        let mut rng = DetRng::new(1);
        b.iter(|| black_box(flock_fedisim::interest::generate_interest(&mut rng)));
    });
}

fn fig2(c: &mut Criterion) {
    let ds = bench_dataset();
    c.bench_function("fig2_collection_series", |b| {
        b.iter(|| black_box(fig2_collection(ds)))
    });
}

fn fig3(c: &mut Criterion) {
    let ds = bench_dataset();
    c.bench_function("fig3_weekly_activity_totals", |b| {
        b.iter(|| {
            // Aggregating the crawled per-instance weekly rows is the
            // figure's entire computation.
            let mut total = 0u64;
            for rows in ds.weekly_activity.values() {
                for r in rows {
                    total += r.registrations + r.logins + r.statuses;
                }
            }
            black_box(total)
        })
    });
}

fn fig4(c: &mut Criterion) {
    let ds = bench_dataset();
    c.bench_function("fig4_top_instances", |b| {
        b.iter(|| black_box(fig4_top_instances(ds, 30)))
    });
}

fn fig5(c: &mut Criterion) {
    let ds = bench_dataset();
    c.bench_function("fig5_centralization", |b| {
        b.iter(|| black_box(fig5_centralization(ds)))
    });
}

fn fig6(c: &mut Criterion) {
    let ds = bench_dataset();
    c.bench_function("fig6_size_analysis", |b| {
        b.iter(|| black_box(fig6_size_analysis(ds)))
    });
}

fn fig7(c: &mut Criterion) {
    let ds = bench_dataset();
    c.bench_function("fig7_social_networks", |b| {
        b.iter(|| black_box(fig7_social_networks(ds)))
    });
}

fn fig8(c: &mut Criterion) {
    let ds = bench_dataset();
    c.bench_function("fig8_influence", |b| {
        b.iter(|| black_box(fig8_influence(ds)))
    });
}

fn fig9(c: &mut Criterion) {
    let ds = bench_dataset();
    c.bench_function("fig9_switching", |b| {
        b.iter(|| black_box(fig9_switching(ds)))
    });
}

fn fig10(c: &mut Criterion) {
    let ds = bench_dataset();
    c.bench_function("fig10_switcher_influence", |b| {
        b.iter(|| black_box(fig10_switcher_influence(ds)))
    });
}

fn fig11(c: &mut Criterion) {
    let ds = bench_dataset();
    c.bench_function("fig11_activity", |b| {
        b.iter(|| black_box(fig11_activity(ds)))
    });
}

fn fig12(c: &mut Criterion) {
    let ds = bench_dataset();
    c.bench_function("fig12_sources", |b| {
        b.iter(|| black_box(fig12_sources(ds, 30)))
    });
}

fn fig13(c: &mut Criterion) {
    let ds = bench_dataset();
    c.bench_function("fig13_crossposters", |b| {
        b.iter(|| black_box(fig13_crossposters(ds)))
    });
}

fn fig14(c: &mut Criterion) {
    let ds = bench_dataset();
    let mut group = c.benchmark_group("fig14");
    // The similarity figure embeds every post — by far the heaviest figure.
    group.sample_size(10);
    group.bench_function("fig14_similarity", |b| {
        b.iter(|| black_box(fig14_similarity(ds)))
    });
    group.finish();
}

fn fig15(c: &mut Criterion) {
    let ds = bench_dataset();
    c.bench_function("fig15_hashtags", |b| {
        b.iter(|| black_box(fig15_hashtags(ds, 30)))
    });
}

fn fig16(c: &mut Criterion) {
    let ds = bench_dataset();
    let mut group = c.benchmark_group("fig16");
    group.sample_size(10);
    group.bench_function("fig16_toxicity", |b| {
        b.iter(|| black_box(fig16_toxicity(ds)))
    });
    group.finish();
}

fn headline(c: &mut Criterion) {
    let ds = bench_dataset();
    let mut group = c.benchmark_group("headline");
    group.sample_size(10);
    group.bench_function("headline_report", |b| {
        b.iter(|| black_box(HeadlineReport::compute(ds)))
    });
    group.finish();
}

fn world_access(c: &mut Criterion) {
    // Touch the world once so its construction cost is attributed here, not
    // to the first figure bench.
    let w = bench_world();
    c.bench_function("world_account_lookup", |b| {
        let handle = w.accounts[0].handle.clone();
        b.iter(|| black_box(w.account_by_handle(&handle)))
    });
}

criterion_group!(
    figures,
    world_access,
    fig1_interest,
    fig2,
    fig3,
    fig4,
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    fig10,
    fig11,
    fig12,
    fig13,
    fig14,
    fig15,
    fig16,
    headline,
);
criterion_main!(figures);

//! Pipeline throughput benchmark — the two headline numbers of the
//! unserialisation work, written to `BENCH_pipeline.json` at the repo root.
//!
//! Unlike the criterion benches next door this is a plain wall-clock
//! harness, because both measurements are *comparisons* that belong in one
//! committed artifact:
//!
//! * **search** — repeated §3.1 query throughput served from the cached
//!   [`TweetDoc`] index with posting-list intersection
//!   (`search_ids_indexed`) versus the pre-cache behaviour of re-tokenizing
//!   the whole corpus per query (`search_ids_scan`);
//! * **crawl** — wall-clock of the §3.2/§3.3 expansion phases
//!   (`Crawler::expand`) as the worker count grows, against an identical
//!   discovery output.
//!
//! `cargo bench -p flock-bench --bench throughput` regenerates the JSON;
//! `-- --test` runs a seconds-long smoke version and writes nothing, so CI
//! never dirties the committed artifact.

use flock_apis::{ApiConfig, ApiServer};
use flock_core::Day;
use flock_crawler::pipeline::{migration_queries, Crawler, CrawlerConfig};
use flock_fedisim::{World, WorldConfig};
use flock_obs::Registry;
use serde::Serialize;
use std::sync::Arc;
use std::time::Instant;

#[derive(Serialize)]
struct SearchReport {
    queries_per_pass: usize,
    indexed_passes: usize,
    scan_passes: usize,
    indexed_qps: f64,
    scan_qps: f64,
    /// indexed_qps / scan_qps — the acceptance bar is ≥ 3×.
    speedup: f64,
}

#[derive(Serialize)]
struct CrawlPoint {
    workers: usize,
    /// Best-of-N wall-clock for `Crawler::expand` (timelines + followees +
    /// weekly activity) over the same discovery output.
    expand_secs: f64,
}

#[derive(Serialize)]
struct Report {
    world: String,
    host_cpus: usize,
    /// Simulated per-request network latency during the crawl comparison.
    request_latency_micros: u64,
    search: SearchReport,
    crawl: Vec<CrawlPoint>,
    /// expand_secs(workers=1) / expand_secs(workers=4) — the acceptance
    /// bar is ≥ 2×.
    crawl_speedup_at_4: f64,
    /// Full telemetry export (counters, histograms, spans) of one
    /// instrumented default-config crawl over the same world: the
    /// data-tier counters here are seed-reproducible context for the
    /// wall-clock numbers above.
    metrics: serde::Value,
}

/// The §3.1 query mix: every keyword/hashtag query plus instance-link
/// queries for a handful of seed instances.
fn query_mix() -> Vec<String> {
    let mut qs: Vec<String> = migration_queries().into_iter().map(|(q, _)| q).collect();
    for inst in ["mastodon.social", "fosstodon.org", "mstdn.social"] {
        qs.push(format!("url:\"{inst}\""));
    }
    qs
}

fn bench_search(api: &ApiServer, indexed_passes: usize, scan_passes: usize) -> SearchReport {
    let qs = query_mix();
    let (start, end) = (Day::COLLECTION_START, Day::COLLECTION_END);
    // One warm pass, and proof the two paths agree before we time them.
    for q in &qs {
        let a = api.search_ids_indexed(q, start, end).expect("indexed");
        let b = api.search_ids_scan(q, start, end).expect("scan");
        assert_eq!(a, b, "index disagrees with scan for {q:?}");
    }
    let t = Instant::now();
    let mut sink = 0usize;
    for _ in 0..indexed_passes {
        for q in &qs {
            sink += api
                .search_ids_indexed(q, start, end)
                .expect("indexed")
                .len();
        }
    }
    let indexed_secs = t.elapsed().as_secs_f64();
    let t = Instant::now();
    for _ in 0..scan_passes {
        for q in &qs {
            sink += api.search_ids_scan(q, start, end).expect("scan").len();
        }
    }
    let scan_secs = t.elapsed().as_secs_f64();
    std::hint::black_box(sink);
    let indexed_qps = (indexed_passes * qs.len()) as f64 / indexed_secs;
    let scan_qps = (scan_passes * qs.len()) as f64 / scan_secs;
    SearchReport {
        queries_per_pass: qs.len(),
        indexed_passes,
        scan_passes,
        indexed_qps,
        scan_qps,
        speedup: indexed_qps / scan_qps,
    }
}

fn bench_crawl(
    world: &Arc<World>,
    latency_micros: u64,
    worker_counts: &[usize],
    reps: usize,
) -> Vec<CrawlPoint> {
    worker_counts
        .iter()
        .map(|&workers| {
            let mut best = f64::INFINITY;
            for _ in 0..reps {
                // Fresh server per rep: expansion drains rate buckets, and a
                // second expansion against drained buckets would spend its
                // wall-clock differently than the first.
                let api = ApiServer::new(
                    world.clone(),
                    ApiConfig {
                        request_latency_micros: latency_micros,
                        ..ApiConfig::default()
                    },
                )
                .expect("valid bench config");
                let crawler = Crawler::new(
                    &api,
                    CrawlerConfig {
                        workers,
                        ..CrawlerConfig::default()
                    },
                );
                let base = crawler.discover().expect("discover");
                let mut ds = base.clone();
                let t = Instant::now();
                crawler.expand(&mut ds).expect("expand");
                best = best.min(t.elapsed().as_secs_f64());
                std::hint::black_box(ds.twitter_timelines.len());
            }
            CrawlPoint {
                workers,
                expand_secs: best,
            }
        })
        .collect()
}

fn main() {
    // Criterion-compatible smoke flag: `cargo bench -- --test` must finish
    // in seconds and must not touch the committed artifact.
    let smoke = std::env::args().any(|a| a == "--test");

    let config = WorldConfig::small().with_seed(1234);
    let world = Arc::new(World::generate(&config).expect("world"));
    let api = ApiServer::with_defaults(world.clone()).unwrap();

    let search = if smoke {
        bench_search(&api, 1, 1)
    } else {
        bench_search(&api, 40, 4)
    };
    eprintln!(
        "search: indexed {:.0} qps vs scan {:.0} qps ({:.1}x)",
        search.indexed_qps, search.scan_qps, search.speedup
    );

    // What a crawl worker pool buys is *overlapped request latency* — the
    // paper's crawl was network-bound, not CPU-bound. The zero-latency
    // simulator finishes the small expansion in milliseconds of pure CPU,
    // which no thread count can improve (and on a single-core host would
    // even regress), so the crawl comparison switches on the simulated
    // per-request latency and measures how well N workers hide it.
    let latency_micros = 500;
    let crawl = if smoke {
        bench_crawl(&world, latency_micros, &[1, 4], 1)
    } else {
        bench_crawl(&world, latency_micros, &[1, 2, 4, 8], 3)
    };
    for p in &crawl {
        eprintln!("expand: workers={} {:.3}s", p.workers, p.expand_secs);
    }
    let secs_at = |w: usize| {
        crawl
            .iter()
            .find(|p| p.workers == w)
            .map(|p| p.expand_secs)
            .unwrap_or(f64::NAN)
    };
    let crawl_speedup_at_4 = secs_at(1) / secs_at(4);
    eprintln!("expand speedup at 4 workers: {crawl_speedup_at_4:.2}x");

    if smoke {
        eprintln!("smoke mode: not writing BENCH_pipeline.json");
        return;
    }
    // One instrumented crawl for the embedded telemetry snapshot.
    let obs = Registry::new();
    let api = ApiServer::with_obs(world.clone(), ApiConfig::default(), obs.clone()).unwrap();
    Crawler::with_registry(&api, CrawlerConfig::default(), obs.clone())
        .run()
        .expect("instrumented crawl");
    let metrics = serde_json::parse_value(&obs.export_json()).expect("metrics JSON parses");
    let report = Report {
        world: format!("WorldConfig::small().with_seed({})", config.seed),
        host_cpus: std::thread::available_parallelism().map_or(1, |n| n.get()),
        request_latency_micros: latency_micros,
        search,
        crawl,
        crawl_speedup_at_4,
        metrics,
    };
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pipeline.json");
    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    std::fs::write(path, json + "\n").expect("write BENCH_pipeline.json");
    eprintln!("wrote {path}");
}

//! Pipeline throughput benchmark — the headline numbers of the
//! unserialisation work, appended to `BENCH_history.jsonl` at the repo
//! root (one JSON line per recorded run, keyed by git sha + label, so the
//! regression gate can reason about a *trend* instead of a single
//! overwritten artifact).
//!
//! Unlike the criterion benches next door this is a plain wall-clock
//! harness, because the measurements are *comparisons* that belong in one
//! committed history:
//!
//! * **search** — repeated §3.1 query throughput served from the cached
//!   `TweetDoc` index with posting-list intersection
//!   (`search_ids_indexed`) versus the pre-cache behaviour of re-tokenizing
//!   the whole corpus per query (`search_ids_scan`);
//! * **crawl** — wall-clock of the §3.2/§3.3 expansion phases
//!   (`Crawler::expand`) as the worker count grows, against an identical
//!   discovery output;
//! * **sched** — requests/sec of thousands of logical crawler connections
//!   driven through a rate-limit-storm chaos crawl, discrete-event
//!   scheduler (`tasks = Some(n)`, ≤ 8 OS threads) versus the legacy
//!   thread-per-worker pool at the same 8 threads. The scheduler yields
//!   instead of sleeping out per-request latency, so its acceptance bar
//!   is ≥ 3× the thread baseline.
//!
//! `cargo bench -p flock-bench --bench throughput` appends to the JSONL;
//! `-- --test` runs a seconds-long smoke version and writes nothing, so CI
//! never dirties the committed artifact. `FLOCK_BENCH_LABEL` names the
//! entry (default `throughput`); `FLOCK_BENCH_SHA` overrides the commit
//! key when git is unavailable.

use flock_apis::{ApiConfig, ApiServer};
use flock_chaos::Scenario;
use flock_core::Day;
use flock_crawler::pipeline::{migration_queries, Crawler, CrawlerConfig};
use flock_fedisim::{World, WorldConfig};
use serde::Serialize;
use std::sync::Arc;
use std::time::Instant;

#[derive(Serialize)]
struct SearchReport {
    queries_per_pass: usize,
    indexed_passes: usize,
    scan_passes: usize,
    indexed_qps: f64,
    scan_qps: f64,
    /// indexed_qps / scan_qps — the acceptance bar is ≥ 3×.
    speedup: f64,
}

#[derive(Serialize)]
struct CrawlPoint {
    workers: usize,
    /// Best-of-N wall-clock for `Crawler::expand` (timelines + followees +
    /// weekly activity) over the same discovery output.
    expand_secs: f64,
}

#[derive(Serialize)]
struct SchedReport {
    /// Logical concurrent connections driven through the storm crawl.
    connections: usize,
    /// OS threads both execution models get.
    os_threads: usize,
    legacy_requests: u64,
    legacy_secs: f64,
    legacy_rps: f64,
    sched_requests: u64,
    sched_secs: f64,
    sched_rps: f64,
    /// sched_rps / legacy_rps — the acceptance bar is ≥ 3×.
    speedup: f64,
}

#[derive(Serialize)]
struct Report {
    /// Commit this entry was recorded at (`FLOCK_BENCH_SHA` or
    /// `git rev-parse --short HEAD`).
    sha: String,
    /// Entry label (`FLOCK_BENCH_LABEL`, default `throughput`) so one
    /// history can carry differently-shaped recordings.
    label: String,
    world: String,
    host_cpus: usize,
    /// Simulated per-request network latency during the crawl comparison.
    request_latency_micros: u64,
    search: SearchReport,
    crawl: Vec<CrawlPoint>,
    /// expand_secs(workers=1) / expand_secs(workers=4) — the acceptance
    /// bar is ≥ 2×.
    crawl_speedup_at_4: f64,
    sched: SchedReport,
}

/// The §3.1 query mix: every keyword/hashtag query plus instance-link
/// queries for a handful of seed instances.
fn query_mix() -> Vec<String> {
    let mut qs: Vec<String> = migration_queries().into_iter().map(|(q, _)| q).collect();
    for inst in ["mastodon.social", "fosstodon.org", "mstdn.social"] {
        qs.push(format!("url:\"{inst}\""));
    }
    qs
}

fn bench_search(api: &ApiServer, indexed_passes: usize, scan_passes: usize) -> SearchReport {
    let qs = query_mix();
    let (start, end) = (Day::COLLECTION_START, Day::COLLECTION_END);
    // One warm pass, and proof the two paths agree before we time them.
    for q in &qs {
        let a = api.search_ids_indexed(q, start, end).expect("indexed");
        let b = api.search_ids_scan(q, start, end).expect("scan");
        assert_eq!(a, b, "index disagrees with scan for {q:?}");
    }
    let t = Instant::now();
    let mut sink = 0usize;
    for _ in 0..indexed_passes {
        for q in &qs {
            sink += api
                .search_ids_indexed(q, start, end)
                .expect("indexed")
                .len();
        }
    }
    let indexed_secs = t.elapsed().as_secs_f64();
    let t = Instant::now();
    for _ in 0..scan_passes {
        for q in &qs {
            sink += api.search_ids_scan(q, start, end).expect("scan").len();
        }
    }
    let scan_secs = t.elapsed().as_secs_f64();
    std::hint::black_box(sink);
    let indexed_qps = (indexed_passes * qs.len()) as f64 / indexed_secs;
    let scan_qps = (scan_passes * qs.len()) as f64 / scan_secs;
    SearchReport {
        queries_per_pass: qs.len(),
        indexed_passes,
        scan_passes,
        indexed_qps,
        scan_qps,
        speedup: indexed_qps / scan_qps,
    }
}

fn bench_crawl(
    world: &Arc<World>,
    latency_micros: u64,
    worker_counts: &[usize],
    reps: usize,
) -> Vec<CrawlPoint> {
    worker_counts
        .iter()
        .map(|&workers| {
            let mut best = f64::INFINITY;
            for _ in 0..reps {
                // Fresh server per rep: expansion drains rate buckets, and a
                // second expansion against drained buckets would spend its
                // wall-clock differently than the first.
                let api = ApiServer::new(
                    world.clone(),
                    ApiConfig {
                        request_latency_micros: latency_micros,
                        ..ApiConfig::default()
                    },
                )
                .expect("valid bench config");
                let crawler = Crawler::new(
                    &api,
                    CrawlerConfig {
                        workers,
                        ..CrawlerConfig::default()
                    },
                )
                .expect("valid crawler config");
                let base = crawler.discover().expect("discover");
                let mut ds = base.clone();
                let t = Instant::now();
                crawler.expand(&mut ds).expect("expand");
                best = best.min(t.elapsed().as_secs_f64());
                std::hint::black_box(ds.twitter_timelines.len());
            }
            CrawlPoint {
                workers,
                expand_secs: best,
            }
        })
        .collect()
}

/// Drive `connections` logical Mastodon-timeline connections through a
/// rate-limit-storm chaos crawl, once on the legacy thread-per-worker
/// pool and once on the discrete-event scheduler, both on `os_threads`
/// OS threads, and compare wall-clock requests/sec.
fn bench_sched(
    world: &Arc<World>,
    latency_micros: u64,
    connections: usize,
    os_threads: usize,
) -> SchedReport {
    // One calm discovery supplies the matched users both runs cycle over.
    let discover_api = ApiServer::with_defaults(world.clone()).expect("valid default config");
    let base = Crawler::new(&discover_api, CrawlerConfig::default())
        .expect("valid crawler config")
        .discover()
        .expect("discover");
    assert!(!base.matched.is_empty(), "discovery found no matched users");

    let run = |tasks: Option<usize>| -> (u64, f64) {
        // Fresh server per run: same storm plan, same drained-from-full
        // buckets, same per-key chaos budgets for both execution models.
        let api = ApiServer::new(
            world.clone(),
            ApiConfig {
                request_latency_micros: latency_micros,
                chaos: Scenario::RateLimitStorm.plan(1234),
                ..ApiConfig::default()
            },
        )
        .expect("valid bench config");
        let crawler = Crawler::new(
            &api,
            CrawlerConfig {
                workers: os_threads,
                tasks,
                ..CrawlerConfig::default()
            },
        )
        .expect("valid crawler config");
        let t = Instant::now();
        let requests = crawler
            .drive_connections(&base, connections)
            .expect("storm crawl");
        (requests, t.elapsed().as_secs_f64())
    };

    let (legacy_requests, legacy_secs) = run(None);
    let (sched_requests, sched_secs) = run(Some(connections));
    let legacy_rps = legacy_requests as f64 / legacy_secs;
    let sched_rps = sched_requests as f64 / sched_secs;
    SchedReport {
        connections,
        os_threads,
        legacy_requests,
        legacy_secs,
        legacy_rps,
        sched_requests,
        sched_secs,
        sched_rps,
        speedup: sched_rps / legacy_rps,
    }
}

/// The commit key for the history entry.
fn bench_sha() -> String {
    if let Ok(sha) = std::env::var("FLOCK_BENCH_SHA") {
        return sha;
    }
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .unwrap_or_else(|| "unknown".to_string())
}

fn main() {
    // Criterion-compatible smoke flag: `cargo bench -- --test` must finish
    // in seconds and must not touch the committed artifact.
    let smoke = std::env::args().any(|a| a == "--test");

    let config = WorldConfig::small().with_seed(1234);
    let world = Arc::new(World::generate(&config).expect("world"));
    let api = ApiServer::with_defaults(world.clone()).unwrap();

    // Smoke mode trims what is *expensive* (scan passes, the worker sweep,
    // 10k connections), never what is *gated*: bench_check.sh compares the
    // smoke indexed qps and expand wall-clocks against the recorded
    // full-run medians, so those must be measured with full-run rigor or
    // the comparison is noise.
    let search = if smoke {
        bench_search(&api, 40, 1)
    } else {
        bench_search(&api, 40, 4)
    };
    eprintln!(
        "search: indexed {:.0} qps vs scan {:.0} qps ({:.1}x)",
        search.indexed_qps, search.scan_qps, search.speedup
    );

    // What a crawl worker pool buys is *overlapped request latency* — the
    // paper's crawl was network-bound, not CPU-bound. The zero-latency
    // simulator finishes the small expansion in milliseconds of pure CPU,
    // which no thread count can improve (and on a single-core host would
    // even regress), so the crawl comparison switches on the simulated
    // per-request latency and measures how well N workers hide it.
    let latency_micros = 500;
    let crawl = if smoke {
        bench_crawl(&world, latency_micros, &[1, 4], 3)
    } else {
        bench_crawl(&world, latency_micros, &[1, 2, 4, 8], 3)
    };
    for p in &crawl {
        eprintln!("expand: workers={} {:.3}s", p.workers, p.expand_secs);
    }
    let secs_at = |w: usize| {
        crawl
            .iter()
            .find(|p| p.workers == w)
            .map(|p| p.expand_secs)
            .unwrap_or(f64::NAN)
    };
    let crawl_speedup_at_4 = secs_at(1) / secs_at(4);
    eprintln!("expand speedup at 4 workers: {crawl_speedup_at_4:.2}x");

    // The scheduler comparison: the same per-request latency the thread
    // pool must sleep out, a rate-limit storm to force heavy retry/wait
    // traffic, and an order of magnitude more logical connections than OS
    // threads. The thread pool serialises each thread's connections; the
    // scheduler overlaps every in-flight latency and only moves the
    // virtual clock when nothing is runnable.
    let connections = if smoke { 256 } else { 10_000 };
    let sched = bench_sched(&world, latency_micros, connections, 8);
    eprintln!(
        "sched: {} connections on {} threads: scheduler {:.0} rps vs threads {:.0} rps ({:.1}x)",
        sched.connections, sched.os_threads, sched.sched_rps, sched.legacy_rps, sched.speedup
    );

    if smoke {
        eprintln!("smoke mode: not writing BENCH_history.jsonl");
        return;
    }
    let report = Report {
        sha: bench_sha(),
        label: std::env::var("FLOCK_BENCH_LABEL").unwrap_or_else(|_| "throughput".to_string()),
        world: format!("WorldConfig::small().with_seed({})", config.seed),
        host_cpus: std::thread::available_parallelism().map_or(1, |n| n.get()),
        request_latency_micros: latency_micros,
        search,
        crawl,
        crawl_speedup_at_4,
        sched,
    };
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_history.jsonl");
    // Append-only: one compact JSON line per recorded run, newest last.
    let line = serde_json::to_string(&report).expect("serialize report");
    let mut history = std::fs::read_to_string(path).unwrap_or_default();
    if !history.is_empty() && !history.ends_with('\n') {
        history.push('\n');
    }
    history.push_str(&line);
    history.push('\n');
    std::fs::write(path, history).expect("write BENCH_history.jsonl");
    eprintln!("appended to {path}");
}

//! Pipeline throughput benchmark — the headline numbers of the
//! unserialisation work, appended to `BENCH_history.jsonl` at the repo
//! root (one JSON line per recorded run, keyed by git sha + label, so the
//! regression gate can reason about a *trend* instead of a single
//! overwritten artifact).
//!
//! Unlike the criterion benches next door this is a plain wall-clock
//! harness, because the measurements are *comparisons* that belong in one
//! committed history:
//!
//! * **search** — repeated §3.1 query throughput served from the cached
//!   `TweetDoc` index with posting-list intersection
//!   (`search_ids_indexed`) versus the pre-cache behaviour of re-tokenizing
//!   the whole corpus per query (`search_ids_scan`);
//! * **crawl** — wall-clock of the §3.2/§3.3 expansion phases
//!   (`Crawler::expand`) as the worker count grows, against an identical
//!   discovery output;
//! * **sched** — requests/sec of thousands of logical crawler connections
//!   driven through a rate-limit-storm chaos crawl, discrete-event
//!   scheduler (`tasks = Some(n)`, ≤ 8 OS threads) versus the legacy
//!   thread-per-worker pool at the same 8 threads. The scheduler yields
//!   instead of sleeping out per-request latency, so its acceptance bar
//!   is ≥ 3× the thread baseline.
//!
//! Every entry also records a memory footprint: peak RSS (`VmHWM` from
//! `/proc/self/status`) and the allocation count/bytes seen by a counting
//! `#[global_allocator]` that lives in this binary only — library crates
//! stay allocator-agnostic. `bench_check.sh` trend-gates `peak_rss_bytes`
//! the same way it gates throughput.
//!
//! `cargo bench -p flock-bench --bench throughput` appends to the JSONL;
//! `-- --test` runs a seconds-long smoke version and writes nothing, so CI
//! never dirties the committed artifact. `-- --paper` runs the paper-scale
//! section instead (million-user generation, full crawl, headline
//! analysis) and appends a `paper_scale`-labelled entry; `--paper --test`
//! is the CI smoke of the same path at `medium()` scale.
//! `FLOCK_BENCH_LABEL` names the entry (default `throughput`);
//! `FLOCK_BENCH_SHA` overrides the commit key when git is unavailable.

use flock_apis::{ApiConfig, ApiServer};
use flock_chaos::Scenario;
use flock_core::Day;
use flock_crawler::pipeline::{migration_queries, Crawler, CrawlerConfig};
use flock_fedisim::{World, WorldConfig};
use flock_obs::Registry;
use flock_repro::MigrationStudy;
use serde::Serialize;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

/// Allocation accounting for the bench process. The counting allocator is
/// deliberately confined to this binary: the library crates must not pay
/// (or even see) the two relaxed atomic increments per allocation, and the
/// numbers only mean anything next to the wall-clocks recorded alongside.
mod mem {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    pub static ALLOC_COUNT: AtomicU64 = AtomicU64::new(0);
    pub static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

    pub struct Counting;

    // SAFETY: defers every allocation verbatim to `System`; the counters
    // are relaxed atomics with no effect on the returned memory.
    unsafe impl GlobalAlloc for Counting {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
            ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
            System.alloc(layout)
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout)
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
            // Count only growth: shrinking reuses already-counted bytes.
            ALLOC_BYTES.fetch_add(
                new_size.saturating_sub(layout.size()) as u64,
                Ordering::Relaxed,
            );
            System.realloc(ptr, layout, new_size)
        }
    }

    #[global_allocator]
    static GLOBAL: Counting = Counting;

    /// Peak resident set size of this process in bytes — `VmHWM` from
    /// `/proc/self/status`, the kernel's high-water mark, which unlike
    /// sampled RSS cannot miss a transient peak between observations.
    /// Returns 0 where procfs is unavailable (non-Linux).
    pub fn peak_rss_bytes() -> u64 {
        let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
            return 0;
        };
        for line in status.lines() {
            if let Some(rest) = line.strip_prefix("VmHWM:") {
                let kb: u64 = rest
                    .trim()
                    .trim_end_matches("kB")
                    .trim()
                    .parse()
                    .unwrap_or(0);
                return kb * 1024;
            }
        }
        0
    }
}

#[derive(Serialize)]
struct SearchReport {
    queries_per_pass: usize,
    indexed_passes: usize,
    scan_passes: usize,
    indexed_qps: f64,
    scan_qps: f64,
    /// indexed_qps / scan_qps — the acceptance bar is ≥ 3×.
    speedup: f64,
}

#[derive(Serialize)]
struct CrawlPoint {
    workers: usize,
    /// Best-of-N wall-clock for `Crawler::expand` (timelines + followees +
    /// weekly activity) over the same discovery output.
    expand_secs: f64,
}

#[derive(Serialize)]
struct SchedReport {
    /// Logical concurrent connections driven through the storm crawl.
    connections: usize,
    /// OS threads both execution models get.
    os_threads: usize,
    legacy_requests: u64,
    legacy_secs: f64,
    legacy_rps: f64,
    sched_requests: u64,
    sched_secs: f64,
    sched_rps: f64,
    /// sched_rps / legacy_rps — the acceptance bar is ≥ 3×.
    speedup: f64,
}

#[derive(Serialize)]
struct MemReport {
    /// Process-lifetime peak resident set (`VmHWM`), bytes; 0 when procfs
    /// is unavailable.
    peak_rss_bytes: u64,
    /// Heap allocations made by the process up to the snapshot.
    alloc_count: u64,
    /// Bytes requested from the allocator (growth-only for reallocs).
    alloc_bytes: u64,
}

/// Snapshot the process's memory accounting at this instant.
fn mem_snapshot() -> MemReport {
    MemReport {
        peak_rss_bytes: mem::peak_rss_bytes(),
        alloc_count: mem::ALLOC_COUNT.load(Ordering::Relaxed),
        alloc_bytes: mem::ALLOC_BYTES.load(Ordering::Relaxed),
    }
}

#[derive(Serialize)]
struct Report {
    /// Commit this entry was recorded at (`FLOCK_BENCH_SHA` or
    /// `git rev-parse --short HEAD`).
    sha: String,
    /// Entry label (`FLOCK_BENCH_LABEL`, default `throughput`) so one
    /// history can carry differently-shaped recordings.
    label: String,
    world: String,
    host_cpus: usize,
    /// Simulated per-request network latency during the crawl comparison.
    request_latency_micros: u64,
    search: SearchReport,
    crawl: Vec<CrawlPoint>,
    /// expand_secs(workers=1) / expand_secs(workers=4) — the acceptance
    /// bar is ≥ 2×.
    crawl_speedup_at_4: f64,
    sched: SchedReport,
    mem: MemReport,
}

/// The paper-scale entry (`--paper`): one full pipeline pass — generate
/// the million-user world, crawl it end to end, run the headline analysis
/// — with per-phase wall-clocks and the memory footprint. Written with
/// `label: "paper_scale"` into the same history so `bench_check.sh` can
/// select it by label.
#[derive(Serialize)]
struct PaperReport {
    sha: String,
    label: String,
    world: String,
    host_cpus: usize,
    users: usize,
    instances: usize,
    generate_secs: f64,
    crawl_secs: f64,
    analyze_secs: f64,
    /// Crawl output scale, so a regression in coverage is visible next to
    /// the wall-clocks it would otherwise fake an improvement in.
    matched: usize,
    requests: u64,
    mem: MemReport,
}

/// The §3.1 query mix: every keyword/hashtag query plus instance-link
/// queries for a handful of seed instances.
fn query_mix() -> Vec<String> {
    let mut qs: Vec<String> = migration_queries().into_iter().map(|(q, _)| q).collect();
    for inst in ["mastodon.social", "fosstodon.org", "mstdn.social"] {
        qs.push(format!("url:\"{inst}\""));
    }
    qs
}

fn bench_search(api: &ApiServer, indexed_passes: usize, scan_passes: usize) -> SearchReport {
    let qs = query_mix();
    let (start, end) = (Day::COLLECTION_START, Day::COLLECTION_END);
    // One warm pass, and proof the two paths agree before we time them.
    for q in &qs {
        let a = api.search_ids_indexed(q, start, end).expect("indexed");
        let b = api.search_ids_scan(q, start, end).expect("scan");
        assert_eq!(a, b, "index disagrees with scan for {q:?}");
    }
    let t = Instant::now();
    let mut sink = 0usize;
    for _ in 0..indexed_passes {
        for q in &qs {
            sink += api
                .search_ids_indexed(q, start, end)
                .expect("indexed")
                .len();
        }
    }
    let indexed_secs = t.elapsed().as_secs_f64();
    let t = Instant::now();
    for _ in 0..scan_passes {
        for q in &qs {
            sink += api.search_ids_scan(q, start, end).expect("scan").len();
        }
    }
    let scan_secs = t.elapsed().as_secs_f64();
    std::hint::black_box(sink);
    let indexed_qps = (indexed_passes * qs.len()) as f64 / indexed_secs;
    let scan_qps = (scan_passes * qs.len()) as f64 / scan_secs;
    SearchReport {
        queries_per_pass: qs.len(),
        indexed_passes,
        scan_passes,
        indexed_qps,
        scan_qps,
        speedup: indexed_qps / scan_qps,
    }
}

fn bench_crawl(
    world: &Arc<World>,
    latency_micros: u64,
    worker_counts: &[usize],
    reps: usize,
) -> Vec<CrawlPoint> {
    worker_counts
        .iter()
        .map(|&workers| {
            let mut best = f64::INFINITY;
            for _ in 0..reps {
                // Fresh server per rep: expansion drains rate buckets, and a
                // second expansion against drained buckets would spend its
                // wall-clock differently than the first.
                let api = ApiServer::new(
                    world.clone(),
                    ApiConfig {
                        request_latency_micros: latency_micros,
                        ..ApiConfig::default()
                    },
                )
                .expect("valid bench config");
                let crawler = Crawler::new(
                    &api,
                    CrawlerConfig {
                        workers,
                        ..CrawlerConfig::default()
                    },
                )
                .expect("valid crawler config");
                let base = crawler.discover().expect("discover");
                let mut ds = base.clone();
                let t = Instant::now();
                crawler.expand(&mut ds).expect("expand");
                best = best.min(t.elapsed().as_secs_f64());
                std::hint::black_box(ds.twitter_timelines.len());
            }
            CrawlPoint {
                workers,
                expand_secs: best,
            }
        })
        .collect()
}

/// Drive `connections` logical Mastodon-timeline connections through a
/// rate-limit-storm chaos crawl, once on the legacy thread-per-worker
/// pool and once on the discrete-event scheduler, both on `os_threads`
/// OS threads, and compare wall-clock requests/sec.
fn bench_sched(
    world: &Arc<World>,
    latency_micros: u64,
    connections: usize,
    os_threads: usize,
) -> SchedReport {
    // One calm discovery supplies the matched users both runs cycle over.
    let discover_api = ApiServer::with_defaults(world.clone()).expect("valid default config");
    let base = Crawler::new(&discover_api, CrawlerConfig::default())
        .expect("valid crawler config")
        .discover()
        .expect("discover");
    assert!(!base.matched.is_empty(), "discovery found no matched users");

    let run = |tasks: Option<usize>| -> (u64, f64) {
        // Fresh server per run: same storm plan, same drained-from-full
        // buckets, same per-key chaos budgets for both execution models.
        let api = ApiServer::new(
            world.clone(),
            ApiConfig {
                request_latency_micros: latency_micros,
                chaos: Scenario::RateLimitStorm.plan(1234),
                ..ApiConfig::default()
            },
        )
        .expect("valid bench config");
        let crawler = Crawler::new(
            &api,
            CrawlerConfig {
                workers: os_threads,
                tasks,
                ..CrawlerConfig::default()
            },
        )
        .expect("valid crawler config");
        let t = Instant::now();
        let requests = crawler
            .drive_connections(&base, connections)
            .expect("storm crawl");
        (requests, t.elapsed().as_secs_f64())
    };

    let (legacy_requests, legacy_secs) = run(None);
    let (sched_requests, sched_secs) = run(Some(connections));
    let legacy_rps = legacy_requests as f64 / legacy_secs;
    let sched_rps = sched_requests as f64 / sched_secs;
    SchedReport {
        connections,
        os_threads,
        legacy_requests,
        legacy_secs,
        legacy_rps,
        sched_requests,
        sched_secs,
        sched_rps,
        speedup: sched_rps / legacy_rps,
    }
}

/// The `--paper` section: generate the paper-scale world (§2.1's 1.02 M
/// searchable users on 15,886 instances), crawl it end to end with the
/// default pipeline, and run the headline analysis — the whole study, one
/// process, per-phase wall-clocks plus the memory footprint. `--test`
/// (smoke) runs the identical path but writes no history entry, so CI can
/// exercise million-user completion without dirtying the artifact.
fn run_paper(smoke: bool) {
    let config = WorldConfig::paper_scale().with_seed(1234);
    eprintln!(
        "paper: generating {} users / {} instances…",
        config.n_searchable_users, config.n_instances
    );
    let t = Instant::now();
    let world = Arc::new(World::generate(&config).expect("world"));
    let generate_secs = t.elapsed().as_secs_f64();
    eprintln!(
        "paper: generate {:.1}s ({} tweets, {} statuses, peak rss {:.2} GiB)",
        generate_secs,
        world.tweets.len(),
        world.statuses.len(),
        mem::peak_rss_bytes() as f64 / f64::from(1u32 << 30)
    );

    let obs = Registry::new();
    let api = ApiServer::with_obs(world.clone(), ApiConfig::default(), obs.clone()).expect("api");
    let t = Instant::now();
    let dataset = Crawler::with_registry(&api, CrawlerConfig::default(), obs)
        .expect("valid crawler config")
        .run()
        .expect("crawl");
    let crawl_secs = t.elapsed().as_secs_f64();
    eprintln!(
        "paper: crawl {:.1}s ({} matched users, {} API requests)",
        crawl_secs,
        dataset.matched.len(),
        dataset.stats.requests
    );

    let study = MigrationStudy { world, dataset };
    let t = Instant::now();
    let headline = study.headline();
    let figures = study.render_all();
    let analyze_secs = t.elapsed().as_secs_f64();
    std::hint::black_box(figures.len());
    let (_, _, fails) = headline.verdict_counts();
    eprintln!("paper: analyze {analyze_secs:.1}s ({fails} headline metrics outside bands)");

    let mem = mem_snapshot();
    eprintln!(
        "paper: peak rss {} bytes ({:.2} GiB), {} allocations / {:.2} GiB allocated",
        mem.peak_rss_bytes,
        mem.peak_rss_bytes as f64 / f64::from(1u32 << 30),
        mem.alloc_count,
        mem.alloc_bytes as f64 / f64::from(1u32 << 30)
    );

    if smoke {
        eprintln!("smoke mode: not writing BENCH_history.jsonl");
        return;
    }
    let report = PaperReport {
        sha: bench_sha(),
        label: "paper_scale".to_string(),
        world: format!("WorldConfig::paper_scale().with_seed({})", config.seed),
        host_cpus: std::thread::available_parallelism().map_or(1, |n| n.get()),
        users: config.n_searchable_users,
        instances: config.n_instances,
        generate_secs,
        crawl_secs,
        analyze_secs,
        matched: study.dataset.matched.len(),
        requests: study.dataset.stats.requests,
        mem,
    };
    append_history(&serde_json::to_string(&report).expect("serialize paper report"));
}

/// Append one compact JSON line to the committed history, newest last.
fn append_history(line: &str) {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_history.jsonl");
    let mut history = std::fs::read_to_string(path).unwrap_or_default();
    if !history.is_empty() && !history.ends_with('\n') {
        history.push('\n');
    }
    history.push_str(line);
    history.push('\n');
    std::fs::write(path, history).expect("write BENCH_history.jsonl");
    eprintln!("appended to {path}");
}

/// The commit key for the history entry.
fn bench_sha() -> String {
    if let Ok(sha) = std::env::var("FLOCK_BENCH_SHA") {
        return sha;
    }
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .unwrap_or_else(|| "unknown".to_string())
}

fn main() {
    // Criterion-compatible smoke flag: `cargo bench -- --test` must finish
    // in seconds and must not touch the committed artifact.
    let smoke = std::env::args().any(|a| a == "--test");
    if std::env::args().any(|a| a == "--paper") {
        run_paper(smoke);
        return;
    }

    let config = WorldConfig::small().with_seed(1234);
    let world = Arc::new(World::generate(&config).expect("world"));
    let api = ApiServer::with_defaults(world.clone()).unwrap();

    // Smoke mode trims what is *expensive* (scan passes, the worker sweep,
    // 10k connections), never what is *gated*: bench_check.sh compares the
    // smoke indexed qps and expand wall-clocks against the recorded
    // full-run medians, so those must be measured with full-run rigor or
    // the comparison is noise.
    let search = if smoke {
        bench_search(&api, 40, 1)
    } else {
        bench_search(&api, 40, 4)
    };
    eprintln!(
        "search: indexed {:.0} qps vs scan {:.0} qps ({:.1}x)",
        search.indexed_qps, search.scan_qps, search.speedup
    );

    // What a crawl worker pool buys is *overlapped request latency* — the
    // paper's crawl was network-bound, not CPU-bound. The zero-latency
    // simulator finishes the small expansion in milliseconds of pure CPU,
    // which no thread count can improve (and on a single-core host would
    // even regress), so the crawl comparison switches on the simulated
    // per-request latency and measures how well N workers hide it.
    let latency_micros = 500;
    let crawl = if smoke {
        bench_crawl(&world, latency_micros, &[1, 4], 3)
    } else {
        bench_crawl(&world, latency_micros, &[1, 2, 4, 8], 3)
    };
    for p in &crawl {
        eprintln!("expand: workers={} {:.3}s", p.workers, p.expand_secs);
    }
    let secs_at = |w: usize| {
        crawl
            .iter()
            .find(|p| p.workers == w)
            .map(|p| p.expand_secs)
            .unwrap_or(f64::NAN)
    };
    let crawl_speedup_at_4 = secs_at(1) / secs_at(4);
    eprintln!("expand speedup at 4 workers: {crawl_speedup_at_4:.2}x");

    // The scheduler comparison: the same per-request latency the thread
    // pool must sleep out, a rate-limit storm to force heavy retry/wait
    // traffic, and an order of magnitude more logical connections than OS
    // threads. The thread pool serialises each thread's connections; the
    // scheduler overlaps every in-flight latency and only moves the
    // virtual clock when nothing is runnable.
    let connections = if smoke { 256 } else { 10_000 };
    let sched = bench_sched(&world, latency_micros, connections, 8);
    eprintln!(
        "sched: {} connections on {} threads: scheduler {:.0} rps vs threads {:.0} rps ({:.1}x)",
        sched.connections, sched.os_threads, sched.sched_rps, sched.legacy_rps, sched.speedup
    );

    let mem = mem_snapshot();
    eprintln!(
        "mem: peak rss {} bytes, {} allocations",
        mem.peak_rss_bytes, mem.alloc_count
    );
    if smoke {
        eprintln!("smoke mode: not writing BENCH_history.jsonl");
        return;
    }
    let report = Report {
        sha: bench_sha(),
        label: std::env::var("FLOCK_BENCH_LABEL").unwrap_or_else(|_| "throughput".to_string()),
        world: format!("WorldConfig::small().with_seed({})", config.seed),
        host_cpus: std::thread::available_parallelism().map_or(1, |n| n.get()),
        request_latency_micros: latency_micros,
        search,
        crawl,
        crawl_speedup_at_4,
        sched,
        mem,
    };
    append_history(&serde_json::to_string(&report).expect("serialize report"));
}

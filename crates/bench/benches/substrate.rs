//! Benchmarks of the generative substrates: social graphs, instance
//! populations, and the ActivityPub federation network.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flock_activitypub::{FediverseNetwork, NetworkConfig};
use flock_core::DetRng;
use flock_core::TwitterUserId;
use flock_fedisim::graph::{build_friend_graph, realize_followees};
use flock_fedisim::instances::generate_instances;
use flock_fedisim::migration::InstanceSampler;
use std::hint::black_box;

fn bench_friend_graph(c: &mut Criterion) {
    let mut group = c.benchmark_group("friend_graph");
    group.sample_size(10);
    for n in [500usize, 2_000, 8_000] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut rng = DetRng::new(1);
                black_box(build_friend_graph(n, 12.0, 0.55, 0.045, &mut rng))
            })
        });
    }
    group.finish();
}

fn bench_followee_realization(c: &mut Criterion) {
    let friends: Vec<TwitterUserId> = (0..40).map(TwitterUserId).collect();
    let pool: Vec<TwitterUserId> = (1_000..100_000).map(TwitterUserId).collect();
    c.bench_function("realize_followees_800", |b| {
        let mut rng = DetRng::new(2);
        b.iter(|| {
            black_box(realize_followees(
                TwitterUserId(0),
                &friends,
                800,
                &pool,
                &mut rng,
            ))
        })
    });
}

fn bench_instances(c: &mut Criterion) {
    let mut group = c.benchmark_group("instances");
    for n in [500usize, 5_000, 16_000] {
        group.bench_with_input(BenchmarkId::new("generate", n), &n, |b, &n| {
            b.iter(|| {
                let mut rng = DetRng::new(3);
                black_box(generate_instances(n, 2.1, &mut rng))
            })
        });
    }
    group.bench_function("sampler_build_16000", |b| {
        b.iter(|| black_box(InstanceSampler::new(16_000, 2.1)))
    });
    let sampler = InstanceSampler::new(16_000, 2.1);
    group.bench_function("sampler_draw", |b| {
        let mut rng = DetRng::new(4);
        b.iter(|| black_box(sampler.sample(1.3, &mut rng)))
    });
    group.finish();
}

fn bench_federation(c: &mut Criterion) {
    let mut group = c.benchmark_group("activitypub");
    group.sample_size(10);
    group.bench_function("hub_1000_remote_follows", |b| {
        b.iter(|| {
            let mut net = FediverseNetwork::new(NetworkConfig::default(), 5);
            let hub = net.register_actor("hub", "hub.example").unwrap();
            for i in 0..1000 {
                let f = net
                    .register_actor(&format!("f{i}"), &format!("i{}.example", i % 50))
                    .unwrap();
                net.follow(&f, &hub).unwrap();
            }
            net.run_to_quiescence(64);
            black_box(net.followers_of(&hub).unwrap().len())
        })
    });
    group.bench_function("move_account_500_followers", |b| {
        b.iter(|| {
            let mut net = FediverseNetwork::new(NetworkConfig::default(), 6);
            let old = net.register_actor("u", "big.example").unwrap();
            let new = net.register_actor("u", "niche.example").unwrap();
            for i in 0..500 {
                let f = net
                    .register_actor(&format!("f{i}"), &format!("i{}.example", i % 25))
                    .unwrap();
                net.follow(&f, &old).unwrap();
            }
            net.run_to_quiescence(64);
            net.set_also_known_as(&new, &old).unwrap();
            net.move_account(&old, &new).unwrap();
            net.run_to_quiescence(128);
            black_box(net.followers_of(&new).unwrap().len())
        })
    });
    group.finish();
}

criterion_group!(
    substrate,
    bench_friend_graph,
    bench_followee_realization,
    bench_instances,
    bench_federation,
);
criterion_main!(substrate);

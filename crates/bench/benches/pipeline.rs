//! End-to-end pipeline benchmarks: world generation, search-index
//! construction, single API calls, and the complete §3 crawl.

use criterion::{criterion_group, criterion_main, Criterion};
use flock_apis::ApiServer;
use flock_bench::bench_world;
use flock_core::Day;
use flock_crawler::pipeline::crawl;
use flock_fedisim::{World, WorldConfig};
use std::hint::black_box;

fn bench_world_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("world");
    group.sample_size(10);
    group.bench_function("generate_small", |b| {
        b.iter(|| black_box(World::generate(&WorldConfig::small().with_seed(1)).unwrap()))
    });
    group.finish();
}

fn bench_api_server(c: &mut Criterion) {
    let world = bench_world().clone();
    let mut group = c.benchmark_group("api");
    group.sample_size(10);
    group.bench_function("build_search_index", |b| {
        b.iter(|| black_box(ApiServer::with_defaults(world.clone()).unwrap()))
    });
    group.finish();

    let api = ApiServer::with_defaults(world).unwrap();
    let mut group = c.benchmark_group("api_requests");
    group.bench_function("search_keyword", |b| {
        b.iter(|| {
            api.advance_clock(10); // keep the rate limiter satisfied
            black_box(
                api.twitter_search("mastodon", Day::COLLECTION_START, Day::COLLECTION_END, None)
                    .unwrap(),
            )
        })
    });
    // Ablation of the host-index design choice: the same logical search
    // expressed as a bare OR forfeits the index's required-token shortcut
    // and scans the corpus. The gap is the speedup the index buys the
    // 15,886 instance-link queries of §3.1.
    group.bench_function("search_or_query_full_scan", |b| {
        b.iter(|| {
            api.advance_clock(10);
            black_box(
                api.twitter_search(
                    "url:\"mastodon.social\" OR url:\"mastodon.online\"",
                    Day::COLLECTION_START,
                    Day::COLLECTION_END,
                    None,
                )
                .unwrap(),
            )
        })
    });
    group.bench_function("search_instance_link", |b| {
        b.iter(|| {
            api.advance_clock(10);
            black_box(
                api.twitter_search(
                    "url:\"mastodon.social\"",
                    Day::COLLECTION_START,
                    Day::COLLECTION_END,
                    None,
                )
                .unwrap(),
            )
        })
    });
    group.finish();
}

fn bench_full_crawl(c: &mut Criterion) {
    let world = bench_world().clone();
    let mut group = c.benchmark_group("crawl");
    group.sample_size(10);
    group.bench_function("full_study_small", |b| {
        b.iter(|| {
            let api = ApiServer::with_defaults(world.clone()).unwrap();
            black_box(crawl(&api).unwrap())
        })
    });
    group.finish();
}

criterion_group!(
    pipeline,
    bench_world_generation,
    bench_api_server,
    bench_full_crawl
);
criterion_main!(pipeline);

//! Micro-benchmarks of the pipeline's hot inner loops.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use flock_apis::{Query, RatePolicy, TokenBucket, TweetDoc};
use flock_core::handle::extract_handles;
use flock_core::DetRng;
use flock_textsim::{cosine, embed, tokenize, PostGenerator, Topic, ToxicityScorer};
use std::hint::black_box;

const BIO: &str = "ex-birdsite, into #rustlang and photography. \
     find me at @quiet_otter@mastodon.social or https://hachyderm.io/@quiet_otter — \
     email me at not.a.handle@example.com";

fn bench_handle_extraction(c: &mut Criterion) {
    let mut group = c.benchmark_group("handle_extraction");
    group.throughput(Throughput::Bytes(BIO.len() as u64));
    group.bench_function("bio_with_two_handles", |b| {
        b.iter(|| black_box(extract_handles(BIO)))
    });
    let clean = "just a normal tweet about the weather with no handles at all in it";
    group.throughput(Throughput::Bytes(clean.len() as u64));
    group.bench_function("text_without_handles", |b| {
        b.iter(|| black_box(extract_handles(clean)))
    });
    group.finish();
}

fn bench_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("search_query");
    group.bench_function("parse_keyword", |b| {
        b.iter(|| black_box(Query::parse("mastodon")).unwrap())
    });
    group.bench_function("parse_complex", |b| {
        b.iter(|| {
            black_box(Query::parse(
                "(mastodon OR koo) \"bye bye twitter\" -#ad url:\"mastodon.social\"",
            ))
            .unwrap()
        })
    });
    let q = Query::parse("#twittermigration \"bye bye twitter\"").unwrap();
    let doc = TweetDoc::new(
        "ok that's it, bye bye twitter — find me on the other site #TwitterMigration",
        "someone",
    );
    group.bench_function("eval_match", |b| b.iter(|| black_box(q.matches(&doc))));
    group.bench_function("build_doc", |b| {
        b.iter(|| {
            black_box(TweetDoc::new(
                "ok that's it, bye bye twitter — find me on the other site #TwitterMigration",
                "someone",
            ))
        })
    });
    group.finish();
}

fn bench_text(c: &mut Criterion) {
    let gen = PostGenerator::default();
    let mut rng = DetRng::new(7);
    let post_a = gen.generate(Topic::Politics, &mut rng);
    let post_b = gen.generate(Topic::Politics, &mut rng);
    let mut group = c.benchmark_group("textsim");
    group.bench_function("tokenize", |b| b.iter(|| black_box(tokenize(&post_a))));
    group.bench_function("embed", |b| b.iter(|| black_box(embed(&post_a))));
    let (ea, eb) = (embed(&post_a), embed(&post_b));
    group.bench_function("cosine", |b| b.iter(|| black_box(cosine(&ea, &eb))));
    let scorer = ToxicityScorer::new();
    group.bench_function("toxicity_score", |b| {
        b.iter(|| black_box(scorer.score(&post_a)))
    });
    group.bench_function("generate_post", |b| {
        b.iter(|| black_box(gen.generate(Topic::Tech, &mut rng)))
    });
    group.bench_function("paraphrase", |b| {
        b.iter(|| black_box(gen.paraphrase(&post_a, &mut rng)))
    });
    group.finish();
}

fn bench_rng(c: &mut Criterion) {
    let mut rng = DetRng::new(9);
    let mut group = c.benchmark_group("rng");
    group.bench_function("next_u64", |b| b.iter(|| black_box(rng.next_u64())));
    group.bench_function("zipf_1000", |b| b.iter(|| black_box(rng.zipf(1000, 1.2))));
    group.bench_function("lognormal", |b| {
        b.iter(|| black_box(rng.lognormal(0.0, 1.0)))
    });
    group.bench_function("poisson_4", |b| b.iter(|| black_box(rng.poisson(4.0))));
    group.finish();
}

fn bench_rate_limit(c: &mut Criterion) {
    c.bench_function("token_bucket_acquire", |b| {
        let mut bucket = TokenBucket::new(RatePolicy::twitter_search(), 0);
        let mut now = 0u64;
        b.iter(|| {
            now += 1;
            black_box(bucket.try_acquire(now).is_ok())
        })
    });
}

criterion_group!(
    components,
    bench_handle_extraction,
    bench_query,
    bench_text,
    bench_rng,
    bench_rate_limit,
);
criterion_main!(components);

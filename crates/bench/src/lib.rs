//! # flock-bench — shared fixtures for the benchmark harness
//!
//! The benches in `benches/` cover four layers:
//!
//! * `components` — the hot inner loops (handle extraction, query
//!   evaluation, embeddings, toxicity scoring, rate limiting);
//! * `substrate` — the generative substrates (graphs, instances, the
//!   ActivityPub network);
//! * `pipeline` — world generation, index construction, and the full §3
//!   crawl;
//! * `figures` — **one benchmark per paper figure** (Fig. 1–16 plus the
//!   headline table): the exact code paths `repro <figN>` runs, measured
//!   over a prebuilt crawled dataset.

use flock_apis::ApiServer;
use flock_crawler::dataset::Dataset;
use flock_crawler::pipeline::crawl;
use flock_fedisim::{World, WorldConfig};
use std::sync::{Arc, OnceLock};

/// A lazily-built small world shared by benches (building worlds inside the
/// measurement loop would swamp the figure timings).
pub fn bench_world() -> &'static Arc<World> {
    static CELL: OnceLock<Arc<World>> = OnceLock::new();
    CELL.get_or_init(|| {
        // flock-lint: allow(panic) benches have no error channel; a broken world build must abort
        Arc::new(World::generate(&WorldConfig::small().with_seed(1234)).expect("world"))
    })
}

/// The crawled dataset over [`bench_world`].
pub fn bench_dataset() -> &'static Dataset {
    static CELL: OnceLock<Dataset> = OnceLock::new();
    CELL.get_or_init(|| {
        // flock-lint: allow(panic) benches have no error channel; a broken server config must abort
        let api = ApiServer::with_defaults(bench_world().clone()).expect("valid default config");
        // flock-lint: allow(panic) benches have no error channel; a failed warm-up crawl must abort
        crawl(&api).expect("crawl")
    })
}

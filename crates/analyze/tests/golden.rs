//! Golden tests for the call-graph passes, mirroring
//! `crates/lint/tests/golden.rs`: fixture sources live under
//! `tests/fixtures/` (a directory both walkers skip, so the deliberately
//! violating code never trips the real gates) and are analyzed under
//! *pretend* workspace paths, since path classification and manifest
//! qualification key off them.

use flock_analyze::{analyze_files, json, Finding, TierManifest, TIER_MANIFEST_PATH};
use flock_lint::manifest::LockManifest;
use flock_lint::rules::{RULE_CALL_LOCK_ORDER, RULE_DIRECTIVE, RULE_TIER_TAINT};
use flock_lint::walk;
use std::path::{Path, PathBuf};

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

fn tier_manifest() -> TierManifest {
    TierManifest::parse(
        "source call current_worker\n\
         sink fn to_json\n\
         sink call save\n\
         boundary fn request_like\n",
        "test-tier",
    )
    .expect("test tier manifest parses")
}

fn lock_manifest() -> LockManifest {
    LockManifest::parse(
        "1 clock\n2 search users follows\n3 mastodon\n",
        "test-locks",
    )
    .expect("test lock manifest parses")
}

/// Analyze fixtures under pretend paths.
fn run(files: &[(&str, &str)]) -> Vec<Finding> {
    let owned: Vec<(String, String)> = files
        .iter()
        .map(|(path, name)| (path.to_string(), fixture(name)))
        .collect();
    analyze_files(&owned, &tier_manifest(), &lock_manifest())
}

#[test]
fn cross_file_taint_fires_with_the_full_chain() {
    let findings = run(&[
        ("crates/crawler/src/taint_fire_a.rs", "taint_fire_a.rs"),
        ("crates/crawler/src/taint_fire_b.rs", "taint_fire_b.rs"),
    ]);
    assert_eq!(findings.len(), 1, "{findings:#?}");
    let f = &findings[0];
    assert_eq!(f.path, "crates/crawler/src/taint_fire_b.rs");
    assert_eq!(f.line, 6); // the ds.save(path) call
    assert_eq!(f.rule, RULE_TIER_TAINT);
    // The witness chain crosses two call hops and two files down to the
    // concrete source.
    for part in [
        "stamp_and_save",
        "provenance_note",
        "worker_tag",
        "taint_fire_a.rs",
        "`current_worker(…)` [Sched source]",
    ] {
        assert!(
            f.message.contains(part),
            "missing {part:?} in {}",
            f.message
        );
    }
}

#[test]
fn a_tainted_sink_fn_fires_at_its_definition() {
    let findings = run(&[("crates/crawler/src/taint_sink_fn.rs", "taint_sink_fn.rs")]);
    assert_eq!(findings.len(), 1, "{findings:#?}");
    let f = &findings[0];
    assert_eq!((f.line, f.rule), (11, RULE_TIER_TAINT));
    assert!(f.message.contains("sink fn `to_json`"), "{}", f.message);
    assert!(f.message.contains("describe_slot"), "{}", f.message);
    assert!(f.message.contains("slot_id"), "{}", f.message);
}

#[test]
fn a_declared_boundary_stops_propagation() {
    let findings = run(&[("crates/crawler/src/taint_clean.rs", "taint_clean.rs")]);
    assert!(findings.is_empty(), "{findings:#?}");
}

#[test]
fn an_allow_with_reason_suppresses_taint() {
    let findings = run(&[(
        "crates/crawler/src/taint_allow_reason.rs",
        "taint_allow_reason.rs",
    )]);
    assert!(findings.is_empty(), "{findings:#?}");
}

#[test]
fn an_allow_without_reason_is_itself_flagged() {
    let findings = run(&[(
        "crates/crawler/src/taint_allow_no_reason.rs",
        "taint_allow_no_reason.rs",
    )]);
    let got: Vec<(u32, &str)> = findings.iter().map(|f| (f.line, f.rule)).collect();
    assert_eq!(got, vec![(11, RULE_DIRECTIVE)], "{findings:#?}");
}

#[test]
fn cross_file_nested_locks_fire_with_the_acquisition_path() {
    let findings = run(&[
        ("crates/apis/src/lock_fire_helper.rs", "lock_fire_helper.rs"),
        ("crates/apis/src/lock_fire_main.rs", "lock_fire_main.rs"),
    ]);
    assert_eq!(findings.len(), 1, "{findings:#?}");
    let f = &findings[0];
    assert_eq!(f.path, "crates/apis/src/lock_fire_main.rs");
    assert_eq!(f.line, 8); // the reroute(srv) call under the mastodon guard
    assert_eq!(f.rule, RULE_CALL_LOCK_ORDER);
    for part in [
        "`search` (level 2)",
        "`mastodon` (level 3",
        "reroute",
        "refresh_search",
        "`.lock()` on `search`",
        "lock_fire_helper.rs",
    ] {
        assert!(
            f.message.contains(part),
            "missing {part:?} in {}",
            f.message
        );
    }
}

#[test]
fn downward_lock_order_through_calls_is_clean() {
    let findings = run(&[("crates/apis/src/lock_clean.rs", "lock_clean.rs")]);
    assert!(findings.is_empty(), "{findings:#?}");
}

#[test]
fn an_allow_with_reason_suppresses_call_lock_order() {
    let findings = run(&[(
        "crates/apis/src/lock_allow_reason.rs",
        "lock_allow_reason.rs",
    )]);
    assert!(findings.is_empty(), "{findings:#?}");
}

// ---------------------------------------------------------------------
// Acceptance: the real workspace is clean under the real manifests.
// ---------------------------------------------------------------------

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root above crates/analyze")
        .to_path_buf()
}

fn workspace_files(root: &Path) -> Vec<(String, String)> {
    walk::collect_rs_files(root)
        .expect("walk workspace")
        .into_iter()
        .map(|rel| {
            let src = std::fs::read_to_string(root.join(&rel))
                .unwrap_or_else(|e| panic!("read {rel}: {e}"));
            (rel, src)
        })
        .collect()
}

fn real_manifests(root: &Path) -> (TierManifest, LockManifest) {
    let tier_path = root.join(TIER_MANIFEST_PATH);
    let tier_text = std::fs::read_to_string(&tier_path)
        .unwrap_or_else(|e| panic!("read {}: {e}", tier_path.display()));
    let tier = TierManifest::parse(&tier_text, TIER_MANIFEST_PATH).expect("tier.manifest parses");
    assert!(
        !tier.source_calls.is_empty() && !tier.sink_fns.is_empty(),
        "tier.manifest must declare real sources and sinks"
    );
    let locks = walk::load_lock_manifest(root).expect("lock manifest parses");
    assert!(!locks.is_empty(), "lock-order.manifest must exist");
    (tier, locks)
}

#[test]
fn workspace_is_clean() {
    let root = workspace_root();
    let files = workspace_files(&root);
    let (tier, locks) = real_manifests(&root);
    let findings = analyze_files(&files, &tier, &locks);
    assert!(
        findings.is_empty(),
        "workspace has analyze findings:\n{}",
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn the_boundaries_are_load_bearing() {
    // Guard against the manifest rotting into a no-op: stripping the
    // boundary declarations must surface the known Sched→Data flows
    // (span ids in `request`, available_parallelism in the fig14 pool).
    let root = workspace_root();
    let files = workspace_files(&root);
    let (tier, locks) = real_manifests(&root);
    let unbounded = TierManifest {
        boundary_fns: Vec::new(),
        ..tier
    };
    let findings = analyze_files(&files, &unbounded, &locks);
    assert!(
        findings.len() >= 5,
        "stripping boundaries should expose the declared flows, got {findings:#?}"
    );
    assert!(
        findings
            .iter()
            .all(|f| f.rule == RULE_TIER_TAINT && f.message.contains("[Sched source]")),
        "{findings:#?}"
    );
}

#[test]
fn json_output_is_deterministic_across_runs() {
    let root = workspace_root();
    let (tier, locks) = real_manifests(&root);
    // Two full pipelines from disk — walk, read, build, analyze, render —
    // must agree to the byte.
    let run = || {
        let files = workspace_files(&root);
        let findings = analyze_files(&files, &tier, &locks);
        json::render(&findings, files.len())
    };
    let first = run();
    let second = run();
    assert_eq!(first, second);
    assert!(first.contains("\"tool\": \"flock-analyze\""));
}

#[test]
fn json_findings_round_trip_fixture_content() {
    // The fixture findings render with escaped chains intact and in
    // sorted order regardless of input file order.
    let forward = run(&[
        ("crates/crawler/src/taint_fire_a.rs", "taint_fire_a.rs"),
        ("crates/crawler/src/taint_fire_b.rs", "taint_fire_b.rs"),
        ("crates/apis/src/lock_fire_helper.rs", "lock_fire_helper.rs"),
        ("crates/apis/src/lock_fire_main.rs", "lock_fire_main.rs"),
    ]);
    let reversed = run(&[
        ("crates/apis/src/lock_fire_main.rs", "lock_fire_main.rs"),
        ("crates/apis/src/lock_fire_helper.rs", "lock_fire_helper.rs"),
        ("crates/crawler/src/taint_fire_b.rs", "taint_fire_b.rs"),
        ("crates/crawler/src/taint_fire_a.rs", "taint_fire_a.rs"),
    ]);
    assert_eq!(json::render(&forward, 4), json::render(&reversed, 4));
    assert_eq!(forward.len(), 2);
}

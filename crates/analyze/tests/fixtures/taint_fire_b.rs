use crate::dataset::Dataset;
use std::path::Path;

pub fn stamp_and_save(ds: &mut Dataset, path: &Path) -> std::io::Result<()> {
    ds.provenance = provenance_note();
    ds.save(path)
}

use crate::dataset::Dataset;
use flock_obs::trace;
use std::path::Path;

pub fn worker_tag() -> String {
    format!("w{}", trace::current_worker().unwrap_or(99))
}

pub fn stamp_and_save(ds: &mut Dataset, path: &Path) -> std::io::Result<()> {
    ds.provenance = worker_tag();
    // flock-lint: allow(tier-taint) debug build only; the provenance field is stripped before the dataset is published
    ds.save(path)
}

use crate::server::Server;

/// Innocent on its own: a single level-2 acquisition.
pub fn refresh_search(srv: &Server) {
    let mut index = srv.search.lock();
    index.clear();
}

/// One more hop, so the witness path has depth: callers of `reroute`
/// may-acquire `search` through it.
pub fn reroute(srv: &Server) {
    refresh_search(srv);
}

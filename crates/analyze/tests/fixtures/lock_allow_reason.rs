use crate::server::Server;

pub fn refresh_search(srv: &Server) {
    let mut index = srv.search.lock();
    index.clear();
}

pub fn handle_status(srv: &Server) {
    let shard = srv.mastodon.lock();
    // flock-lint: allow(call-lock-order) single-threaded bootstrap path; no concurrent acquirer exists before serving starts
    refresh_search(srv);
    drop(shard);
}

use flock_obs::trace;

fn slot_id() -> usize {
    trace::current_worker().unwrap_or(0)
}

fn describe_slot() -> String {
    format!("slot {}", slot_id())
}

pub fn to_json(rows: &[u64]) -> String {
    format!("{{\"by\":\"{}\",\"rows\":{}}}", describe_slot(), rows.len())
}

use flock_obs::trace;

pub fn worker_tag() -> String {
    let w = trace::current_worker().unwrap_or(99);
    format!("w{w}")
}

pub fn provenance_note() -> String {
    format!("crawled by {}", worker_tag())
}

use crate::server::Server;

/// Holds `mastodon` (level 3) across a call whose transitive callee
/// acquires `search` (level 2) — invisible to the lexical rule, which
/// never sees both acquisitions in one body.
pub fn handle_status(srv: &Server) {
    let shard = srv.mastodon.lock();
    reroute(srv);
    drop(shard);
}

use crate::server::Server;

pub fn shard_len(srv: &Server) -> usize {
    let shard = srv.mastodon.lock();
    shard.len()
}

/// Strictly downward: holds `clock` (level 1), callee acquires
/// `mastodon` (level 3).
pub fn tick(srv: &Server) -> usize {
    let _t = srv.clock.lock();
    shard_len(srv)
}

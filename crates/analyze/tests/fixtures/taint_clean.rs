use crate::dataset::Dataset;
use flock_obs::trace;
use std::path::Path;

/// Declared `boundary fn` in the test manifest: consumes the worker slot
/// for telemetry only, returns a Data-clean payload.
pub fn request_like(url: &str) -> String {
    let _slot = trace::current_worker();
    format!("body of {url}")
}

pub fn crawl_and_save(ds: &mut Dataset, path: &Path) -> std::io::Result<()> {
    ds.body = request_like("https://example.test/api");
    ds.save(path)
}

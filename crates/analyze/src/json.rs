//! Stable JSON rendering of findings (`flock-analyze --json`).
//!
//! The output is part of the CI contract: two runs over the same tree must
//! be byte-identical, so the renderer is hand-rolled (no map types, no
//! dependency on serializer internals), keys appear in a fixed order, and
//! findings are emitted in the already-sorted `(path, line, rule,
//! message)` order produced by [`crate::analyze_files`].

use flock_lint::Finding;

/// Render a full report. Ends with a newline.
pub fn render(findings: &[Finding], files_scanned: usize) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"tool\": \"flock-analyze\",\n");
    out.push_str(&format!("  \"files_scanned\": {files_scanned},\n"));
    out.push_str(&format!("  \"finding_count\": {},\n", findings.len()));
    out.push_str("  \"findings\": [");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {");
        out.push_str(&format!("\"path\": {}, ", escape(&f.path)));
        out.push_str(&format!("\"line\": {}, ", f.line));
        out.push_str(&format!("\"rule\": {}, ", escape(f.rule)));
        out.push_str(&format!("\"message\": {}", escape(&f.message)));
        out.push('}');
    }
    if !findings.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

/// JSON string escaping (control characters, quotes, backslashes).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_stable_and_escaped() {
        let findings = vec![Finding {
            path: "crates/x/src/a.rs".to_string(),
            line: 3,
            rule: "tier-taint",
            message: "chain: a -> \"b\"\nend".to_string(),
        }];
        let a = render(&findings, 7);
        let b = render(&findings, 7);
        assert_eq!(a, b);
        assert!(a.contains("\\\"b\\\"\\nend"));
        assert!(a.ends_with("}\n"));
    }

    #[test]
    fn empty_report_is_well_formed() {
        let r = render(&[], 0);
        assert!(r.contains("\"findings\": []"));
    }
}

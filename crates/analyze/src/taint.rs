//! The tier-taint pass: Sched-tier sources must not reach Data-tier sinks.
//!
//! A function is *directly* tainted when its body touches a manifest
//! source — a `source call` with call parentheses, a two-segment
//! `source path`, or a bare `source token`. Taint then propagates from
//! callee to caller along resolved call edges (a caller observes its
//! callee's Sched-derived return value), except out of `boundary fn`s:
//! those consume Sched data by declared contract (e.g. span attribution)
//! and return Data-clean values, so propagation stops there — though a
//! boundary fn is still checked internally for sink calls of its own.
//!
//! Two finding shapes, both carrying the full witness chain:
//!
//! * a **sink fn** (a Data-writer definition) whose body becomes tainted;
//! * a **tainted fn calling a sink** (`sink call` name match at the call
//!   site) — the leak is the call argument/state flowing into the writer.

use crate::graph::Graph;
use crate::manifest::TierManifest;
use crate::Emitter;
use flock_lint::rules::RULE_TIER_TAINT;
use std::collections::VecDeque;

/// Why a fn is tainted — enough to reconstruct a witness chain.
enum Cause {
    /// The body touches a manifest source directly.
    Direct { line: u32, what: String },
    /// It calls a tainted fn at `line`.
    Via { callee: usize, line: u32 },
}

pub(crate) fn check(g: &Graph, m: &TierManifest, out: &mut Emitter) {
    if m.source_calls.is_empty() && m.source_paths.is_empty() && m.source_tokens.is_empty() {
        return;
    }
    let mut cause: Vec<Option<Cause>> = g.fns.iter().map(|_| None).collect();

    // Direct taint: first source hit in token order wins.
    for (id, def) in g.fns.iter().enumerate() {
        let Some(lexed) = g.lexed.get(&def.file) else {
            continue;
        };
        let t = &lexed.tokens;
        for &k in &def.toks {
            let tok = &t[k];
            if !tok.is_ident {
                continue;
            }
            let hit = if m.source_calls.iter().any(|s| tok.is(s))
                && t.get(k + 1).is_some_and(|n| n.punct('('))
                && !(k > 0 && t[k - 1].is("fn"))
            {
                Some(format!("`{}(…)`", tok.text))
            } else if m.source_tokens.iter().any(|s| tok.is(s)) {
                Some(format!("`{}`", tok.text))
            } else {
                m.source_paths
                    .iter()
                    .find(|(a, b)| {
                        tok.is(a)
                            && t.get(k + 1).is_some_and(|n| n.punct(':'))
                            && t.get(k + 2).is_some_and(|n| n.punct(':'))
                            && t.get(k + 3).is_some_and(|n| n.is(b))
                    })
                    .map(|(a, b)| format!("`{a}::{b}`"))
            };
            if let Some(what) = hit {
                cause[id] = Some(Cause::Direct {
                    line: tok.line,
                    what,
                });
                break;
            }
        }
    }

    // Propagate callee→caller (BFS, so chains are shortest-first and
    // deterministic), stopping at declared boundaries.
    let mut rev: Vec<Vec<(usize, usize)>> = g.fns.iter().map(|_| Vec::new()).collect();
    for (caller, outs) in g.edges.iter().enumerate() {
        for &(site, callee) in outs {
            rev[callee].push((caller, site));
        }
    }
    let mut queue: VecDeque<usize> = (0..g.fns.len()).filter(|&i| cause[i].is_some()).collect();
    while let Some(id) = queue.pop_front() {
        let def = &g.fns[id];
        if m.boundary_fns
            .iter()
            .any(|q| q.matches(&def.file, &def.name))
        {
            continue;
        }
        for &(caller, site) in &rev[id] {
            if cause[caller].is_none() {
                cause[caller] = Some(Cause::Via {
                    callee: id,
                    line: g.fns[caller].calls[site].line,
                });
                queue.push_back(caller);
            }
        }
    }

    // Findings.
    for (id, def) in g.fns.iter().enumerate() {
        if cause[id].is_none() {
            continue;
        }
        let Some(lexed) = g.lexed.get(&def.file) else {
            continue;
        };
        if m.sink_fns.iter().any(|q| q.matches(&def.file, &def.name)) {
            out.emit(
                lexed,
                &def.file,
                def.line,
                RULE_TIER_TAINT,
                format!(
                    "Sched-tier taint reaches Data-tier sink fn `{}`; {}",
                    def.name,
                    chain(g, &cause, id),
                ),
            );
        }
        for call in &def.calls {
            if m.sink_calls.contains(&call.callee) {
                out.emit(
                    lexed,
                    &def.file,
                    call.line,
                    RULE_TIER_TAINT,
                    format!(
                        "`{}` is Sched-tainted and calls Data-tier sink `{}(…)`; {}",
                        def.name,
                        call.callee,
                        chain(g, &cause, id),
                    ),
                );
            }
        }
    }
}

/// Render the witness chain from `id` down to the direct source.
fn chain(g: &Graph, cause: &[Option<Cause>], mut id: usize) -> String {
    let mut parts = Vec::new();
    loop {
        let def = &g.fns[id];
        match &cause[id] {
            Some(Cause::Via { callee, line }) => {
                parts.push(format!("{} ({}:{})", def.name, def.file, line));
                id = *callee;
            }
            Some(Cause::Direct { line, what }) => {
                parts.push(format!(
                    "{} ({}:{}) -> {what} [Sched source]",
                    def.name, def.file, line
                ));
                break;
            }
            None => break,
        }
        // A cycle in the cause links is impossible (BFS assigns each fn a
        // cause once, pointing at an earlier-discovered fn), but cap the
        // walk anyway rather than trusting that invariant with a hang.
        if parts.len() > g.fns.len() {
            break;
        }
    }
    format!("taint chain: {}", parts.join(" -> "))
}

//! Bounded scheduler models for `flock-analyze --sched-race`.
//!
//! Each model is a small task set run through
//! [`flock_sched::explore::Explorer`], which exhaustively permutes every
//! tied (same-virtual-instant) event batch and asserts the model's
//! Data-tier artifact is byte-identical across all schedules, that
//! Σ charged wait seconds equals the clock movement of every schedule,
//! and that every schedule ends at the same virtual time.
//!
//! The CI set ([`ci_reports`]) mirrors the shapes the crawler actually
//! runs on the executor — tied retry deadlines, a shared append log
//! canonicalized before output, a narrow admission window — and must
//! stay clean. [`sensitive_report`] is the deliberately order-sensitive
//! counter-model (last tied writer wins); the test suite asserts the
//! explorer *catches* it, which is what gives the clean runs their
//! meaning.

use flock_sched::explore::{ExploreError, Explorer, Outcome};
use flock_sched::{Step, Task};
use parking_lot::Mutex;
use std::sync::Arc;

/// One model's exploration result.
#[derive(Debug)]
pub struct ModelReport {
    pub name: &'static str,
    pub result: Result<Outcome, ExploreError>,
}

impl ModelReport {
    /// Clean means: explored without error and without truncation.
    pub fn ok(&self) -> bool {
        matches!(&self.result, Ok(o) if !o.truncated)
    }
}

/// A scripted task: `readies` Ready yields, then one Wait per entry
/// (relative deadline), then Done at the current instant.
struct Scripted {
    id: usize,
    readies: usize,
    waits: Vec<u64>,
    at: usize,
    finished_at: Option<u64>,
}

impl Scripted {
    fn new(id: usize, readies: usize, waits: Vec<u64>) -> Scripted {
        Scripted {
            id,
            readies,
            waits,
            at: 0,
            finished_at: None,
        }
    }
}

impl Task for Scripted {
    type Bill = usize;
    fn poll(&mut self, now: u64) -> Step<usize> {
        if self.readies > 0 {
            self.readies -= 1;
            return Step::Ready;
        }
        if self.at < self.waits.len() {
            let until = now.saturating_add(self.waits[self.at]);
            self.at += 1;
            return Step::Wait {
                until,
                bill: self.id,
            };
        }
        self.finished_at = Some(now);
        Step::Done
    }
}

/// Per-task finish times in task-id order — the order-insensitive way to
/// serialize a fan-out's results, mirroring the crawler's fold-by-input
/// -order contract.
fn finish_times(tasks: &[Scripted]) -> Vec<u8> {
    let mut out = Vec::with_capacity(tasks.len() * 8);
    for t in tasks {
        out.extend_from_slice(&t.finished_at.unwrap_or(u64::MAX).to_be_bytes());
    }
    out
}

/// Model 1: five workers back off to the *same* retry deadline (one 5-way
/// tie, 120 schedules), then proceed on distinct schedules.
fn tied_retry_deadlines() -> ModelReport {
    ModelReport {
        name: "tied-retry-deadlines",
        result: Explorer::default().explore(
            || {
                (0..5)
                    .map(|id| Scripted::new(id, 0, vec![10, 1 + id as u64]))
                    .collect::<Vec<_>>()
            },
            finish_times,
        ),
    }
}

/// A task that appends `(now, id)` to a shared log at each of two tied
/// wake-ups — the shape of concurrent workers reporting into one dataset.
struct Logger {
    id: usize,
    log: Arc<Mutex<Vec<(u64, usize)>>>,
    rounds: usize,
}

impl Task for Logger {
    type Bill = usize;
    fn poll(&mut self, now: u64) -> Step<usize> {
        if self.rounds > 0 {
            self.rounds -= 1;
            return Step::Wait {
                until: now + 5,
                bill: self.id,
            };
        }
        self.log.lock().push((now, self.id));
        Step::Done
    }
}

/// Model 2: four tasks race their appends into a shared log at the same
/// instant; the artifact sorts the log before rendering — append order is
/// Sched-tier noise, the sorted content is the Data tier.
fn shared_log_canonicalized() -> ModelReport {
    ModelReport {
        name: "shared-log-canonicalized",
        result: Explorer::default().explore(
            || {
                let log = Arc::new(Mutex::new(Vec::new()));
                (0..4)
                    .map(|id| Logger {
                        id,
                        log: Arc::clone(&log),
                        rounds: 2,
                    })
                    .collect::<Vec<_>>()
            },
            |tasks: &[Logger]| {
                let mut entries = tasks
                    .first()
                    .map(|t| t.log.lock().clone())
                    .unwrap_or_default();
                entries.sort_unstable();
                let mut out = Vec::with_capacity(entries.len() * 16);
                for (t, id) in entries {
                    out.extend_from_slice(&t.to_be_bytes());
                    out.extend_from_slice(&(id as u64).to_be_bytes());
                }
                out
            },
        ),
    }
}

/// Model 3: six identical tasks through an admission window of two — the
/// `--tasks` flag shape. Pairwise ties at every round; completion admits
/// the next input in input order.
fn windowed_admission() -> ModelReport {
    ModelReport {
        name: "windowed-admission",
        result: Explorer {
            window: 2,
            ..Explorer::default()
        }
        .explore(
            || {
                (0..6)
                    .map(|id| Scripted::new(id, 1, vec![7, 7]))
                    .collect::<Vec<_>>()
            },
            finish_times,
        ),
    }
}

/// The deliberately order-sensitive counter-model: three tasks wake at
/// one tied instant and each overwrites a shared slot; the artifact
/// exposes the last writer. The explorer must report divergence.
struct LastWriter {
    id: usize,
    slot: Arc<Mutex<usize>>,
    parked: bool,
}

impl Task for LastWriter {
    type Bill = usize;
    fn poll(&mut self, now: u64) -> Step<usize> {
        if !self.parked {
            self.parked = true;
            return Step::Wait {
                until: now + 3,
                bill: self.id,
            };
        }
        *self.slot.lock() = self.id;
        Step::Done
    }
}

/// The counter-model's report — expected to FAIL with
/// [`ExploreError::ArtifactDivergence`]; see the test suite.
pub fn sensitive_report() -> ModelReport {
    ModelReport {
        name: "last-writer-wins",
        result: Explorer::default().explore(
            || {
                let slot = Arc::new(Mutex::new(usize::MAX));
                (0..3)
                    .map(|id| LastWriter {
                        id,
                        slot: Arc::clone(&slot),
                        parked: false,
                    })
                    .collect::<Vec<_>>()
            },
            |tasks: &[LastWriter]| {
                tasks
                    .first()
                    .map(|t| (*t.slot.lock() as u64).to_be_bytes().to_vec())
                    .unwrap_or_default()
            },
        ),
    }
}

/// The CI gate's model set: every report must come back clean.
pub fn ci_reports() -> Vec<ModelReport> {
    vec![
        tied_retry_deadlines(),
        shared_log_canonicalized(),
        windowed_admission(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ci_models_are_clean_and_genuinely_branchy() {
        for report in ci_reports() {
            let outcome = report.result.as_ref().unwrap_or_else(|e| {
                panic!("{} failed: {e}", report.name);
            });
            assert!(!outcome.truncated, "{} truncated", report.name);
            assert!(
                outcome.branch_points >= 1 && outcome.schedules > 1,
                "{} explored nothing: {outcome:?}",
                report.name
            );
        }
    }

    #[test]
    fn tied_retry_model_is_exhaustive_at_five_factorial() {
        let report = tied_retry_deadlines();
        let outcome = report.result.expect("clean model");
        assert_eq!(outcome.schedules, 120);
        assert_eq!(outcome.max_tied, 5);
    }

    #[test]
    fn the_sensitive_model_is_caught() {
        let report = sensitive_report();
        assert!(
            matches!(report.result, Err(ExploreError::ArtifactDivergence { .. })),
            "{:?}",
            report.result
        );
        assert!(!report.ok());
    }
}

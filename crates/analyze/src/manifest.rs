//! The tier-taint manifest (`tier.manifest` at the workspace root).
//!
//! The two-tier observability contract (DESIGN.md) says Sched-tier values
//! — worker slots, span ids, attempt counts, anything the OS scheduler
//! influences — must never reach the Data tier, whose bytes are compared
//! across worker counts in CI. The manifest names both ends of that rule
//! so the taint pass can enforce it structurally:
//!
//! ```text
//! source call <name>          # calling <name>(…) taints the caller
//! source path <seg>::<seg>    # a qualified path read, e.g. thread::current
//! source token <ident>        # any mention of the identifier
//! sink fn  [<file>::]<name>   # a Data-writer definition: taint must not reach its body
//! sink call <name>            # calling <name>(…) from a tainted fn is a leak
//! boundary fn [<file>::]<name> # consumes Sched data, returns Data-clean values:
//!                              # taint stops here instead of propagating to callers
//! ```
//!
//! Blank lines and `#` comments are ignored; each `boundary` entry is
//! expected to carry a trailing comment justifying *why* its return value
//! is Data-clean — the manifest is the reasoned escape hatch at the
//! whole-program level, like `allow(...)` directives are at line level.
//! The optional `<file>::` qualifier (a path suffix such as
//! `rq3.rs::fig14_similarity`) pins an entry to one definition when the
//! bare name is not workspace-unique.

/// A fn name, optionally qualified by a defining-file path suffix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QualifiedName {
    pub file: Option<String>,
    pub name: String,
}

impl QualifiedName {
    fn parse(text: &str) -> QualifiedName {
        match text.rsplit_once("::") {
            Some((file, name)) if file.contains('.') || file.contains('/') => QualifiedName {
                file: Some(file.to_string()),
                name: name.to_string(),
            },
            _ => QualifiedName {
                file: None,
                name: text.to_string(),
            },
        }
    }

    /// Does this entry name the definition `name` in `file`?
    pub fn matches(&self, file: &str, name: &str) -> bool {
        self.name == name
            && self
                .file
                .as_ref()
                .is_none_or(|f| file.ends_with(f.as_str()))
    }
}

/// Parsed tier-taint manifest.
#[derive(Debug, Clone, Default)]
pub struct TierManifest {
    pub source_calls: Vec<String>,
    /// Two-segment qualified paths, e.g. `("thread", "current")`.
    pub source_paths: Vec<(String, String)>,
    pub source_tokens: Vec<String>,
    pub sink_fns: Vec<QualifiedName>,
    pub sink_calls: Vec<String>,
    pub boundary_fns: Vec<QualifiedName>,
    /// Where the manifest came from, for messages.
    pub source: String,
}

impl TierManifest {
    /// An empty manifest: no sources means no taint and no findings.
    pub fn empty() -> TierManifest {
        TierManifest::default()
    }

    /// Parse the manifest format; see the module docs for the grammar.
    pub fn parse(text: &str, source: &str) -> Result<TierManifest, String> {
        let mut m = TierManifest {
            source: source.to_string(),
            ..TierManifest::default()
        };
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let err = |what: &str| format!("{source}:{}: {what}", lineno + 1);
            let mut parts = line.split_whitespace();
            let (kind, shape, name) = match (parts.next(), parts.next(), parts.next()) {
                (Some(k), Some(s), Some(n)) => (k, s, n),
                _ => return Err(err("expected `<kind> <shape> <name>`")),
            };
            if parts.next().is_some() {
                return Err(err("trailing words after the entry name"));
            }
            match (kind, shape) {
                ("source", "call") => m.source_calls.push(name.to_string()),
                ("source", "path") => match name.split_once("::") {
                    Some((a, b)) if !a.is_empty() && !b.is_empty() && !b.contains("::") => {
                        m.source_paths.push((a.to_string(), b.to_string()));
                    }
                    _ => return Err(err("source path must be `<seg>::<seg>`")),
                },
                ("source", "token") => m.source_tokens.push(name.to_string()),
                ("sink", "fn") => m.sink_fns.push(QualifiedName::parse(name)),
                ("sink", "call") => m.sink_calls.push(name.to_string()),
                ("boundary", "fn") => m.boundary_fns.push(QualifiedName::parse(name)),
                _ => {
                    return Err(err(
                        "unknown entry; expected source call/path/token, sink fn/call, \
                         or boundary fn",
                    ))
                }
            }
        }
        Ok(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_entry_kind() {
        let m = TierManifest::parse(
            "# sources\n\
             source call current_worker\n\
             source path thread::current\n\
             source token WORKER_SLOT\n\
             sink fn to_json\n\
             sink fn rq3.rs::render\n\
             sink call save\n\
             boundary fn request # span ids feed Sched metrics only\n",
            "test",
        )
        .expect("parse");
        assert_eq!(m.source_calls, vec!["current_worker"]);
        assert_eq!(
            m.source_paths,
            vec![("thread".to_string(), "current".to_string())]
        );
        assert_eq!(m.source_tokens, vec!["WORKER_SLOT"]);
        assert_eq!(m.sink_calls, vec!["save"]);
        assert!(m.sink_fns[0].matches("crates/crawler/src/persist.rs", "to_json"));
        assert!(m.sink_fns[1].matches("crates/analysis/src/rq3.rs", "render"));
        assert!(!m.sink_fns[1].matches("crates/analysis/src/rq2.rs", "render"));
        assert!(m.boundary_fns[0].matches("crates/crawler/src/pipeline.rs", "request"));
    }

    #[test]
    fn rejects_malformed_entries() {
        assert!(TierManifest::parse("source call\n", "t").is_err());
        assert!(TierManifest::parse("source path current\n", "t").is_err());
        assert!(TierManifest::parse("source path a::b::c\n", "t").is_err());
        assert!(TierManifest::parse("sink mod foo\n", "t").is_err());
        assert!(TierManifest::parse("sink call a b\n", "t").is_err());
    }
}

//! The interprocedural lock-order pass.
//!
//! `flock-lint`'s lexical `lock-order` rule sees only one function body:
//! `self.mastodon.lock()` followed by `self.clock.lock()` in the same
//! scope. The deadlock it cannot see is the same acquisition split across
//! a call — a guard held at a call site whose *callee* (possibly in
//! another file, possibly through further helpers) acquires a lock at the
//! same or a lower manifest level.
//!
//! The pass computes each fn's **may-acquire set** (manifest-declared
//! receivers it can lock, directly or transitively through resolved call
//! edges) by fixpoint, replays the lexical held-set scan per body, and
//! flags any call site where `held.level >= callee.may_acquire.level`,
//! printing the acquisition path down to the concrete `.lock()`.

use crate::graph::Graph;
use crate::Emitter;
use flock_lint::manifest::LockManifest;
use flock_lint::rules::RULE_CALL_LOCK_ORDER;
use flock_lint::syntax::receiver_of;
use std::collections::btree_map::Entry;
use std::collections::BTreeMap;

/// How a fn may come to hold a lock, for witness paths.
#[derive(Debug, Clone)]
enum Acq {
    Direct { line: u32 },
    Via { callee: usize, line: u32 },
}

pub(crate) fn check(g: &Graph, m: &LockManifest, out: &mut Emitter) {
    if m.is_empty() {
        return;
    }
    // Direct acquisitions per fn: `.lock()` on manifest-declared receivers.
    let mut acquires: Vec<BTreeMap<String, (u32, Acq)>> =
        g.fns.iter().map(|_| BTreeMap::new()).collect();
    for (id, def) in g.fns.iter().enumerate() {
        let Some(lexed) = g.lexed.get(&def.file) else {
            continue;
        };
        let t = &lexed.tokens;
        for &k in &def.toks {
            if is_lock_call(t, k) {
                if let Some(name) = receiver_of(t, k) {
                    if let Some(level) = m.level_of(&name) {
                        acquires[id].entry(name).or_insert((
                            level,
                            Acq::Direct {
                                line: t[k + 1].line,
                            },
                        ));
                    }
                }
            }
        }
    }

    // Fixpoint: callers inherit callees' may-acquire sets.
    let mut changed = true;
    while changed {
        changed = false;
        for caller in 0..g.fns.len() {
            for &(site, callee) in &g.edges[caller] {
                if caller == callee {
                    continue;
                }
                let line = g.fns[caller].calls[site].line;
                let inherited: Vec<(String, u32)> = acquires[callee]
                    .iter()
                    .map(|(name, (level, _))| (name.clone(), *level))
                    .collect();
                for (name, level) in inherited {
                    if let Entry::Vacant(slot) = acquires[caller].entry(name) {
                        slot.insert((level, Acq::Via { callee, line }));
                        changed = true;
                    }
                }
            }
        }
    }

    // Replay the lexical held-set per body; at each resolved call site,
    // the callee's may-acquire set must sit strictly below every held
    // level.
    for (id, def) in g.fns.iter().enumerate() {
        let Some(lexed) = g.lexed.get(&def.file) else {
            continue;
        };
        let t = &lexed.tokens;
        let mut depth = 0u32;
        let mut held: Vec<(String, u32, u32, u32)> = Vec::new(); // (name, level, depth, line)
        let mut site_at: BTreeMap<usize, usize> = BTreeMap::new();
        for (site, call) in def.calls.iter().enumerate() {
            site_at.insert(call.tok, site);
        }
        let mut resolved: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for &(site, callee) in &g.edges[id] {
            resolved.entry(site).or_default().push(callee);
        }
        for &k in &def.toks {
            let tok = &t[k];
            if tok.punct('{') {
                depth += 1;
            } else if tok.punct('}') {
                held.retain(|h| h.2 < depth);
                depth = depth.saturating_sub(1);
            }
            if is_lock_call(t, k) {
                if let Some(name) = receiver_of(t, k) {
                    if let Some(level) = m.level_of(&name) {
                        held.push((name, level, depth, t[k + 1].line));
                    }
                }
            }
            let Some(site) = site_at.get(&k) else {
                continue;
            };
            let Some(callees) = resolved.get(site) else {
                continue;
            };
            let call = &def.calls[*site];
            for &callee in callees {
                for (lock, (level, _)) in &acquires[callee] {
                    for h in &held {
                        if *level <= h.1 {
                            out.emit(
                                lexed,
                                &def.file,
                                call.line,
                                RULE_CALL_LOCK_ORDER,
                                format!(
                                    "call to `{}` may acquire `{lock}` (level {level}) while \
                                     holding `{}` (level {}, line {}); the manifest ({}) orders \
                                     locks strictly downward; {}",
                                    call.callee,
                                    h.0,
                                    h.1,
                                    h.3,
                                    m.source,
                                    path(g, &acquires, callee, lock),
                                ),
                            );
                        }
                    }
                }
            }
        }
    }
}

/// `. lock ( )` at the `.` token.
fn is_lock_call(t: &[flock_lint::lexer::Token], k: usize) -> bool {
    t[k].punct('.')
        && t.get(k + 1).is_some_and(|n| n.is("lock"))
        && t.get(k + 2).is_some_and(|n| n.punct('('))
        && t.get(k + 3).is_some_and(|n| n.punct(')'))
}

/// Witness path from `id` down to the concrete `.lock()` on `lock`.
fn path(g: &Graph, acquires: &[BTreeMap<String, (u32, Acq)>], mut id: usize, lock: &str) -> String {
    let mut parts = Vec::new();
    loop {
        let def = &g.fns[id];
        match acquires[id].get(lock) {
            Some((_, Acq::Direct { line })) => {
                parts.push(format!(
                    "{} ({}:{}) -> `.lock()` on `{lock}` at {}:{line}",
                    def.name, def.file, line, def.file
                ));
                break;
            }
            Some((_, Acq::Via { callee, line })) => {
                parts.push(format!("{} ({}:{})", def.name, def.file, line));
                id = *callee;
            }
            None => break,
        }
        if parts.len() > g.fns.len() {
            break;
        }
    }
    format!("acquisition path: {}", parts.join(" -> "))
}

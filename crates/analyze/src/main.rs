//! The `flock-analyze` binary.
//!
//! ```text
//! flock-analyze --workspace             # both call-graph passes, whole tree
//! flock-analyze FILE…                   # analyze specific files as a unit
//! flock-analyze --sched-race            # exhaustive tie-permutation models
//! flock-analyze --json …                # stable machine-readable output
//! flock-analyze --tier-manifest PATH …  # override tier.manifest
//! flock-analyze --lock-manifest PATH …  # override lock-order.manifest
//! ```
//!
//! Exit codes: 0 clean, 1 findings (or a failed race model), 2
//! usage/configuration error.

use flock_analyze::{analyze_files, json, race, TierManifest, TIER_MANIFEST_PATH};
use flock_lint::manifest::LockManifest;
use flock_lint::walk;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

struct Args {
    workspace: bool,
    sched_race: bool,
    json: bool,
    tier_override: Option<PathBuf>,
    lock_override: Option<PathBuf>,
    files: Vec<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        workspace: false,
        sched_race: false,
        json: false,
        tier_override: None,
        lock_override: None,
        files: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workspace" => args.workspace = true,
            "--sched-race" => args.sched_race = true,
            "--json" => args.json = true,
            "--tier-manifest" => {
                let path = it.next().ok_or("--tier-manifest requires a path")?;
                args.tier_override = Some(PathBuf::from(path));
            }
            "--lock-manifest" => {
                let path = it.next().ok_or("--lock-manifest requires a path")?;
                args.lock_override = Some(PathBuf::from(path));
            }
            "--help" | "-h" => {
                return Err(
                    "usage: flock-analyze [--workspace | FILE…] [--sched-race] [--json] \
                     [--tier-manifest PATH] [--lock-manifest PATH]"
                        .to_string(),
                )
            }
            other if other.starts_with('-') => return Err(format!("unknown flag {other}")),
            other => args.files.push(PathBuf::from(other)),
        }
    }
    if !args.workspace && !args.sched_race && args.files.is_empty() {
        return Err("nothing to do: pass --workspace, --sched-race, or file paths".to_string());
    }
    Ok(args)
}

fn load_tier_manifest(root: &Path, over: &Option<PathBuf>) -> Result<TierManifest, String> {
    match over {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("read {}: {e}", path.display()))?;
            TierManifest::parse(&text, &path.display().to_string())
        }
        None => {
            let path = root.join(TIER_MANIFEST_PATH);
            match std::fs::read_to_string(&path) {
                Ok(text) => TierManifest::parse(&text, TIER_MANIFEST_PATH),
                // Deny-by-default would want an error here, but an absent
                // manifest means "no sources declared", which is already
                // the no-findings fixpoint — match flock-lint's behavior.
                Err(_) => Ok(TierManifest::empty()),
            }
        }
    }
}

fn run_sched_race(as_json: bool) -> ExitCode {
    let reports = race::ci_reports();
    let mut failed = 0usize;
    if as_json {
        let mut out =
            String::from("{\n  \"tool\": \"flock-analyze --sched-race\",\n  \"models\": [");
        for (i, r) in reports.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let (ok, detail) = match &r.result {
                Ok(o) => (
                    !o.truncated,
                    format!(
                        "schedules={} branch_points={} max_tied={} truncated={}",
                        o.schedules, o.branch_points, o.max_tied, o.truncated
                    ),
                ),
                Err(e) => (false, e.to_string()),
            };
            if !ok {
                failed += 1;
            }
            out.push_str(&format!(
                "\n    {{\"model\": \"{}\", \"ok\": {ok}, \"detail\": \"{}\"}}",
                r.name,
                detail.replace('"', "\\\"")
            ));
        }
        out.push_str("\n  ]\n}");
        println!("{out}");
    } else {
        for r in &reports {
            match &r.result {
                Ok(o) if !o.truncated => println!(
                    "flock-analyze: model {}: OK ({} schedules, {} branch point(s), \
                     widest tie {})",
                    r.name, o.schedules, o.branch_points, o.max_tied
                ),
                Ok(o) => {
                    failed += 1;
                    println!(
                        "flock-analyze: model {}: TRUNCATED after {} schedules — not exhaustive",
                        r.name, o.schedules
                    );
                }
                Err(e) => {
                    failed += 1;
                    println!("flock-analyze: model {}: FAIL — {e}", r.name);
                }
            }
        }
    }
    if failed == 0 {
        if !as_json {
            println!(
                "flock-analyze: sched-race clean ({} models exhaustively explored)",
                reports.len()
            );
        }
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn run() -> Result<ExitCode, String> {
    let args = parse_args()?;
    if args.sched_race {
        return Ok(run_sched_race(args.json));
    }
    let cwd = std::env::current_dir().map_err(|e| format!("cwd: {e}"))?;
    let root = walk::find_workspace_root(&cwd)
        .ok_or("no [workspace] Cargo.toml above the current directory")?;

    let tier = load_tier_manifest(&root, &args.tier_override)?;
    let locks = match &args.lock_override {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("read {}: {e}", path.display()))?;
            LockManifest::parse(&text, &path.display().to_string())?
        }
        None => walk::load_lock_manifest(&root)?,
    };

    let rels: Vec<String> = if args.workspace {
        walk::collect_rs_files(&root).map_err(|e| format!("scan: {e}"))?
    } else {
        args.files
            .iter()
            .map(|p| {
                let abs = if p.is_absolute() {
                    p.clone()
                } else {
                    cwd.join(p)
                };
                let rel = abs.strip_prefix(&root).unwrap_or(&abs);
                rel.to_string_lossy().replace('\\', "/")
            })
            .collect()
    };
    let mut files = Vec::with_capacity(rels.len());
    for rel in rels {
        let src =
            std::fs::read_to_string(root.join(&rel)).map_err(|e| format!("read {rel}: {e}"))?;
        files.push((rel, src));
    }
    let scanned = files.len();
    let findings = analyze_files(&files, &tier, &locks);

    if args.json {
        print!("{}", json::render(&findings, scanned));
    } else {
        for f in &findings {
            println!("{f}");
        }
        if findings.is_empty() {
            println!("flock-analyze: clean ({scanned} files scanned)");
        } else {
            println!(
                "flock-analyze: {} finding(s) in {scanned} files scanned",
                findings.len()
            );
        }
    }
    Ok(if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    })
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("flock-analyze: {msg}");
            ExitCode::from(2)
        }
    }
}

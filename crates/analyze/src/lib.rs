//! `flock-analyze`: whole-program static analysis over the workspace call
//! graph.
//!
//! `flock-lint` checks one line at a time; this crate lifts the same
//! deny-by-default philosophy to flows *between* functions, on a call
//! graph recovered from the lexer's token streams ([`graph`]):
//!
//! * **Tier taint** ([`taint`]) — Sched-tier values (worker slots, span
//!   ids, OS-thread facts) must never flow into Data-tier writers. The
//!   sources, sinks, and reasoned boundaries are declared in
//!   `tier.manifest` ([`manifest`]).
//! * **Interprocedural lock order** ([`locks`]) — the lexical
//!   `lock-order` rule, extended through calls: acquiring a lower-level
//!   lock *via a helper in another file* while a higher-level guard is
//!   held is the bug the lexical rule cannot see.
//! * **Schedule soundness** ([`race`]) — a loom-lite bounded model
//!   checker (`flock-analyze --sched-race`) that exhaustively permutes
//!   same-virtual-timestamp event orderings in small `flock-sched`
//!   models and asserts Data-tier byte-identity across every schedule.
//!
//! Findings share `flock-lint`'s escape hatch: a
//! `// flock-lint: allow(tier-taint|call-lock-order) <reason>` on the
//! finding line (or the line above) suppresses it; the reason is
//! mandatory.

pub mod graph;
pub mod json;
pub mod locks;
pub mod manifest;
pub mod race;
pub mod taint;

pub use flock_lint::Finding;
pub use manifest::TierManifest;

use flock_lint::lexer::Lexed;
use flock_lint::manifest::LockManifest;
use flock_lint::rules::RULE_DIRECTIVE;
use std::collections::BTreeSet;

/// Where the tier-taint manifest lives, workspace-relative.
pub const TIER_MANIFEST_PATH: &str = "tier.manifest";

/// Run both call-graph passes over `(workspace-relative path, source)`
/// pairs. Findings come back sorted by `(path, line, rule, message)` —
/// the order is part of the output contract (see [`json`]).
pub fn analyze_files(
    files: &[(String, String)],
    tier: &TierManifest,
    locks_manifest: &LockManifest,
) -> Vec<Finding> {
    let g = graph::build(files);
    let mut emitter = Emitter::default();
    taint::check(&g, tier, &mut emitter);
    locks::check(&g, locks_manifest, &mut emitter);
    let mut findings = emitter.findings;
    findings.sort_by(|a, b| {
        (&a.path, a.line, a.rule, &a.message).cmp(&(&b.path, b.line, b.rule, &b.message))
    });
    findings
}

/// Finding collector with the shared `allow(...)` escape-hatch semantics,
/// mirroring `flock-lint`'s: a directive with a reason on the finding line
/// or the line above suppresses; a reasonless directive is itself flagged.
#[derive(Default)]
pub(crate) struct Emitter {
    pub(crate) findings: Vec<Finding>,
    flagged: BTreeSet<(String, u32)>,
}

impl Emitter {
    pub(crate) fn emit(
        &mut self,
        lexed: &Lexed,
        path: &str,
        line: u32,
        rule: &'static str,
        message: String,
    ) {
        for d in &lexed.directives {
            if d.rule == rule && (d.line == line || d.line + 1 == line) {
                if d.reason.is_some() {
                    return;
                }
                if self.flagged.insert((path.to_string(), d.line)) {
                    self.findings.push(Finding {
                        path: path.to_string(),
                        line: d.line,
                        rule: RULE_DIRECTIVE,
                        message: format!("allow({rule}) requires a reason"),
                    });
                }
                return;
            }
        }
        self.findings.push(Finding {
            path: path.to_string(),
            line,
            rule,
            message,
        });
    }
}

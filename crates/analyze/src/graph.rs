//! The workspace symbol index and call graph.
//!
//! `flock-analyze` lifts `flock-lint`'s lexical rules to whole-program
//! rules, and everything downstream (tier-taint, interprocedural lock
//! ordering) consumes the structure built here: every `fn` defined in
//! non-test workspace code, the call sites inside each body, and the
//! resolved caller→callee edges between them.
//!
//! The analysis is token-based (the build environment is offline — no
//! `syn`), so resolution is necessarily approximate. The policy is
//! asymmetric on purpose:
//!
//! * **Propagation edges** (what taint and lock sets flow along) are added
//!   only when a call name resolves unambiguously: either the callee name
//!   is defined exactly once in the workspace, or a definition exists in
//!   the caller's own file (same-file definitions shadow the rest of the
//!   workspace). An ambiguous name gets *no* edge — a deliberate
//!   under-approximation kept honest by the manifests naming
//!   workspace-unique identifiers (see `tier.manifest`).
//! * **Trigger checks** (is this call a Data-tier sink?) match by *name
//!   alone*, an over-approximation in keeping with deny-by-default: a
//!   call that merely looks like a sink from a tainted context must be
//!   renamed apart or justified with an `allow`.
//!
//! Test code is invisible to the graph, mirroring the lint walker: files
//! under `tests/`, `benches/`, `examples/`, `fixtures/` and items behind
//! `#[test]` / `#[cfg(test)]` are skipped entirely.

use flock_lint::lexer::{lex, Lexed};
use flock_lint::syntax::{is_keyword, scan_attr, skip_item};
use std::collections::BTreeMap;

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// The called identifier (`foo` in `foo(…)`, `x.foo(…)`, `p::foo(…)`).
    pub callee: String,
    pub line: u32,
    /// Index of the callee identifier in the file's token stream.
    pub tok: usize,
}

/// One `fn` definition found in workspace code.
#[derive(Debug)]
pub struct FnDef {
    /// Workspace-relative path of the defining file.
    pub file: String,
    pub name: String,
    /// Line of the `fn` keyword.
    pub line: u32,
    /// Token range of the body, `[open_brace, close_brace]` inclusive.
    pub body: (usize, usize),
    /// Call sites in the body, in token order (nested items excluded).
    pub calls: Vec<CallSite>,
    /// Token indices belonging to this body, excluding nested `fn` items
    /// and attribute spans — the scan surface for the taint/lock passes.
    pub toks: Vec<usize>,
}

/// The assembled call graph for a set of files.
#[derive(Debug, Default)]
pub struct Graph {
    pub fns: Vec<FnDef>,
    /// fn name → ids of every definition with that name.
    pub by_name: BTreeMap<String, Vec<usize>>,
    /// file → ids of the fns defined in it.
    pub by_file: BTreeMap<String, Vec<usize>>,
    /// Caller id → resolved `(call-site index, callee id)` pairs.
    pub edges: Vec<Vec<(usize, usize)>>,
    /// Lexed token streams, kept for the downstream passes (directive
    /// lookup, source-pattern matching, lexical lock scanning).
    pub lexed: BTreeMap<String, Lexed>,
}

/// Should this workspace-relative path contribute to the graph at all?
/// Mirrors the lint walker's exemptions.
pub fn in_scope(rel_path: &str) -> bool {
    !rel_path.split(['/', '\\']).any(|c| {
        matches!(
            c,
            "tests" | "benches" | "examples" | "fixtures" | "target" | "vendor"
        )
    })
}

/// Build the graph from `(workspace-relative path, source)` pairs. Files
/// out of scope (test/fixture/vendored paths) are skipped.
pub fn build(files: &[(String, String)]) -> Graph {
    let mut g = Graph::default();
    for (rel, src) in files {
        if !in_scope(rel) {
            continue;
        }
        let lexed = lex(src);
        scan_file(&mut g, rel, &lexed);
        g.lexed.insert(rel.clone(), lexed);
    }
    g.edges = resolve_edges(&g);
    g
}

/// Pass 1+2 over one file: find fn definitions (skipping test items),
/// then extract each body's scan surface and call sites.
fn scan_file(g: &mut Graph, rel: &str, lexed: &Lexed) {
    let t = &lexed.tokens;
    // Pass 1: definition spans. Nested fns are discovered too (the scan
    // continues into bodies); test-marked items are skipped wholesale.
    let mut defs: Vec<(String, u32, (usize, usize))> = Vec::new();
    let mut i = 0usize;
    while i < t.len() {
        if t[i].punct('#') {
            let open = if t.get(i + 1).is_some_and(|n| n.punct('!')) {
                i + 2
            } else {
                i + 1
            };
            if t.get(open).is_some_and(|n| n.punct('[')) {
                let (is_test, after) = scan_attr(t, open);
                i = if is_test { skip_item(t, after) } else { after };
                continue;
            }
        }
        if t[i].is("fn") && t.get(i + 1).is_some_and(|n| n.is_ident) {
            let name = t[i + 1].text.clone();
            let line = t[i].line;
            if let Some(body) = body_of(t, i + 2) {
                defs.push((name, line, body));
            }
            i += 2;
            continue;
        }
        i += 1;
    }

    // Pass 2: per definition, the token surface minus nested definitions
    // and attribute spans, and the call sites on that surface.
    for (idx, (name, line, body)) in defs.iter().enumerate() {
        let nested: Vec<(usize, usize)> = defs
            .iter()
            .enumerate()
            .filter(|&(j, d)| j != idx && d.2 .0 > body.0 && d.2 .1 < body.1)
            .map(|(_, d)| d.2)
            .collect();
        let mut toks = Vec::new();
        let mut k = body.0;
        while k <= body.1 {
            if let Some(&(_, end)) = nested.iter().find(|&&(s, _)| s == k) {
                k = end + 1;
                continue;
            }
            if t[k].punct('#') {
                let open = if t.get(k + 1).is_some_and(|n| n.punct('!')) {
                    k + 2
                } else {
                    k + 1
                };
                if t.get(open).is_some_and(|n| n.punct('[')) {
                    let (_, after) = scan_attr(t, open);
                    k = after;
                    continue;
                }
            }
            toks.push(k);
            k += 1;
        }
        let calls = calls_on(t, &toks);
        let id = g.fns.len();
        g.fns.push(FnDef {
            file: rel.to_string(),
            name: name.clone(),
            line: *line,
            body: *body,
            calls,
            toks,
        });
        g.by_name.entry(name.clone()).or_default().push(id);
        g.by_file.entry(rel.to_string()).or_default().push(id);
    }
}

/// The body brace span of a fn whose signature starts at `sig`: scan to
/// the first `{` (body open) or a top-level `;` (body-less trait method —
/// no span). Parens are tracked so `;` inside default-argument positions
/// or `fn(…)` pointer types do not terminate the signature early.
fn body_of(t: &[flock_lint::lexer::Token], sig: usize) -> Option<(usize, usize)> {
    let mut i = sig;
    let mut parens = 0i32;
    while i < t.len() {
        let tok = &t[i];
        if tok.punct('(') || tok.punct('[') {
            parens += 1;
        } else if tok.punct(')') || tok.punct(']') {
            parens -= 1;
        } else if tok.punct(';') && parens == 0 {
            return None;
        } else if tok.punct('{') {
            let open = i;
            let mut depth = 0i32;
            while i < t.len() {
                if t[i].punct('{') {
                    depth += 1;
                } else if t[i].punct('}') {
                    depth -= 1;
                    if depth == 0 {
                        return Some((open, i));
                    }
                }
                i += 1;
            }
            return None;
        }
        i += 1;
    }
    None
}

/// Call sites on a body's token surface: `ident (` adjacency in the
/// original stream, keyword heads and macro bangs filtered out.
fn calls_on(t: &[flock_lint::lexer::Token], toks: &[usize]) -> Vec<CallSite> {
    let mut out = Vec::new();
    for &k in toks {
        let tok = &t[k];
        if !tok.is_ident || is_keyword(&tok.text) {
            continue;
        }
        // `foo!(…)` is a macro, `fn foo(` is the definition itself.
        if !t.get(k + 1).is_some_and(|n| n.punct('(')) {
            continue;
        }
        if k > 0 && (t[k - 1].is("fn") || t[k - 1].punct('!')) {
            continue;
        }
        out.push(CallSite {
            callee: tok.text.clone(),
            line: tok.line,
            tok: k,
        });
    }
    out
}

/// Resolve each call site to callee definitions under the asymmetric
/// policy: same-file definitions first, else a workspace-unique name.
fn resolve_edges(g: &Graph) -> Vec<Vec<(usize, usize)>> {
    let mut edges: Vec<Vec<(usize, usize)>> = vec![Vec::new(); g.fns.len()];
    for (caller, def) in g.fns.iter().enumerate() {
        let local = g.by_file.get(&def.file);
        for (site, call) in def.calls.iter().enumerate() {
            let same_file: Vec<usize> = local
                .map(|ids| {
                    ids.iter()
                        .copied()
                        .filter(|&id| g.fns[id].name == call.callee)
                        .collect()
                })
                .unwrap_or_default();
            if !same_file.is_empty() {
                for id in same_file {
                    edges[caller].push((site, id));
                }
                continue;
            }
            if let Some(ids) = g.by_name.get(&call.callee) {
                if ids.len() == 1 {
                    edges[caller].push((site, ids[0]));
                }
            }
        }
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph_of(files: &[(&str, &str)]) -> Graph {
        let owned: Vec<(String, String)> = files
            .iter()
            .map(|(p, s)| (p.to_string(), s.to_string()))
            .collect();
        build(&owned)
    }

    #[test]
    fn finds_defs_and_same_file_edges() {
        let g = graph_of(&[(
            "crates/x/src/a.rs",
            "pub fn top() { helper(); }\nfn helper() { leaf(3); }\nfn leaf(_n: u32) {}\n",
        )]);
        assert_eq!(g.fns.len(), 3);
        let top = g.by_name["top"][0];
        let helper = g.by_name["helper"][0];
        let leaf = g.by_name["leaf"][0];
        assert_eq!(g.edges[top], vec![(0, helper)]);
        assert_eq!(g.edges[helper], vec![(0, leaf)]);
        assert!(g.edges[leaf].is_empty());
    }

    #[test]
    fn unique_names_resolve_across_files_and_ambiguous_names_do_not() {
        let g = graph_of(&[
            (
                "crates/x/src/a.rs",
                "pub fn caller() { unique(); dup(); }\n",
            ),
            ("crates/x/src/b.rs", "pub fn unique() {}\npub fn dup() {}\n"),
            ("crates/y/src/c.rs", "pub fn dup() {}\n"),
        ]);
        let caller = g.by_name["caller"][0];
        let unique = g.by_name["unique"][0];
        assert_eq!(g.edges[caller], vec![(0, unique)]);
    }

    #[test]
    fn test_items_macros_and_fixture_files_are_invisible() {
        let g = graph_of(&[
            (
                "crates/x/src/a.rs",
                "#[cfg(test)]\nmod tests { fn hidden() {} }\npub fn visible() { println!(\"x\"); }\n",
            ),
            ("crates/x/tests/t.rs", "fn test_only() {}\n"),
        ]);
        assert_eq!(g.fns.len(), 1);
        assert_eq!(g.fns[0].name, "visible");
        assert!(g.fns[0].calls.is_empty(), "macro counted as call");
    }

    #[test]
    fn nested_fn_calls_are_not_attributed_to_the_outer_fn() {
        let g = graph_of(&[(
            "crates/x/src/a.rs",
            "pub fn outer() {\n  fn inner() { secret(); }\n  inner();\n}\nfn secret() {}\n",
        )]);
        let outer = g.by_name["outer"][0];
        let calls: Vec<&str> = g.fns[outer]
            .calls
            .iter()
            .map(|c| c.callee.as_str())
            .collect();
        assert_eq!(calls, vec!["inner"]);
    }

    #[test]
    fn bodyless_trait_methods_are_skipped() {
        let g = graph_of(&[(
            "crates/x/src/a.rs",
            "pub trait T { fn decl(&self); fn with_body(&self) { self.decl(); } }\n",
        )]);
        assert_eq!(g.fns.len(), 1);
        assert_eq!(g.fns[0].name, "with_body");
    }
}

//! Checker tasks: one `flock-sched` state machine per due domain.
//!
//! A checker mirrors the crawler's scheduled-request idiom
//! (`flock-crawler`'s `tasks.rs`): the in-flight request keeps its span
//! open across yields, every server attempt is recorded against it, and
//! every second the executor moves the clock is billed — at event fire
//! time — to the same `(span, phase, cause)` bucket an inline wait would
//! have charged. What differs is the outcome policy, which must stay
//! **Data-deterministic under scheduled-time semantics**:
//!
//! * `Ok(peers)` → [`CheckOutcome::Alive`] with the discovered peers.
//! * Rate limits (token bucket or chaos Retry-After storm) → wait the
//!   advertised interval and retry the same check. The retry count is
//!   schedule-dependent; the eventual success is not.
//! * Outages (`InstanceOutage` / `InstanceUnavailable`) →
//!   [`CheckOutcome::Dead`] **immediately**. A monitor never waits out an
//!   outage — "down right now" is exactly the observation it exists to
//!   record; the orchestrator's capped backoff decides when to look
//!   again.
//! * Other retryable errors (chaos error bursts) → bounded transient
//!   retries with a fixed backoff, then [`CheckOutcome::Unreachable`].
//!   Chaos drains its per-key fault budget deterministically, so the
//!   attempt count per check — and therefore the outcome — is a pure
//!   function of the plan and the check's scheduled instant.
//! * Anything else (`NotFound`, `Forbidden`, …) →
//!   [`CheckOutcome::Unreachable`].

use crate::{MonitorConfig, PHASE};
use flock_apis::server::ApiServer;
use flock_core::{FlockError, Result};
use flock_obs::trace::{self, FaultKind, SpanOutcome};
use flock_obs::{Registry, WaitCause};
use flock_sched::{Clock, Executor, Step, Task};

/// What one yielded wait is charged to when its event fires.
pub(crate) struct WaitBill {
    span: u64,
    cause: WaitCause,
}

/// Result of one completed check, folded into the roster by the
/// orchestrator.
#[derive(Debug)]
pub enum CheckOutcome {
    /// The instance answered; these are its federation peers.
    Alive(Vec<String>),
    /// The instance is down (outage window or permanent flag).
    Dead,
    /// Retries exhausted or a non-retryable error.
    Unreachable,
}

/// The open span plus retry state of one in-flight check.
struct ReqState {
    span: u64,
    label: String,
    transient: u32,
    last_outcome: SpanOutcome,
}

/// Either park until `until` (billing the wait at fire time) or finish.
enum ReqPoll {
    Wait { until: u64, bill: WaitBill },
    Done(CheckOutcome),
}

/// Open the orchestrator's span for the whole monitoring phase. Its id
/// only ever feeds `attribute_wait` and `span_end` — Sched-tier
/// telemetry — so the caller stays Data-clean (declared as a boundary in
/// `tier.manifest`).
pub(crate) fn watch_span(obs: &Registry, start_secs: u64) -> u64 {
    obs.span_begin(PHASE, "orchestrator", None, None, start_secs)
}

/// Open the logical-request span for one check. Boundary fn: the span id
/// and worker slot feed Sched-tier telemetry only; the check's Data-tier
/// outcome is derived solely from the API result.
fn mon_begin(obs: &Registry, api: &ApiServer, domain: &str) -> ReqState {
    let label = format!("peers:{domain}");
    let span = obs.span_begin(PHASE, &label, None, trace::current_worker(), api.now());
    ReqState {
        span,
        label,
        transient: 0,
        // Overwritten by every attempt; only a task that is never polled
        // to completion leaves the placeholder.
        last_outcome: SpanOutcome::Fault(FaultKind::Other),
    }
}

/// One server attempt of an in-flight check, evaluated at the check's
/// scheduled instant `as_of`. Boundary fn: consumes `take_attempt` /
/// `current_worker` for span attribution only; the returned
/// [`CheckOutcome`] is a pure function of the API result sequence, which
/// chaos derives from `(seed, plan, key)` — never from the schedule.
fn mon_attempt(
    obs: &Registry,
    api: &ApiServer,
    cfg: &MonitorConfig,
    st: &mut ReqState,
    domain: &str,
    as_of: u64,
) -> ReqPoll {
    let before = api.now();
    let r = {
        let _guard = trace::span_scope(st.span);
        api.mastodon_instance_peers(domain, as_of)
    };
    let attempt = trace::take_attempt();
    let outcome = match (&r, attempt) {
        (_, Some(a)) => a.outcome,
        (Ok(_), None) => SpanOutcome::Granted,
        (Err(FlockError::RateLimited { .. }), None) => SpanOutcome::RateLimited { storm: false },
        (Err(FlockError::InstanceOutage { .. }), None)
        | (Err(FlockError::InstanceUnavailable(_)), None) => SpanOutcome::Fault(FaultKind::Outage),
        (Err(_), None) => SpanOutcome::Fault(FaultKind::Other),
    };
    obs.span_attempt(
        st.span,
        PHASE,
        &st.label,
        trace::current_worker(),
        attempt.map(|a| a.family),
        outcome,
        before,
        before,
    );
    st.last_outcome = outcome;
    let finish = |st: &ReqState, out: CheckOutcome| {
        obs.span_end(st.span, api.now(), st.last_outcome);
        ReqPoll::Done(out)
    };
    match r {
        Ok(peers) => finish(st, CheckOutcome::Alive(peers)),
        Err(FlockError::RateLimited { retry_after_secs }) => {
            let cause = if outcome == (SpanOutcome::RateLimited { storm: true }) {
                WaitCause::RetryAfterStorm
            } else {
                WaitCause::TokenBucket
            };
            ReqPoll::Wait {
                until: before.saturating_add(retry_after_secs),
                bill: WaitBill {
                    span: st.span,
                    cause,
                },
            }
        }
        Err(FlockError::InstanceOutage { .. }) | Err(FlockError::InstanceUnavailable(_)) => {
            finish(st, CheckOutcome::Dead)
        }
        Err(e) if e.is_retryable() => {
            st.transient += 1;
            if st.transient > cfg.max_transient_retries {
                return finish(st, CheckOutcome::Unreachable);
            }
            ReqPoll::Wait {
                until: before.saturating_add(cfg.transient_backoff_secs),
                bill: WaitBill {
                    span: st.span,
                    cause: WaitCause::TransientBackoff,
                },
            }
        }
        Err(_) => finish(st, CheckOutcome::Unreachable),
    }
}

/// One due domain's checker: polls until the check classifies.
struct CheckTask<'a> {
    obs: &'a Registry,
    api: &'a ApiServer,
    cfg: &'a MonitorConfig,
    domain: &'a str,
    as_of: u64,
    req: Option<ReqState>,
    out: Option<CheckOutcome>,
}

impl Task for CheckTask<'_> {
    type Bill = WaitBill;

    fn poll(&mut self, _now: u64) -> Step<WaitBill> {
        if self.out.is_some() {
            return Step::Done;
        }
        let st = match &mut self.req {
            Some(st) => st,
            None => self.req.insert(mon_begin(self.obs, self.api, self.domain)),
        };
        match mon_attempt(self.obs, self.api, self.cfg, st, self.domain, self.as_of) {
            ReqPoll::Wait { until, bill } => Step::Wait { until, bill },
            ReqPoll::Done(out) => {
                self.out = Some(out);
                Step::Done
            }
        }
    }
}

/// The API server's virtual clock through the scheduler's eyes.
struct MonClock<'a>(&'a ApiServer);

impl Clock for MonClock<'_> {
    fn now(&self) -> u64 {
        self.0.now()
    }

    fn advance_to(&self, deadline_secs: u64) -> u64 {
        self.0.advance_clock_to(deadline_secs)
    }
}

/// Execute one round: every `due` domain checked as of `as_of`, results
/// in `due` order. A task the executor failed to drive to completion
/// (which cannot happen short of a scheduler bug) surfaces as
/// [`CheckOutcome::Unreachable`] rather than a panic.
pub(crate) fn run_round(
    api: &ApiServer,
    obs: &Registry,
    cfg: &MonitorConfig,
    due: &[String],
    as_of: u64,
) -> Result<Vec<CheckOutcome>> {
    let tasks: Vec<CheckTask> = due
        .iter()
        .map(|domain| CheckTask {
            obs,
            api,
            cfg,
            domain,
            as_of,
            req: None,
            out: None,
        })
        .collect();
    let ex = Executor::new(cfg.threads, cfg.tasks)?;
    let done = ex.run(&MonClock(api), tasks, |bill, applied| {
        obs.attribute_wait(bill.span, PHASE, bill.cause, applied);
    });
    Ok(done
        .into_iter()
        .map(|t| t.out.unwrap_or(CheckOutcome::Unreachable))
        .collect())
}

//! `flock-monitor` — a continuous fediverse-monitoring workload on the
//! virtual clock.
//!
//! The paper's migration tracking depended on third-party monitors
//! (instances.social, the Fediverse Observer) that poll every known
//! instance on a schedule, discover new ones through peer lists, and keep
//! an always-fresh roster of which instances are alive. This crate
//! reproduces that workload against the simulated fediverse: a trusted
//! **orchestrator** keeps one [`NodeRecord`] per known domain and runs
//! **checker** tasks — `flock-sched` state machines — whenever a record's
//! re-check deadline comes due. A check hits the API layer's
//! federation-peers endpoint; success refreshes the record and folds any
//! newly discovered peers into the roster, failure classifies the node
//! (dead vs unreachable) and backs off exponentially up to a cap. Over
//! days-to-weeks of simulated uptime, under `flock-chaos` outage plans,
//! the roster tracks liveness, death, and rebirth.
//!
//! Determinism is the point, and it rests on **scheduled-time
//! semantics**: every check is stamped with the virtual instant it was
//! *due* (`as_of`), outage windows are evaluated at that instant, and
//! every field of a [`NodeRecord`] is derived from scheduled instants
//! only. Actual clock positions — which depend on how rate-limit and
//! backoff waits interleave under a given thread count and admission
//! window — never enter the Data tier. CI compares the rendered
//! [`nodes_list`] and the report's Data section byte-for-byte across
//! `{threads} × {tasks}` matrices, exactly like the crawl pipeline.
//!
//! The run loop is **rounds-based**: find the earliest due instant,
//! advance the clock there (charged to [`WaitCause::Idle`] on the
//! orchestrator's span, so the per-phase wait identity Σ buckets + work =
//! duration still holds), execute every due check as one executor batch,
//! fold results in input order, repeat. Round boundaries are also the
//! checkpoint grain: [`checkpoint::MonitorCheckpoint`] persists the
//! roster atomically and durably, and a resumed run continues from the
//! last completed round with the same Data-tier output as an
//! uninterrupted one.

pub mod checker;
pub mod checkpoint;

use flock_apis::server::ApiServer;
use flock_core::{FlockError, Result};
use flock_obs::{Registry, Tier, WaitCause};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use std::path::PathBuf;

/// Seconds per simulated day.
pub const SECS_PER_DAY: u64 = 86_400;

/// The single obs phase every monitor span and wait is attributed to.
pub const PHASE: &str = "monitor.watch";

/// Histogram bounds for checks-per-instance (Data tier).
pub const CHECKS_BOUNDS: [u64; 9] = [1, 2, 4, 8, 16, 32, 64, 128, 256];

/// Histogram bounds for discovery depth (Data tier).
pub const DEPTH_BOUNDS: [u64; 6] = [1, 2, 3, 4, 6, 8];

/// Configuration for one monitoring run.
#[derive(Debug, Clone)]
pub struct MonitorConfig {
    /// Simulated horizon in days; the run ends when no record is due
    /// before `sim_days * 86_400` seconds of virtual time.
    pub sim_days: u64,
    /// OS threads for the discrete-event executor.
    pub threads: usize,
    /// Admission window: maximum live checker tasks per round.
    pub tasks: usize,
    /// Domains seeded into the roster at depth 0 (the flagship
    /// instances, in the default wiring).
    pub bootstrap: Vec<String>,
    /// Re-check interval for an instance last seen alive.
    pub alive_recheck_secs: u64,
    /// First re-check delay after a failed check; doubles per
    /// consecutive failure.
    pub backoff_base_secs: u64,
    /// Ceiling on the failure backoff — also the worst-case rebirth
    /// detection latency once an outage lifts.
    pub backoff_cap_secs: u64,
    /// Delay between discovering a peer and first checking it.
    pub discovery_delay_secs: u64,
    /// Transient failures tolerated per check before classifying the
    /// node unreachable.
    pub max_transient_retries: u32,
    /// Virtual backoff between transient retries within one check.
    pub transient_backoff_secs: u64,
    /// Where to persist [`checkpoint::MonitorCheckpoint`]s; `None`
    /// disables checkpointing (and resume).
    pub checkpoint_path: Option<PathBuf>,
    /// Checkpoint every N completed rounds (0 = only on interruption).
    pub checkpoint_every_rounds: u64,
    /// Stop (with a checkpoint) after this many rounds in this process —
    /// the test hook for interrupt-then-resume runs.
    pub stop_after_rounds: Option<u64>,
}

impl Default for MonitorConfig {
    fn default() -> MonitorConfig {
        MonitorConfig {
            sim_days: 30,
            threads: 1,
            tasks: 64,
            bootstrap: Vec::new(),
            alive_recheck_secs: 21_600,
            backoff_base_secs: 3_600,
            backoff_cap_secs: SECS_PER_DAY,
            discovery_delay_secs: 300,
            max_transient_retries: 3,
            transient_backoff_secs: 30,
            checkpoint_path: None,
            checkpoint_every_rounds: 50,
            stop_after_rounds: None,
        }
    }
}

impl MonitorConfig {
    /// Reject configurations the run loop cannot honor.
    pub fn validate(&self) -> Result<()> {
        if self.sim_days == 0 {
            return Err(FlockError::InvalidConfig(
                "monitor horizon must be at least one simulated day".to_string(),
            ));
        }
        if self.bootstrap.is_empty() {
            return Err(FlockError::InvalidConfig(
                "monitor needs at least one bootstrap domain".to_string(),
            ));
        }
        if self.backoff_base_secs == 0 || self.backoff_cap_secs < self.backoff_base_secs {
            return Err(FlockError::InvalidConfig(format!(
                "monitor backoff base {}s / cap {}s out of order",
                self.backoff_base_secs, self.backoff_cap_secs
            )));
        }
        if self.alive_recheck_secs == 0 {
            return Err(FlockError::InvalidConfig(
                "monitor alive re-check interval must be positive".to_string(),
            ));
        }
        Ok(())
    }

    /// The virtual horizon in seconds.
    pub fn horizon_secs(&self) -> u64 {
        self.sim_days.saturating_mul(SECS_PER_DAY)
    }

    /// The failure backoff after `failures` consecutive failed checks:
    /// `base * 2^(failures-1)`, capped.
    pub fn failure_backoff_secs(&self, failures: u32) -> u64 {
        let doublings = failures.saturating_sub(1).min(32);
        self.backoff_base_secs
            .saturating_mul(1u64 << doublings)
            .min(self.backoff_cap_secs)
    }
}

/// Liveness classification of one known domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodeState {
    /// Discovered but never successfully or unsuccessfully checked.
    Pending,
    /// Last check answered with a peers list.
    Alive,
    /// Last check found the instance down (permanent outage flag or an
    /// active chaos outage window).
    Dead,
    /// Last check exhausted its transient-retry budget or hit a
    /// non-retryable error.
    Unreachable,
}

impl NodeState {
    /// Stable lowercase label used in the nodes-list artifact.
    pub fn label(&self) -> &'static str {
        match self {
            NodeState::Pending => "pending",
            NodeState::Alive => "alive",
            NodeState::Dead => "dead",
            NodeState::Unreachable => "unreachable",
        }
    }
}

impl fmt::Display for NodeState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Everything the orchestrator knows about one domain. Every timestamp
/// is a **scheduled** virtual instant (the `as_of` of the check that set
/// it), never an actual clock position — that is what keeps the roster
/// byte-identical across thread counts and admission windows.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NodeRecord {
    /// The instance domain.
    pub domain: String,
    /// Current liveness classification.
    pub state: NodeState,
    /// Peer-discovery depth: 0 for bootstrap domains, parent + 1 for a
    /// domain first seen in a peers list.
    pub depth: u32,
    /// When the domain entered the roster.
    pub discovered_secs: u64,
    /// Scheduled instant of the most recent completed check.
    pub last_checked_secs: Option<u64>,
    /// Scheduled instant the state last changed (or discovery time).
    pub last_change_secs: u64,
    /// Next scheduled check.
    pub next_check_secs: u64,
    /// Completed checks so far.
    pub checks: u64,
    /// Consecutive failed checks (drives the backoff exponent).
    pub consecutive_failures: u32,
    /// Alive → Dead transitions observed.
    pub deaths: u64,
    /// Dead → Alive transitions observed.
    pub rebirths: u64,
}

impl NodeRecord {
    fn discovered(domain: String, depth: u32, at_secs: u64, first_check_secs: u64) -> NodeRecord {
        NodeRecord {
            domain,
            state: NodeState::Pending,
            depth,
            discovered_secs: at_secs,
            last_checked_secs: None,
            last_change_secs: at_secs,
            next_check_secs: first_check_secs,
            checks: 0,
            consecutive_failures: 0,
            deaths: 0,
            rebirths: 0,
        }
    }
}

/// What a finished run hands back.
#[derive(Debug)]
pub struct MonitorOutcome {
    /// The final roster, keyed by domain.
    pub records: BTreeMap<String, NodeRecord>,
    /// Rounds completed over the whole monitored horizon (including
    /// rounds replayed from a checkpoint's history counter).
    pub rounds: u64,
    /// Total completed checks across the roster.
    pub checks_total: u64,
    /// The round count restored from a checkpoint, if this run resumed.
    pub resumed_from_round: Option<u64>,
    /// `false` when `stop_after_rounds` interrupted the run before the
    /// horizon; the checkpoint allows a later run to finish it.
    pub completed: bool,
}

/// Run the monitor until no check is due before the horizon (or until
/// `stop_after_rounds`). Resumes automatically from
/// `cfg.checkpoint_path` when a checkpoint exists there.
pub fn run(api: &ApiServer, obs: &Registry, cfg: &MonitorConfig) -> Result<MonitorOutcome> {
    cfg.validate()?;
    let horizon = cfg.horizon_secs();

    let mut records: BTreeMap<String, NodeRecord> = BTreeMap::new();
    let mut round: u64 = 0;
    let mut resumed_from_round = None;
    if let Some(path) = &cfg.checkpoint_path {
        if let Some(cp) = checkpoint::MonitorCheckpoint::load_if_exists(path)? {
            round = cp.round;
            resumed_from_round = Some(cp.round);
            for rec in cp.records {
                records.insert(rec.domain.clone(), rec);
            }
            // Waits up to the checkpointed instant were paid (and
            // attributed) by the interrupted run; move the fresh clock
            // there before the phase opens so they are not paid again.
            api.advance_clock_to(cp.clock_secs);
        }
    }
    if records.is_empty() {
        for domain in &cfg.bootstrap {
            records.insert(
                domain.clone(),
                NodeRecord::discovered(domain.clone(), 0, 0, 0),
            );
        }
    }

    let start = api.now();
    obs.phase_start(start, PHASE);
    let orch = checker::watch_span(obs, start);
    let mut rounds_this_process: u64 = 0;
    let completed = loop {
        let due_time = records
            .values()
            .map(|r| r.next_check_secs)
            .filter(|&t| t <= horizon)
            .min();
        let Some(due_time) = due_time else {
            break true;
        };
        // Nothing is runnable before the due instant: the orchestrator
        // sleeps there, and the movement lands in the Idle bucket so the
        // phase's wait identity stays exact.
        let applied = api.advance_clock_to(due_time);
        obs.attribute_wait(orch, PHASE, WaitCause::Idle, applied);
        // BTreeMap order makes the due set — and therefore executor
        // admission order and the fold below — domain-sorted.
        let due: Vec<String> = records
            .values()
            .filter(|r| r.next_check_secs == due_time)
            .map(|r| r.domain.clone())
            .collect();
        let outcomes = checker::run_round(api, obs, cfg, &due, due_time)?;
        for (domain, outcome) in due.iter().zip(outcomes) {
            fold(&mut records, cfg, domain, due_time, outcome);
        }
        round += 1;
        rounds_this_process += 1;
        if let Some(path) = &cfg.checkpoint_path {
            if cfg.checkpoint_every_rounds > 0 && round.is_multiple_of(cfg.checkpoint_every_rounds)
            {
                checkpoint_now(path, round, api.now(), &records)?;
            }
        }
        if cfg
            .stop_after_rounds
            .is_some_and(|cap| rounds_this_process >= cap)
        {
            if let Some(path) = &cfg.checkpoint_path {
                checkpoint_now(path, round, api.now(), &records)?;
            }
            break false;
        }
    };

    let end = if completed {
        // Idle out the rest of the horizon so "monitored for N days"
        // means exactly N days of attributed virtual time.
        let applied = api.advance_clock_to(horizon);
        obs.attribute_wait(orch, PHASE, WaitCause::Idle, applied);
        horizon.max(api.now())
    } else {
        api.now()
    };
    obs.span_end(orch, end, flock_obs::trace::SpanOutcome::Granted);
    obs.phase_end(end, PHASE);

    let checks_total = records.values().map(|r| r.checks).sum();
    if completed {
        publish_metrics(obs, &records);
    }
    Ok(MonitorOutcome {
        records,
        rounds: round,
        checks_total,
        resumed_from_round,
        completed,
    })
}

fn checkpoint_now(
    path: &std::path::Path,
    round: u64,
    clock_secs: u64,
    records: &BTreeMap<String, NodeRecord>,
) -> Result<()> {
    checkpoint::MonitorCheckpoint {
        round,
        clock_secs,
        records: records.values().cloned().collect(),
    }
    .save(path)
}

/// Fold one completed check into the roster. `as_of` is the check's
/// scheduled instant; every timestamp written here derives from it.
fn fold(
    records: &mut BTreeMap<String, NodeRecord>,
    cfg: &MonitorConfig,
    domain: &str,
    as_of: u64,
    outcome: checker::CheckOutcome,
) {
    let parent_depth = records.get(domain).map(|r| r.depth).unwrap_or(0);
    if let Some(rec) = records.get_mut(domain) {
        rec.checks += 1;
        rec.last_checked_secs = Some(as_of);
        match &outcome {
            checker::CheckOutcome::Alive(_) => {
                rec.consecutive_failures = 0;
                if rec.state == NodeState::Dead {
                    rec.rebirths += 1;
                }
                if rec.state != NodeState::Alive {
                    rec.state = NodeState::Alive;
                    rec.last_change_secs = as_of;
                }
                rec.next_check_secs = as_of.saturating_add(cfg.alive_recheck_secs);
            }
            checker::CheckOutcome::Dead => {
                rec.consecutive_failures = rec.consecutive_failures.saturating_add(1);
                if rec.state == NodeState::Alive {
                    rec.deaths += 1;
                }
                if rec.state != NodeState::Dead {
                    rec.state = NodeState::Dead;
                    rec.last_change_secs = as_of;
                }
                rec.next_check_secs =
                    as_of.saturating_add(cfg.failure_backoff_secs(rec.consecutive_failures));
            }
            checker::CheckOutcome::Unreachable => {
                rec.consecutive_failures = rec.consecutive_failures.saturating_add(1);
                if rec.state != NodeState::Unreachable {
                    rec.state = NodeState::Unreachable;
                    rec.last_change_secs = as_of;
                }
                rec.next_check_secs =
                    as_of.saturating_add(cfg.failure_backoff_secs(rec.consecutive_failures));
            }
        }
    }
    if let checker::CheckOutcome::Alive(peers) = outcome {
        for peer in peers {
            if !records.contains_key(&peer) {
                records.insert(
                    peer.clone(),
                    NodeRecord::discovered(
                        peer,
                        parent_depth.saturating_add(1),
                        as_of,
                        as_of.saturating_add(cfg.discovery_delay_secs),
                    ),
                );
            }
        }
    }
}

/// Publish the end-of-run Data-tier metrics. Derived **only** from the
/// final roster — never incremented mid-run — so an interrupted-then-
/// resumed run publishes the same values as an uninterrupted one.
fn publish_metrics(obs: &Registry, records: &BTreeMap<String, NodeRecord>) {
    let count = |state: NodeState| records.values().filter(|r| r.state == state).count() as u64;
    obs.counter("monitor.nodes_known", Tier::Data)
        .add(records.len() as u64);
    obs.counter("monitor.nodes_alive", Tier::Data)
        .add(count(NodeState::Alive));
    obs.counter("monitor.nodes_dead", Tier::Data)
        .add(count(NodeState::Dead));
    obs.counter("monitor.nodes_unreachable", Tier::Data)
        .add(count(NodeState::Unreachable));
    obs.counter("monitor.nodes_pending", Tier::Data)
        .add(count(NodeState::Pending));
    obs.counter("monitor.checks_total", Tier::Data)
        .add(records.values().map(|r| r.checks).sum());
    obs.counter("monitor.deaths", Tier::Data)
        .add(records.values().map(|r| r.deaths).sum());
    obs.counter("monitor.rebirths", Tier::Data)
        .add(records.values().map(|r| r.rebirths).sum());
    let checks = obs.histogram("monitor.checks_per_instance", Tier::Data, &CHECKS_BOUNDS);
    let depth = obs.histogram("monitor.discovery_depth", Tier::Data, &DEPTH_BOUNDS);
    for rec in records.values() {
        checks.record(rec.checks);
        depth.record(u64::from(rec.depth));
    }
}

/// Render the deterministic nodes-list artifact: a commented header
/// (run identity only — nothing schedule-dependent) and one
/// tab-separated line per domain in roster order. CI compares these
/// bytes across `{threads} × {tasks}` matrix cells.
pub fn nodes_list(
    records: &BTreeMap<String, NodeRecord>,
    seed: u64,
    scenario: &str,
    sim_days: u64,
) -> String {
    use std::fmt::Write;

    let mut out = String::new();
    let _ = writeln!(out, "# flock-monitor nodes list");
    let _ = writeln!(out, "# seed={seed} scenario={scenario} sim_days={sim_days}");
    let _ = writeln!(
        out,
        "# domain\tstate\tdepth\tdiscovered\tlast_checked\tlast_change\tnext_check\tchecks\tfailures\tdeaths\trebirths"
    );
    for rec in records.values() {
        let last_checked = match rec.last_checked_secs {
            Some(t) => t.to_string(),
            None => "-".to_string(),
        };
        let _ = writeln!(
            out,
            "{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
            rec.domain,
            rec.state,
            rec.depth,
            rec.discovered_secs,
            last_checked,
            rec.last_change_secs,
            rec.next_check_secs,
            rec.checks,
            rec.consecutive_failures,
            rec.deaths,
            rec.rebirths,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_and_caps() {
        let cfg = MonitorConfig::default();
        assert_eq!(cfg.failure_backoff_secs(1), 3_600);
        assert_eq!(cfg.failure_backoff_secs(2), 7_200);
        assert_eq!(cfg.failure_backoff_secs(3), 14_400);
        assert_eq!(cfg.failure_backoff_secs(10), SECS_PER_DAY);
        assert_eq!(cfg.failure_backoff_secs(u32::MAX), SECS_PER_DAY);
    }

    #[test]
    fn validate_rejects_degenerate_configs() {
        let ok = MonitorConfig {
            bootstrap: vec!["m.example".to_string()],
            ..MonitorConfig::default()
        };
        assert!(ok.validate().is_ok());
        for bad in [
            MonitorConfig {
                sim_days: 0,
                ..ok.clone()
            },
            MonitorConfig {
                bootstrap: Vec::new(),
                ..ok.clone()
            },
            MonitorConfig {
                backoff_base_secs: 0,
                ..ok.clone()
            },
            MonitorConfig {
                backoff_cap_secs: 1,
                ..ok.clone()
            },
            MonitorConfig {
                alive_recheck_secs: 0,
                ..ok.clone()
            },
        ] {
            assert!(bad.validate().is_err());
        }
    }

    #[test]
    fn fold_tracks_discovery_death_and_rebirth() {
        let cfg = MonitorConfig {
            bootstrap: vec!["a.example".to_string()],
            ..MonitorConfig::default()
        };
        let mut records = BTreeMap::new();
        records.insert(
            "a.example".to_string(),
            NodeRecord::discovered("a.example".to_string(), 0, 0, 0),
        );
        fold(
            &mut records,
            &cfg,
            "a.example",
            0,
            checker::CheckOutcome::Alive(vec!["b.example".to_string()]),
        );
        assert_eq!(records.len(), 2);
        let b = &records["b.example"];
        assert_eq!(b.depth, 1);
        assert_eq!(b.next_check_secs, cfg.discovery_delay_secs);
        let a = &records["a.example"];
        assert_eq!(a.state, NodeState::Alive);
        assert_eq!(a.next_check_secs, cfg.alive_recheck_secs);

        let t1 = a.next_check_secs;
        fold(
            &mut records,
            &cfg,
            "a.example",
            t1,
            checker::CheckOutcome::Dead,
        );
        let a = &records["a.example"];
        assert_eq!(a.state, NodeState::Dead);
        assert_eq!(a.deaths, 1);
        assert_eq!(a.next_check_secs, t1 + cfg.backoff_base_secs);

        let t2 = a.next_check_secs;
        fold(
            &mut records,
            &cfg,
            "a.example",
            t2,
            checker::CheckOutcome::Dead,
        );
        let a = &records["a.example"];
        assert_eq!(a.consecutive_failures, 2);
        assert_eq!(a.next_check_secs, t2 + 2 * cfg.backoff_base_secs);

        let t3 = a.next_check_secs;
        fold(
            &mut records,
            &cfg,
            "a.example",
            t3,
            checker::CheckOutcome::Alive(Vec::new()),
        );
        let a = &records["a.example"];
        assert_eq!(a.state, NodeState::Alive);
        assert_eq!(a.rebirths, 1);
        assert_eq!(a.consecutive_failures, 0);
        assert_eq!(a.checks, 4);
    }

    #[test]
    fn nodes_list_is_sorted_and_headered() {
        let mut records = BTreeMap::new();
        for d in ["b.example", "a.example"] {
            records.insert(
                d.to_string(),
                NodeRecord::discovered(d.to_string(), 0, 0, 0),
            );
        }
        let text = nodes_list(&records, 42, "rolling-outages", 30);
        assert!(text.starts_with("# flock-monitor nodes list\n"));
        assert!(text.contains("seed=42 scenario=rolling-outages sim_days=30"));
        let body: Vec<&str> = text.lines().filter(|l| !l.starts_with('#')).collect();
        assert_eq!(body.len(), 2);
        assert!(body[0].starts_with("a.example\tpending\t0\t0\t-\t"));
        assert!(body[1].starts_with("b.example\t"));
    }
}

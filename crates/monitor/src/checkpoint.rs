//! Monitor checkpointing — kill the monitor mid-horizon, restart the
//! process, and converge to the same roster.
//!
//! The unit of progress is a completed **round** (see [`crate::run`]):
//! after a round every record's fields derive from scheduled instants
//! only, so persisting `(round, clock, roster)` is enough for a resumed
//! run — against a **fresh** API server advanced to the checkpointed
//! clock — to continue with byte-identical Data-tier output. The write
//! discipline is the crawler's: unique temp file in the same directory,
//! fsync the data, rename over the target, fsync the parent directory,
//! so a crash mid-save can never leave a torn or zero-length checkpoint.

use crate::NodeRecord;
use flock_core::{FlockError, Result};
use serde::{Deserialize, Serialize};
use std::path::Path;

/// A monitor checkpoint: the round counter, the virtual clock at the
/// round boundary, and the roster (domain-sorted).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MonitorCheckpoint {
    /// Rounds completed when the checkpoint was taken.
    pub round: u64,
    /// The API server's virtual clock at the round boundary; a resumed
    /// run advances its fresh server here so waits already paid are not
    /// paid again.
    pub clock_secs: u64,
    /// Every known [`NodeRecord`], in domain order.
    pub records: Vec<NodeRecord>,
}

impl MonitorCheckpoint {
    /// Serialize to JSON.
    pub fn to_json(&self) -> Result<String> {
        serde_json::to_string(self)
            .map_err(|e| FlockError::InvalidConfig(format!("serialize monitor checkpoint: {e}")))
    }

    /// Deserialize from JSON.
    pub fn from_json(json: &str) -> Result<MonitorCheckpoint> {
        serde_json::from_str(json)
            .map_err(|e| FlockError::InvalidConfig(format!("deserialize monitor checkpoint: {e}")))
    }

    /// Write atomically **and durably** (temp + fsync + rename + dir
    /// fsync; pid-unique temp name so concurrent or crashed savers never
    /// clobber each other's in-flight writes).
    pub fn save(&self, path: &Path) -> Result<()> {
        use std::io::Write;

        let json = self.to_json()?;
        let file_name = path
            .file_name()
            .ok_or_else(|| {
                FlockError::InvalidConfig(format!(
                    "checkpoint path {} has no file name",
                    path.display()
                ))
            })?
            .to_string_lossy()
            .into_owned();
        let tmp = path.with_file_name(format!(".{file_name}.tmp.{}", std::process::id()));
        let err = |stage: &str, p: &Path, e: std::io::Error| {
            FlockError::InvalidConfig(format!("{stage} {}: {e}", p.display()))
        };
        let result = (|| {
            let mut f = std::fs::File::create(&tmp).map_err(|e| err("create", &tmp, e))?;
            f.write_all(json.as_bytes())
                .map_err(|e| err("write", &tmp, e))?;
            f.sync_all().map_err(|e| err("fsync", &tmp, e))?;
            drop(f);
            std::fs::rename(&tmp, path).map_err(|e| {
                FlockError::InvalidConfig(format!(
                    "rename {} -> {}: {e}",
                    tmp.display(),
                    path.display()
                ))
            })?;
            // Durability of the rename itself (skipped where directories
            // cannot be opened, e.g. Windows).
            if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
                if let Ok(dir) = std::fs::File::open(parent) {
                    dir.sync_all().map_err(|e| err("fsync dir", parent, e))?;
                }
            }
            Ok(())
        })();
        if result.is_err() {
            // Best-effort cleanup so failed saves don't strand temp files.
            std::fs::remove_file(&tmp).ok();
        }
        result
    }

    /// Read a checkpoint back.
    pub fn load(path: &Path) -> Result<MonitorCheckpoint> {
        let json = std::fs::read_to_string(path)
            .map_err(|e| FlockError::InvalidConfig(format!("read {}: {e}", path.display())))?;
        MonitorCheckpoint::from_json(&json)
    }

    /// [`MonitorCheckpoint::load`], returning `None` when no checkpoint
    /// exists yet (the first run of a resumable monitor).
    pub fn load_if_exists(path: &Path) -> Result<Option<MonitorCheckpoint>> {
        if path.exists() {
            Ok(Some(MonitorCheckpoint::load(path)?))
        } else {
            Ok(None)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeState;

    fn sample() -> MonitorCheckpoint {
        MonitorCheckpoint {
            round: 7,
            clock_secs: 43_200,
            records: vec![NodeRecord {
                domain: "mastodon.example".to_string(),
                state: NodeState::Alive,
                depth: 0,
                discovered_secs: 0,
                last_checked_secs: Some(43_200),
                last_change_secs: 0,
                next_check_secs: 64_800,
                checks: 3,
                consecutive_failures: 0,
                deaths: 0,
                rebirths: 0,
            }],
        }
    }

    #[test]
    fn json_round_trip() {
        let cp = sample();
        let back = MonitorCheckpoint::from_json(&cp.to_json().unwrap()).unwrap();
        assert_eq!(back.round, 7);
        assert_eq!(back.clock_secs, 43_200);
        assert_eq!(back.records.len(), 1);
        assert_eq!(back.records[0].state, NodeState::Alive);
    }

    #[test]
    fn save_load_missing_and_no_temp_leftovers() {
        let dir = std::env::temp_dir().join("flock_monitor_checkpoint_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("monitor.ckpt");
        std::fs::remove_file(&path).ok();
        assert!(MonitorCheckpoint::load_if_exists(&path).unwrap().is_none());
        sample().save(&path).unwrap();
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.contains(".tmp"))
            .collect();
        assert!(
            leftovers.is_empty(),
            "temp files left behind: {leftovers:?}"
        );
        let back = MonitorCheckpoint::load_if_exists(&path).unwrap().unwrap();
        assert_eq!(back.records[0].domain, "mastodon.example");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_checkpoint_is_rejected() {
        for bad in ["", "{", "null", "{\"round\": \"x\"}"] {
            assert!(MonitorCheckpoint::from_json(bad).is_err(), "{bad:?} parsed");
        }
    }
}

//! `flock-chaos` — deterministic fault plans for the simulated API surface.
//!
//! The crawler in the paper ran against a live, hostile internet: dead
//! instances, rate-limit storms, truncated result pages. This crate turns
//! that adversity into *scheduled, composable scenarios* instead of a
//! single coin-flip error rate: a [`FaultPlan`] is a seed plus a list of
//! [`Fault`]s, resolved once against a world into a [`ResolvedPlan`] the
//! API server consults on every request.
//!
//! # Determinism contract
//!
//! The virtual clock is a shared atomic that concurrent workers advance,
//! so *when* a given request happens is a scheduling detail. A plan is
//! **dataset-deterministic** — same seed + same plan produce a
//! byte-identical crawl at any worker count — because every fault it can
//! express falls into one of three shapes:
//!
//! 1. **Waitable** faults carry a retry-after deadline the crawler waits
//!    out on the virtual clock (finite [`Fault::InstanceOutage`] windows,
//!    [`Fault::RetryAfterStorm`]). They cost virtual time, never data.
//! 2. **Permanent** faults hold for the whole crawl
//!    ([`Fault::InstanceOutage`] with [`Window::PERMANENT`]): every
//!    schedule observes them identically.
//! 3. **Per-key** faults are a pure function of the *logical request key*
//!    (the endpoint scope + cursor), not of time or thread interleaving:
//!    [`Fault::ErrorBurst`], [`Fault::TruncatedPages`], and the per-key
//!    draw inside [`Fault::RetryAfterStorm`]. A cursed key fails the same
//!    way in every schedule.
//!
//! [`Fault::LatencyBurst`] injects real wall-clock latency and affects
//! only throughput, never data. The canned [`Scenario`]s stay inside this
//! contract by construction.

use flock_core::{DetRng, FlockError, Result};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use std::fmt::Write as _;
use std::str::FromStr;

/// The four endpoint families the API server rate-limits independently.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EndpointFamily {
    /// Twitter full-archive search (timelines share this family).
    Search,
    /// Twitter batch user lookup.
    Users,
    /// The Twitter follows endpoint.
    Follows,
    /// Every per-instance Mastodon endpoint.
    Mastodon,
}

impl EndpointFamily {
    /// All families, fixed order (the index into per-family tables).
    pub const ALL: [EndpointFamily; 4] = [
        EndpointFamily::Search,
        EndpointFamily::Users,
        EndpointFamily::Follows,
        EndpointFamily::Mastodon,
    ];

    /// Stable index of this family in [`EndpointFamily::ALL`].
    pub fn index(self) -> usize {
        match self {
            EndpointFamily::Search => 0,
            EndpointFamily::Users => 1,
            EndpointFamily::Follows => 2,
            EndpointFamily::Mastodon => 3,
        }
    }

    /// Lowercase label, matching the server's metric names.
    pub fn label(self) -> &'static str {
        match self {
            EndpointFamily::Search => "search",
            EndpointFamily::Users => "users",
            EndpointFamily::Follows => "follows",
            EndpointFamily::Mastodon => "mastodon",
        }
    }
}

/// A half-open virtual-time interval `[start_secs, end_secs)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Window {
    pub start_secs: u64,
    pub end_secs: u64,
}

impl Window {
    /// The whole crawl: a permanent fault.
    pub const PERMANENT: Window = Window {
        start_secs: 0,
        end_secs: u64::MAX,
    };

    /// A finite window starting at virtual zero.
    pub fn first(secs: u64) -> Window {
        Window {
            start_secs: 0,
            end_secs: secs,
        }
    }

    /// Does the window cover virtual time `now`?
    pub fn contains(&self, now: u64) -> bool {
        now >= self.start_secs && now < self.end_secs
    }

    /// A permanent window never ends.
    pub fn is_permanent(&self) -> bool {
        self.end_secs == u64::MAX
    }
}

/// Which instances an outage fault applies to.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum InstanceSelector {
    /// Exactly these domains.
    Domains(Vec<String>),
    /// A seeded sample of this fraction of the eligible candidates (the
    /// world decides eligibility — instances already down at crawl time
    /// and the flagship instances are excluded before resolution).
    RandomFraction(f64),
    /// Every eligible candidate.
    All,
}

/// One composable fault.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Fault {
    /// Selected instances answer unavailable during `window`. A finite
    /// window is *waitable* (the server reports the reopening deadline);
    /// [`Window::PERMANENT`] reproduces a dead instance.
    InstanceOutage {
        selector: InstanceSelector,
        window: Window,
    },
    /// A fraction `key_rate` of logical request keys fail transiently,
    /// `1..=max_per_key` times each (drawn per key). Keys failing more
    /// than the crawler's retry allowance become deterministic skips.
    ErrorBurst {
        family: EndpointFamily,
        key_rate: f64,
        max_per_key: u32,
    },
    /// A fraction `key_rate` of logical request keys answer `429` with a
    /// fixed `Retry-After`, `1..=max_per_key` times each. Waitable: costs
    /// virtual time, never data.
    RetryAfterStorm {
        family: EndpointFamily,
        key_rate: f64,
        retry_after_secs: u64,
        max_per_key: u32,
    },
    /// A fraction `scope_rate` of pagination scopes silently lose their
    /// `next` cursor after the first page (the real API's occasional
    /// truncated result set).
    TruncatedPages {
        family: EndpointFamily,
        scope_rate: f64,
    },
    /// Extra wall-clock latency per granted request while the virtual
    /// clock is inside `window`. Throughput-only; never observable in the
    /// dataset.
    LatencyBurst {
        family: EndpointFamily,
        window: Window,
        extra_micros: u64,
    },
}

/// A seedable, composable fault plan. `seed` drives both the resolution
/// of random selectors and every per-key draw, so plan + seed is a
/// complete description of the fault sequence.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    pub seed: u64,
    pub faults: Vec<Fault>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::calm()
    }
}

impl FaultPlan {
    /// The empty plan: no faults at all.
    pub fn calm() -> FaultPlan {
        FaultPlan {
            seed: 0,
            faults: Vec::new(),
        }
    }

    /// `true` when the plan injects nothing.
    pub fn is_calm(&self) -> bool {
        self.faults.is_empty()
    }

    /// Range-check every parameter: probabilities must be finite and in
    /// `[0, 1]`, counts at least 1, windows well-ordered. Typed
    /// [`FlockError::InvalidConfig`] on the first violation.
    pub fn validate(&self) -> Result<()> {
        for (i, fault) in self.faults.iter().enumerate() {
            match fault {
                Fault::InstanceOutage { selector, window } => {
                    if let InstanceSelector::RandomFraction(f) = selector {
                        probability(&format!("fault {i}: outage fraction"), *f)?;
                    }
                    check_window(i, window)?;
                }
                Fault::ErrorBurst {
                    key_rate,
                    max_per_key,
                    ..
                } => {
                    probability(&format!("fault {i}: burst key_rate"), *key_rate)?;
                    at_least_one(&format!("fault {i}: burst max_per_key"), *max_per_key)?;
                }
                Fault::RetryAfterStorm {
                    key_rate,
                    retry_after_secs,
                    max_per_key,
                    ..
                } => {
                    probability(&format!("fault {i}: storm key_rate"), *key_rate)?;
                    at_least_one(&format!("fault {i}: storm max_per_key"), *max_per_key)?;
                    if *retry_after_secs == 0 {
                        return Err(FlockError::InvalidConfig(format!(
                            "fault {i}: storm retry_after_secs must be positive"
                        )));
                    }
                }
                Fault::TruncatedPages { scope_rate, .. } => {
                    probability(&format!("fault {i}: truncation scope_rate"), *scope_rate)?;
                }
                Fault::LatencyBurst { window, .. } => check_window(i, window)?,
            }
        }
        Ok(())
    }

    /// Resolve the plan against the world's outage-eligible instances
    /// (validates first). Resolution is pure: same plan + same candidate
    /// list yield a byte-identical [`ResolvedPlan::describe`].
    pub fn resolve(&self, outage_candidates: &[String]) -> Result<ResolvedPlan> {
        self.validate()?;
        let mut resolved = ResolvedPlan {
            seed: self.seed,
            outages: BTreeMap::new(),
            families: Default::default(),
        };
        for (i, fault) in self.faults.iter().enumerate() {
            // Each fault keys its draws off its own salt, so two otherwise
            // identical faults in one plan are independent.
            let salt = fnv1a(&format!("fault-{i}"));
            match fault {
                Fault::InstanceOutage { selector, window } => {
                    let domains: Vec<String> = match selector {
                        InstanceSelector::Domains(d) => d.clone(),
                        InstanceSelector::All => outage_candidates.to_vec(),
                        InstanceSelector::RandomFraction(f) => {
                            let k = (outage_candidates.len() as f64 * f).round() as usize;
                            let mut rng = DetRng::new(self.seed ^ salt);
                            let mut picked = rng.sample(outage_candidates.iter().cloned(), k);
                            picked.sort();
                            picked
                        }
                    };
                    for d in domains {
                        resolved.outages.entry(d).or_default().push(*window);
                    }
                }
                Fault::ErrorBurst {
                    family,
                    key_rate,
                    max_per_key,
                } => resolved.families[family.index()].bursts.push(KeyedSpec {
                    salt,
                    rate: *key_rate,
                    max_per_key: *max_per_key,
                    retry_after_secs: 0,
                }),
                Fault::RetryAfterStorm {
                    family,
                    key_rate,
                    retry_after_secs,
                    max_per_key,
                } => resolved.families[family.index()].storms.push(KeyedSpec {
                    salt,
                    rate: *key_rate,
                    max_per_key: *max_per_key,
                    retry_after_secs: *retry_after_secs,
                }),
                Fault::TruncatedPages { family, scope_rate } => resolved.families[family.index()]
                    .truncations
                    .push(KeyedSpec {
                        salt,
                        rate: *scope_rate,
                        max_per_key: 0,
                        retry_after_secs: 0,
                    }),
                Fault::LatencyBurst {
                    family,
                    window,
                    extra_micros,
                } => resolved.families[family.index()]
                    .latency
                    .push((*window, *extra_micros)),
            }
        }
        for windows in resolved.outages.values_mut() {
            windows.sort_by_key(|w| (w.start_secs, w.end_secs));
        }
        Ok(resolved)
    }
}

/// One per-key fault source after resolution (burst, storm, or
/// truncation — truncations ignore the count fields).
#[derive(Debug, Clone)]
struct KeyedSpec {
    salt: u64,
    rate: f64,
    max_per_key: u32,
    retry_after_secs: u64,
}

/// Per-family fault state after resolution.
#[derive(Debug, Clone, Default)]
struct FamilyFaults {
    bursts: Vec<KeyedSpec>,
    storms: Vec<KeyedSpec>,
    truncations: Vec<KeyedSpec>,
    latency: Vec<(Window, u64)>,
}

/// What a plan prescribes for one logical request key.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KeyFaults {
    /// Transient errors to inject before the request may succeed.
    pub errors: u32,
    /// `429` responses to inject before the request may succeed.
    pub storms: u32,
    /// Retry-After carried by each injected `429` (max across storms).
    pub storm_retry_after_secs: u64,
}

impl KeyFaults {
    /// Does the key carry any injected fault?
    pub fn any(&self) -> bool {
        self.errors > 0 || self.storms > 0
    }
}

/// Whether an instance answers at a given virtual time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutageStatus {
    /// Reachable.
    Up,
    /// In a finite outage window reopening at `end_secs` — waitable.
    Until { end_secs: u64 },
    /// Down for the whole crawl.
    Permanent,
}

/// A [`FaultPlan`] resolved against a world: random selectors are fixed
/// to concrete domains, per-key draws are pure functions of the seed.
#[derive(Debug, Clone)]
pub struct ResolvedPlan {
    seed: u64,
    /// Outage windows per domain, sorted.
    outages: BTreeMap<String, Vec<Window>>,
    families: [FamilyFaults; 4],
}

impl ResolvedPlan {
    /// The resolved calm plan (no faults).
    pub fn calm() -> ResolvedPlan {
        ResolvedPlan {
            seed: 0,
            outages: BTreeMap::new(),
            families: Default::default(),
        }
    }

    /// `true` when nothing is ever injected.
    pub fn is_empty(&self) -> bool {
        self.outages.is_empty()
            && self.families.iter().all(|f| {
                f.bursts.is_empty()
                    && f.storms.is_empty()
                    && f.truncations.is_empty()
                    && f.latency.is_empty()
            })
    }

    /// Does the family carry any per-key fault source? (Cheap pre-check
    /// so the server can skip key hashing on calm families.)
    pub fn family_has_key_faults(&self, family: EndpointFamily) -> bool {
        let f = &self.families[family.index()];
        !f.bursts.is_empty() || !f.storms.is_empty()
    }

    /// The injected-fault budget for one logical request key — a pure
    /// function of `(seed, plan, family, key)`, independent of time and
    /// scheduling.
    pub fn key_faults(&self, family: EndpointFamily, key: &str) -> KeyFaults {
        let fam = &self.families[family.index()];
        if fam.bursts.is_empty() && fam.storms.is_empty() {
            return KeyFaults::default();
        }
        let kh = fnv1a(key);
        let mut out = KeyFaults::default();
        for spec in &fam.bursts {
            let mut rng = DetRng::new(self.seed ^ spec.salt ^ kh);
            if rng.chance(spec.rate) {
                out.errors += 1 + rng.below(u64::from(spec.max_per_key)) as u32;
            }
        }
        for spec in &fam.storms {
            let mut rng = DetRng::new(self.seed ^ spec.salt ^ kh);
            if rng.chance(spec.rate) {
                out.storms += 1 + rng.below(u64::from(spec.max_per_key)) as u32;
                out.storm_retry_after_secs = out.storm_retry_after_secs.max(spec.retry_after_secs);
            }
        }
        out
    }

    /// Is this pagination scope cursed to lose its cursor after page one?
    /// Pure in `(seed, plan, family, scope)`.
    pub fn truncates(&self, family: EndpointFamily, scope: &str) -> bool {
        let fam = &self.families[family.index()];
        if fam.truncations.is_empty() {
            return false;
        }
        let kh = fnv1a(scope);
        fam.truncations
            .iter()
            .any(|spec| DetRng::new(self.seed ^ spec.salt ^ kh).chance(spec.rate))
    }

    /// Whether `domain` answers at virtual time `now`. Permanent outage
    /// windows dominate finite ones.
    pub fn outage(&self, domain: &str, now: u64) -> OutageStatus {
        let Some(windows) = self.outages.get(domain) else {
            return OutageStatus::Up;
        };
        let mut status = OutageStatus::Up;
        for w in windows {
            if !w.contains(now) {
                continue;
            }
            if w.is_permanent() {
                return OutageStatus::Permanent;
            }
            let end = match status {
                OutageStatus::Until { end_secs } => end_secs.max(w.end_secs),
                _ => w.end_secs,
            };
            status = OutageStatus::Until { end_secs: end };
        }
        status
    }

    /// Extra wall-clock latency (µs) for a granted request on `family`
    /// at virtual time `now`. Throughput-only.
    pub fn extra_latency_micros(&self, family: EndpointFamily, now: u64) -> u64 {
        self.families[family.index()]
            .latency
            .iter()
            .filter(|(w, _)| w.contains(now))
            .map(|(_, micros)| micros)
            .sum()
    }

    /// Canonical, byte-stable description of the resolved plan — the
    /// "fault sequence" the determinism contract promises: two
    /// resolutions of the same plan + seed + candidates render
    /// identically.
    pub fn describe(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "plan seed={}", self.seed);
        for (domain, windows) in &self.outages {
            for w in windows {
                if w.is_permanent() {
                    let _ = writeln!(out, "outage domain={domain} permanent");
                } else {
                    let _ = writeln!(
                        out,
                        "outage domain={domain} window=[{},{})",
                        w.start_secs, w.end_secs
                    );
                }
            }
        }
        for family in EndpointFamily::ALL {
            let fam = &self.families[family.index()];
            let label = family.label();
            for s in &fam.bursts {
                let _ = writeln!(
                    out,
                    "burst family={label} rate={} max_per_key={}",
                    s.rate, s.max_per_key
                );
            }
            for s in &fam.storms {
                let _ = writeln!(
                    out,
                    "storm family={label} rate={} max_per_key={} retry_after={}s",
                    s.rate, s.max_per_key, s.retry_after_secs
                );
            }
            for s in &fam.truncations {
                let _ = writeln!(out, "truncate family={label} rate={}", s.rate);
            }
            for (w, micros) in &fam.latency {
                let _ = writeln!(
                    out,
                    "latency family={label} window=[{},{}) extra_micros={micros}",
                    w.start_secs, w.end_secs
                );
            }
        }
        out
    }
}

/// The canned scenarios `repro --chaos <scenario>` offers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scenario {
    /// No faults: the baseline every other scenario is compared against.
    Calm,
    /// Aggressive Retry-After storms on every family. Waitable: the
    /// dataset is byte-identical to calm, the virtual crawl is far longer.
    RateLimitStorm,
    /// A large fraction of the (non-flagship) fediverse is simply gone
    /// for the whole crawl.
    InstanceMassacre,
    /// Flaky federation: finite outage waves, transient error bursts
    /// (some beyond the retry allowance), truncated pages, and extra
    /// per-request latency — all on the Mastodon side.
    FlakyFederation,
    /// Rolling mid-run outages for long-horizon monitoring: two finite
    /// outage waves that *start after* virtual zero (days 2–5 and 10–12),
    /// so a continuous monitor first sees the affected instances alive,
    /// watches them die, and must detect the rebirth when each window
    /// lifts — plus a mild Retry-After storm and error burst on the
    /// Mastodon side to keep the checks themselves flaky.
    RollingOutages,
}

impl Scenario {
    /// Every canned scenario.
    pub const ALL: [Scenario; 5] = [
        Scenario::Calm,
        Scenario::RateLimitStorm,
        Scenario::InstanceMassacre,
        Scenario::FlakyFederation,
        Scenario::RollingOutages,
    ];

    /// The CLI name.
    pub fn name(self) -> &'static str {
        match self {
            Scenario::Calm => "calm",
            Scenario::RateLimitStorm => "rate-limit-storm",
            Scenario::InstanceMassacre => "instance-massacre",
            Scenario::FlakyFederation => "flaky-federation",
            Scenario::RollingOutages => "rolling-outages",
        }
    }

    /// Build the scenario's plan under `seed`.
    pub fn plan(self, seed: u64) -> FaultPlan {
        let faults = match self {
            Scenario::Calm => Vec::new(),
            Scenario::RateLimitStorm => vec![
                Fault::RetryAfterStorm {
                    family: EndpointFamily::Search,
                    key_rate: 0.25,
                    retry_after_secs: 900,
                    max_per_key: 3,
                },
                Fault::RetryAfterStorm {
                    family: EndpointFamily::Follows,
                    key_rate: 0.30,
                    retry_after_secs: 900,
                    max_per_key: 2,
                },
                Fault::RetryAfterStorm {
                    family: EndpointFamily::Mastodon,
                    key_rate: 0.15,
                    retry_after_secs: 300,
                    max_per_key: 3,
                },
            ],
            Scenario::InstanceMassacre => vec![Fault::InstanceOutage {
                selector: InstanceSelector::RandomFraction(0.30),
                window: Window::PERMANENT,
            }],
            Scenario::FlakyFederation => vec![
                Fault::InstanceOutage {
                    selector: InstanceSelector::RandomFraction(0.20),
                    window: Window::first(6 * 3600),
                },
                Fault::ErrorBurst {
                    family: EndpointFamily::Mastodon,
                    key_rate: 0.08,
                    max_per_key: 8,
                },
                Fault::TruncatedPages {
                    family: EndpointFamily::Mastodon,
                    scope_rate: 0.05,
                },
                Fault::LatencyBurst {
                    family: EndpointFamily::Mastodon,
                    window: Window::first(3600),
                    extra_micros: 20,
                },
            ],
            Scenario::RollingOutages => vec![
                Fault::InstanceOutage {
                    selector: InstanceSelector::RandomFraction(0.25),
                    window: Window {
                        start_secs: 2 * 86_400,
                        end_secs: 5 * 86_400,
                    },
                },
                Fault::InstanceOutage {
                    selector: InstanceSelector::RandomFraction(0.15),
                    window: Window {
                        start_secs: 10 * 86_400,
                        end_secs: 12 * 86_400,
                    },
                },
                Fault::RetryAfterStorm {
                    family: EndpointFamily::Mastodon,
                    key_rate: 0.10,
                    retry_after_secs: 300,
                    max_per_key: 2,
                },
                Fault::ErrorBurst {
                    family: EndpointFamily::Mastodon,
                    key_rate: 0.05,
                    max_per_key: 2,
                },
            ],
        };
        FaultPlan { seed, faults }
    }
}

impl fmt::Display for Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for Scenario {
    type Err = String;
    fn from_str(s: &str) -> std::result::Result<Self, Self::Err> {
        Scenario::ALL
            .into_iter()
            .find(|sc| sc.name() == s)
            .ok_or_else(|| {
                let names: Vec<&str> = Scenario::ALL.iter().map(|s| s.name()).collect();
                format!(
                    "unknown scenario {s:?} (expected one of: {})",
                    names.join(", ")
                )
            })
    }
}

/// FNV-1a over a label (the same mixing discipline `DetRng::fork` uses,
/// reimplemented here so per-key draws need no shared mutable RNG).
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

fn probability(what: &str, v: f64) -> Result<()> {
    if !v.is_finite() || !(0.0..=1.0).contains(&v) {
        return Err(FlockError::InvalidConfig(format!(
            "{what} must be a finite probability in [0, 1], got {v}"
        )));
    }
    Ok(())
}

fn at_least_one(what: &str, v: u32) -> Result<()> {
    if v == 0 {
        return Err(FlockError::InvalidConfig(format!(
            "{what} must be at least 1"
        )));
    }
    Ok(())
}

fn check_window(i: usize, w: &Window) -> Result<()> {
    if w.start_secs >= w.end_secs {
        return Err(FlockError::InvalidConfig(format!(
            "fault {i}: window [{}, {}) is empty",
            w.start_secs, w.end_secs
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn candidates(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("inst{i}.example")).collect()
    }

    #[test]
    fn validation_rejects_out_of_range_parameters() {
        let bad_rates = [f64::NAN, -0.1, 1.1, f64::INFINITY];
        for r in bad_rates {
            let plan = FaultPlan {
                seed: 1,
                faults: vec![Fault::ErrorBurst {
                    family: EndpointFamily::Search,
                    key_rate: r,
                    max_per_key: 2,
                }],
            };
            assert!(
                matches!(plan.validate(), Err(FlockError::InvalidConfig(_))),
                "rate {r} accepted"
            );
        }
        let plan = FaultPlan {
            seed: 1,
            faults: vec![Fault::RetryAfterStorm {
                family: EndpointFamily::Follows,
                key_rate: 0.5,
                retry_after_secs: 0,
                max_per_key: 1,
            }],
        };
        assert!(plan.validate().is_err(), "zero retry-after accepted");
        let plan = FaultPlan {
            seed: 1,
            faults: vec![Fault::ErrorBurst {
                family: EndpointFamily::Users,
                key_rate: 0.5,
                max_per_key: 0,
            }],
        };
        assert!(plan.validate().is_err(), "zero max_per_key accepted");
        let plan = FaultPlan {
            seed: 1,
            faults: vec![Fault::InstanceOutage {
                selector: InstanceSelector::All,
                window: Window {
                    start_secs: 10,
                    end_secs: 10,
                },
            }],
        };
        assert!(plan.validate().is_err(), "empty window accepted");
    }

    #[test]
    fn every_canned_scenario_validates() {
        for sc in Scenario::ALL {
            sc.plan(42).validate().unwrap();
            sc.plan(42).resolve(&candidates(50)).unwrap();
        }
    }

    #[test]
    fn resolution_is_byte_stable() {
        let plan = Scenario::FlakyFederation.plan(7);
        let a = plan.resolve(&candidates(40)).unwrap().describe();
        let b = plan.resolve(&candidates(40)).unwrap().describe();
        assert_eq!(a, b);
        assert!(a.contains("outage domain="));
        assert!(a.contains("burst family=mastodon"));
        // A different seed resolves a different fault sequence.
        let c = Scenario::FlakyFederation
            .plan(8)
            .resolve(&candidates(40))
            .unwrap()
            .describe();
        assert_ne!(a, c);
    }

    #[test]
    fn key_faults_are_pure_and_rate_plausible() {
        let resolved = Scenario::FlakyFederation
            .plan(99)
            .resolve(&candidates(10))
            .unwrap();
        let mut cursed = 0;
        for i in 0..2000 {
            let key = format!("statuses:@user{i}@inst.example#");
            let a = resolved.key_faults(EndpointFamily::Mastodon, &key);
            let b = resolved.key_faults(EndpointFamily::Mastodon, &key);
            assert_eq!(a, b, "key_faults not pure for {key}");
            if a.any() {
                cursed += 1;
                assert!(a.errors >= 1 && a.errors <= 8);
            }
            // Other families are untouched by this scenario's bursts.
            assert!(!resolved.key_faults(EndpointFamily::Search, &key).any());
        }
        // key_rate 0.08 over 2000 keys: comfortably wide acceptance band.
        assert!((60..=260).contains(&cursed), "cursed {cursed} of 2000");
    }

    #[test]
    fn truncation_is_per_scope_and_rate_plausible() {
        let resolved = Scenario::FlakyFederation
            .plan(5)
            .resolve(&candidates(10))
            .unwrap();
        let mut cursed = 0;
        for i in 0..2000 {
            let scope = format!("statuses:@user{i}@inst.example");
            if resolved.truncates(EndpointFamily::Mastodon, &scope) {
                cursed += 1;
            }
        }
        assert!((30..=190).contains(&cursed), "cursed {cursed} of 2000");
        assert!(!resolved.truncates(EndpointFamily::Search, "search:mastodon:25:51"));
    }

    #[test]
    fn outage_status_tracks_windows() {
        let plan = FaultPlan {
            seed: 3,
            faults: vec![
                Fault::InstanceOutage {
                    selector: InstanceSelector::Domains(vec!["a.example".into()]),
                    window: Window {
                        start_secs: 100,
                        end_secs: 200,
                    },
                },
                Fault::InstanceOutage {
                    selector: InstanceSelector::Domains(vec!["b.example".into()]),
                    window: Window::PERMANENT,
                },
            ],
        };
        let r = plan.resolve(&[]).unwrap();
        assert_eq!(r.outage("a.example", 50), OutageStatus::Up);
        assert_eq!(
            r.outage("a.example", 150),
            OutageStatus::Until { end_secs: 200 }
        );
        assert_eq!(r.outage("a.example", 200), OutageStatus::Up);
        assert_eq!(r.outage("b.example", 0), OutageStatus::Permanent);
        assert_eq!(r.outage("b.example", u64::MAX - 1), OutageStatus::Permanent);
        assert_eq!(r.outage("c.example", 0), OutageStatus::Up);
    }

    #[test]
    fn massacre_samples_the_requested_fraction() {
        let r = Scenario::InstanceMassacre
            .plan(11)
            .resolve(&candidates(100))
            .unwrap();
        let down = (0..100)
            .filter(|i| r.outage(&format!("inst{i}.example"), 0) == OutageStatus::Permanent)
            .count();
        assert_eq!(down, 30, "RandomFraction(0.30) of 100 candidates");
        // Non-candidates are never selected.
        assert_eq!(r.outage("mastodon.social", 0), OutageStatus::Up);
    }

    #[test]
    fn latency_only_inside_window() {
        let r = Scenario::FlakyFederation
            .plan(1)
            .resolve(&candidates(5))
            .unwrap();
        assert_eq!(r.extra_latency_micros(EndpointFamily::Mastodon, 10), 20);
        assert_eq!(r.extra_latency_micros(EndpointFamily::Mastodon, 3600), 0);
        assert_eq!(r.extra_latency_micros(EndpointFamily::Search, 10), 0);
    }

    #[test]
    fn rolling_outages_start_late_and_lift_mid_run() {
        let r = Scenario::RollingOutages
            .plan(13)
            .resolve(&candidates(40))
            .unwrap();
        // Find an instance hit by the first wave (days 2–5): it must be up
        // before the wave, waitable inside it, and up again after — the
        // alive → dead → alive sequence the monitor's rebirth detection
        // exercises.
        let wave1 = (0..40)
            .map(|i| format!("inst{i}.example"))
            .find(|d| r.outage(d, 3 * 86_400) != OutageStatus::Up);
        let domain = wave1.expect("0.25 of 40 candidates must put someone in wave one");
        assert_eq!(r.outage(&domain, 86_400), OutageStatus::Up);
        assert_eq!(
            r.outage(&domain, 3 * 86_400),
            OutageStatus::Until {
                end_secs: 5 * 86_400
            }
        );
        assert_eq!(r.outage(&domain, 6 * 86_400), OutageStatus::Up);
    }

    #[test]
    fn scenario_names_round_trip() {
        for sc in Scenario::ALL {
            assert_eq!(sc.name().parse::<Scenario>().unwrap(), sc);
            assert_eq!(sc.to_string(), sc.name());
        }
        assert!("chaos-monkey".parse::<Scenario>().is_err());
    }

    #[test]
    fn plan_serde_round_trip() {
        let plan = Scenario::FlakyFederation.plan(77);
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(back, plan);
    }

    #[test]
    fn calm_is_empty() {
        assert!(FaultPlan::calm().is_calm());
        assert!(FaultPlan::calm()
            .resolve(&candidates(3))
            .unwrap()
            .is_empty());
        assert!(ResolvedPlan::calm().is_empty());
        assert!(!Scenario::RateLimitStorm
            .plan(0)
            .resolve(&candidates(3))
            .unwrap()
            .is_empty());
    }
}

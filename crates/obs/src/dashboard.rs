//! Deterministic run dashboard: one self-contained HTML file combining
//! trend charts over the append-only `BENCH_history.jsonl`, phase/worker
//! visuals from the span store, and (optionally) a side-by-side diff of
//! two run reports.
//!
//! Everything renders offline and dependency-free: no external JS, CSS,
//! fonts or images — charts are inline SVG built on [`crate::svg`]. The
//! dashboard inherits the report's two-tier fence model, with literal
//! HTML-comment fences ([`DASH_DATA_FENCE_BEGIN`]…) so CI can
//! `sed`-extract the Data region and byte-compare it across worker
//! counts and task widths:
//!
//! * the **Data** region holds the history trend charts (pure functions
//!   of the committed history file), the run report's Data section, and
//!   the run-diff view (a function of two Data sections). Chart geometry
//!   goes through [`crate::svg::fmt_fixed`], so there is no
//!   float-formatting drift to leak scheduling into the pixels.
//! * the **Sched** region holds the phase-timeline Gantt, the per-worker
//!   utilization heatmap, the per-phase wait-attribution stacked bars
//!   (the Σ buckets + work = duration identity, rendered), and the
//!   report's Sched section.
//!
//! Trend series are shape-filtered the same way `scripts/bench_check.sh`
//! windows the history (throughput-shaped entries carry `search`,
//! monitor-shaped entries carry `checks_per_sec`), and each chart
//! carries a regression marker when the corresponding trend gate would
//! fire on the newest entry.

use std::collections::BTreeSet;
use std::fmt::Write as _;

use crate::profile::{phase_profiles, PhaseProfile};
use crate::report::RunReport;
use crate::svg::{
    circle, fmt_fixed, label, rect, spark_geometry, sparkline, svg_root, trend_of, xml_escape,
    SparkSpec,
};
use crate::{Registry, Tier, WaitCause};
use serde::Value;

/// Fence opening the worker-count-invariant dashboard region. Emitted on
/// its own line so `sed -n '/^…/,/^…/p'` can carve the region out.
pub const DASH_DATA_FENCE_BEGIN: &str = "<!--=== BEGIN DASHBOARD DATA TIER ===-->";
/// Fence closing the worker-count-invariant dashboard region.
pub const DASH_DATA_FENCE_END: &str = "<!--=== END DASHBOARD DATA TIER ===-->";
/// Fence opening the scheduling-dependent dashboard region.
pub const DASH_SCHED_FENCE_BEGIN: &str = "<!--=== BEGIN DASHBOARD SCHED TIER ===-->";
/// Fence closing the scheduling-dependent dashboard region.
pub const DASH_SCHED_FENCE_END: &str = "<!--=== END DASHBOARD SCHED TIER ===-->";

// ---------------------------------------------------------------------
// BENCH_history.jsonl parsing
// ---------------------------------------------------------------------

/// The recorded entry shapes `BENCH_history.jsonl` may hold. Shape
/// selection mirrors the key-presence rules `bench_check.sh` uses to
/// window its trend gates, so differently-shaped entries never pollute
/// each other's medians.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HistoryShape {
    /// Recorded throughput bench (`search` + `crawl` + `sched` blocks).
    Throughput,
    /// Full-pipeline paper-scale recording (`generate_secs` …).
    PaperScale,
    /// Continuous-monitoring recording (`checks_per_sec` …).
    Monitor,
}

impl HistoryShape {
    /// Stable label for captions and error messages.
    pub fn label(self) -> &'static str {
        match self {
            HistoryShape::Throughput => "throughput",
            HistoryShape::PaperScale => "paper-scale",
            HistoryShape::Monitor => "monitor",
        }
    }
}

/// One parsed + schema-validated history line, with the metrics the
/// trend gates (and therefore the trend charts) read.
#[derive(Clone, Debug)]
pub struct HistoryEntry {
    /// Recording commit (short sha).
    pub sha: String,
    /// Recording label (`"throughput"`, `"monitor"`, …).
    pub label: String,
    /// Detected entry shape.
    pub shape: HistoryShape,
    /// `search.indexed_qps` (throughput shape).
    pub search_qps: Option<f64>,
    /// `expand_secs` of the `workers=1` crawl point (throughput shape).
    pub expand_w1_secs: Option<f64>,
    /// `sched.speedup` (throughput shape).
    pub sched_speedup: Option<f64>,
    /// `checks_per_sec` (monitor shape).
    pub checks_per_sec: Option<f64>,
    /// `mem.peak_rss_bytes` (any shape that recorded memory).
    pub peak_rss_bytes: Option<f64>,
}

fn num(v: &Value) -> Option<f64> {
    match v {
        Value::I64(n) => Some(*n as f64),
        Value::U64(n) => Some(*n as f64),
        Value::F64(n) => Some(*n),
        _ => None,
    }
}

fn req_str(v: &Value, key: &str) -> Result<String, String> {
    match v.get(key) {
        Some(Value::Str(s)) => Ok(s.clone()),
        Some(other) => Err(format!(
            "key {key:?} must be a string, got {}",
            other.kind()
        )),
        None => Err(format!("missing required key {key:?} (string)")),
    }
}

fn req_num(v: &Value, key: &str, ctx: &str) -> Result<f64, String> {
    let at = if ctx.is_empty() {
        key.to_string()
    } else {
        format!("{ctx}.{key}")
    };
    match v.get(key) {
        Some(inner) => {
            num(inner).ok_or_else(|| format!("key {at:?} must be a number, got {}", inner.kind()))
        }
        None => Err(format!("missing required key {at:?} (number)")),
    }
}

fn classify(v: &Value) -> Result<HistoryShape, String> {
    if v.get("checks_per_sec").is_some() {
        Ok(HistoryShape::Monitor)
    } else if v.get("search").is_some() {
        Ok(HistoryShape::Throughput)
    } else if v.get("generate_secs").is_some() {
        Ok(HistoryShape::PaperScale)
    } else {
        Err(
            "unknown entry shape: expected a \"search\" block (throughput), \
             \"checks_per_sec\" (monitor) or \"generate_secs\" (paper-scale)"
                .to_string(),
        )
    }
}

/// Parse and schema-check one history line. Every shape requires `sha`
/// and `label`; each shape additionally requires the metric keys its
/// trend gates read, so a malformed append fails loudly here instead of
/// silently skewing gate medians or dashboard trends.
pub fn parse_history_line(line: &str) -> Result<HistoryEntry, String> {
    let v = serde_json::parse_value(line).map_err(|e| format!("invalid JSON: {e}"))?;
    let sha = req_str(&v, "sha")?;
    let label = req_str(&v, "label")?;
    let shape = classify(&v)?;
    let mut entry = HistoryEntry {
        sha,
        label,
        shape,
        search_qps: None,
        expand_w1_secs: None,
        sched_speedup: None,
        checks_per_sec: None,
        peak_rss_bytes: None,
    };
    entry.peak_rss_bytes = v
        .get("mem")
        .and_then(|m| m.get("peak_rss_bytes"))
        .and_then(num);
    match shape {
        HistoryShape::Throughput => {
            let search = v
                .get("search")
                .ok_or_else(|| "missing required key \"search\" (map)".to_string())?;
            entry.search_qps = Some(req_num(search, "indexed_qps", "search")?);
            let crawl = match v.get("crawl") {
                Some(Value::Array(items)) if !items.is_empty() => items,
                Some(Value::Array(_)) => return Err("key \"crawl\" must not be empty".to_string()),
                Some(other) => {
                    return Err(format!(
                        "key \"crawl\" must be an array, got {}",
                        other.kind()
                    ))
                }
                None => return Err("missing required key \"crawl\" (array)".to_string()),
            };
            for item in crawl {
                let workers = req_num(item, "workers", "crawl[]")?;
                let secs = req_num(item, "expand_secs", "crawl[]")?;
                if workers == 1.0 {
                    entry.expand_w1_secs = Some(secs);
                }
            }
            if entry.expand_w1_secs.is_none() {
                return Err("\"crawl\" has no workers=1 point (the trend gate's anchor)".into());
            }
            let sched = v
                .get("sched")
                .ok_or_else(|| "missing required key \"sched\" (map)".to_string())?;
            entry.sched_speedup = Some(req_num(sched, "speedup", "sched")?);
        }
        HistoryShape::Monitor => {
            entry.checks_per_sec = Some(req_num(&v, "checks_per_sec", "")?);
            req_num(&v, "checks", "")?;
            req_num(&v, "sim_days", "")?;
        }
        HistoryShape::PaperScale => {
            for key in [
                "users",
                "instances",
                "generate_secs",
                "crawl_secs",
                "analyze_secs",
            ] {
                req_num(&v, key, "")?;
            }
        }
    }
    Ok(entry)
}

/// Parse a whole history file (one compact JSON object per line; blank
/// lines skipped). Errors carry the 1-based line number.
pub fn parse_history(text: &str) -> Result<Vec<HistoryEntry>, String> {
    let mut entries = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        entries.push(parse_history_line(line).map_err(|e| format!("history line {}: {e}", i + 1))?);
    }
    Ok(entries)
}

// ---------------------------------------------------------------------
// Trend series + gate mirrors
// ---------------------------------------------------------------------

/// Whether the newest entry would trip the matching `bench_check.sh`
/// trend gate.
#[derive(Clone, Debug, PartialEq)]
pub enum GateStatus {
    /// Not enough shape-matched entries for a median window yet (the
    /// gate would print `SKIPPED (bootstrap)`).
    Bootstrap {
        /// Shape-matched entries present.
        have: usize,
        /// Entries the window needs.
        need: usize,
    },
    /// Inside the gate's band.
    Pass {
        /// The median the newest entry was compared against.
        baseline: f64,
    },
    /// The gate would fire; `detail` explains the comparison.
    Fire {
        /// Human-readable comparison (fixed-precision values).
        detail: String,
    },
}

/// One chart-ready metric trajectory across shape-matched history
/// entries, oldest first.
#[derive(Clone, Debug)]
pub struct TrendSeries {
    /// Stable id (`trend-<key>` in the HTML).
    pub key: &'static str,
    /// Chart title.
    pub title: &'static str,
    /// Value unit for the caption.
    pub unit: &'static str,
    /// Metric values, one per shape-matched entry.
    pub values: Vec<f64>,
    /// Recording sha per point (same order as `values`).
    pub shas: Vec<String>,
    /// Mirrored trend-gate verdict on the newest point.
    pub gate: GateStatus,
}

enum GateRule {
    /// Newest entry must stay ≥ `factor` × median of the 3 prior entries.
    LastMin(f64),
    /// Newest entry must stay ≤ `factor` × median of the 3 prior entries.
    LastMax(f64),
    /// Median of the last 3 entries must stay ≥ `bar` (the recorded
    /// sched-speedup acceptance bar).
    MedianMin(f64),
}

/// Median matching `bench_check.sh`: lower-middle element of the sorted
/// window.
fn median(window: &[f64]) -> f64 {
    let mut sorted = window.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    match sorted.len() {
        0 => 0.0,
        n => sorted[n.div_ceil(2) - 1],
    }
}

fn eval_gate(values: &[f64], rule: &GateRule) -> GateStatus {
    let n = values.len();
    match rule {
        GateRule::LastMin(factor) | GateRule::LastMax(factor) => {
            // The newest entry plays bench_check's "measured" role against
            // the median of the 3 entries recorded before it.
            if n < 4 {
                return GateStatus::Bootstrap { have: n, need: 4 };
            }
            let baseline = median(&values[n - 4..n - 1]);
            let last = values[n - 1];
            let fired = match rule {
                GateRule::LastMin(_) => last < factor * baseline,
                _ => last > factor * baseline,
            };
            if fired {
                GateStatus::Fire {
                    detail: format!(
                        "last {} vs median {} ({}x gate)",
                        fmt_fixed(last, 2),
                        fmt_fixed(baseline, 2),
                        fmt_fixed(*factor, 2)
                    ),
                }
            } else {
                GateStatus::Pass { baseline }
            }
        }
        GateRule::MedianMin(bar) => {
            if n < 3 {
                return GateStatus::Bootstrap { have: n, need: 3 };
            }
            let baseline = median(&values[n - 3..]);
            if baseline < *bar {
                GateStatus::Fire {
                    detail: format!(
                        "median {} below the {} acceptance bar",
                        fmt_fixed(baseline, 2),
                        fmt_fixed(*bar, 2)
                    ),
                }
            } else {
                GateStatus::Pass { baseline }
            }
        }
    }
}

fn build_series(
    key: &'static str,
    title: &'static str,
    unit: &'static str,
    history: &[HistoryEntry],
    extract: impl Fn(&HistoryEntry) -> Option<f64>,
    rule: &GateRule,
) -> TrendSeries {
    let mut values = Vec::new();
    let mut shas = Vec::new();
    for e in history {
        if let Some(v) = extract(e) {
            values.push(v);
            shas.push(e.sha.clone());
        }
    }
    let gate = eval_gate(&values, rule);
    TrendSeries {
        key,
        title,
        unit,
        values,
        shas,
        gate,
    }
}

const MIB: f64 = 1024.0 * 1024.0;

/// The five gated trend series, shape-filtered per `bench_check.sh`'s
/// window rules: search qps, workers=1 expand seconds, recorded sched
/// speedup, monitor checks/sec, and the throughput bench's peak RSS.
pub fn trend_series(history: &[HistoryEntry]) -> Vec<TrendSeries> {
    vec![
        build_series(
            "search-qps",
            "search indexed throughput",
            "qps",
            history,
            |e| e.search_qps,
            &GateRule::LastMin(0.8),
        ),
        build_series(
            "expand-secs",
            "expand wall-clock (workers=1)",
            "s",
            history,
            |e| e.expand_w1_secs,
            &GateRule::LastMax(1.2),
        ),
        build_series(
            "sched-speedup",
            "scheduler speedup (10k connections)",
            "x",
            history,
            |e| e.sched_speedup,
            &GateRule::MedianMin(3.0),
        ),
        build_series(
            "monitor-checks",
            "monitor throughput",
            "checks/s",
            history,
            |e| e.checks_per_sec,
            &GateRule::LastMin(0.8),
        ),
        build_series(
            "peak-rss",
            "peak RSS (throughput bench)",
            "MiB",
            history,
            |e| match e.shape {
                HistoryShape::Throughput => e.peak_rss_bytes.map(|b| b / MIB),
                _ => None,
            },
            &GateRule::LastMax(1.2),
        ),
    ]
}

fn trend_figure(s: &TrendSeries) -> String {
    let spec = SparkSpec::default();
    let mut svg = sparkline(&s.values, &spec);
    let fired = matches!(s.gate, GateStatus::Fire { .. });
    if fired {
        if let Some(&(x, y)) = spark_geometry(&s.values, &spec).last() {
            svg = svg.child(circle(x, y, 3.5, "#dc2626"));
        }
    }
    let stats = if s.values.is_empty() {
        "no shape-matched entries".to_string()
    } else {
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for v in &s.values {
            lo = lo.min(*v);
            hi = hi.max(*v);
        }
        let last = s.values[s.values.len() - 1];
        format!(
            "min {} · max {} · last {} {}",
            fmt_fixed(lo, 2),
            fmt_fixed(hi, 2),
            fmt_fixed(last, 2),
            trend_of(&s.values, 0.05).indicator()
        )
    };
    let gate = match &s.gate {
        GateStatus::Bootstrap { have, need } => {
            format!("gate: bootstrap ({have}/{need} entries)")
        }
        GateStatus::Pass { baseline } => format!("gate: ok (median {})", fmt_fixed(*baseline, 2)),
        GateStatus::Fire { detail } => format!("gate: REGRESSION — {detail}"),
    };
    format!(
        "<figure class=\"trend{flag}\" id=\"trend-{key}\">{svg}\
         <figcaption><b>{title}</b> ({unit}) · {n} entries — {stats} · {gate}</figcaption></figure>",
        flag = if fired { " fire" } else { "" },
        key = s.key,
        svg = svg.render(),
        title = xml_escape(s.title),
        unit = xml_escape(s.unit),
        n = s.values.len(),
        stats = xml_escape(&stats),
        gate = xml_escape(&gate),
    )
}

// ---------------------------------------------------------------------
// Sched-tier visuals (Gantt, heatmap, stacked wait bars)
// ---------------------------------------------------------------------

const LABEL_W: f64 = 235.0;
const ROW_H: f64 = 18.0;
const CHART_W: f64 = 700.0;
const PAD: f64 = 4.0;

const PHASE_COLORS: [&str; 6] = [
    "#2563eb", "#0d9488", "#7c3aed", "#d97706", "#be185d", "#4d7c0f",
];
const CAUSE_COLORS: [&str; WaitCause::COUNT] = [
    "#3b82f6", // token_bucket
    "#ef4444", // retry_after_storm
    "#7c3aed", // outage
    "#f59e0b", // transient_backoff
    "#94a3b8", // idle
];
const WORK_COLOR: &str = "#10b981";
const HEAT_SHADES: [&str; 5] = ["#f1f5f9", "#cde9d8", "#97d4ae", "#53b67d", "#1f8a50"];

fn placeholder_svg(text: &str) -> String {
    svg_root(CHART_W, 28.0)
        .child(label(CHART_W / 2.0, 18.0, 10.0, "middle", "#6b7280", text))
        .render()
}

/// Phase-timeline Gantt over the profiled phases: one row per phase,
/// bars positioned on the shared virtual clock.
pub fn gantt_svg(profiles: &[PhaseProfile]) -> String {
    let max_end = profiles.iter().map(|p| p.end_secs).max().unwrap_or(0);
    if profiles.is_empty() || max_end == 0 {
        return placeholder_svg("no phases recorded");
    }
    let height = 2.0 * PAD + ROW_H * profiles.len() as f64;
    let span_w = CHART_W - LABEL_W - 70.0;
    let mut root = svg_root(CHART_W, height).attr("class", "gantt");
    for (i, p) in profiles.iter().enumerate() {
        let y = PAD + ROW_H * i as f64;
        let x0 = LABEL_W + span_w * p.start_secs as f64 / max_end as f64;
        let x1 = LABEL_W + span_w * p.end_secs as f64 / max_end as f64;
        root = root
            .child(label(
                LABEL_W - 8.0,
                y + 12.5,
                10.0,
                "end",
                "#111827",
                &p.name,
            ))
            .child(rect(
                x0,
                y + 3.0,
                (x1 - x0).max(1.0),
                ROW_H - 6.0,
                PHASE_COLORS[i % PHASE_COLORS.len()],
            ))
            .child(label(
                x1 + 5.0,
                y + 12.5,
                9.0,
                "start",
                "#374151",
                &format!("{}..{} ({}s)", p.start_secs, p.end_secs, p.duration_secs()),
            ));
    }
    root.render()
}

/// Per-worker utilization heatmap: one row per request-bearing phase,
/// one column per worker slot, cells shaded by each worker's share of
/// the phase's requests (count printed in the cell).
pub fn worker_heatmap_svg(profiles: &[PhaseProfile]) -> String {
    let phases: Vec<&PhaseProfile> = profiles.iter().filter(|p| p.requests > 0).collect();
    let mut slots: BTreeSet<usize> = BTreeSet::new();
    for p in &phases {
        slots.extend(p.workers.keys().copied());
    }
    if phases.is_empty() || slots.is_empty() {
        return placeholder_svg("no worker activity recorded");
    }
    let slots: Vec<usize> = slots.into_iter().collect();
    let cell_w: f64 = 46.0;
    let header_h: f64 = 16.0;
    let height = 2.0 * PAD + header_h + ROW_H * phases.len() as f64;
    let width = (LABEL_W + cell_w * slots.len() as f64 + PAD).max(CHART_W);
    let mut root = svg_root(width, height).attr("class", "heatmap");
    for (c, slot) in slots.iter().enumerate() {
        root = root.child(label(
            LABEL_W + cell_w * (c as f64 + 0.5),
            PAD + 11.0,
            10.0,
            "middle",
            "#374151",
            &format!("w{slot}"),
        ));
    }
    for (r, p) in phases.iter().enumerate() {
        let y = PAD + header_h + ROW_H * r as f64;
        root = root.child(label(
            LABEL_W - 8.0,
            y + 12.5,
            10.0,
            "end",
            "#111827",
            &p.name,
        ));
        let row_max = p.workers.values().map(|l| l.requests).max().unwrap_or(0);
        for (c, slot) in slots.iter().enumerate() {
            let x = LABEL_W + cell_w * c as f64;
            let requests = p.workers.get(slot).map_or(0, |l| l.requests);
            let share = if row_max > 0 {
                requests as f64 / row_max as f64
            } else {
                0.0
            };
            let shade = HEAT_SHADES[((share * 5.0) as usize).min(HEAT_SHADES.len() - 1)];
            root = root
                .child(rect(x + 1.0, y + 1.0, cell_w - 2.0, ROW_H - 2.0, shade))
                .child(label(
                    x + cell_w / 2.0,
                    y + 12.5,
                    9.0,
                    "middle",
                    "#111827",
                    &requests.to_string(),
                ));
        }
    }
    root.render()
}

/// Per-phase wait-attribution stacked bars: each phase's virtual
/// duration decomposed into its [`WaitCause`] buckets plus residual
/// work — the Σ buckets + work = duration identity, rendered.
pub fn wait_bars_svg(profiles: &[PhaseProfile]) -> String {
    let phases: Vec<&PhaseProfile> = profiles
        .iter()
        .filter(|p| p.duration_secs() > 0 && (p.requests > 0 || p.wait_total_secs() > 0))
        .collect();
    let max_dur = phases.iter().map(|p| p.duration_secs()).max().unwrap_or(0);
    if phases.is_empty() || max_dur == 0 {
        return placeholder_svg("no attributed waits recorded");
    }
    let legend_h: f64 = 18.0;
    let height = 2.0 * PAD + legend_h + ROW_H * phases.len() as f64;
    let span_w = CHART_W - LABEL_W - 70.0;
    let mut root = svg_root(CHART_W, height).attr("class", "waits");
    // Legend: one swatch per cause, plus work.
    let mut lx = LABEL_W;
    for cause in WaitCause::ALL {
        root = root
            .child(rect(lx, PAD + 2.0, 9.0, 9.0, CAUSE_COLORS[cause.index()]))
            .child(label(
                lx + 12.0,
                PAD + 10.0,
                9.0,
                "start",
                "#374151",
                cause.label(),
            ));
        lx += 12.0 + 7.0 * cause.label().len() as f64 + 10.0;
    }
    root = root
        .child(rect(lx, PAD + 2.0, 9.0, 9.0, WORK_COLOR))
        .child(label(
            lx + 12.0,
            PAD + 10.0,
            9.0,
            "start",
            "#374151",
            "work",
        ));
    for (r, p) in phases.iter().enumerate() {
        let y = PAD + legend_h + ROW_H * r as f64;
        root = root.child(label(
            LABEL_W - 8.0,
            y + 12.5,
            10.0,
            "end",
            "#111827",
            &p.name,
        ));
        let mut x = LABEL_W;
        for cause in WaitCause::ALL {
            let secs = p.waits[cause.index()];
            if secs == 0 {
                continue;
            }
            let w = span_w * secs as f64 / max_dur as f64;
            root = root.child(rect(
                x,
                y + 3.0,
                w.max(0.5),
                ROW_H - 6.0,
                CAUSE_COLORS[cause.index()],
            ));
            x += w;
        }
        let work = p.work_secs();
        if work > 0 {
            let w = span_w * work as f64 / max_dur as f64;
            root = root.child(rect(x, y + 3.0, w.max(0.5), ROW_H - 6.0, WORK_COLOR));
            x += w;
        }
        root = root.child(label(
            x + 5.0,
            y + 12.5,
            9.0,
            "start",
            "#374151",
            &format!("{}s", p.duration_secs()),
        ));
    }
    root.render()
}

// ---------------------------------------------------------------------
// Run diff
// ---------------------------------------------------------------------

/// Classification of one aligned diff row.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DiffKind {
    /// Line present and identical on both sides.
    Same,
    /// Both sides have a line here, but the text differs.
    Changed,
    /// Line only on the left side.
    OnlyLeft,
    /// Line only on the right side.
    OnlyRight,
}

/// One aligned row of the side-by-side diff.
#[derive(Clone, Debug)]
pub struct DiffRow {
    /// Row classification.
    pub kind: DiffKind,
    /// Left-side line, if any.
    pub left: Option<String>,
    /// Right-side line, if any.
    pub right: Option<String>,
}

enum DiffOp {
    Same(usize),
    Del(usize),
    Ins(usize),
}

fn lcs_ops(a: &[&str], b: &[&str]) -> Vec<DiffOp> {
    let (n, m) = (a.len(), b.len());
    // dp[i][j] = LCS length of a[i..] vs b[j..], flattened row-major.
    let stride = m + 1;
    let mut dp = vec![0u32; (n + 1) * stride];
    for i in (0..n).rev() {
        for j in (0..m).rev() {
            dp[i * stride + j] = if a[i] == b[j] {
                dp[(i + 1) * stride + j + 1] + 1
            } else {
                dp[(i + 1) * stride + j].max(dp[i * stride + j + 1])
            };
        }
    }
    let mut ops = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < n && j < m {
        if a[i] == b[j] {
            ops.push(DiffOp::Same(i));
            i += 1;
            j += 1;
        } else if dp[(i + 1) * stride + j] >= dp[i * stride + j + 1] {
            ops.push(DiffOp::Del(i));
            i += 1;
        } else {
            ops.push(DiffOp::Ins(j));
            j += 1;
        }
    }
    while i < n {
        ops.push(DiffOp::Del(i));
        i += 1;
    }
    while j < m {
        ops.push(DiffOp::Ins(j));
        j += 1;
    }
    ops
}

/// Positional fallback for pathologically large inputs: align line k
/// with line k.
fn naive_ops(a: &[&str], b: &[&str]) -> Vec<DiffOp> {
    let mut ops = Vec::new();
    for i in 0..a.len().max(b.len()) {
        match (i < a.len(), i < b.len()) {
            (true, true) if a[i] == b[i] => ops.push(DiffOp::Same(i)),
            (true, true) => {
                ops.push(DiffOp::Del(i));
                ops.push(DiffOp::Ins(i));
            }
            (true, false) => ops.push(DiffOp::Del(i)),
            (false, true) => ops.push(DiffOp::Ins(i)),
            (false, false) => {}
        }
    }
    ops
}

/// Line-align two texts (LCS; positional fallback above 4M cells) and
/// fold insert/delete runs into side-by-side [`DiffRow`]s.
pub fn diff_lines(left: &str, right: &str) -> Vec<DiffRow> {
    let a: Vec<&str> = left.lines().collect();
    let b: Vec<&str> = right.lines().collect();
    let ops = if a.len().saturating_mul(b.len()) <= 4_000_000 {
        lcs_ops(&a, &b)
    } else {
        naive_ops(&a, &b)
    };
    let mut rows = Vec::new();
    let mut dels: Vec<String> = Vec::new();
    let mut inss: Vec<String> = Vec::new();
    let flush = |rows: &mut Vec<DiffRow>, dels: &mut Vec<String>, inss: &mut Vec<String>| {
        let pairs = dels.len().max(inss.len());
        for k in 0..pairs {
            let left = dels.get(k).cloned();
            let right = inss.get(k).cloned();
            let kind = match (&left, &right) {
                (Some(_), Some(_)) => DiffKind::Changed,
                (Some(_), None) => DiffKind::OnlyLeft,
                _ => DiffKind::OnlyRight,
            };
            rows.push(DiffRow { kind, left, right });
        }
        dels.clear();
        inss.clear();
    };
    for op in ops {
        match op {
            DiffOp::Same(i) => {
                flush(&mut rows, &mut dels, &mut inss);
                rows.push(DiffRow {
                    kind: DiffKind::Same,
                    left: Some(a[i].to_string()),
                    right: Some(a[i].to_string()),
                });
            }
            DiffOp::Del(i) => dels.push(a[i].to_string()),
            DiffOp::Ins(j) => inss.push(b[j].to_string()),
        }
    }
    flush(&mut rows, &mut dels, &mut inss);
    rows
}

/// Number of rows that are not [`DiffKind::Same`].
pub fn divergent_count(rows: &[DiffRow]) -> usize {
    rows.iter().filter(|r| r.kind != DiffKind::Same).count()
}

/// Extract the Data-tier section body from a rendered *text* report
/// (the bytes between the report fences), or `None` if the fences are
/// absent.
pub fn data_fence_slice(report_text: &str) -> Option<&str> {
    let begin = crate::report::DATA_FENCE_BEGIN;
    let end = crate::report::DATA_FENCE_END;
    let bpos = report_text.find(begin)?;
    let after = &report_text[bpos + begin.len()..];
    let after = after.strip_prefix('\n').unwrap_or(after);
    let epos = after.find(end)?;
    Some(&after[..epos])
}

/// Cap on rendered diff rows — beyond it the table ends with an
/// explicit `(+N more rows)` line, never silently.
const DIFF_ROW_CAP: usize = 400;

fn diff_table(ours_label: &str, other_label: &str, rows: &[DiffRow]) -> String {
    let mut out = String::new();
    let divergent = divergent_count(rows);
    let _ = writeln!(
        out,
        "<p class=\"diff-summary\">{divergent} divergent line{} of {}</p>",
        if divergent == 1 { "" } else { "s" },
        rows.len()
    );
    let _ = writeln!(out, "<table class=\"diff\">");
    let _ = writeln!(
        out,
        "<tr class=\"head\"><th>{}</th><th>{}</th></tr>",
        xml_escape(ours_label),
        xml_escape(other_label)
    );
    for row in rows.iter().take(DIFF_ROW_CAP) {
        let class = if row.kind == DiffKind::Same {
            "same"
        } else {
            "chg"
        };
        let cell = |side: &Option<String>| match side {
            Some(text) => xml_escape(text),
            None => String::new(),
        };
        let _ = writeln!(
            out,
            "<tr class=\"{class}\"><td>{}</td><td>{}</td></tr>",
            cell(&row.left),
            cell(&row.right)
        );
    }
    let elided = rows.len().saturating_sub(DIFF_ROW_CAP);
    if elided > 0 {
        let _ = writeln!(
            out,
            "<tr class=\"chg\"><td colspan=\"2\">(+{elided} more rows)</td></tr>"
        );
    }
    let _ = writeln!(out, "</table>");
    out
}

// ---------------------------------------------------------------------
// Assembly
// ---------------------------------------------------------------------

/// The second run of a `--diff` comparison.
#[derive(Clone, Debug)]
pub struct DiffInput {
    /// Label for the current run's column.
    pub ours_label: String,
    /// Label for the other run's column (typically its report path).
    pub other_label: String,
    /// The other run's Data-tier section body.
    pub other_data: String,
}

/// Caller-supplied dashboard context. Everything here lands in the
/// Data-tier fence and must therefore be worker-count invariant (keep
/// worker counts and task widths out of the title and note).
#[derive(Clone, Debug)]
pub struct DashboardMeta {
    /// Dashboard heading.
    pub title: String,
    /// Provenance note for the trend charts (history path + entry count).
    pub history_note: String,
    /// Optional second report to diff against.
    pub diff: Option<DiffInput>,
}

const DASH_CSS: &str = concat!(
    "body{font-family:ui-monospace,monospace;margin:2em;max-width:76em;color:#111827}\n",
    "section{border:1px solid #999;border-radius:4px;margin:1em 0;padding:0.5em 1em}\n",
    "section.data{background:#eef4ee}\n",
    "section.sched{background:#f6f2e8}\n",
    "h1{font-size:1.3em}\n",
    "h2{font-size:1em;margin:1em 0 0.4em}\n",
    "pre{white-space:pre-wrap;margin:0.5em 0;background:#fff;border:1px solid #d1d5db;",
    "border-radius:3px;padding:0.5em}\n",
    "figure.trend{display:inline-block;margin:0.4em 1em 0.4em 0;padding:0.3em;",
    "background:#fff;border:1px solid #d1d5db;border-radius:3px;vertical-align:top}\n",
    "figure.trend.fire{border-color:#dc2626}\n",
    "figcaption{font-size:0.72em;max-width:220px;color:#374151}\n",
    "svg{display:block}\n",
    "table.diff{border-collapse:collapse;width:100%;font-size:0.78em;background:#fff}\n",
    "table.diff td,table.diff th{border:1px solid #d1d5db;padding:0 0.4em;",
    "white-space:pre-wrap;width:50%;text-align:left;vertical-align:top}\n",
    "table.diff tr.chg td{background:#fde8e8}\n",
    ".diff-summary{font-weight:bold}\n",
);

/// The worker-count-invariant dashboard region: history trend charts,
/// the run report's Data section, and the optional run diff. This is a
/// Data-tier sink (see `tier.manifest`): nothing scheduling-dependent
/// may flow in, and CI byte-compares its output across workers × tasks.
fn render_dash_data(report: &RunReport, history: &[HistoryEntry], meta: &DashboardMeta) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "<section class=\"data\">");
    let _ = writeln!(
        out,
        "<h2>Bench history trends — {}</h2>",
        xml_escape(&meta.history_note)
    );
    let _ = writeln!(out, "<div class=\"trends\">");
    for series in trend_series(history) {
        let _ = writeln!(out, "{}", trend_figure(&series));
    }
    let _ = writeln!(out, "</div>");
    for sec in report.sections().iter().filter(|s| s.tier == Tier::Data) {
        let _ = writeln!(out, "<h2>Run report — {}</h2>", xml_escape(sec.heading));
        let _ = writeln!(out, "<pre>{}</pre>", xml_escape(&sec.body));
    }
    if let Some(diff) = &meta.diff {
        let _ = writeln!(
            out,
            "<h2>Run diff — Data tier ({} vs {})</h2>",
            xml_escape(&diff.ours_label),
            xml_escape(&diff.other_label)
        );
        let rows = diff_lines(report.data_section(), &diff.other_data);
        out.push_str(&diff_table(&diff.ours_label, &diff.other_label, &rows));
    }
    let _ = writeln!(out, "</section>");
    out
}

fn render_dash_sched(report: &RunReport, profiles: &[PhaseProfile]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "<section class=\"sched\">");
    let _ = writeln!(out, "<h2>Phase timeline (virtual seconds)</h2>");
    let _ = writeln!(out, "{}", gantt_svg(profiles));
    let _ = writeln!(out, "<h2>Per-worker utilization (requests per slot)</h2>");
    let _ = writeln!(out, "{}", worker_heatmap_svg(profiles));
    let _ = writeln!(
        out,
        "<h2>Wait attribution (Σ buckets + work = duration)</h2>"
    );
    let _ = writeln!(out, "{}", wait_bars_svg(profiles));
    for sec in report.sections().iter().filter(|s| s.tier == Tier::Sched) {
        let _ = writeln!(out, "<h2>Run report — {}</h2>", xml_escape(sec.heading));
        let _ = writeln!(out, "<pre>{}</pre>", xml_escape(&sec.body));
    }
    let _ = writeln!(out, "</section>");
    out
}

/// Render the full dashboard: one self-contained HTML document (inline
/// CSS + SVG, zero external resources) with the Data and Sched regions
/// between their literal comment fences.
pub fn render_dashboard(
    reg: &Registry,
    report: &RunReport,
    history: &[HistoryEntry],
    meta: &DashboardMeta,
) -> String {
    let profiles = phase_profiles(reg);
    format!(
        concat!(
            "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n",
            "<title>{title}</title>\n",
            "<style>\n{css}</style>\n</head>\n<body>\n<h1>{title}</h1>\n",
            "{data_begin}\n{data}{data_end}\n",
            "{sched_begin}\n{sched}{sched_end}\n",
            "</body>\n</html>\n"
        ),
        title = xml_escape(&meta.title),
        css = DASH_CSS,
        data_begin = DASH_DATA_FENCE_BEGIN,
        data = render_dash_data(report, history, meta),
        data_end = DASH_DATA_FENCE_END,
        sched_begin = DASH_SCHED_FENCE_BEGIN,
        sched = render_dash_sched(report, &profiles),
        sched_end = DASH_SCHED_FENCE_END,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{ReportMeta, RunReport};
    use crate::trace::SpanOutcome;

    const THROUGHPUT_LINE: &str = concat!(
        "{\"sha\":\"abc1234\",\"label\":\"throughput\",\"search\":{\"indexed_qps\":5000.5},",
        "\"crawl\":[{\"workers\":1,\"expand_secs\":0.7},{\"workers\":8,\"expand_secs\":0.12}],",
        "\"sched\":{\"speedup\":20.5},\"mem\":{\"peak_rss_bytes\":353443840}}"
    );
    const MONITOR_LINE: &str = concat!(
        "{\"sha\":\"def5678\",\"label\":\"monitor\",\"sim_days\":30,\"checks\":3567,",
        "\"checks_per_sec\":40591.0,\"mem\":{\"peak_rss_bytes\":98705408}}"
    );
    const PAPER_LINE: &str = concat!(
        "{\"sha\":\"0123abc\",\"label\":\"paper_scale\",\"users\":1024577,\"instances\":15886,",
        "\"generate_secs\":781.4,\"crawl_secs\":63.9,\"analyze_secs\":553.5,",
        "\"mem\":{\"peak_rss_bytes\":43221544960}}"
    );

    #[test]
    fn parses_all_committed_shapes() {
        let text = format!("{THROUGHPUT_LINE}\n{MONITOR_LINE}\n{PAPER_LINE}\n");
        let entries = parse_history(&text).expect("all shapes parse");
        assert_eq!(entries.len(), 3);
        assert_eq!(entries[0].shape, HistoryShape::Throughput);
        assert_eq!(entries[0].search_qps, Some(5000.5));
        assert_eq!(entries[0].expand_w1_secs, Some(0.7));
        assert_eq!(entries[0].sched_speedup, Some(20.5));
        assert_eq!(entries[1].shape, HistoryShape::Monitor);
        assert_eq!(entries[1].checks_per_sec, Some(40591.0));
        assert_eq!(entries[2].shape, HistoryShape::PaperScale);
        assert_eq!(entries[2].peak_rss_bytes, Some(43221544960.0));
    }

    #[test]
    fn malformed_lines_fail_with_the_offending_key() {
        let no_sha = r#"{"label":"throughput","search":{"indexed_qps":1.0}}"#;
        let err = parse_history(no_sha).expect_err("missing sha must fail");
        assert!(err.contains("line 1") && err.contains("\"sha\""), "{err}");

        let no_speedup = THROUGHPUT_LINE.replace("\"speedup\":20.5", "\"spedup\":20.5");
        let err = parse_history_line(&no_speedup).expect_err("missing sched.speedup must fail");
        assert!(err.contains("sched.speedup"), "{err}");

        let no_w1 = THROUGHPUT_LINE.replace("\"workers\":1,", "\"workers\":2,");
        let err = parse_history_line(&no_w1).expect_err("missing workers=1 point must fail");
        assert!(err.contains("workers=1"), "{err}");

        let unknown = r#"{"sha":"a","label":"mystery","something":1}"#;
        let err = parse_history_line(unknown).expect_err("unknown shape must fail");
        assert!(err.contains("unknown entry shape"), "{err}");

        let string_qps = THROUGHPUT_LINE.replace("5000.5", "\"5000.5\"");
        let err = parse_history_line(&string_qps).expect_err("string qps must fail");
        assert!(err.contains("must be a number"), "{err}");

        assert!(parse_history_line("not json").is_err());
    }

    fn throughput_entry(sha: &str, qps: f64, expand: f64, speedup: f64) -> HistoryEntry {
        HistoryEntry {
            sha: sha.to_string(),
            label: "throughput".to_string(),
            shape: HistoryShape::Throughput,
            search_qps: Some(qps),
            expand_w1_secs: Some(expand),
            sched_speedup: Some(speedup),
            checks_per_sec: None,
            peak_rss_bytes: Some(100.0 * MIB),
        }
    }

    #[test]
    fn gates_bootstrap_then_fire_like_bench_check() {
        // Three entries: LastMin/LastMax windows need 4 → bootstrap.
        let short: Vec<HistoryEntry> = (0..3)
            .map(|i| throughput_entry(&format!("s{i}"), 1000.0, 0.7, 20.0))
            .collect();
        let series = trend_series(&short);
        let search = &series[0];
        assert_eq!(search.key, "search-qps");
        assert_eq!(search.gate, GateStatus::Bootstrap { have: 3, need: 4 });
        // Sched median window needs 3 → already judged, and 20x passes.
        assert!(matches!(series[2].gate, GateStatus::Pass { .. }));

        // Four entries, newest collapsed: search gate fires (< 0.8x median),
        // expand gate fires (> 1.2x median).
        let mut hist: Vec<HistoryEntry> = (0..3)
            .map(|i| throughput_entry(&format!("s{i}"), 1000.0, 0.7, 20.0))
            .collect();
        hist.push(throughput_entry("s3", 100.0, 2.0, 20.0));
        let series = trend_series(&hist);
        assert!(
            matches!(series[0].gate, GateStatus::Fire { .. }),
            "search gate should fire: {:?}",
            series[0].gate
        );
        assert!(
            matches!(series[1].gate, GateStatus::Fire { .. }),
            "expand gate should fire: {:?}",
            series[1].gate
        );
        // Sched speedup median 20x still clears the 3x bar.
        assert!(matches!(series[2].gate, GateStatus::Pass { .. }));

        // Sched bar: medians below 3.0 fire regardless of the newest point.
        let slow: Vec<HistoryEntry> = (0..3)
            .map(|i| throughput_entry(&format!("s{i}"), 1000.0, 0.7, 2.0))
            .collect();
        let series = trend_series(&slow);
        assert!(matches!(series[2].gate, GateStatus::Fire { .. }));
    }

    #[test]
    fn series_are_shape_filtered() {
        let mut hist = vec![throughput_entry("t0", 1000.0, 0.7, 20.0)];
        hist.push(HistoryEntry {
            sha: "m0".to_string(),
            label: "monitor".to_string(),
            shape: HistoryShape::Monitor,
            search_qps: None,
            expand_w1_secs: None,
            sched_speedup: None,
            checks_per_sec: Some(40000.0),
            peak_rss_bytes: Some(50.0 * MIB),
        });
        let series = trend_series(&hist);
        // Monitor RSS must not leak into the throughput RSS trend.
        let rss = series.iter().find(|s| s.key == "peak-rss").expect("rss");
        assert_eq!(rss.values, vec![100.0]);
        let checks = series
            .iter()
            .find(|s| s.key == "monitor-checks")
            .expect("checks");
        assert_eq!(checks.values, vec![40000.0]);
        assert_eq!(checks.shas, vec!["m0".to_string()]);
    }

    #[test]
    fn diff_marks_changed_and_one_sided_lines() {
        let left = "a\nchaos.storms = 12\nb\nonly-left\n";
        let right = "a\nchaos.storms = 0\nb\n";
        let rows = diff_lines(left, right);
        assert_eq!(divergent_count(&rows), 2);
        let changed: Vec<&DiffRow> = rows
            .iter()
            .filter(|r| r.kind == DiffKind::Changed)
            .collect();
        assert_eq!(changed.len(), 1);
        assert_eq!(changed[0].left.as_deref(), Some("chaos.storms = 12"));
        assert_eq!(changed[0].right.as_deref(), Some("chaos.storms = 0"));
        assert!(rows.iter().any(|r| r.kind == DiffKind::OnlyLeft));
        // Identical inputs: zero divergence.
        assert_eq!(divergent_count(&diff_lines(left, left)), 0);
    }

    #[test]
    fn data_fence_slice_extracts_the_report_body() {
        let reg = Registry::new();
        let report = RunReport::build(&reg, &ReportMeta::default());
        let text = report.to_text();
        let slice = data_fence_slice(&text).expect("fences present");
        assert_eq!(slice, report.data_section());
        assert!(data_fence_slice("no fences here").is_none());
    }

    fn sample_registry() -> Registry {
        let reg = Registry::new();
        reg.counter("flock.apis.follows.granted", Tier::Data).add(2);
        reg.phase_start(0, "expand.followees");
        let r = reg.span_begin("expand.followees", "following:1", None, Some(0), 0);
        reg.attribute_wait(r, "expand.followees", WaitCause::RetryAfterStorm, 900);
        reg.span_end(r, 900, SpanOutcome::Granted);
        reg.phase_end(900, "expand.followees");
        reg
    }

    fn sample_meta() -> DashboardMeta {
        DashboardMeta {
            title: "flock run dashboard — test".to_string(),
            history_note: "BENCH_history.jsonl · 2 entries".to_string(),
            diff: None,
        }
    }

    #[test]
    fn dashboard_renders_fences_charts_and_is_self_contained() {
        let reg = sample_registry();
        let report = RunReport::build(&reg, &ReportMeta::default());
        let history =
            parse_history(&format!("{THROUGHPUT_LINE}\n{MONITOR_LINE}\n")).expect("sample history");
        let html = render_dashboard(&reg, &report, &history, &sample_meta());
        for fence in [
            DASH_DATA_FENCE_BEGIN,
            DASH_DATA_FENCE_END,
            DASH_SCHED_FENCE_BEGIN,
            DASH_SCHED_FENCE_END,
        ] {
            assert!(
                html.lines().any(|l| l == fence),
                "fence {fence:?} must be its own line"
            );
        }
        for key in [
            "trend-search-qps",
            "trend-expand-secs",
            "trend-sched-speedup",
            "trend-monitor-checks",
            "trend-peak-rss",
        ] {
            assert!(html.contains(key), "missing chart {key}");
        }
        assert!(html.contains("<svg"));
        // Self-contained: no external fetches of any kind.
        for needle in ["src=", "href=", "url(", "@import", "<script"] {
            assert!(!html.contains(needle), "external resource leak: {needle}");
        }
        // Deterministic: same inputs, same bytes.
        let again = render_dashboard(&reg, &report, &history, &sample_meta());
        assert_eq!(html, again);
    }

    #[test]
    fn dashboard_diff_flags_divergent_chaos_lines() {
        let reg = sample_registry();
        let report = RunReport::build(&reg, &ReportMeta::default());
        // The "other" run differs in a chaos-impact counter line.
        let other_data = report.data_section().replace(
            "flock.apis.follows.granted 2",
            "flock.apis.follows.granted 7",
        );
        let meta = DashboardMeta {
            diff: Some(DiffInput {
                ours_label: "this run".to_string(),
                other_label: "other.report.txt".to_string(),
                other_data,
            }),
            ..sample_meta()
        };
        let html = render_dashboard(&reg, &report, &[], &meta);
        assert!(html.contains("diff-summary"));
        assert!(
            html.lines()
                .any(|l| l.starts_with("<tr class=\"chg\">") && l.contains("granted")),
            "divergent counter line must be flagged"
        );
    }

    #[test]
    fn sched_visuals_degrade_cleanly_without_spans() {
        let reg = Registry::new();
        let profiles = phase_profiles(&reg);
        assert!(gantt_svg(&profiles).contains("no phases recorded"));
        assert!(worker_heatmap_svg(&profiles).contains("no worker activity recorded"));
        assert!(wait_bars_svg(&profiles).contains("no attributed waits recorded"));
    }
}

//! # flock-obs — deterministic metrics, tracing & profiling
//!
//! The paper's crawl was an *operational* exercise as much as a scientific
//! one: §3 reports request volumes, rate-limit stalls, dead instances and
//! per-phase coverage, and every follow-on study leans on knowing exactly
//! what the crawl did. This crate is the workspace's observability layer:
//! a dependency-free [`Registry`] of named counters, gauges and histograms
//! plus lightweight span events, hierarchical request spans ([`Span`]),
//! a per-phase wait-attribution ledger ([`WaitCause`]), a virtual-time
//! profiler ([`profile`]) and a deterministic run-report renderer
//! ([`report`]) — all designed around the same rules as the rest of the
//! pipeline:
//!
//! * **No wall clock.** Every timestamp is caller-supplied virtual time
//!   (the `ApiServer` clock, or a simulated day offset). Exports never
//!   embed ambient time, so they are reproducible byte-for-byte.
//! * **Deterministic iteration.** Metrics live in a `BTreeMap` keyed by
//!   name, so every export walks them in one canonical order.
//! * **Two telemetry tiers.** [`Tier::Data`] metrics are facts about the
//!   data (requests *granted*, items collected) and must be identical
//!   across worker counts; [`Tier::Sched`] metrics are operational
//!   signals (retries, queue depths, backoff waits) that legitimately
//!   depend on thread scheduling. [`Registry::snapshot`] renders only the
//!   deterministic tier — that string is byte-compared in tests across
//!   `workers=1` and `workers=8` — while [`Registry::export_text`] /
//!   [`Registry::export_json`] / [`Registry::export_prometheus`] render
//!   everything.
//! * **Bounded buffers.** The event log and the span store are ring
//!   buffers capped at construction ([`Registry::with_capacities`]);
//!   overflow drops the oldest record and counts the drop in a
//!   scheduling-tier counter, so telemetry can never balloon a long
//!   crawl's memory.
//!
//! Handles are cheap `Arc`-backed atomics: register once at construction
//! time, then `inc()`/`record()` from any thread without touching the
//! registry lock. Metric names follow `flock.<crate>.<subsystem>.<metric>`.

pub mod dashboard;
pub mod profile;
pub mod report;
pub mod svg;
pub mod trace;

pub use trace::{FaultKind, SpanOutcome};

use std::collections::{BTreeMap, VecDeque};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

/// Lock with poison recovery: a panicking thread elsewhere must not take
/// the telemetry down with it — the registry's state (plain atomics and
/// completed `String` keys) is always valid.
fn relock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Which determinism contract a metric lives under.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Tier {
    /// A fact about the data: byte-identical across worker counts and
    /// thread schedules (e.g. requests *granted*, tweets collected).
    Data,
    /// An operational signal that depends on scheduling (e.g. rate-limit
    /// rejections, retry waits, queue depths). Excluded from
    /// [`Registry::snapshot`], present in the full exports.
    Sched,
}

impl Tier {
    fn label(self) -> &'static str {
        match self {
            Tier::Data => "deterministic",
            Tier::Sched => "scheduling",
        }
    }
}

/// Monotonically increasing event count. Cloning shares the underlying
/// atomic, so a handle can be stored per call-site.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug, Default)]
struct GaugeInner {
    value: AtomicU64,
    high: AtomicU64,
}

/// Last-written value plus a high-watermark (the only aggregate of a
/// sampled quantity that merges deterministically).
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<GaugeInner>);

impl Gauge {
    /// Record the current level.
    pub fn set(&self, v: u64) {
        self.0.value.store(v, Ordering::Relaxed);
        self.0.high.fetch_max(v, Ordering::Relaxed);
    }

    /// Most recently written value.
    pub fn get(&self) -> u64 {
        self.0.value.load(Ordering::Relaxed)
    }

    /// Highest value ever written.
    pub fn high_watermark(&self) -> u64 {
        self.0.high.load(Ordering::Relaxed)
    }
}

/// Default bucket bounds for virtual-second latencies/waits: sub-second
/// through one virtual week.
pub const SECONDS_BOUNDS: [u64; 9] = [1, 5, 15, 60, 300, 900, 3600, 86_400, 604_800];

#[derive(Debug)]
struct HistogramInner {
    /// Ascending upper bounds; an implicit `+inf` bucket follows the last.
    bounds: Vec<u64>,
    /// `bounds.len() + 1` cumulative-free bucket counts.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

/// Fixed-bound histogram. Bucket bounds are set at registration and never
/// change, so concurrent `record()`s from any interleaving produce the
/// same final bucket counts — histogram merges are order-independent.
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistogramInner>);

impl Histogram {
    fn with_bounds(bounds: &[u64]) -> Self {
        let mut sorted = bounds.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let buckets = (0..=sorted.len()).map(|_| AtomicU64::new(0)).collect();
        Histogram(Arc::new(HistogramInner {
            bounds: sorted,
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }))
    }

    /// Record one observation.
    pub fn record(&self, v: u64) {
        let idx = self
            .0
            .bounds
            .iter()
            .position(|b| v <= *b)
            .unwrap_or(self.0.bounds.len());
        self.0.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(v, Ordering::Relaxed);
        self.0.min.fetch_min(v, Ordering::Relaxed);
        self.0.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// Smallest observation (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count() == 0 {
            0
        } else {
            self.0.min.load(Ordering::Relaxed)
        }
    }

    /// Largest observation (0 when empty).
    pub fn max(&self) -> u64 {
        self.0.max.load(Ordering::Relaxed)
    }

    /// Bucket-interpolated quantile estimate (Prometheus-style): walk the
    /// cumulative bucket counts to the bucket holding rank `q·count`,
    /// then interpolate linearly inside that bucket's bounds. The +inf
    /// bucket answers with the observed maximum (the only honest point
    /// estimate an unbounded bucket has). `None` when the histogram is
    /// empty or `q` is outside `[0, 1]`.
    ///
    /// Determinism: a pure function of the bucket counts, which are
    /// themselves order-independent — a data-tier histogram's quantiles
    /// are worker-count invariant.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let total = self.count();
        if total == 0 || !q.is_finite() || !(0.0..=1.0).contains(&q) {
            return None;
        }
        let rank = q * total as f64;
        let counts = self.bucket_counts();
        let mut cum = 0.0f64;
        for (i, c) in counts.iter().enumerate() {
            if *c == 0 {
                continue;
            }
            let prev = cum;
            cum += *c as f64;
            if cum >= rank {
                if i == self.0.bounds.len() {
                    return Some(self.max() as f64);
                }
                let upper = self.0.bounds[i] as f64;
                let lower = if i == 0 {
                    (self.min() as f64).min(upper)
                } else {
                    self.0.bounds[i - 1] as f64
                };
                let frac = ((rank - prev) / *c as f64).clamp(0.0, 1.0);
                return Some(lower + (upper - lower) * frac);
            }
        }
        Some(self.max() as f64)
    }

    fn bucket_counts(&self) -> Vec<u64> {
        self.0
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// `p50/p95/p99` suffix shared by the text and JSON exporters; empty
    /// for an empty histogram.
    fn quantile_fields(&self, render: impl Fn(&str, f64) -> String) -> String {
        let mut out = String::new();
        for (name, q) in [("p50", 0.5), ("p95", 0.95), ("p99", 0.99)] {
            if let Some(v) = self.quantile(q) {
                out.push_str(&render(name, v));
            }
        }
        out
    }
}

/// What a span event marks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A named phase began.
    PhaseStart,
    /// A named phase finished.
    PhaseEnd,
    /// A point-in-time annotation (a retry decision, a migration wave…).
    Point,
}

impl EventKind {
    fn label(self) -> &'static str {
        match self {
            EventKind::PhaseStart => "phase_start",
            EventKind::PhaseEnd => "phase_end",
            EventKind::Point => "event",
        }
    }
}

/// One structured trace record, stamped with **virtual** time only.
#[derive(Clone, Debug)]
pub struct SpanEvent {
    /// Virtual-clock timestamp (seconds) supplied by the caller.
    pub ts_secs: u64,
    pub kind: EventKind,
    pub name: String,
    pub detail: String,
}

/// Why the crawler advanced the virtual clock — the wait-attribution
/// taxonomy. Every second the clock moves during a phase is charged to
/// exactly one cause, so the per-phase buckets sum to the phase's
/// duration (asserted in the integration tests). Whatever is *not*
/// charged to a wait bucket is useful work.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum WaitCause {
    /// Parked on a genuinely empty token bucket until its refill point.
    TokenBucket,
    /// Honouring an injected chaos Retry-After storm.
    RetryAfterStorm,
    /// Waiting out a finite instance-outage window.
    Outage,
    /// Fixed backoff between transient-fault retries.
    TransientBackoff,
    /// Nothing was due: a long-horizon workload (the continuous monitor)
    /// slept until its next scheduled event. Idle time is still clock
    /// movement and must be attributed for the Σ buckets + work =
    /// duration identity to hold over days of simulated uptime.
    Idle,
}

impl WaitCause {
    /// Number of causes (the ledger's fixed bucket count).
    pub const COUNT: usize = 5;

    /// Every cause, in ledger-bucket order.
    pub const ALL: [WaitCause; WaitCause::COUNT] = [
        WaitCause::TokenBucket,
        WaitCause::RetryAfterStorm,
        WaitCause::Outage,
        WaitCause::TransientBackoff,
        WaitCause::Idle,
    ];

    /// Stable label used by exports and reports.
    pub fn label(self) -> &'static str {
        match self {
            WaitCause::TokenBucket => "token_bucket",
            WaitCause::RetryAfterStorm => "retry_after_storm",
            WaitCause::Outage => "outage",
            WaitCause::TransientBackoff => "transient_backoff",
            WaitCause::Idle => "idle",
        }
    }

    /// This cause's index into a `[u64; WaitCause::COUNT]` bucket array.
    pub fn index(self) -> usize {
        match self {
            WaitCause::TokenBucket => 0,
            WaitCause::RetryAfterStorm => 1,
            WaitCause::Outage => 2,
            WaitCause::TransientBackoff => 3,
            WaitCause::Idle => 4,
        }
    }
}

/// One hierarchical request span, stamped with **virtual** time.
///
/// The crawler opens a parent span per *logical request* (trace id = the
/// pipeline phase, span id = a global sequence number) and records one
/// child span per *attempt* the server answered — so a request that was
/// rate-limited twice and then granted owns three children. Waits are
/// charged to the parent (`waits`), attempts are instants.
#[derive(Clone, Debug)]
pub struct Span {
    /// Globally unique, monotonically increasing id (1-based).
    pub id: u64,
    /// Parent span id (`None` for logical-request roots).
    pub parent: Option<u64>,
    /// Trace id: the pipeline phase this span belongs to.
    pub trace: String,
    /// Human-readable request label (query, user id, domain…).
    pub label: String,
    /// Worker slot of the thread that ran this span, if inside a pool.
    pub worker: Option<usize>,
    /// Endpoint family label, once an attempt reached the server.
    pub family: Option<&'static str>,
    /// Virtual start time (seconds).
    pub start_secs: u64,
    /// Virtual end time (seconds; == start until the span ends).
    pub end_secs: u64,
    /// Typed outcome (`None` while the span is open).
    pub outcome: Option<SpanOutcome>,
    /// Virtual seconds of clock advance charged to this span, by cause.
    pub waits: [u64; WaitCause::COUNT],
}

impl Span {
    /// Virtual duration in seconds.
    pub fn duration_secs(&self) -> u64 {
        self.end_secs.saturating_sub(self.start_secs)
    }

    /// Total virtual seconds of waiting charged to this span.
    pub fn wait_total_secs(&self) -> u64 {
        self.waits.iter().sum()
    }
}

/// One entry of the phase table: a named phase's virtual extent.
#[derive(Clone, Debug)]
pub struct PhaseSpan {
    pub name: String,
    pub start_secs: u64,
    /// `None` while the phase is still open.
    pub end_secs: Option<u64>,
}

/// Default ring-buffer capacity of the event log.
pub const DEFAULT_EVENT_CAPACITY: usize = 65_536;

/// Default ring-buffer capacity of the span store.
pub const DEFAULT_SPAN_CAPACITY: usize = 65_536;

/// Hard cap on the phase table (phases are few; this only guards against
/// a pathological caller using `phase_start` as an event stream).
const PHASE_TABLE_CAP: usize = 4_096;

#[derive(Debug)]
enum Slot {
    Counter(Tier, Counter),
    Gauge(Tier, Gauge),
    Histogram(Tier, Histogram),
}

impl Slot {
    fn tier(&self) -> Tier {
        match self {
            Slot::Counter(t, _) | Slot::Gauge(t, _) | Slot::Histogram(t, _) => *t,
        }
    }
}

/// Ring-buffered event log: overflow drops the oldest record and counts.
#[derive(Debug)]
struct EventLog {
    events: VecDeque<SpanEvent>,
    capacity: usize,
    dropped: u64,
}

/// Ring-buffered span store. Ids are assigned sequentially and spans are
/// only ever evicted from the front, so the live window is contiguous and
/// id → index lookup is O(1).
#[derive(Debug)]
struct SpanStore {
    spans: VecDeque<Span>,
    capacity: usize,
    /// Next id to assign (ids are 1-based; 0 never names a span).
    next_id: u64,
    dropped: u64,
}

impl SpanStore {
    fn index_of(&self, id: u64) -> Option<usize> {
        let front = self.spans.front()?.id;
        let idx = id.checked_sub(front)? as usize;
        (idx < self.spans.len()).then_some(idx)
    }
}

#[derive(Debug)]
struct RegistryInner {
    metrics: Mutex<BTreeMap<String, Slot>>,
    events: Mutex<EventLog>,
    spans: Mutex<SpanStore>,
    phases: Mutex<Vec<PhaseSpan>>,
    /// Per-phase wait ledger: phase name → seconds per [`WaitCause`].
    waits: Mutex<BTreeMap<String, [u64; WaitCause::COUNT]>>,
    events_dropped: OnceLock<Counter>,
    spans_dropped: OnceLock<Counter>,
}

impl RegistryInner {
    fn with_capacities(event_capacity: usize, span_capacity: usize) -> Self {
        RegistryInner {
            metrics: Mutex::new(BTreeMap::new()),
            events: Mutex::new(EventLog {
                events: VecDeque::new(),
                capacity: event_capacity,
                dropped: 0,
            }),
            spans: Mutex::new(SpanStore {
                spans: VecDeque::new(),
                capacity: span_capacity,
                next_id: 1,
                dropped: 0,
            }),
            phases: Mutex::new(Vec::new()),
            waits: Mutex::new(BTreeMap::new()),
            events_dropped: OnceLock::new(),
            spans_dropped: OnceLock::new(),
        }
    }
}

impl Default for RegistryInner {
    fn default() -> Self {
        RegistryInner::with_capacities(DEFAULT_EVENT_CAPACITY, DEFAULT_SPAN_CAPACITY)
    }
}

/// The shared metric registry. Cloning is cheap (an `Arc` bump) and all
/// clones observe the same metrics, so one registry can be threaded
/// through `ApiServer`, `Crawler` and the fedisim world side by side.
#[derive(Clone, Debug, Default)]
pub struct Registry(Arc<RegistryInner>);

impl Registry {
    /// Fresh empty registry with the default ring-buffer capacities.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Fresh registry with explicit event-log / span-store capacities.
    /// Overflow evicts the oldest record and increments the scheduling-
    /// tier `flock.obs.events.dropped` / `flock.obs.spans.dropped`
    /// counter.
    pub fn with_capacities(event_capacity: usize, span_capacity: usize) -> Self {
        Registry(Arc::new(RegistryInner::with_capacities(
            event_capacity,
            span_capacity,
        )))
    }

    /// Get-or-register the counter `name`. Registration is idempotent:
    /// the same name always yields handles onto the same atomic. If the
    /// name is already registered as a *different* kind the call returns
    /// a detached handle (safe to use, invisible in exports) rather than
    /// panicking — telemetry must never take the pipeline down.
    pub fn counter(&self, name: &str, tier: Tier) -> Counter {
        let mut m = relock(&self.0.metrics);
        match m
            .entry(name.to_string())
            .or_insert_with(|| Slot::Counter(tier, Counter::default()))
        {
            Slot::Counter(_, c) => c.clone(),
            _ => Counter::default(),
        }
    }

    /// Get-or-register the gauge `name` (same contract as [`Self::counter`]).
    pub fn gauge(&self, name: &str, tier: Tier) -> Gauge {
        let mut m = relock(&self.0.metrics);
        match m
            .entry(name.to_string())
            .or_insert_with(|| Slot::Gauge(tier, Gauge::default()))
        {
            Slot::Gauge(_, g) => g.clone(),
            _ => Gauge::default(),
        }
    }

    /// Get-or-register the histogram `name` with the given bucket upper
    /// bounds (ignored if the name already exists; same contract as
    /// [`Self::counter`]).
    pub fn histogram(&self, name: &str, tier: Tier, bounds: &[u64]) -> Histogram {
        let mut m = relock(&self.0.metrics);
        match m
            .entry(name.to_string())
            .or_insert_with(|| Slot::Histogram(tier, Histogram::with_bounds(bounds)))
        {
            Slot::Histogram(_, h) => h.clone(),
            _ => Histogram::with_bounds(bounds),
        }
    }

    /// Record the start of a named phase at virtual time `ts_secs`.
    pub fn phase_start(&self, ts_secs: u64, name: &str) {
        self.push_event(ts_secs, EventKind::PhaseStart, name, "");
        let mut phases = relock(&self.0.phases);
        if phases.len() < PHASE_TABLE_CAP {
            phases.push(PhaseSpan {
                name: name.to_string(),
                start_secs: ts_secs,
                end_secs: None,
            });
        }
    }

    /// Record the end of a named phase at virtual time `ts_secs`.
    pub fn phase_end(&self, ts_secs: u64, name: &str) {
        self.push_event(ts_secs, EventKind::PhaseEnd, name, "");
        let mut phases = relock(&self.0.phases);
        if let Some(ph) = phases
            .iter_mut()
            .rev()
            .find(|ph| ph.end_secs.is_none() && ph.name == name)
        {
            ph.end_secs = Some(ts_secs);
        }
    }

    /// Record a point-in-time annotation at virtual time `ts_secs`.
    pub fn event(&self, ts_secs: u64, name: &str, detail: &str) {
        self.push_event(ts_secs, EventKind::Point, name, detail);
    }

    fn push_event(&self, ts_secs: u64, kind: EventKind, name: &str, detail: &str) {
        let mut overflow = 0u64;
        {
            let mut log = relock(&self.0.events);
            log.events.push_back(SpanEvent {
                ts_secs,
                kind,
                name: name.to_string(),
                detail: detail.to_string(),
            });
            while log.events.len() > log.capacity {
                log.events.pop_front();
                log.dropped += 1;
                overflow += 1;
            }
        }
        // Counter registration takes the metrics lock — done strictly
        // after the event lock is released.
        if overflow > 0 {
            self.0
                .events_dropped
                .get_or_init(|| self.counter("flock.obs.events.dropped", Tier::Sched))
                .add(overflow);
        }
    }

    // ---- spans ----------------------------------------------------------

    /// Open a span and return its id. `trace_name` is the trace id (the
    /// pipeline phase); `parent` links attempts under their logical
    /// request.
    pub fn span_begin(
        &self,
        trace_name: &str,
        label: &str,
        parent: Option<u64>,
        worker: Option<usize>,
        start_secs: u64,
    ) -> u64 {
        self.push_span(
            trace_name, label, parent, worker, None, None, start_secs, start_secs,
        )
    }

    /// Close span `id` with a typed outcome. A span already evicted by
    /// the ring buffer is silently skipped.
    pub fn span_end(&self, id: u64, end_secs: u64, outcome: SpanOutcome) {
        let mut store = relock(&self.0.spans);
        if let Some(i) = store.index_of(id) {
            let s = &mut store.spans[i];
            s.end_secs = end_secs;
            s.outcome = Some(outcome);
        }
    }

    /// Record one completed *attempt* as a child span of `parent` in a
    /// single call (attempts are instants: the server answered at once
    /// in virtual time; the waits between attempts belong to the parent).
    #[allow(clippy::too_many_arguments)]
    pub fn span_attempt(
        &self,
        parent: u64,
        trace_name: &str,
        label: &str,
        worker: Option<usize>,
        family: Option<&'static str>,
        outcome: SpanOutcome,
        start_secs: u64,
        end_secs: u64,
    ) -> u64 {
        {
            // Stamp the family onto the parent while we know it.
            let mut store = relock(&self.0.spans);
            if let Some(i) = store.index_of(parent) {
                if family.is_some() {
                    store.spans[i].family = family;
                }
            }
        }
        self.push_span(
            trace_name,
            label,
            Some(parent),
            worker,
            family,
            Some(outcome),
            start_secs,
            end_secs,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn push_span(
        &self,
        trace_name: &str,
        label: &str,
        parent: Option<u64>,
        worker: Option<usize>,
        family: Option<&'static str>,
        outcome: Option<SpanOutcome>,
        start_secs: u64,
        end_secs: u64,
    ) -> u64 {
        let mut overflow = 0u64;
        let id;
        {
            let mut store = relock(&self.0.spans);
            id = store.next_id;
            store.next_id += 1;
            store.spans.push_back(Span {
                id,
                parent,
                trace: trace_name.to_string(),
                label: label.to_string(),
                worker,
                family,
                start_secs,
                end_secs,
                outcome,
                waits: [0; WaitCause::COUNT],
            });
            while store.spans.len() > store.capacity {
                store.spans.pop_front();
                store.dropped += 1;
                overflow += 1;
            }
        }
        if overflow > 0 {
            self.0
                .spans_dropped
                .get_or_init(|| self.counter("flock.obs.spans.dropped", Tier::Sched))
                .add(overflow);
        }
        id
    }

    /// Charge `secs` of virtual clock advance to span `id` under `cause`,
    /// and to `phase`'s wait ledger. This is the **only** write path of
    /// the attribution invariant: callers attribute exactly the clock
    /// delta their advance actually applied, so per-phase buckets sum to
    /// the phase's virtual duration. Zero-second advances (another
    /// worker already paid the wait) are skipped.
    pub fn attribute_wait(&self, span_id: u64, phase: &str, cause: WaitCause, secs: u64) {
        if secs == 0 {
            return;
        }
        {
            let mut store = relock(&self.0.spans);
            if let Some(i) = store.index_of(span_id) {
                store.spans[i].waits[cause.index()] += secs;
            }
        }
        let mut ledger = relock(&self.0.waits);
        ledger
            .entry(phase.to_string())
            .or_insert([0; WaitCause::COUNT])[cause.index()] += secs;
    }

    /// Snapshot of every live (non-evicted) span, id order.
    pub fn spans(&self) -> Vec<Span> {
        relock(&self.0.spans).spans.iter().cloned().collect()
    }

    /// Number of live spans.
    pub fn span_count(&self) -> usize {
        relock(&self.0.spans).spans.len()
    }

    /// Spans evicted by the ring buffer so far.
    pub fn spans_dropped(&self) -> u64 {
        relock(&self.0.spans).dropped
    }

    /// Events evicted by the ring buffer so far.
    pub fn events_dropped(&self) -> u64 {
        relock(&self.0.events).dropped
    }

    /// Snapshot of the phase table, start order.
    pub fn phases(&self) -> Vec<PhaseSpan> {
        relock(&self.0.phases).clone()
    }

    /// Snapshot of the per-phase wait ledger (phase → seconds per cause,
    /// indexed by [`WaitCause::index`]).
    pub fn waits(&self) -> BTreeMap<String, [u64; WaitCause::COUNT]> {
        relock(&self.0.waits).clone()
    }

    // ---- introspection --------------------------------------------------

    /// True when nothing has been registered.
    pub fn is_empty(&self) -> bool {
        relock(&self.0.metrics).is_empty()
    }

    /// Number of registered metrics.
    pub fn metric_count(&self) -> usize {
        relock(&self.0.metrics).len()
    }

    /// Number of recorded (live) span events.
    pub fn event_count(&self) -> usize {
        relock(&self.0.events).events.len()
    }

    /// Current value of the counter `name`, if registered as a counter.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        match relock(&self.0.metrics).get(name) {
            Some(Slot::Counter(_, c)) => Some(c.get()),
            _ => None,
        }
    }

    /// Every registered counter as `(name, tier, value)`, name order
    /// (report plumbing).
    pub(crate) fn counters(&self) -> Vec<(String, Tier, u64)> {
        relock(&self.0.metrics)
            .iter()
            .filter_map(|(name, slot)| match slot {
                Slot::Counter(t, c) => Some((name.clone(), *t, c.get())),
                _ => None,
            })
            .collect()
    }

    fn render_metrics(&self, out: &mut String, filter: Option<Tier>) {
        for (name, slot) in relock(&self.0.metrics).iter() {
            if filter.is_some_and(|want| slot.tier() != want) {
                continue;
            }
            match slot {
                Slot::Counter(_, c) => {
                    let _ = writeln!(out, "counter {name} {}", c.get());
                }
                Slot::Gauge(_, g) => {
                    let _ = writeln!(
                        out,
                        "gauge {name} value={} high={}",
                        g.get(),
                        g.high_watermark()
                    );
                }
                Slot::Histogram(_, h) => {
                    let buckets = h
                        .bucket_counts()
                        .iter()
                        .map(ToString::to_string)
                        .collect::<Vec<_>>()
                        .join(",");
                    let quantiles = h.quantile_fields(|n, v| format!(" {n}={v:.2}"));
                    let _ = writeln!(
                        out,
                        "histogram {name} count={} sum={} min={} max={}{quantiles} buckets={buckets}",
                        h.count(),
                        h.sum(),
                        h.min(),
                        h.max()
                    );
                }
            }
        }
    }

    /// Canonical rendering of the **deterministic tier only** — the bytes
    /// compared across worker counts in the telemetry-determinism test.
    pub fn snapshot(&self) -> String {
        let mut out = String::new();
        self.render_metrics(&mut out, Some(Tier::Data));
        out
    }

    /// Full text export: both tiers (tagged) plus the event log and the
    /// ring-buffer drop accounting.
    pub fn export_text(&self) -> String {
        let mut out = String::from("# deterministic tier\n");
        self.render_metrics(&mut out, Some(Tier::Data));
        out.push_str("# scheduling tier\n");
        self.render_metrics(&mut out, Some(Tier::Sched));
        {
            let spans = relock(&self.0.spans);
            let _ = writeln!(
                out,
                "# spans recorded={} dropped={}",
                spans.spans.len(),
                spans.dropped
            );
        }
        let events = relock(&self.0.events);
        let _ = writeln!(out, "# events (dropped {})", events.dropped);
        for ev in events.events.iter() {
            let _ = writeln!(
                out,
                "event ts={} kind={} name={} detail={}",
                ev.ts_secs,
                ev.kind.label(),
                ev.name,
                ev.detail.replace('\n', "\\n")
            );
        }
        out
    }

    /// Full JSON export (hand-rolled: this crate has no dependencies).
    pub fn export_json(&self) -> String {
        let mut out = String::from("{\n");
        for (i, tier) in [Tier::Data, Tier::Sched].into_iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            let _ = write!(out, "  \"{}\": {{", tier.label());
            let metrics = relock(&self.0.metrics);
            let mut first = true;
            for (name, slot) in metrics.iter().filter(|(_, s)| s.tier() == tier) {
                if !first {
                    out.push(',');
                }
                first = false;
                let _ = write!(out, "\n    \"{}\": ", json_escape(name));
                match slot {
                    Slot::Counter(_, c) => {
                        let _ = write!(out, "{{\"kind\":\"counter\",\"value\":{}}}", c.get());
                    }
                    Slot::Gauge(_, g) => {
                        let _ = write!(
                            out,
                            "{{\"kind\":\"gauge\",\"value\":{},\"high\":{}}}",
                            g.get(),
                            g.high_watermark()
                        );
                    }
                    Slot::Histogram(_, h) => {
                        let bounds =
                            h.0.bounds
                                .iter()
                                .map(ToString::to_string)
                                .collect::<Vec<_>>()
                                .join(",");
                        let buckets = h
                            .bucket_counts()
                            .iter()
                            .map(ToString::to_string)
                            .collect::<Vec<_>>()
                            .join(",");
                        let quantiles = h.quantile_fields(|n, v| format!(",\"{n}\":{v:.2}"));
                        let _ = write!(
                            out,
                            "{{\"kind\":\"histogram\",\"count\":{},\"sum\":{},\"min\":{},\"max\":{}{quantiles},\"bounds\":[{bounds}],\"buckets\":[{buckets}]}}",
                            h.count(),
                            h.sum(),
                            h.min(),
                            h.max()
                        );
                    }
                }
            }
            if !first {
                out.push_str("\n  ");
            }
            out.push('}');
        }
        {
            let spans = relock(&self.0.spans);
            let _ = write!(
                out,
                ",\n  \"spans\": {{\"recorded\":{},\"dropped\":{}}}",
                spans.spans.len(),
                spans.dropped
            );
        }
        let events = relock(&self.0.events);
        let _ = write!(out, ",\n  \"events_dropped\": {}", events.dropped);
        out.push_str(",\n  \"events\": [");
        for (i, ev) in events.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"ts_secs\":{},\"kind\":\"{}\",\"name\":\"{}\",\"detail\":\"{}\"}}",
                ev.ts_secs,
                ev.kind.label(),
                json_escape(&ev.name),
                json_escape(&ev.detail)
            );
        }
        if !events.events.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }

    /// Prometheus text exposition format: `# HELP`/`# TYPE` per metric,
    /// the determinism tier as a label, histograms as cumulative
    /// `_bucket{le=…}` series plus `_sum`/`_count`, and a gauge's high
    /// watermark as a companion `_high` gauge. Metric names have every
    /// non-alphanumeric character folded to `_`.
    pub fn export_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, slot) in relock(&self.0.metrics).iter() {
            let prom = prom_name(name);
            let tier = slot.tier().label();
            match slot {
                Slot::Counter(_, c) => {
                    let _ = writeln!(out, "# HELP {prom} {name}");
                    let _ = writeln!(out, "# TYPE {prom} counter");
                    let _ = writeln!(out, "{prom}{{tier=\"{tier}\"}} {}", c.get());
                }
                Slot::Gauge(_, g) => {
                    let _ = writeln!(out, "# HELP {prom} {name}");
                    let _ = writeln!(out, "# TYPE {prom} gauge");
                    let _ = writeln!(out, "{prom}{{tier=\"{tier}\"}} {}", g.get());
                    let _ = writeln!(out, "# HELP {prom}_high {name} high watermark");
                    let _ = writeln!(out, "# TYPE {prom}_high gauge");
                    let _ = writeln!(out, "{prom}_high{{tier=\"{tier}\"}} {}", g.high_watermark());
                }
                Slot::Histogram(_, h) => {
                    let _ = writeln!(out, "# HELP {prom} {name}");
                    let _ = writeln!(out, "# TYPE {prom} histogram");
                    let mut cum = 0u64;
                    for (bound, count) in h.0.bounds.iter().zip(h.bucket_counts()) {
                        cum += count;
                        let _ =
                            writeln!(out, "{prom}_bucket{{tier=\"{tier}\",le=\"{bound}\"}} {cum}");
                    }
                    let _ = writeln!(
                        out,
                        "{prom}_bucket{{tier=\"{tier}\",le=\"+Inf\"}} {}",
                        h.count()
                    );
                    let _ = writeln!(out, "{prom}_sum{{tier=\"{tier}\"}} {}", h.sum());
                    let _ = writeln!(out, "{prom}_count{{tier=\"{tier}\"}} {}", h.count());
                }
            }
        }
        {
            let spans = relock(&self.0.spans);
            let _ = writeln!(
                out,
                "# HELP flock_obs_spans_live live spans in the ring buffer"
            );
            let _ = writeln!(out, "# TYPE flock_obs_spans_live gauge");
            let _ = writeln!(
                out,
                "flock_obs_spans_live{{tier=\"scheduling\"}} {}",
                spans.spans.len()
            );
        }
        out
    }
}

/// Fold a dotted metric name into the Prometheus name charset.
fn prom_name(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

/// Minimal JSON string escaper (quotes, backslashes, control characters).
/// Public because the exporter-correctness tests round-trip it through
/// the vendored parser.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_shared_across_handles_and_clones() {
        let reg = Registry::new();
        let a = reg.counter("flock.test.hits", Tier::Data);
        let b = reg.clone().counter("flock.test.hits", Tier::Data);
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert_eq!(reg.counter_value("flock.test.hits"), Some(3));
    }

    #[test]
    fn kind_mismatch_yields_detached_handle() {
        let reg = Registry::new();
        let c = reg.counter("flock.test.x", Tier::Data);
        let g = reg.gauge("flock.test.x", Tier::Data);
        g.set(99);
        // The original counter is untouched and the registry still renders
        // the first registration only.
        assert_eq!(c.get(), 0);
        assert_eq!(reg.metric_count(), 1);
        assert!(reg.snapshot().contains("counter flock.test.x 0"));
    }

    #[test]
    fn gauge_tracks_high_watermark() {
        let g = Registry::new().gauge("flock.test.depth", Tier::Sched);
        g.set(3);
        g.set(9);
        g.set(1);
        assert_eq!(g.get(), 1);
        assert_eq!(g.high_watermark(), 9);
    }

    #[test]
    fn histogram_buckets_and_aggregates() {
        let h = Registry::new().histogram("flock.test.wait", Tier::Sched, &[10, 100]);
        for v in [1, 10, 11, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 1022);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 1000);
        assert_eq!(h.bucket_counts(), vec![2, 1, 1]); // ≤10, ≤100, +inf
    }

    #[test]
    fn empty_histogram_reports_zero_min() {
        let h = Registry::new().histogram("flock.test.empty", Tier::Data, &SECONDS_BOUNDS);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.quantile(0.5), None);
    }

    #[test]
    fn quantiles_interpolate_within_buckets() {
        let h = Registry::new().histogram("flock.test.q", Tier::Sched, &[10, 100, 1000]);
        // 10 observations in (10, 100]: ranks spread linearly across the
        // bucket, so p50 sits mid-bucket.
        for _ in 0..10 {
            h.record(50);
        }
        let p50 = h.quantile(0.5).unwrap();
        assert!((10.0..=100.0).contains(&p50), "p50={p50}");
        assert!((p50 - 55.0).abs() < 1e-9, "p50={p50}");
        // All mass below the first bound: interpolate from min.
        let h2 = Registry::new().histogram("flock.test.q2", Tier::Sched, &[10]);
        h2.record(4);
        h2.record(4);
        let p = h2.quantile(1.0).unwrap();
        assert!((4.0..=10.0).contains(&p));
        // Mass in the +inf bucket answers the max.
        let h3 = Registry::new().histogram("flock.test.q3", Tier::Sched, &[10]);
        h3.record(5000);
        assert_eq!(h3.quantile(0.99), Some(5000.0));
        // Out-of-range probabilities are a caller error, not a panic.
        assert_eq!(h3.quantile(-0.1), None);
        assert_eq!(h3.quantile(1.5), None);
        assert_eq!(h3.quantile(f64::NAN), None);
    }

    #[test]
    fn quantiles_are_monotone() {
        let h = Registry::new().histogram("flock.test.mono", Tier::Sched, &SECONDS_BOUNDS);
        for v in [0, 1, 3, 30, 30, 900, 4000, 100_000, 1_000_000] {
            h.record(v);
        }
        let mut prev = f64::MIN;
        for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0] {
            let v = h.quantile(q).unwrap();
            assert!(v >= prev, "quantile({q})={v} < {prev}");
            prev = v;
        }
    }

    #[test]
    fn snapshot_is_data_tier_only_and_name_ordered() {
        let reg = Registry::new();
        reg.counter("flock.b.data", Tier::Data).add(2);
        reg.counter("flock.a.data", Tier::Data).add(1);
        reg.counter("flock.c.sched", Tier::Sched).add(7);
        let snap = reg.snapshot();
        assert_eq!(snap, "counter flock.a.data 1\ncounter flock.b.data 2\n");
        let full = reg.export_text();
        assert!(full.contains("counter flock.c.sched 7"));
    }

    #[test]
    fn events_are_recorded_in_order_with_virtual_timestamps() {
        let reg = Registry::new();
        reg.phase_start(0, "discover");
        reg.event(42, "retry", "rate limited, waiting 900s");
        reg.phase_end(100, "discover");
        assert_eq!(reg.event_count(), 3);
        let text = reg.export_text();
        assert!(text.contains("event ts=0 kind=phase_start name=discover"));
        assert!(text.contains("event ts=42 kind=event name=retry"));
        assert!(text.contains("event ts=100 kind=phase_end name=discover"));
    }

    #[test]
    fn phase_table_tracks_extents() {
        let reg = Registry::new();
        reg.phase_start(5, "a");
        reg.phase_start(7, "b");
        reg.phase_end(9, "b");
        let phases = reg.phases();
        assert_eq!(phases.len(), 2);
        assert_eq!(phases[0].name, "a");
        assert_eq!(phases[0].end_secs, None);
        assert_eq!(phases[1].start_secs, 7);
        assert_eq!(phases[1].end_secs, Some(9));
    }

    #[test]
    fn event_log_is_a_ring_buffer_that_counts_drops() {
        let reg = Registry::with_capacities(3, 8);
        for i in 0..5 {
            reg.event(i, "tick", "");
        }
        assert_eq!(reg.event_count(), 3);
        assert_eq!(reg.events_dropped(), 2);
        assert_eq!(reg.counter_value("flock.obs.events.dropped"), Some(2));
        // The oldest events are the ones evicted.
        let text = reg.export_text();
        assert!(!text.contains("event ts=0 "));
        assert!(!text.contains("event ts=1 "));
        assert!(text.contains("event ts=2 "));
        assert!(text.contains("event ts=4 "));
        assert!(text.contains("# events (dropped 2)"));
        let json = reg.export_json();
        assert!(json.contains("\"events_dropped\": 2"));
    }

    #[test]
    fn span_store_is_a_ring_buffer_that_counts_drops() {
        let reg = Registry::with_capacities(8, 2);
        let a = reg.span_begin("phase", "a", None, None, 0);
        let b = reg.span_begin("phase", "b", None, None, 1);
        let c = reg.span_begin("phase", "c", None, None, 2);
        assert_eq!(reg.span_count(), 2);
        assert_eq!(reg.spans_dropped(), 1);
        assert_eq!(reg.counter_value("flock.obs.spans.dropped"), Some(1));
        // Ending an evicted span is a no-op, not a crash.
        reg.span_end(a, 10, SpanOutcome::Granted);
        reg.span_end(b, 10, SpanOutcome::Granted);
        reg.span_end(c, 12, SpanOutcome::Granted);
        let spans = reg.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].id, b);
        assert_eq!(spans[1].end_secs, 12);
    }

    #[test]
    fn spans_link_parents_and_accumulate_waits() {
        let reg = Registry::new();
        let root = reg.span_begin("expand.followees", "following:42", None, Some(1), 100);
        let att = reg.span_attempt(
            root,
            "expand.followees",
            "following:42",
            Some(1),
            Some("follows"),
            SpanOutcome::RateLimited { storm: false },
            100,
            100,
        );
        reg.attribute_wait(root, "expand.followees", WaitCause::TokenBucket, 60);
        reg.attribute_wait(root, "expand.followees", WaitCause::TokenBucket, 0); // no-op
        reg.span_end(root, 160, SpanOutcome::Granted);
        let spans = reg.spans();
        assert_eq!(spans.len(), 2);
        let root_span = spans.iter().find(|s| s.id == root).unwrap();
        let att_span = spans.iter().find(|s| s.id == att).unwrap();
        assert_eq!(att_span.parent, Some(root));
        assert_eq!(att_span.family, Some("follows"));
        assert_eq!(root_span.family, Some("follows")); // inherited
        assert_eq!(root_span.wait_total_secs(), 60);
        assert_eq!(root_span.duration_secs(), 60);
        assert_eq!(root_span.outcome, Some(SpanOutcome::Granted));
        let ledger = reg.waits();
        assert_eq!(
            ledger["expand.followees"][WaitCause::TokenBucket.index()],
            60
        );
    }

    #[test]
    fn json_export_escapes_and_parses_shape() {
        let reg = Registry::new();
        reg.counter("flock.test.count", Tier::Data).inc();
        reg.gauge("flock.test.depth", Tier::Sched).set(4);
        reg.histogram("flock.test.wait", Tier::Sched, &[5])
            .record(7);
        reg.event(3, "note", "line1\nline2 \"quoted\"");
        let json = reg.export_json();
        assert!(json.contains("\"flock.test.count\": {\"kind\":\"counter\",\"value\":1}"));
        assert!(json.contains("\"high\":4"));
        assert!(json.contains("\"bounds\":[5],\"buckets\":[0,1]"));
        assert!(json.contains("line1\\nline2 \\\"quoted\\\""));
        // One observation at 7 (the +inf bucket): quantiles answer the max.
        assert!(json.contains("\"p50\":7.00"), "{json}");
    }

    #[test]
    fn text_export_carries_quantiles() {
        let reg = Registry::new();
        let h = reg.histogram("flock.test.wait", Tier::Sched, &[10, 100]);
        for v in [1, 20, 20, 900] {
            h.record(v);
        }
        let text = reg.export_text();
        assert!(text.contains("p50="), "{text}");
        assert!(text.contains("p95="), "{text}");
        assert!(text.contains("p99="), "{text}");
    }

    #[test]
    fn prometheus_export_is_well_formed() {
        let reg = Registry::new();
        reg.counter("flock.apis.search.granted", Tier::Data).add(3);
        reg.gauge("flock.crawler.worker_pool.queue_depth", Tier::Sched)
            .set(5);
        let h = reg.histogram("flock.crawler.retry.wait_secs", Tier::Sched, &[10, 100]);
        h.record(7);
        h.record(5000);
        let prom = reg.export_prometheus();
        assert!(prom.contains("# TYPE flock_apis_search_granted counter"));
        assert!(prom.contains("flock_apis_search_granted{tier=\"deterministic\"} 3"));
        assert!(prom.contains("flock_crawler_worker_pool_queue_depth{tier=\"scheduling\"} 5"));
        assert!(prom.contains("flock_crawler_worker_pool_queue_depth_high{tier=\"scheduling\"} 5"));
        // Cumulative buckets: ≤10 has 1, ≤100 still 1, +Inf has 2.
        assert!(
            prom.contains("flock_crawler_retry_wait_secs_bucket{tier=\"scheduling\",le=\"10\"} 1")
        );
        assert!(
            prom.contains("flock_crawler_retry_wait_secs_bucket{tier=\"scheduling\",le=\"100\"} 1")
        );
        assert!(prom
            .contains("flock_crawler_retry_wait_secs_bucket{tier=\"scheduling\",le=\"+Inf\"} 2"));
        assert!(prom.contains("flock_crawler_retry_wait_secs_sum{tier=\"scheduling\"} 5007"));
        assert!(prom.contains("flock_crawler_retry_wait_secs_count{tier=\"scheduling\"} 2"));
        // Every HELP line precedes its TYPE line.
        let help_idx = prom.find("# HELP flock_apis_search_granted").unwrap();
        let type_idx = prom.find("# TYPE flock_apis_search_granted").unwrap();
        assert!(help_idx < type_idx);
    }

    #[test]
    fn json_escape_handles_control_chars() {
        assert_eq!(json_escape("a\u{1}b"), "a\\u0001b");
        assert_eq!(json_escape("t\\q\""), "t\\\\q\\\"");
    }

    #[test]
    fn concurrent_increments_from_many_threads_sum_exactly() {
        let reg = Registry::new();
        let c = reg.counter("flock.test.par", Tier::Data);
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 8000);
    }
}

//! # flock-obs — deterministic metrics & structured tracing
//!
//! The paper's crawl was an *operational* exercise as much as a scientific
//! one: §3 reports request volumes, rate-limit stalls, dead instances and
//! per-phase coverage, and every follow-on study leans on knowing exactly
//! what the crawl did. This crate is the workspace's observability layer:
//! a dependency-free [`Registry`] of named counters, gauges and histograms
//! plus lightweight span events, designed around the same rules as the
//! rest of the pipeline:
//!
//! * **No wall clock.** Every timestamp is caller-supplied virtual time
//!   (the `ApiServer` clock, or a simulated day offset). Exports never
//!   embed ambient time, so they are reproducible byte-for-byte.
//! * **Deterministic iteration.** Metrics live in a `BTreeMap` keyed by
//!   name, so every export walks them in one canonical order.
//! * **Two telemetry tiers.** [`Tier::Data`] metrics are facts about the
//!   data (requests *granted*, items collected) and must be identical
//!   across worker counts; [`Tier::Sched`] metrics are operational
//!   signals (retries, queue depths, backoff waits) that legitimately
//!   depend on thread scheduling. [`Registry::snapshot`] renders only the
//!   deterministic tier — that string is byte-compared in tests across
//!   `workers=1` and `workers=8` — while [`Registry::export_text`] /
//!   [`Registry::export_json`] render everything.
//!
//! Handles are cheap `Arc`-backed atomics: register once at construction
//! time, then `inc()`/`record()` from any thread without touching the
//! registry lock. Metric names follow `flock.<crate>.<subsystem>.<metric>`.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Lock with poison recovery: a panicking thread elsewhere must not take
/// the telemetry down with it — the registry's state (plain atomics and
/// completed `String` keys) is always valid.
fn relock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Which determinism contract a metric lives under.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Tier {
    /// A fact about the data: byte-identical across worker counts and
    /// thread schedules (e.g. requests *granted*, tweets collected).
    Data,
    /// An operational signal that depends on scheduling (e.g. rate-limit
    /// rejections, retry waits, queue depths). Excluded from
    /// [`Registry::snapshot`], present in the full exports.
    Sched,
}

impl Tier {
    fn label(self) -> &'static str {
        match self {
            Tier::Data => "deterministic",
            Tier::Sched => "scheduling",
        }
    }
}

/// Monotonically increasing event count. Cloning shares the underlying
/// atomic, so a handle can be stored per call-site.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug, Default)]
struct GaugeInner {
    value: AtomicU64,
    high: AtomicU64,
}

/// Last-written value plus a high-watermark (the only aggregate of a
/// sampled quantity that merges deterministically).
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<GaugeInner>);

impl Gauge {
    /// Record the current level.
    pub fn set(&self, v: u64) {
        self.0.value.store(v, Ordering::Relaxed);
        self.0.high.fetch_max(v, Ordering::Relaxed);
    }

    /// Most recently written value.
    pub fn get(&self) -> u64 {
        self.0.value.load(Ordering::Relaxed)
    }

    /// Highest value ever written.
    pub fn high_watermark(&self) -> u64 {
        self.0.high.load(Ordering::Relaxed)
    }
}

/// Default bucket bounds for virtual-second latencies/waits: sub-second
/// through one virtual week.
pub const SECONDS_BOUNDS: [u64; 9] = [1, 5, 15, 60, 300, 900, 3600, 86_400, 604_800];

#[derive(Debug)]
struct HistogramInner {
    /// Ascending upper bounds; an implicit `+inf` bucket follows the last.
    bounds: Vec<u64>,
    /// `bounds.len() + 1` cumulative-free bucket counts.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

/// Fixed-bound histogram. Bucket bounds are set at registration and never
/// change, so concurrent `record()`s from any interleaving produce the
/// same final bucket counts — histogram merges are order-independent.
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistogramInner>);

impl Histogram {
    fn with_bounds(bounds: &[u64]) -> Self {
        let mut sorted = bounds.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let buckets = (0..=sorted.len()).map(|_| AtomicU64::new(0)).collect();
        Histogram(Arc::new(HistogramInner {
            bounds: sorted,
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }))
    }

    /// Record one observation.
    pub fn record(&self, v: u64) {
        let idx = self
            .0
            .bounds
            .iter()
            .position(|b| v <= *b)
            .unwrap_or(self.0.bounds.len());
        self.0.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(v, Ordering::Relaxed);
        self.0.min.fetch_min(v, Ordering::Relaxed);
        self.0.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// Smallest observation (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count() == 0 {
            0
        } else {
            self.0.min.load(Ordering::Relaxed)
        }
    }

    /// Largest observation (0 when empty).
    pub fn max(&self) -> u64 {
        self.0.max.load(Ordering::Relaxed)
    }

    fn bucket_counts(&self) -> Vec<u64> {
        self.0
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }
}

/// What a span event marks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A named phase began.
    PhaseStart,
    /// A named phase finished.
    PhaseEnd,
    /// A point-in-time annotation (a retry decision, a migration wave…).
    Point,
}

impl EventKind {
    fn label(self) -> &'static str {
        match self {
            EventKind::PhaseStart => "phase_start",
            EventKind::PhaseEnd => "phase_end",
            EventKind::Point => "event",
        }
    }
}

/// One structured trace record, stamped with **virtual** time only.
#[derive(Clone, Debug)]
pub struct SpanEvent {
    /// Virtual-clock timestamp (seconds) supplied by the caller.
    pub ts_secs: u64,
    pub kind: EventKind,
    pub name: String,
    pub detail: String,
}

#[derive(Debug)]
enum Slot {
    Counter(Tier, Counter),
    Gauge(Tier, Gauge),
    Histogram(Tier, Histogram),
}

impl Slot {
    fn tier(&self) -> Tier {
        match self {
            Slot::Counter(t, _) | Slot::Gauge(t, _) | Slot::Histogram(t, _) => *t,
        }
    }
}

#[derive(Debug, Default)]
struct RegistryInner {
    metrics: Mutex<BTreeMap<String, Slot>>,
    events: Mutex<Vec<SpanEvent>>,
}

/// The shared metric registry. Cloning is cheap (an `Arc` bump) and all
/// clones observe the same metrics, so one registry can be threaded
/// through `ApiServer`, `Crawler` and the fedisim world side by side.
#[derive(Clone, Debug, Default)]
pub struct Registry(Arc<RegistryInner>);

impl Registry {
    /// Fresh empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Get-or-register the counter `name`. Registration is idempotent:
    /// the same name always yields handles onto the same atomic. If the
    /// name is already registered as a *different* kind the call returns
    /// a detached handle (safe to use, invisible in exports) rather than
    /// panicking — telemetry must never take the pipeline down.
    pub fn counter(&self, name: &str, tier: Tier) -> Counter {
        let mut m = relock(&self.0.metrics);
        match m
            .entry(name.to_string())
            .or_insert_with(|| Slot::Counter(tier, Counter::default()))
        {
            Slot::Counter(_, c) => c.clone(),
            _ => Counter::default(),
        }
    }

    /// Get-or-register the gauge `name` (same contract as [`Self::counter`]).
    pub fn gauge(&self, name: &str, tier: Tier) -> Gauge {
        let mut m = relock(&self.0.metrics);
        match m
            .entry(name.to_string())
            .or_insert_with(|| Slot::Gauge(tier, Gauge::default()))
        {
            Slot::Gauge(_, g) => g.clone(),
            _ => Gauge::default(),
        }
    }

    /// Get-or-register the histogram `name` with the given bucket upper
    /// bounds (ignored if the name already exists; same contract as
    /// [`Self::counter`]).
    pub fn histogram(&self, name: &str, tier: Tier, bounds: &[u64]) -> Histogram {
        let mut m = relock(&self.0.metrics);
        match m
            .entry(name.to_string())
            .or_insert_with(|| Slot::Histogram(tier, Histogram::with_bounds(bounds)))
        {
            Slot::Histogram(_, h) => h.clone(),
            _ => Histogram::with_bounds(bounds),
        }
    }

    /// Record the start of a named phase at virtual time `ts_secs`.
    pub fn phase_start(&self, ts_secs: u64, name: &str) {
        self.push_event(ts_secs, EventKind::PhaseStart, name, "");
    }

    /// Record the end of a named phase at virtual time `ts_secs`.
    pub fn phase_end(&self, ts_secs: u64, name: &str) {
        self.push_event(ts_secs, EventKind::PhaseEnd, name, "");
    }

    /// Record a point-in-time annotation at virtual time `ts_secs`.
    pub fn event(&self, ts_secs: u64, name: &str, detail: &str) {
        self.push_event(ts_secs, EventKind::Point, name, detail);
    }

    fn push_event(&self, ts_secs: u64, kind: EventKind, name: &str, detail: &str) {
        relock(&self.0.events).push(SpanEvent {
            ts_secs,
            kind,
            name: name.to_string(),
            detail: detail.to_string(),
        });
    }

    /// True when nothing has been registered.
    pub fn is_empty(&self) -> bool {
        relock(&self.0.metrics).is_empty()
    }

    /// Number of registered metrics.
    pub fn metric_count(&self) -> usize {
        relock(&self.0.metrics).len()
    }

    /// Number of recorded span events.
    pub fn event_count(&self) -> usize {
        relock(&self.0.events).len()
    }

    /// Current value of the counter `name`, if registered as a counter.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        match relock(&self.0.metrics).get(name) {
            Some(Slot::Counter(_, c)) => Some(c.get()),
            _ => None,
        }
    }

    fn render_metrics(&self, out: &mut String, filter: Option<Tier>) {
        for (name, slot) in relock(&self.0.metrics).iter() {
            if filter.is_some_and(|want| slot.tier() != want) {
                continue;
            }
            match slot {
                Slot::Counter(_, c) => {
                    let _ = writeln!(out, "counter {name} {}", c.get());
                }
                Slot::Gauge(_, g) => {
                    let _ = writeln!(
                        out,
                        "gauge {name} value={} high={}",
                        g.get(),
                        g.high_watermark()
                    );
                }
                Slot::Histogram(_, h) => {
                    let buckets = h
                        .bucket_counts()
                        .iter()
                        .map(ToString::to_string)
                        .collect::<Vec<_>>()
                        .join(",");
                    let _ = writeln!(
                        out,
                        "histogram {name} count={} sum={} min={} max={} buckets={buckets}",
                        h.count(),
                        h.sum(),
                        h.min(),
                        h.max()
                    );
                }
            }
        }
    }

    /// Canonical rendering of the **deterministic tier only** — the bytes
    /// compared across worker counts in the telemetry-determinism test.
    pub fn snapshot(&self) -> String {
        let mut out = String::new();
        self.render_metrics(&mut out, Some(Tier::Data));
        out
    }

    /// Full text export: both tiers (tagged) plus the event log.
    pub fn export_text(&self) -> String {
        let mut out = String::from("# deterministic tier\n");
        self.render_metrics(&mut out, Some(Tier::Data));
        out.push_str("# scheduling tier\n");
        self.render_metrics(&mut out, Some(Tier::Sched));
        out.push_str("# events\n");
        for ev in relock(&self.0.events).iter() {
            let _ = writeln!(
                out,
                "event ts={} kind={} name={} detail={}",
                ev.ts_secs,
                ev.kind.label(),
                ev.name,
                ev.detail.replace('\n', "\\n")
            );
        }
        out
    }

    /// Full JSON export (hand-rolled: this crate has no dependencies).
    pub fn export_json(&self) -> String {
        let mut out = String::from("{\n");
        for (i, tier) in [Tier::Data, Tier::Sched].into_iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            let _ = write!(out, "  \"{}\": {{", tier.label());
            let metrics = relock(&self.0.metrics);
            let mut first = true;
            for (name, slot) in metrics.iter().filter(|(_, s)| s.tier() == tier) {
                if !first {
                    out.push(',');
                }
                first = false;
                let _ = write!(out, "\n    \"{}\": ", json_escape(name));
                match slot {
                    Slot::Counter(_, c) => {
                        let _ = write!(out, "{{\"kind\":\"counter\",\"value\":{}}}", c.get());
                    }
                    Slot::Gauge(_, g) => {
                        let _ = write!(
                            out,
                            "{{\"kind\":\"gauge\",\"value\":{},\"high\":{}}}",
                            g.get(),
                            g.high_watermark()
                        );
                    }
                    Slot::Histogram(_, h) => {
                        let bounds =
                            h.0.bounds
                                .iter()
                                .map(ToString::to_string)
                                .collect::<Vec<_>>()
                                .join(",");
                        let buckets = h
                            .bucket_counts()
                            .iter()
                            .map(ToString::to_string)
                            .collect::<Vec<_>>()
                            .join(",");
                        let _ = write!(
                            out,
                            "{{\"kind\":\"histogram\",\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"bounds\":[{bounds}],\"buckets\":[{buckets}]}}",
                            h.count(),
                            h.sum(),
                            h.min(),
                            h.max()
                        );
                    }
                }
            }
            if !first {
                out.push_str("\n  ");
            }
            out.push('}');
        }
        out.push_str(",\n  \"events\": [");
        let events = relock(&self.0.events);
        for (i, ev) in events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"ts_secs\":{},\"kind\":\"{}\",\"name\":\"{}\",\"detail\":\"{}\"}}",
                ev.ts_secs,
                ev.kind.label(),
                json_escape(&ev.name),
                json_escape(&ev.detail)
            );
        }
        if !events.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

/// Minimal JSON string escaper (quotes, backslashes, control characters).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_shared_across_handles_and_clones() {
        let reg = Registry::new();
        let a = reg.counter("flock.test.hits", Tier::Data);
        let b = reg.clone().counter("flock.test.hits", Tier::Data);
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert_eq!(reg.counter_value("flock.test.hits"), Some(3));
    }

    #[test]
    fn kind_mismatch_yields_detached_handle() {
        let reg = Registry::new();
        let c = reg.counter("flock.test.x", Tier::Data);
        let g = reg.gauge("flock.test.x", Tier::Data);
        g.set(99);
        // The original counter is untouched and the registry still renders
        // the first registration only.
        assert_eq!(c.get(), 0);
        assert_eq!(reg.metric_count(), 1);
        assert!(reg.snapshot().contains("counter flock.test.x 0"));
    }

    #[test]
    fn gauge_tracks_high_watermark() {
        let g = Registry::new().gauge("flock.test.depth", Tier::Sched);
        g.set(3);
        g.set(9);
        g.set(1);
        assert_eq!(g.get(), 1);
        assert_eq!(g.high_watermark(), 9);
    }

    #[test]
    fn histogram_buckets_and_aggregates() {
        let h = Registry::new().histogram("flock.test.wait", Tier::Sched, &[10, 100]);
        for v in [1, 10, 11, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 1022);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 1000);
        assert_eq!(h.bucket_counts(), vec![2, 1, 1]); // ≤10, ≤100, +inf
    }

    #[test]
    fn empty_histogram_reports_zero_min() {
        let h = Registry::new().histogram("flock.test.empty", Tier::Data, &SECONDS_BOUNDS);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn snapshot_is_data_tier_only_and_name_ordered() {
        let reg = Registry::new();
        reg.counter("flock.b.data", Tier::Data).add(2);
        reg.counter("flock.a.data", Tier::Data).add(1);
        reg.counter("flock.c.sched", Tier::Sched).add(7);
        let snap = reg.snapshot();
        assert_eq!(snap, "counter flock.a.data 1\ncounter flock.b.data 2\n");
        let full = reg.export_text();
        assert!(full.contains("counter flock.c.sched 7"));
    }

    #[test]
    fn events_are_recorded_in_order_with_virtual_timestamps() {
        let reg = Registry::new();
        reg.phase_start(0, "discover");
        reg.event(42, "retry", "rate limited, waiting 900s");
        reg.phase_end(100, "discover");
        assert_eq!(reg.event_count(), 3);
        let text = reg.export_text();
        assert!(text.contains("event ts=0 kind=phase_start name=discover"));
        assert!(text.contains("event ts=42 kind=event name=retry"));
        assert!(text.contains("event ts=100 kind=phase_end name=discover"));
    }

    #[test]
    fn json_export_escapes_and_parses_shape() {
        let reg = Registry::new();
        reg.counter("flock.test.count", Tier::Data).inc();
        reg.gauge("flock.test.depth", Tier::Sched).set(4);
        reg.histogram("flock.test.wait", Tier::Sched, &[5])
            .record(7);
        reg.event(3, "note", "line1\nline2 \"quoted\"");
        let json = reg.export_json();
        assert!(json.contains("\"flock.test.count\": {\"kind\":\"counter\",\"value\":1}"));
        assert!(json.contains("\"high\":4"));
        assert!(json.contains("\"bounds\":[5],\"buckets\":[0,1]"));
        assert!(json.contains("line1\\nline2 \\\"quoted\\\""));
    }

    #[test]
    fn json_escape_handles_control_chars() {
        assert_eq!(json_escape("a\u{1}b"), "a\\u0001b");
        assert_eq!(json_escape("t\\q\""), "t\\\\q\\\"");
    }

    #[test]
    fn concurrent_increments_from_many_threads_sum_exactly() {
        let reg = Registry::new();
        let c = reg.counter("flock.test.par", Tier::Data);
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 8000);
    }
}

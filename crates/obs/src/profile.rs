//! Virtual-time profiler: fold the span store into per-phase profiles.
//!
//! The crawl is single-clocked — every wait moves one shared virtual
//! clock — so profiling is exact, not sampled: a phase's virtual duration
//! decomposes into the [`WaitCause`] buckets its requests charged plus
//! whatever remains as useful work. The profiler groups spans by trace id
//! (= phase), splits logical requests from attempt children, aggregates
//! outcome tallies and per-worker load, extracts the **critical path**
//! (the ordered list of spans that actually advanced the clock — on a
//! shared virtual clock, a span that charged N seconds *is* N seconds of
//! the phase's wall time, whatever the other workers were doing), and
//! ranks the slowest request chains for the run report.

use std::collections::BTreeMap;

use crate::{PhaseSpan, Registry, Span, WaitCause};

/// Aggregate load of one worker slot within a phase.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WorkerLoad {
    /// Logical requests this worker drove.
    pub requests: u64,
    /// Individual server attempts (≥ requests).
    pub attempts: u64,
    /// Virtual seconds of clock advance this worker's requests charged.
    pub wait_secs: u64,
}

/// One segment of a phase's critical path: a span that advanced the
/// shared virtual clock.
#[derive(Clone, Debug)]
pub struct CriticalSegment {
    pub span_id: u64,
    pub label: String,
    pub worker: Option<usize>,
    /// Virtual time the span started.
    pub start_secs: u64,
    /// Seconds of clock advance the span charged (its critical-path
    /// contribution).
    pub advance_secs: u64,
}

/// A ranked logical request chain (parent span + its attempts).
#[derive(Clone, Debug)]
pub struct ChainSummary {
    pub span_id: u64,
    pub phase: String,
    pub label: String,
    pub worker: Option<usize>,
    pub start_secs: u64,
    pub end_secs: u64,
    /// Number of attempt children the server answered.
    pub attempts: u64,
    /// Final outcome label (`"open"` if the span never ended).
    pub outcome: &'static str,
    pub wait_secs: u64,
}

impl ChainSummary {
    /// Virtual duration of the chain.
    pub fn duration_secs(&self) -> u64 {
        self.end_secs.saturating_sub(self.start_secs)
    }
}

/// Everything the profiler knows about one phase.
#[derive(Clone, Debug)]
pub struct PhaseProfile {
    pub name: String,
    pub start_secs: u64,
    pub end_secs: u64,
    /// Virtual seconds charged per [`WaitCause`] (ledger order).
    pub waits: [u64; WaitCause::COUNT],
    /// Logical requests (root spans).
    pub requests: u64,
    /// Server attempts (child spans).
    pub attempts: u64,
    /// Attempt outcomes by stable label.
    pub outcomes: BTreeMap<&'static str, u64>,
    /// Per-worker load, keyed by worker slot.
    pub workers: BTreeMap<usize, WorkerLoad>,
    /// Spans that advanced the clock, in start order.
    pub critical_path: Vec<CriticalSegment>,
    /// Every request chain, slowest first (ties broken by span id).
    pub slowest: Vec<ChainSummary>,
}

impl PhaseProfile {
    /// Virtual duration of the phase.
    pub fn duration_secs(&self) -> u64 {
        self.end_secs.saturating_sub(self.start_secs)
    }

    /// Total attributed waiting across all causes.
    pub fn wait_total_secs(&self) -> u64 {
        self.waits.iter().sum()
    }

    /// Useful work: duration minus attributed waits. With the virtual
    /// clock, granted requests are instantaneous, so a fully attributed
    /// phase reports zero — any positive residue is *unattributed* clock
    /// movement (which the integration tests treat as a bug).
    pub fn work_secs(&self) -> u64 {
        self.duration_secs().saturating_sub(self.wait_total_secs())
    }
}

/// Build one [`PhaseProfile`] per entry of the registry's phase table,
/// in phase-start order. Spans whose trace id matches no phase (or
/// phases with no spans) still profile cleanly — the grouping is by
/// name, not by position.
pub fn phase_profiles(reg: &Registry) -> Vec<PhaseProfile> {
    let phases: Vec<PhaseSpan> = reg.phases();
    let ledger = reg.waits();
    let spans = reg.spans();

    let mut by_phase: BTreeMap<&str, Vec<&Span>> = BTreeMap::new();
    for s in &spans {
        by_phase.entry(s.trace.as_str()).or_default().push(s);
    }
    // Attempt counts per parent id, for chain summaries.
    let mut children: BTreeMap<u64, u64> = BTreeMap::new();
    for s in &spans {
        if let Some(p) = s.parent {
            *children.entry(p).or_default() += 1;
        }
    }

    phases
        .iter()
        .map(|ph| {
            let mut prof = PhaseProfile {
                name: ph.name.clone(),
                start_secs: ph.start_secs,
                end_secs: ph.end_secs.unwrap_or(ph.start_secs),
                waits: ledger.get(&ph.name).copied().unwrap_or_default(),
                requests: 0,
                attempts: 0,
                outcomes: BTreeMap::new(),
                workers: BTreeMap::new(),
                critical_path: Vec::new(),
                slowest: Vec::new(),
            };
            for s in by_phase.get(ph.name.as_str()).into_iter().flatten() {
                let slot = prof.workers.entry(s.worker.unwrap_or(0)).or_default();
                if s.parent.is_none() {
                    prof.requests += 1;
                    slot.requests += 1;
                    slot.wait_secs += s.wait_total_secs();
                    if s.wait_total_secs() > 0 {
                        prof.critical_path.push(CriticalSegment {
                            span_id: s.id,
                            label: s.label.clone(),
                            worker: s.worker,
                            start_secs: s.start_secs,
                            advance_secs: s.wait_total_secs(),
                        });
                    }
                    prof.slowest.push(ChainSummary {
                        span_id: s.id,
                        phase: s.trace.clone(),
                        label: s.label.clone(),
                        worker: s.worker,
                        start_secs: s.start_secs,
                        end_secs: s.end_secs,
                        attempts: children.get(&s.id).copied().unwrap_or(0),
                        outcome: s.outcome.map_or("open", |o| o.label()),
                        wait_secs: s.wait_total_secs(),
                    });
                } else {
                    prof.attempts += 1;
                    slot.attempts += 1;
                    if let Some(o) = s.outcome {
                        *prof.outcomes.entry(o.label()).or_default() += 1;
                    }
                }
            }
            prof.critical_path
                .sort_by_key(|seg| (seg.start_secs, seg.span_id));
            prof.slowest.sort_by(|a, b| {
                b.duration_secs()
                    .cmp(&a.duration_secs())
                    .then(a.span_id.cmp(&b.span_id))
            });
            prof
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::SpanOutcome;
    use crate::Tier;

    fn seeded_registry() -> Registry {
        let reg = Registry::new();
        reg.counter("flock.test.touch", Tier::Data).inc(); // irrelevant noise
        reg.phase_start(0, "expand.followees");
        // Request 1 on worker 0: rate-limited once, then granted.
        let r1 = reg.span_begin("expand.followees", "following:1", None, Some(0), 0);
        reg.span_attempt(
            r1,
            "expand.followees",
            "following:1",
            Some(0),
            Some("follows"),
            SpanOutcome::RateLimited { storm: true },
            0,
            0,
        );
        reg.attribute_wait(r1, "expand.followees", WaitCause::RetryAfterStorm, 900);
        reg.span_attempt(
            r1,
            "expand.followees",
            "following:1",
            Some(0),
            Some("follows"),
            SpanOutcome::Granted,
            900,
            900,
        );
        reg.span_end(r1, 900, SpanOutcome::Granted);
        // Request 2 on worker 1: granted immediately.
        let r2 = reg.span_begin("expand.followees", "following:2", None, Some(1), 900);
        reg.span_attempt(
            r2,
            "expand.followees",
            "following:2",
            Some(1),
            Some("follows"),
            SpanOutcome::Granted,
            900,
            900,
        );
        reg.span_end(r2, 900, SpanOutcome::Granted);
        reg.phase_end(900, "expand.followees");
        reg
    }

    #[test]
    fn profiles_fold_requests_attempts_and_waits() {
        let reg = seeded_registry();
        let profiles = phase_profiles(&reg);
        assert_eq!(profiles.len(), 1);
        let p = &profiles[0];
        assert_eq!(p.name, "expand.followees");
        assert_eq!(p.duration_secs(), 900);
        assert_eq!(p.requests, 2);
        assert_eq!(p.attempts, 3);
        assert_eq!(p.waits[WaitCause::RetryAfterStorm.index()], 900);
        assert_eq!(p.wait_total_secs(), 900);
        assert_eq!(p.work_secs(), 0); // fully attributed
        assert_eq!(p.outcomes["granted"], 2);
        assert_eq!(p.outcomes["rate_limited(storm)"], 1);
    }

    #[test]
    fn per_worker_load_and_critical_path() {
        let reg = seeded_registry();
        let p = &phase_profiles(&reg)[0];
        assert_eq!(p.workers.len(), 2);
        assert_eq!(p.workers[&0].requests, 1);
        assert_eq!(p.workers[&0].attempts, 2);
        assert_eq!(p.workers[&0].wait_secs, 900);
        assert_eq!(p.workers[&1].requests, 1);
        assert_eq!(p.workers[&1].wait_secs, 0);
        // Only the waiting span is on the critical path.
        assert_eq!(p.critical_path.len(), 1);
        assert_eq!(p.critical_path[0].advance_secs, 900);
        assert_eq!(p.critical_path[0].label, "following:1");
    }

    #[test]
    fn slowest_chains_rank_by_duration() {
        let reg = seeded_registry();
        let p = &phase_profiles(&reg)[0];
        assert_eq!(p.slowest.len(), 2);
        assert_eq!(p.slowest[0].label, "following:1");
        assert_eq!(p.slowest[0].duration_secs(), 900);
        assert_eq!(p.slowest[0].attempts, 2);
        assert_eq!(p.slowest[0].outcome, "granted");
        assert_eq!(p.slowest[1].duration_secs(), 0);
    }

    #[test]
    fn phase_without_spans_profiles_cleanly() {
        let reg = Registry::new();
        reg.phase_start(10, "discover.collect_tweets");
        reg.phase_end(10, "discover.collect_tweets");
        let profiles = phase_profiles(&reg);
        assert_eq!(profiles.len(), 1);
        assert_eq!(profiles[0].duration_secs(), 0);
        assert_eq!(profiles[0].requests, 0);
        assert!(profiles[0].critical_path.is_empty());
    }
}

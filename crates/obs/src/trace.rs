//! Thread-local trace context — the `TraceCtx` glue between the layers.
//!
//! The crawler opens a *logical request* span per API call it makes; the
//! API server, several stack frames below and in a different crate, knows
//! things the crawler cannot see (did the rate-limit rejection come from
//! the token bucket or from an injected Retry-After storm? was the fault
//! the legacy transient coin or a chaos injection?). Threading that
//! information through every endpoint signature would bloat the API
//! surface for the sake of telemetry, so the context rides in
//! thread-locals instead:
//!
//! * the **worker slot** — set by the crawler's worker pool around each
//!   item, so spans can attribute work to a worker thread;
//! * the **current span id** — set by the crawler around each logical
//!   request, available to any layer that wants to hang data off it;
//! * the **last attempt** — written by the API server on every acquire
//!   decision ([`record_attempt`]) and consumed by the crawler
//!   ([`take_attempt`]) right after the call returns, carrying the
//!   endpoint family plus the typed [`SpanOutcome`];
//! * the **scheduled-task flag** — set by the discrete-event executor
//!   around each task poll ([`task_scope`]), so layers below can tell a
//!   scheduler-driven logical request from a blocking thread-per-worker
//!   one (the API server skips its real-time latency sleep for scheduled
//!   tasks: simulated network time is an event on the virtual clock
//!   there, not a thread nap). It lives here rather than in `flock-sched`
//!   so the API layer can consult it without depending on the executor.
//!
//! Everything here is plain `Cell` state: no wall clock, no ambient RNG,
//! no locks. A thread that never sets the context reads `None` and all
//! instrumentation degrades to no-ops — the server works unchanged when
//! driven by code that does not trace (benches, unit tests).

use std::cell::Cell;

/// Why an attempt failed, when it failed with something other than a
/// rate-limit rejection.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultKind {
    /// A chaos-plan injected error (counts against the key's budget).
    Injected,
    /// The legacy transient fault coin (or any retryable upstream error).
    Transient,
    /// The target instance was down — permanently or inside an outage
    /// window.
    Outage,
    /// Anything else (application-level errors, interrupts).
    Other,
}

/// The typed outcome of one API request attempt:
/// `granted | rate_limited | fault(kind) | stale_cursor`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum SpanOutcome {
    /// The request consumed a token and was served.
    Granted,
    /// Rejected by the rate limiter; `storm` is true when the rejection
    /// was an injected Retry-After storm rather than a genuine empty
    /// token bucket (indistinguishable to callers, distinguished here).
    RateLimited {
        /// Injected by a chaos Retry-After storm.
        storm: bool,
    },
    /// The attempt failed before consuming a token.
    Fault(FaultKind),
    /// Granted, but the pagination cursor pointed past a shrunk result
    /// set.
    StaleCursor,
}

impl SpanOutcome {
    /// Stable label used by exports and reports.
    pub fn label(self) -> &'static str {
        match self {
            SpanOutcome::Granted => "granted",
            SpanOutcome::RateLimited { storm: false } => "rate_limited",
            SpanOutcome::RateLimited { storm: true } => "rate_limited(storm)",
            SpanOutcome::Fault(FaultKind::Injected) => "fault(injected)",
            SpanOutcome::Fault(FaultKind::Transient) => "fault(transient)",
            SpanOutcome::Fault(FaultKind::Outage) => "fault(outage)",
            SpanOutcome::Fault(FaultKind::Other) => "fault(other)",
            SpanOutcome::StaleCursor => "stale_cursor",
        }
    }
}

/// What the API server recorded about the most recent attempt on this
/// thread.
#[derive(Clone, Copy, Debug)]
pub struct Attempt {
    /// Endpoint family label (`search` / `users` / `follows` / `mastodon`).
    pub family: &'static str,
    /// The typed outcome of the attempt.
    pub outcome: SpanOutcome,
}

thread_local! {
    static WORKER: Cell<Option<usize>> = const { Cell::new(None) };
    static CURRENT_SPAN: Cell<Option<u64>> = const { Cell::new(None) };
    static LAST_ATTEMPT: Cell<Option<Attempt>> = const { Cell::new(None) };
    static SCHEDULED_TASK: Cell<bool> = const { Cell::new(false) };
}

/// Scope guard restoring the previous worker slot on drop.
#[derive(Debug)]
pub struct WorkerGuard {
    prev: Option<usize>,
}

/// Mark this thread as worker `slot` until the guard drops.
pub fn worker_scope(slot: usize) -> WorkerGuard {
    WorkerGuard {
        prev: WORKER.with(|w| w.replace(Some(slot))),
    }
}

impl Drop for WorkerGuard {
    fn drop(&mut self) {
        WORKER.with(|w| w.set(self.prev));
    }
}

/// The worker slot of the current thread, if inside a [`worker_scope`].
pub fn current_worker() -> Option<usize> {
    WORKER.with(Cell::get)
}

/// Scope guard restoring the previous span id on drop.
#[derive(Debug)]
pub struct SpanGuard {
    prev: Option<u64>,
}

/// Make `span_id` the current span until the guard drops (nesting
/// restores the outer span).
pub fn span_scope(span_id: u64) -> SpanGuard {
    SpanGuard {
        prev: CURRENT_SPAN.with(|s| s.replace(Some(span_id))),
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        CURRENT_SPAN.with(|s| s.set(self.prev));
    }
}

/// The current span id, if inside a [`span_scope`].
pub fn current_span() -> Option<u64> {
    CURRENT_SPAN.with(Cell::get)
}

/// Scope guard restoring the previous scheduled-task flag on drop.
#[derive(Debug)]
pub struct TaskGuard {
    prev: bool,
}

/// Mark this thread as currently polling a scheduled logical task until
/// the guard drops. The discrete-event executor wraps every task poll in
/// this scope; the API server consults [`in_scheduled_task`] to turn
/// simulated request latency into virtual-clock events instead of real
/// `thread::sleep`s (thousands of scheduled tasks overlap their latency;
/// nobody blocks).
pub fn task_scope() -> TaskGuard {
    TaskGuard {
        prev: SCHEDULED_TASK.with(|t| t.replace(true)),
    }
}

impl Drop for TaskGuard {
    fn drop(&mut self) {
        SCHEDULED_TASK.with(|t| t.set(self.prev));
    }
}

/// `true` while the current thread is inside a [`task_scope`].
pub fn in_scheduled_task() -> bool {
    SCHEDULED_TASK.with(Cell::get)
}

/// Record the typed outcome of the attempt the current thread just made
/// (called by the API layer at the acquire decision).
pub fn record_attempt(family: &'static str, outcome: SpanOutcome) {
    LAST_ATTEMPT.with(|a| a.set(Some(Attempt { family, outcome })));
}

/// Upgrade the last attempt's outcome to [`SpanOutcome::StaleCursor`]
/// (the grant happened, then pagination found the cursor stale). A no-op
/// when no attempt is pending.
pub fn mark_stale_cursor() {
    LAST_ATTEMPT.with(|a| {
        if let Some(mut at) = a.get() {
            at.outcome = SpanOutcome::StaleCursor;
            a.set(Some(at));
        }
    });
}

/// Take (and clear) the last recorded attempt. Clearing on read keeps a
/// failed pre-acquire path (e.g. an unknown instance) from replaying the
/// previous request's outcome.
pub fn take_attempt() -> Option<Attempt> {
    LAST_ATTEMPT.with(Cell::take)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_scope_nests_and_restores() {
        assert_eq!(current_worker(), None);
        {
            let _a = worker_scope(3);
            assert_eq!(current_worker(), Some(3));
            {
                let _b = worker_scope(7);
                assert_eq!(current_worker(), Some(7));
            }
            assert_eq!(current_worker(), Some(3));
        }
        assert_eq!(current_worker(), None);
    }

    #[test]
    fn span_scope_nests_and_restores() {
        assert_eq!(current_span(), None);
        let _a = span_scope(1);
        {
            let _b = span_scope(2);
            assert_eq!(current_span(), Some(2));
        }
        assert_eq!(current_span(), Some(1));
    }

    #[test]
    fn task_scope_nests_and_restores() {
        assert!(!in_scheduled_task());
        {
            let _a = task_scope();
            assert!(in_scheduled_task());
            {
                let _b = task_scope();
                assert!(in_scheduled_task());
            }
            assert!(in_scheduled_task());
        }
        assert!(!in_scheduled_task());
    }

    #[test]
    fn attempts_are_taken_once() {
        record_attempt("search", SpanOutcome::Granted);
        let a = take_attempt().unwrap();
        assert_eq!(a.family, "search");
        assert_eq!(a.outcome, SpanOutcome::Granted);
        assert!(take_attempt().is_none());
    }

    #[test]
    fn stale_cursor_upgrades_the_pending_attempt() {
        mark_stale_cursor(); // no pending attempt: no-op
        assert!(take_attempt().is_none());
        record_attempt("follows", SpanOutcome::Granted);
        mark_stale_cursor();
        let a = take_attempt().unwrap();
        assert_eq!(a.outcome, SpanOutcome::StaleCursor);
        assert_eq!(a.family, "follows");
    }

    #[test]
    fn outcome_labels_are_stable() {
        assert_eq!(SpanOutcome::Granted.label(), "granted");
        assert_eq!(
            SpanOutcome::RateLimited { storm: true }.label(),
            "rate_limited(storm)"
        );
        assert_eq!(
            SpanOutcome::Fault(FaultKind::Outage).label(),
            "fault(outage)"
        );
        assert_eq!(SpanOutcome::StaleCursor.label(), "stale_cursor");
    }
}

//! Deterministic run reports: a diffable text artifact (plus an HTML
//! twin) describing what a crawl did and where its virtual time went.
//!
//! The report is split into two explicitly fenced sections mirroring the
//! registry's telemetry tiers:
//!
//! * the **Data tier** section contains only worker-count-invariant
//!   content — the scenario, the resolved chaos plan, dataset facts,
//!   coverage gaps, chaos-impact counters and the deterministic metric
//!   snapshot. CI byte-compares this section across `workers=1` and
//!   `workers=8`.
//! * the **Sched tier** section holds everything scheduling-dependent:
//!   the phase timeline, the per-phase wait-attribution table, worker
//!   utilization, the slowest request chains and the critical path.
//!
//! Rendering is pure string formatting over registry snapshots — no
//! clocks, no RNG, no environment reads — so the same registry state
//! always renders the same bytes.

use std::fmt::Write as _;

use crate::profile::{phase_profiles, PhaseProfile};
use crate::svg::xml_escape;
use crate::{Registry, Tier, WaitCause};

/// Fence opening the worker-count-invariant report section.
pub const DATA_FENCE_BEGIN: &str = "=== BEGIN DATA TIER (byte-identical across worker counts) ===";
/// Fence closing the worker-count-invariant report section.
pub const DATA_FENCE_END: &str = "=== END DATA TIER ===";
/// Fence opening the scheduling-dependent report section.
pub const SCHED_FENCE_BEGIN: &str = "=== BEGIN SCHED TIER (scheduling-dependent) ===";
/// Fence closing the scheduling-dependent report section.
pub const SCHED_FENCE_END: &str = "=== END SCHED TIER ===";

/// The text fences delimiting a section of the given tier.
pub fn tier_fences(tier: Tier) -> (&'static str, &'static str) {
    match tier {
        Tier::Data => (DATA_FENCE_BEGIN, DATA_FENCE_END),
        Tier::Sched => (SCHED_FENCE_BEGIN, SCHED_FENCE_END),
    }
}

/// Human heading for a section of the given tier (shared by the HTML
/// report and the dashboard).
pub fn tier_heading(tier: Tier) -> &'static str {
    match tier {
        Tier::Data => "Data tier — byte-identical across worker counts",
        Tier::Sched => "Sched tier — scheduling-dependent",
    }
}

/// One rendered report section. The section model is the unit every
/// renderer shares: `to_text` wraps each body in its tier's literal
/// fences, `to_html` wraps it in a tier-classed `<section>`, and the
/// dashboard embeds the same bodies inside its own fenced regions.
#[derive(Clone, Debug)]
pub struct Section {
    /// Which determinism contract the body lives under.
    pub tier: Tier,
    /// Display heading (derived from the tier).
    pub heading: &'static str,
    /// The rendered body text.
    pub body: String,
}

/// Caller-supplied context for a report. Everything in `title`,
/// `scenario`, `chaos_plan`, `facts` and `coverage` lands in the Data
/// fence and must therefore be worker-count invariant; `sched_context`
/// (worker counts, host notes…) lands in the Sched fence.
#[derive(Clone, Debug)]
pub struct ReportMeta {
    /// Report heading (keep worker counts out of it).
    pub title: String,
    /// Chaos scenario name (`"calm"`, `"rate-limit-storm"`, …).
    pub scenario: String,
    /// Resolved chaos-plan description (multi-line; empty for none).
    pub chaos_plan: String,
    /// Worker-count-invariant key/value facts about the run.
    pub facts: Vec<(String, String)>,
    /// Coverage-gap lines (from `CoverageReport`), already formatted.
    pub coverage: Vec<String>,
    /// Scheduling-dependent key/value context (worker count etc.).
    pub sched_context: Vec<(String, String)>,
    /// How many slowest chains / critical-path segments to show.
    pub top_k: usize,
}

impl Default for ReportMeta {
    fn default() -> Self {
        ReportMeta {
            title: "flock run report".to_string(),
            scenario: "calm".to_string(),
            chaos_plan: String::new(),
            facts: Vec::new(),
            coverage: Vec::new(),
            sched_context: Vec::new(),
            top_k: 5,
        }
    }
}

/// A fully rendered run report: an ordered list of tier-tagged sections.
#[derive(Clone, Debug)]
pub struct RunReport {
    title: String,
    sections: Vec<Section>,
}

impl RunReport {
    /// Render the registry's current state under the given context.
    pub fn build(reg: &Registry, meta: &ReportMeta) -> RunReport {
        let profiles = phase_profiles(reg);
        RunReport {
            title: meta.title.clone(),
            sections: vec![
                Section {
                    tier: Tier::Data,
                    heading: tier_heading(Tier::Data),
                    body: render_data(reg, meta),
                },
                Section {
                    tier: Tier::Sched,
                    heading: tier_heading(Tier::Sched),
                    body: render_sched(reg, meta, &profiles),
                },
            ],
        }
    }

    /// The report title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Every section, in render order.
    pub fn sections(&self) -> &[Section] {
        &self.sections
    }

    fn section_body(&self, tier: Tier) -> &str {
        self.sections
            .iter()
            .find(|s| s.tier == tier)
            .map_or("", |s| s.body.as_str())
    }

    /// The Data-tier section body (between the fences) — the bytes CI
    /// compares across worker counts.
    pub fn data_section(&self) -> &str {
        self.section_body(Tier::Data)
    }

    /// The Sched-tier section body.
    pub fn sched_section(&self) -> &str {
        self.section_body(Tier::Sched)
    }

    /// Plain-text rendering: every section between its tier's literal
    /// fences.
    pub fn to_text(&self) -> String {
        let mut out = self.title.clone();
        for s in &self.sections {
            let (begin, end) = tier_fences(s.tier);
            let _ = write!(out, "\n\n{begin}\n{body}{end}", body = s.body);
        }
        out.push('\n');
        out
    }

    /// HTML rendering: the same sections inside visually distinct,
    /// tier-classed `<section>` blocks.
    pub fn to_html(&self) -> String {
        let mut body = String::new();
        for s in &self.sections {
            let class = match s.tier {
                Tier::Data => "data",
                Tier::Sched => "sched",
            };
            let _ = write!(
                body,
                "<section class=\"{class}\">\n<h2>{heading}</h2>\n<pre>{pre}</pre>\n</section>\n",
                heading = xml_escape(s.heading),
                pre = xml_escape(&s.body),
            );
        }
        format!(
            concat!(
                "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n",
                "<title>{title}</title>\n",
                "<style>\n",
                "body{{font-family:ui-monospace,monospace;margin:2em;max-width:72em}}\n",
                "section{{border:1px solid #999;border-radius:4px;margin:1em 0;padding:0.5em 1em}}\n",
                "section.data{{background:#eef4ee}}\n",
                "section.sched{{background:#f6f2e8}}\n",
                "h2{{font-size:1em}}\n",
                "pre{{white-space:pre-wrap;margin:0.5em 0}}\n",
                "</style>\n</head>\n<body>\n<h1>{title}</h1>\n",
                "{body}</body>\n</html>\n"
            ),
            title = xml_escape(&self.title),
            body = body,
        )
    }
}

fn render_data(reg: &Registry, meta: &ReportMeta) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "scenario: {}", meta.scenario);
    if meta.chaos_plan.trim().is_empty() {
        let _ = writeln!(out, "chaos plan: (none)");
    } else {
        let _ = writeln!(out, "chaos plan:");
        for line in meta.chaos_plan.trim_end().lines() {
            let _ = writeln!(out, "  {line}");
        }
    }

    if !meta.facts.is_empty() {
        let _ = writeln!(out, "\nrun facts:");
        for (k, v) in &meta.facts {
            let _ = writeln!(out, "  {k}: {v}");
        }
    }

    let _ = writeln!(out, "\ncoverage gaps: {}", meta.coverage.len());
    for line in &meta.coverage {
        let _ = writeln!(out, "  {line}");
    }

    // Chaos impact: the deterministic-tier injected-fault counters. The
    // *rejection*/latency side of chaos is scheduling-dependent and lives
    // in the full exports, not here.
    let chaos: Vec<(String, u64)> = reg
        .counters()
        .into_iter()
        .filter(|(name, tier, _)| *tier == Tier::Data && name.contains(".chaos."))
        .map(|(name, _, v)| (name, v))
        .collect();
    let _ = writeln!(out, "\nchaos impact (deterministic tier):");
    if chaos.is_empty() {
        let _ = writeln!(out, "  (no chaos counters registered)");
    } else {
        for (name, v) in chaos {
            let _ = writeln!(out, "  {name} = {v}");
        }
    }

    let _ = writeln!(out, "\ndeterministic-tier metrics:");
    for line in reg.snapshot().lines() {
        let _ = writeln!(out, "  {line}");
    }
    out
}

fn render_sched(reg: &Registry, meta: &ReportMeta, profiles: &[PhaseProfile]) -> String {
    let mut out = String::new();
    if !meta.sched_context.is_empty() {
        let _ = writeln!(out, "run context:");
        for (k, v) in &meta.sched_context {
            let _ = writeln!(out, "  {k}: {v}");
        }
        out.push('\n');
    }

    let _ = writeln!(out, "phase timeline (virtual seconds):");
    for p in profiles {
        let _ = writeln!(
            out,
            "  {:<28} {:>10} .. {:<10} ({}s)",
            p.name,
            p.start_secs,
            p.end_secs,
            p.duration_secs()
        );
    }

    // Attribution only for phases that actually issued requests or
    // charged waits — the outer "crawl" envelope and empty phases would
    // otherwise read as giant unattributed gaps.
    let _ = writeln!(
        out,
        "\nwait attribution (virtual seconds; buckets + work = duration):"
    );
    let mut totals = [0u64; WaitCause::COUNT];
    for p in profiles
        .iter()
        .filter(|p| p.requests > 0 || p.wait_total_secs() > 0)
    {
        let mut line = format!("  {:<28} duration={:<8}", p.name, p.duration_secs());
        for cause in WaitCause::ALL {
            let secs = p.waits[cause.index()];
            totals[cause.index()] += secs;
            let _ = write!(line, " {}={}", cause.label(), secs);
        }
        let _ = write!(line, " work={}", p.work_secs());
        let _ = writeln!(out, "{line}");
    }
    let mut tline = String::from("  totals:");
    for cause in WaitCause::ALL {
        let _ = write!(tline, " {}={}", cause.label(), totals[cause.index()]);
    }
    let _ = writeln!(out, "{tline}");
    let injected_latency: u64 = reg
        .counters()
        .into_iter()
        .filter(|(name, _, _)| name.ends_with(".chaos.latency_micros"))
        .map(|(_, _, v)| v)
        .sum();
    let _ = writeln!(
        out,
        "  injected latency (wall-clock, outside virtual time): {injected_latency}us"
    );

    let _ = writeln!(out, "\nper-worker utilization:");
    for p in profiles.iter().filter(|p| p.requests > 0) {
        let mut line = format!("  {:<28}", p.name);
        for (slot, load) in &p.workers {
            let _ = write!(
                line,
                " w{slot}[req={} att={} wait={}s]",
                load.requests, load.attempts, load.wait_secs
            );
        }
        let _ = writeln!(out, "{line}");
    }

    let _ = writeln!(out, "\ntop {} slowest request chains:", meta.top_k);
    let mut chains: Vec<_> = profiles.iter().flat_map(|p| p.slowest.iter()).collect();
    chains.sort_by(|a, b| {
        b.duration_secs()
            .cmp(&a.duration_secs())
            .then(a.span_id.cmp(&b.span_id))
    });
    for (i, c) in chains.iter().take(meta.top_k).enumerate() {
        let worker = c.worker.map_or("-".to_string(), |w| w.to_string());
        let _ = writeln!(
            out,
            "  {:>2}. [{}] {} — {}s, {} attempts, {}, worker {}",
            i + 1,
            c.phase,
            c.label,
            c.duration_secs(),
            c.attempts,
            c.outcome,
            worker
        );
    }
    // Truncation is never silent: ranked-but-unshown chains get an
    // explicit elision line, and chains lost to span-ring overflow are
    // surfaced from the flock.obs.spans.dropped counter.
    let chains_elided = chains.len().saturating_sub(meta.top_k);
    if chains_elided > 0 {
        let _ = writeln!(out, "  (+{chains_elided} more)");
    }
    let spans_dropped = reg
        .counter_value("flock.obs.spans.dropped")
        .unwrap_or_default();
    if spans_dropped > 0 {
        let _ = writeln!(
            out,
            "  (+{spans_dropped} dropped: span ring overflow, see flock.obs.spans.dropped)"
        );
    }

    let _ = writeln!(out, "\ncritical path (spans that advanced the clock):");
    for p in profiles.iter().filter(|p| !p.critical_path.is_empty()) {
        let shown = p.critical_path.iter().take(meta.top_k);
        let elided = p.critical_path.len().saturating_sub(meta.top_k);
        for seg in shown {
            let worker = seg.worker.map_or("-".to_string(), |w| w.to_string());
            let _ = writeln!(
                out,
                "  [{}] t={} +{}s {} (worker {})",
                p.name, seg.start_secs, seg.advance_secs, seg.label, worker
            );
        }
        if elided > 0 {
            let _ = writeln!(out, "  [{}] (+{elided} more)", p.name);
        }
    }
    if spans_dropped > 0 {
        let _ = writeln!(
            out,
            "  (+{spans_dropped} dropped: span ring overflow, see flock.obs.spans.dropped)"
        );
    }

    let _ = writeln!(
        out,
        "\naccounting: spans={} (dropped {}), events={} (dropped {})",
        reg.span_count(),
        reg.spans_dropped(),
        reg.event_count(),
        reg.events_dropped()
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::SpanOutcome;
    use crate::Tier;

    fn sample_registry() -> Registry {
        let reg = Registry::new();
        reg.counter("flock.apis.follows.granted", Tier::Data).add(2);
        reg.counter("flock.apis.follows.chaos.storms", Tier::Data)
            .add(1);
        reg.counter("flock.apis.chaos.latency_micros", Tier::Sched)
            .add(250);
        reg.phase_start(0, "expand.followees");
        let r = reg.span_begin("expand.followees", "following:1", None, Some(0), 0);
        reg.span_attempt(
            r,
            "expand.followees",
            "following:1",
            Some(0),
            Some("follows"),
            SpanOutcome::RateLimited { storm: true },
            0,
            0,
        );
        reg.attribute_wait(r, "expand.followees", WaitCause::RetryAfterStorm, 900);
        reg.span_end(r, 900, SpanOutcome::Granted);
        reg.phase_end(900, "expand.followees");
        reg
    }

    fn sample_meta() -> ReportMeta {
        ReportMeta {
            title: "flock run report — rate-limit-storm".to_string(),
            scenario: "rate-limit-storm".to_string(),
            chaos_plan: "retry-after storm on follows\nrate 0.30".to_string(),
            facts: vec![("matched users".to_string(), "12".to_string())],
            coverage: vec!["expand.followees: 1".to_string()],
            sched_context: vec![("workers".to_string(), "8".to_string())],
            top_k: 5,
        }
    }

    #[test]
    fn text_report_has_both_fences_in_order() {
        let report = RunReport::build(&sample_registry(), &sample_meta());
        let text = report.to_text();
        let db = text.find(DATA_FENCE_BEGIN).unwrap();
        let de = text.find(DATA_FENCE_END).unwrap();
        let sb = text.find(SCHED_FENCE_BEGIN).unwrap();
        let se = text.find(SCHED_FENCE_END).unwrap();
        assert!(db < de && de < sb && sb < se);
    }

    #[test]
    fn data_section_carries_facts_and_chaos_impact_not_workers() {
        let report = RunReport::build(&sample_registry(), &sample_meta());
        let data = report.data_section();
        assert!(data.contains("scenario: rate-limit-storm"));
        assert!(data.contains("retry-after storm on follows"));
        assert!(data.contains("matched users: 12"));
        assert!(data.contains("coverage gaps: 1"));
        assert!(data.contains("flock.apis.follows.chaos.storms = 1"));
        assert!(data.contains("counter flock.apis.follows.granted 2"));
        // Worker context must stay out of the byte-compared section.
        assert!(!data.contains("workers"));
    }

    #[test]
    fn sched_section_attributes_waits_and_ranks_chains() {
        let report = RunReport::build(&sample_registry(), &sample_meta());
        let sched = report.sched_section();
        assert!(sched.contains("workers: 8"));
        assert!(sched.contains("retry_after_storm=900"));
        assert!(sched.contains("work=0"));
        assert!(sched.contains("injected latency (wall-clock, outside virtual time): 250us"));
        assert!(sched.contains("following:1 — 900s, 1 attempts, granted, worker 0"));
        assert!(sched.contains("t=0 +900s following:1"));
        assert!(sched.contains("accounting: spans=2 (dropped 0)"));
    }

    #[test]
    fn truncated_chain_list_prints_an_explicit_elision_line() {
        let reg = sample_registry();
        // Four more single-attempt requests: 5 chains total, top_k = 2.
        for i in 2..6 {
            let label = format!("following:{i}");
            let r = reg.span_begin("expand.followees", &label, None, Some(0), 900);
            reg.span_end(r, 900, SpanOutcome::Granted);
        }
        let mut meta = sample_meta();
        meta.top_k = 2;
        let sched = RunReport::build(&reg, &meta).sched_section().to_string();
        assert!(sched.contains("top 2 slowest request chains"));
        assert!(
            sched.contains("  (+3 more)"),
            "missing elision line:\n{sched}"
        );
    }

    #[test]
    fn span_ring_overflow_prints_a_dropped_line_from_the_counter() {
        let reg = Registry::with_capacities(16, 2);
        reg.phase_start(0, "expand.followees");
        for i in 0..5 {
            let label = format!("following:{i}");
            let r = reg.span_begin("expand.followees", &label, None, Some(0), 0);
            reg.span_end(r, 0, SpanOutcome::Granted);
        }
        reg.phase_end(0, "expand.followees");
        assert!(reg.spans_dropped() > 0);
        let sched = RunReport::build(&reg, &sample_meta())
            .sched_section()
            .to_string();
        let expected = format!(
            "(+{} dropped: span ring overflow, see flock.obs.spans.dropped)",
            reg.spans_dropped()
        );
        assert!(sched.contains(&expected), "missing dropped line:\n{sched}");
    }

    #[test]
    fn section_model_mirrors_the_accessors() {
        let report = RunReport::build(&sample_registry(), &sample_meta());
        let sections = report.sections();
        assert_eq!(sections.len(), 2);
        assert_eq!(sections[0].tier, Tier::Data);
        assert_eq!(sections[0].body, report.data_section());
        assert_eq!(sections[1].tier, Tier::Sched);
        assert_eq!(sections[1].body, report.sched_section());
        let (begin, end) = tier_fences(Tier::Data);
        assert_eq!(begin, DATA_FENCE_BEGIN);
        assert_eq!(end, DATA_FENCE_END);
    }

    #[test]
    fn rendering_is_deterministic() {
        let a = RunReport::build(&sample_registry(), &sample_meta()).to_text();
        let b = RunReport::build(&sample_registry(), &sample_meta()).to_text();
        assert_eq!(a, b);
    }

    #[test]
    fn html_escapes_and_mirrors_sections() {
        let mut meta = sample_meta();
        meta.title = "report <&> \"quoted\"".to_string();
        let report = RunReport::build(&sample_registry(), &meta);
        let html = report.to_html();
        assert!(html.contains("report &lt;&amp;&gt; &quot;quoted&quot;"));
        assert!(html.contains("Data tier — byte-identical across worker counts"));
        assert!(html.contains("Sched tier — scheduling-dependent"));
        assert!(html.contains("scenario: rate-limit-storm"));
        assert!(!html.contains("<script"));
    }
}

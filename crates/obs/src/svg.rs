//! Dependency-free SVG primitives with deterministic geometry.
//!
//! The run dashboard ([`crate::dashboard`]) inherits the workspace's
//! two-tier determinism contract: every Data-tier pixel must be
//! byte-identical across worker counts and task widths. That rules out
//! the default `f64` `Display` path — `format!("{}", x)` picks the
//! shortest round-trippable decimal, so an ulp of drift anywhere in the
//! geometry pipeline changes the rendered bytes. Everything here
//! therefore formats through [`fmt_fixed`]: coordinates are computed in
//! `f64` (IEEE arithmetic is a pure function of its inputs) and then
//! snapped to a fixed number of decimals before they become text.
//!
//! Elements are built as a tree ([`SvgElement`]) rather than by string
//! concatenation, so rendered output is well-formed by construction:
//! tags balance because the tree closes them, and every attribute value
//! and text node routes through [`xml_escape`]. The property tests in
//! `crates/obs/tests/svg.rs` hold the module to that.

use std::fmt::Write as _;

/// Escape a string for use inside XML/HTML text nodes and attribute
/// values (`& < > " '`).
pub fn xml_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&#39;"),
            c => out.push(c),
        }
    }
    out
}

/// Render `v` with exactly `decimals` fractional digits, rounding half
/// away from zero. Non-finite input renders as zero; magnitudes beyond
/// what fits a `u64` after scaling saturate. Unlike `{:.2}` formatting
/// this never falls back to scientific notation, so the output shape is
/// stable for any input.
pub fn fmt_fixed(v: f64, decimals: u32) -> String {
    let decimals = decimals.min(9);
    let scale = 10u64.pow(decimals);
    let finite = if v.is_finite() { v } else { 0.0 };
    let scaled_f = (finite.abs() * scale as f64).round();
    let scaled = if scaled_f >= u64::MAX as f64 {
        u64::MAX
    } else {
        scaled_f as u64
    };
    let sign = if finite < 0.0 && scaled > 0 { "-" } else { "" };
    let whole = scaled / scale;
    if decimals == 0 {
        format!("{sign}{whole}")
    } else {
        let frac = scaled % scale;
        format!("{sign}{whole}.{frac:0>width$}", width = decimals as usize)
    }
}

/// A node in an SVG tree: a child element or an escaped text run.
#[derive(Clone, Debug)]
pub enum SvgNode {
    /// Nested element.
    Elem(SvgElement),
    /// Text content (escaped at render time).
    Text(String),
}

/// An SVG element under construction. Tag and attribute *names* are
/// `&'static str` supplied by chart code and trusted; attribute *values*
/// and text content are escaped on render.
#[derive(Clone, Debug)]
pub struct SvgElement {
    name: &'static str,
    attrs: Vec<(&'static str, String)>,
    children: Vec<SvgNode>,
}

impl SvgElement {
    /// Start a new element.
    pub fn new(name: &'static str) -> SvgElement {
        SvgElement {
            name,
            attrs: Vec::new(),
            children: Vec::new(),
        }
    }

    /// Add a string attribute.
    pub fn attr(mut self, key: &'static str, value: impl Into<String>) -> SvgElement {
        self.attrs.push((key, value.into()));
        self
    }

    /// Add a numeric attribute, formatted with two fixed decimals.
    pub fn num_attr(self, key: &'static str, value: f64) -> SvgElement {
        self.attr(key, fmt_fixed(value, 2))
    }

    /// Append a child element.
    pub fn child(mut self, el: SvgElement) -> SvgElement {
        self.children.push(SvgNode::Elem(el));
        self
    }

    /// Append a text node.
    pub fn text(mut self, content: &str) -> SvgElement {
        self.children.push(SvgNode::Text(content.to_string()));
        self
    }

    /// Render the element (and its subtree) as one line of markup.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        out.push('<');
        out.push_str(self.name);
        for (k, v) in &self.attrs {
            let _ = write!(out, " {}=\"{}\"", k, xml_escape(v));
        }
        if self.children.is_empty() {
            out.push_str("/>");
            return;
        }
        out.push('>');
        for c in &self.children {
            match c {
                SvgNode::Elem(e) => e.render_into(out),
                SvgNode::Text(t) => out.push_str(&xml_escape(t)),
            }
        }
        let _ = write!(out, "</{}>", self.name);
    }
}

/// An `<svg>` root with explicit pixel dimensions and a matching viewBox.
pub fn svg_root(width: f64, height: f64) -> SvgElement {
    SvgElement::new("svg")
        .attr("xmlns", "http://www.w3.org/2000/svg")
        .num_attr("width", width)
        .num_attr("height", height)
        .attr(
            "viewBox",
            format!("0 0 {} {}", fmt_fixed(width, 2), fmt_fixed(height, 2)),
        )
}

/// A filled rectangle.
pub fn rect(x: f64, y: f64, w: f64, h: f64, fill: &str) -> SvgElement {
    SvgElement::new("rect")
        .num_attr("x", x)
        .num_attr("y", y)
        .num_attr("width", w)
        .num_attr("height", h)
        .attr("fill", fill)
}

/// A text label. `anchor` is an SVG `text-anchor` value.
pub fn label(x: f64, y: f64, size: f64, anchor: &str, fill: &str, content: &str) -> SvgElement {
    SvgElement::new("text")
        .num_attr("x", x)
        .num_attr("y", y)
        .attr("font-size", fmt_fixed(size, 2))
        .attr("font-family", "ui-monospace,monospace")
        .attr("text-anchor", anchor.to_string())
        .attr("fill", fill.to_string())
        .text(content)
}

/// A stroked polyline through `points`.
pub fn polyline(points: &[(f64, f64)], stroke: &str, stroke_width: f64) -> SvgElement {
    let mut d = String::new();
    for (i, (x, y)) in points.iter().enumerate() {
        if i > 0 {
            d.push(' ');
        }
        let _ = write!(d, "{},{}", fmt_fixed(*x, 2), fmt_fixed(*y, 2));
    }
    SvgElement::new("polyline")
        .attr("points", d)
        .attr("fill", "none")
        .attr("stroke", stroke.to_string())
        .attr("stroke-width", fmt_fixed(stroke_width, 2))
}

/// A filled circle marker.
pub fn circle(cx: f64, cy: f64, r: f64, fill: &str) -> SvgElement {
    SvgElement::new("circle")
        .num_attr("cx", cx)
        .num_attr("cy", cy)
        .num_attr("r", r)
        .attr("fill", fill)
}

/// Sparkline layout parameters.
#[derive(Clone, Copy, Debug)]
pub struct SparkSpec {
    /// Total width in pixels.
    pub width: f64,
    /// Total height in pixels.
    pub height: f64,
    /// Inner padding on every side.
    pub pad: f64,
    /// Line colour.
    pub stroke: &'static str,
}

impl Default for SparkSpec {
    fn default() -> Self {
        SparkSpec {
            width: 220.0,
            height: 48.0,
            pad: 4.0,
            stroke: "#2563eb",
        }
    }
}

/// Map a value series onto sparkline pixel coordinates (x left→right,
/// y down-positive). A single point centres horizontally; an all-equal
/// series (zero range) sits on the vertical midline rather than
/// dividing by zero.
pub fn spark_geometry(values: &[f64], spec: &SparkSpec) -> Vec<(f64, f64)> {
    if values.is_empty() {
        return Vec::new();
    }
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for v in values {
        lo = lo.min(*v);
        hi = hi.max(*v);
    }
    let range = hi - lo;
    let inner_w = spec.width - 2.0 * spec.pad;
    let inner_h = spec.height - 2.0 * spec.pad;
    let n = values.len();
    values
        .iter()
        .enumerate()
        .map(|(i, v)| {
            let x = if n == 1 {
                spec.width / 2.0
            } else {
                spec.pad + inner_w * (i as f64) / ((n - 1) as f64)
            };
            let y = if range > 0.0 {
                spec.pad + inner_h * (1.0 - (v - lo) / range)
            } else {
                spec.height / 2.0
            };
            (x, y)
        })
        .collect()
}

/// Render a sparkline `<svg>` for `values`. Empty input renders a
/// "no data" placeholder; a single point renders as a dot; an all-equal
/// series renders as a flat midline. The last point always carries a
/// small marker dot.
pub fn sparkline(values: &[f64], spec: &SparkSpec) -> SvgElement {
    let root = svg_root(spec.width, spec.height).attr("class", "spark");
    let points = spark_geometry(values, spec);
    match points.as_slice() {
        [] => root.child(label(
            spec.width / 2.0,
            spec.height / 2.0 + 3.0,
            10.0,
            "middle",
            "#6b7280",
            "no data",
        )),
        [only] => root.child(circle(only.0, only.1, 2.5, spec.stroke)),
        many => {
            let last = many[many.len() - 1];
            root.child(polyline(many, spec.stroke, 1.5)).child(circle(
                last.0,
                last.1,
                2.0,
                spec.stroke,
            ))
        }
    }
}

/// Trend direction of a series, per the usual sparkline convention:
/// last-vs-first compared against `stability` × the value range.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Trend {
    /// Values increasing.
    Rising,
    /// Values decreasing.
    Falling,
    /// Change within the stability threshold (or degenerate input).
    Stable,
}

impl Trend {
    /// Arrow glyph for captions.
    pub fn indicator(self) -> &'static str {
        match self {
            Trend::Rising => "↑",
            Trend::Falling => "↓",
            Trend::Stable => "→",
        }
    }
}

/// Classify a series' direction. `stability` is the fraction of the
/// min..max range under which first→last movement counts as stable
/// (0.05 is the conventional default).
pub fn trend_of(values: &[f64], stability: f64) -> Trend {
    let (Some(first), Some(last)) = (values.first(), values.last()) else {
        return Trend::Stable;
    };
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for v in values {
        lo = lo.min(*v);
        hi = hi.max(*v);
    }
    let range = hi - lo;
    let delta = last - first;
    if range <= 0.0 || delta.abs() <= stability * range {
        Trend::Stable
    } else if delta > 0.0 {
        Trend::Rising
    } else {
        Trend::Falling
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_fixed_is_shape_stable() {
        assert_eq!(fmt_fixed(1.5, 2), "1.50");
        assert_eq!(fmt_fixed(-0.005, 2), "-0.01");
        assert_eq!(fmt_fixed(0.0, 2), "0.00");
        assert_eq!(fmt_fixed(-0.0004, 2), "0.00"); // no negative zero
        assert_eq!(fmt_fixed(1234.0, 0), "1234");
        assert_eq!(fmt_fixed(f64::NAN, 2), "0.00");
        assert_eq!(fmt_fixed(f64::INFINITY, 1), "0.0");
        assert_eq!(fmt_fixed(1e300, 2), "184467440737095516.15"); // saturates, never panics
    }

    #[test]
    fn geometry_handles_degenerate_series() {
        let spec = SparkSpec::default();
        assert!(spark_geometry(&[], &spec).is_empty());
        let single = spark_geometry(&[42.0], &spec);
        assert_eq!(single, vec![(spec.width / 2.0, spec.height / 2.0)]);
        let flat = spark_geometry(&[7.0, 7.0, 7.0], &spec);
        assert!(flat.iter().all(|(_, y)| *y == spec.height / 2.0));
        assert_eq!(flat[0].0, spec.pad);
        assert_eq!(flat[2].0, spec.width - spec.pad);
    }

    #[test]
    fn attributes_and_text_are_escaped() {
        let el = SvgElement::new("text")
            .attr("data-k", "a<b&\"c\"")
            .text("x < y & z");
        let rendered = el.render();
        assert_eq!(
            rendered,
            "<text data-k=\"a&lt;b&amp;&quot;c&quot;\">x &lt; y &amp; z</text>"
        );
    }

    #[test]
    fn trend_classification() {
        assert_eq!(trend_of(&[0.9, 0.5, 0.1], 0.05), Trend::Falling);
        assert_eq!(trend_of(&[0.1, 0.5, 0.9], 0.05), Trend::Rising);
        assert_eq!(trend_of(&[5.0, 9.0, 5.1], 0.05), Trend::Stable);
        assert_eq!(trend_of(&[3.0, 3.0], 0.05), Trend::Stable);
        assert_eq!(trend_of(&[], 0.05), Trend::Stable);
    }
}

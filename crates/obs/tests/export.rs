//! Exporter-correctness tests: everything `export_json` emits must parse
//! with the vendored `serde_json` shim, and `json_escape` must survive a
//! full encode→parse round trip for any string — control characters and
//! non-ASCII included. The exporters are hand-rolled string builders, so
//! these tests are the only thing standing between a stray unescaped byte
//! and a corrupt metrics artifact.

use flock_obs::{json_escape, Registry, SpanOutcome, Tier, WaitCause};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use serde::Value;

/// Build a registry exercising every slot kind, span/event machinery, and
/// the characters most likely to break a hand-written JSON encoder.
fn populated_registry() -> Registry {
    let reg = Registry::new();
    reg.counter("flock.test.requests", Tier::Data).add(41);
    let g = reg.gauge("flock.test.queue_depth", Tier::Sched);
    g.set(9);
    g.set(3);
    let h = reg.histogram(
        "flock.test.wait_secs",
        Tier::Data,
        &flock_obs::SECONDS_BOUNDS,
    );
    for v in [0, 1, 5, 40, 900, 3600] {
        h.record(v);
    }
    reg.event(
        7,
        "weird \"name\"\twith\ncontrol chars",
        "detail \\ é 中 🚀 \u{1}",
    );
    let span = reg.span_begin("discover", "search:\"quote\"", None, Some(0), 0);
    reg.attribute_wait(span, "discover", WaitCause::TokenBucket, 60);
    reg.span_end(span, 60, SpanOutcome::Granted);
    reg
}

/// Walk a parsed metrics map and return the entry names.
fn metric_names(tier: &Value) -> Vec<String> {
    match tier {
        Value::Map(pairs) => pairs.iter().map(|(k, _)| k.clone()).collect(),
        other => panic!("tier section should be a map, got {}", other.kind()),
    }
}

#[test]
fn export_json_parses_with_the_vendored_shim() {
    let reg = populated_registry();
    let doc = serde_json::parse_value(&reg.export_json()).expect("export_json must be valid JSON");

    // Both tier sections exist and hold the metrics we registered.
    let data = doc.get("deterministic").expect("deterministic section");
    assert!(metric_names(data).contains(&"flock.test.requests".to_string()));
    assert!(metric_names(data).contains(&"flock.test.wait_secs".to_string()));
    let sched = doc.get("scheduling").expect("scheduling section");
    assert!(metric_names(sched).contains(&"flock.test.queue_depth".to_string()));

    // Counter value survives the trip.
    let requests = data.get("flock.test.requests").expect("counter entry");
    assert_eq!(requests.get("kind"), Some(&Value::Str("counter".into())));
    assert_eq!(requests.get("value"), Some(&Value::U64(41)));

    // Histogram carries interpolated quantiles alongside raw buckets.
    let hist = data.get("flock.test.wait_secs").expect("histogram entry");
    assert_eq!(hist.get("count"), Some(&Value::U64(6)));
    for q in ["p50", "p95", "p99"] {
        assert!(
            matches!(hist.get(q), Some(Value::F64(v)) if *v >= 0.0),
            "histogram should expose {q}"
        );
    }
    assert!(matches!(hist.get("buckets"), Some(Value::Array(_))));

    // Span/event accounting sections are present and well-typed.
    let spans = doc.get("spans").expect("spans section");
    assert_eq!(spans.get("recorded"), Some(&Value::U64(1)));
    assert_eq!(spans.get("dropped"), Some(&Value::U64(0)));
    assert_eq!(doc.get("events_dropped"), Some(&Value::U64(0)));
    let Some(Value::Array(events)) = doc.get("events") else {
        panic!("events should be an array");
    };
    assert_eq!(events.len(), 1);
    assert_eq!(
        events[0].get("name"),
        Some(&Value::Str("weird \"name\"\twith\ncontrol chars".into()))
    );
    assert_eq!(
        events[0].get("detail"),
        Some(&Value::Str("detail \\ é 中 🚀 \u{1}".into()))
    );
}

#[test]
fn export_json_of_an_empty_registry_parses_too() {
    let doc = serde_json::parse_value(&Registry::new().export_json()).expect("empty export");
    assert!(matches!(doc.get("events"), Some(Value::Array(v)) if v.is_empty()));
}

/// Strategy: printable base text (the shim's `.` palette already mixes in
/// non-ASCII like `é`, `中` and `🚀`) plus explicit splice points for the
/// control characters the palette can never produce.
fn text_with_control_chars() -> impl Strategy<Value = String> {
    (".{0,40}", any::<u8>(), any::<u8>()).prop_map(|(base, a, b)| {
        let mut s = String::new();
        // Splice a control char (U+0000..=U+001F) at the front, one in the
        // middle, and the DEL byte at the end — every escaping branch of
        // json_escape (\n, \t, \uXXXX, backslash, quote) gets exercised.
        s.push(char::from(a % 0x20));
        let mid = base.chars().count() / 2;
        for (i, c) in base.chars().enumerate() {
            if i == mid {
                s.push(char::from(b % 0x20));
                s.push('"');
                s.push('\\');
            }
            s.push(c);
        }
        s.push('\u{7f}');
        s
    })
}

proptest! {
    #[test]
    fn json_escape_round_trips_through_the_parser(s in text_with_control_chars()) {
        let doc = format!("{{\"s\":\"{}\"}}", json_escape(&s));
        let parsed = serde_json::parse_value(&doc)
            .map_err(|e| TestCaseError::fail(format!("escaped doc rejected: {e}")))?;
        prop_assert_eq!(parsed.get("s"), Some(&Value::Str(s)));
    }

    #[test]
    fn json_escape_output_is_ascii_safe_for_control_chars(s in text_with_control_chars()) {
        let escaped = json_escape(&s);
        prop_assert!(
            !escaped.chars().any(|c| c < ' '),
            "raw control char leaked into {escaped:?}"
        );
        // Quotes and backslashes must only appear as escape sequences.
        let mut chars = escaped.chars().peekable();
        while let Some(c) = chars.next() {
            prop_assert_ne!(c, '"');
            if c == '\\' {
                let next = chars.next();
                prop_assert!(next.is_some(), "dangling backslash in {escaped:?}");
            }
        }
    }
}

//! SVG primitive tests: golden renders for the degenerate sparkline
//! inputs (empty, single point, all-equal values) and property tests
//! that anything the chart layer emits is well-formed markup — balanced
//! tags, quoted and XML-escaped attribute values, escaped text nodes.
//! The dashboard's determinism gate byte-compares rendered charts, so
//! the golden strings double as a canary for accidental geometry or
//! formatting drift.

use flock_obs::svg::{label, sparkline, svg_root, SparkSpec, SvgElement};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

// -------------------------------------------------------------------
// Golden renders
// -------------------------------------------------------------------

#[test]
fn golden_empty_series_renders_a_placeholder() {
    let svg = sparkline(&[], &SparkSpec::default()).render();
    assert_eq!(
        svg,
        concat!(
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"220.00\" height=\"48.00\" ",
            "viewBox=\"0 0 220.00 48.00\" class=\"spark\">",
            "<text x=\"110.00\" y=\"27.00\" font-size=\"10.00\" ",
            "font-family=\"ui-monospace,monospace\" text-anchor=\"middle\" ",
            "fill=\"#6b7280\">no data</text>",
            "</svg>"
        )
    );
}

#[test]
fn golden_single_point_renders_a_centred_dot() {
    let svg = sparkline(&[42.0], &SparkSpec::default()).render();
    assert_eq!(
        svg,
        concat!(
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"220.00\" height=\"48.00\" ",
            "viewBox=\"0 0 220.00 48.00\" class=\"spark\">",
            "<circle cx=\"110.00\" cy=\"24.00\" r=\"2.50\" fill=\"#2563eb\"/>",
            "</svg>"
        )
    );
}

#[test]
fn golden_all_equal_values_render_a_flat_midline() {
    // Zero range must land on the midline, not divide by zero.
    let svg = sparkline(&[7.0, 7.0, 7.0], &SparkSpec::default()).render();
    assert_eq!(
        svg,
        concat!(
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"220.00\" height=\"48.00\" ",
            "viewBox=\"0 0 220.00 48.00\" class=\"spark\">",
            "<polyline points=\"4.00,24.00 110.00,24.00 216.00,24.00\" fill=\"none\" ",
            "stroke=\"#2563eb\" stroke-width=\"1.50\"/>",
            "<circle cx=\"216.00\" cy=\"24.00\" r=\"2.00\" fill=\"#2563eb\"/>",
            "</svg>"
        )
    );
}

// -------------------------------------------------------------------
// Well-formedness checker (strict to this module's output dialect:
// every <, >, &, " and ' in content is escaped, attributes are always
// double-quoted)
// -------------------------------------------------------------------

const ENTITIES: [&str; 5] = ["&amp;", "&lt;", "&gt;", "&quot;", "&#39;"];

fn validate_entities(text: &str, ctx: &str) -> Result<(), String> {
    let mut rest = text;
    while let Some(pos) = rest.find('&') {
        let tail = &rest[pos..];
        if !ENTITIES.iter().any(|e| tail.starts_with(e)) {
            return Err(format!("raw '&' in {ctx}: {tail:?}"));
        }
        rest = &tail[1..];
    }
    if text.contains('<') || text.contains('>') {
        return Err(format!("raw angle bracket in {ctx}: {text:?}"));
    }
    Ok(())
}

fn validate_attrs(tag_body: &str) -> Result<(), String> {
    let mut rest = match tag_body.find(char::is_whitespace) {
        Some(p) => tag_body[p..].trim_start(),
        None => return Ok(()),
    };
    while !rest.is_empty() {
        let eq = rest
            .find('=')
            .ok_or_else(|| format!("attribute without value in {tag_body:?}"))?;
        let key = &rest[..eq];
        if key.is_empty() || key.contains(char::is_whitespace) || key.contains('"') {
            return Err(format!("malformed attribute name {key:?} in {tag_body:?}"));
        }
        let inner = rest[eq + 1..]
            .strip_prefix('"')
            .ok_or_else(|| format!("unquoted attribute value in {tag_body:?}"))?;
        let endq = inner
            .find('"')
            .ok_or_else(|| format!("unterminated attribute value in {tag_body:?}"))?;
        validate_entities(&inner[..endq], "attribute value")?;
        rest = inner[endq + 1..].trim_start();
    }
    Ok(())
}

/// Scan a rendered fragment: tags must balance, attribute values must be
/// double-quoted with escaped content, text nodes must only use the five
/// known entities.
fn check_well_formed(doc: &str) -> Result<(), String> {
    let mut stack: Vec<String> = Vec::new();
    let mut i = 0;
    while i < doc.len() {
        if doc[i..].starts_with('<') {
            let close = doc[i..]
                .find('>')
                .map(|p| p + i)
                .ok_or_else(|| format!("unterminated tag at byte {i}"))?;
            let tag = &doc[i + 1..close];
            if let Some(name) = tag.strip_prefix('/') {
                let top = stack
                    .pop()
                    .ok_or_else(|| format!("unmatched closing tag </{name}>"))?;
                if top != name {
                    return Err(format!("expected </{top}>, found </{name}>"));
                }
            } else {
                let body = tag.strip_suffix('/').unwrap_or(tag);
                let name = body
                    .split_whitespace()
                    .next()
                    .ok_or_else(|| format!("empty tag at byte {i}"))?;
                validate_attrs(body)?;
                if !tag.ends_with('/') {
                    stack.push(name.to_string());
                }
            }
            i = close + 1;
        } else {
            let next = doc[i..].find('<').map(|p| p + i).unwrap_or(doc.len());
            validate_entities(&doc[i..next], "text node")?;
            i = next;
        }
    }
    if stack.is_empty() {
        Ok(())
    } else {
        Err(format!("unclosed tags: {stack:?}"))
    }
}

#[test]
fn checker_rejects_broken_markup() {
    assert!(check_well_formed("<svg><rect/></svg>").is_ok());
    assert!(check_well_formed("<svg><text>a</svg>").is_err()); // mismatch
    assert!(check_well_formed("<svg>").is_err()); // unclosed
    assert!(check_well_formed("<svg>a & b</svg>").is_err()); // raw ampersand
    assert!(check_well_formed("<svg x=unquoted></svg>").is_err());
    assert!(check_well_formed("<svg x=\"a<b\"></svg>").is_err());
}

/// Hostile text: printable base (the shim's `.` palette mixes in
/// non-ASCII) with the five characters the escaper must handle spliced
/// through it.
fn hostile_text() -> impl Strategy<Value = String> {
    (".{0,24}", 0usize..5).prop_map(|(base, pick)| {
        let hostile = ['&', '<', '>', '"', '\''];
        let mut s = String::new();
        s.push(hostile[pick]);
        let mid = base.chars().count() / 2;
        for (i, c) in base.chars().enumerate() {
            if i == mid {
                s.push_str("<script>&\"'");
            }
            s.push(c);
        }
        s.push(hostile[(pick + 3) % hostile.len()]);
        s
    })
}

proptest! {
    #[test]
    fn generated_sparklines_are_well_formed(
        values in prop::collection::vec(-1.0e9f64..1.0e9f64, 0..24)
    ) {
        let svg = sparkline(&values, &SparkSpec::default()).render();
        if let Err(e) = check_well_formed(&svg) {
            return Err(TestCaseError::fail(format!("{e}\nin: {svg}")));
        }
    }

    #[test]
    fn hostile_labels_and_attributes_stay_escaped(
        text in hostile_text(),
        attr in hostile_text(),
        x in 0.0f64..800.0,
        y in 0.0f64..600.0,
    ) {
        let svg = svg_root(800.0, 600.0)
            .attr("data-hostile", attr)
            .child(label(x, y, 10.0, "middle", "#111827", &text))
            .child(SvgElement::new("g").child(label(0.0, 0.0, 8.0, "start", "#000", &text)))
            .render();
        if let Err(e) = check_well_formed(&svg) {
            return Err(TestCaseError::fail(format!("{e}\nin: {svg}")));
        }
    }
}

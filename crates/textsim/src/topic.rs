//! Discussion topics and their vocabularies.
//!
//! Figure 15 of the paper shows that migrated users discuss *diverse* topics
//! on Twitter (Entertainment, Celebrities, Politics, …) while Mastodon is
//! dominated by Fediverse/migration discussion. The simulator reproduces
//! this by drawing each post's topic from a platform-specific topic mix;
//! this module defines the topics and the words/hashtags each one emits.

use flock_core::Platform;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A discussion topic. The set mirrors the topic families named in §6.2 of
/// the paper, plus enough breadth to make Twitter's hashtag distribution
/// visibly more diverse than Mastodon's.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Topic {
    /// Fediverse meta-discussion (dominates Mastodon in Fig. 15).
    Fediverse,
    /// The migration itself (#TwitterMigration et al.).
    Migration,
    /// Music/TV (#NowPlaying, #BBC6Music).
    Entertainment,
    /// Celebrity chatter (#BarbaraHolzer in Fig. 15).
    Celebrities,
    /// Politics (#StandWithUkraine, #GeneralElectionNow).
    Politics,
    /// Technology and programming.
    Tech,
    /// Game development (mastodon.gamedev.place's niche, §5.2).
    GameDev,
    /// AI research (sigmoid.social's niche, §5.3).
    Ai,
    /// History (historians.social's niche, §5.3).
    History,
    /// Sports.
    Sports,
    /// Photography and art.
    Art,
    /// Science.
    Science,
    /// Food.
    Food,
    /// Daily-life smalltalk.
    Smalltalk,
}

impl Topic {
    /// Every topic, in a fixed order.
    pub const ALL: [Topic; 14] = [
        Topic::Fediverse,
        Topic::Migration,
        Topic::Entertainment,
        Topic::Celebrities,
        Topic::Politics,
        Topic::Tech,
        Topic::GameDev,
        Topic::Ai,
        Topic::History,
        Topic::Sports,
        Topic::Art,
        Topic::Science,
        Topic::Food,
        Topic::Smalltalk,
    ];

    /// Content words characteristic of the topic. Posts mix these with the
    /// general vocabulary.
    pub fn words(self) -> &'static [&'static str] {
        match self {
            Topic::Fediverse => &[
                "instance",
                "federation",
                "server",
                "admin",
                "timeline",
                "boost",
                "toot",
                "activitypub",
                "decentralized",
                "moderation",
                "defederate",
                "local",
                "remote",
                "fediverse",
                "interoperable",
                "opensource",
                "community",
                "onboarding",
                "webfinger",
                "handle",
                "mutuals",
                "verification",
                "hashtags",
                "filters",
                "blocklist",
                "selfhosted",
                "protocol",
                "migrate",
                "followers",
                "threads",
                "replies",
                "favourite",
                "contentwarning",
                "altext",
                "discoverability",
                "serverside",
                "uptime",
                "donations",
                "sysadmin",
                "registrations",
            ],
            Topic::Migration => &[
                "leaving",
                "moving",
                "account",
                "followers",
                "migration",
                "birdsite",
                "quit",
                "joined",
                "alternative",
                "platform",
                "deactivate",
                "goodbye",
                "welcome",
                "newhere",
                "introduction",
                "finding",
                "friends",
                "exodus",
                "bridges",
                "crossposting",
                "archive",
                "export",
                "verified",
                "checkmark",
                "timeline",
                "algorithm",
                "chronological",
                "adfree",
                "community",
                "culture",
                "etiquette",
                "learning",
                "curve",
                "signup",
                "invite",
                "wave",
                "newbies",
                "veterans",
                "settled",
                "staying",
            ],
            Topic::Entertainment => &[
                "album",
                "song",
                "playlist",
                "concert",
                "radio",
                "episode",
                "season",
                "movie",
                "trailer",
                "series",
                "band",
                "vinyl",
                "gig",
                "festival",
                "soundtrack",
                "remix",
                "premiere",
                "chart",
                "actor",
                "director",
                "screening",
                "binge",
                "finale",
                "cliffhanger",
                "spoilers",
                "cast",
                "script",
                "reboot",
                "sequel",
                "documentary",
                "animation",
                "karaoke",
                "setlist",
                "encore",
                "acoustic",
                "lyrics",
                "producer",
                "mixtape",
                "headliner",
                "ballad",
            ],
            Topic::Celebrities => &[
                "interview",
                "redcarpet",
                "gossip",
                "paparazzi",
                "scandal",
                "premiere",
                "fashion",
                "award",
                "nominee",
                "couple",
                "rumor",
                "stylist",
                "fans",
                "idol",
                "tabloid",
                "feud",
                "engagement",
                "divorce",
                "memoir",
                "lookalike",
                "entourage",
                "brand",
                "endorsement",
                "glamour",
                "diva",
                "heartthrob",
                "spotlight",
                "publicist",
                "meltdown",
                "comeback",
                "cameo",
                "bodyguard",
                "yacht",
                "mansion",
                "chart",
                "gala",
            ],
            Topic::Politics => &[
                "election",
                "parliament",
                "policy",
                "minister",
                "vote",
                "campaign",
                "reform",
                "sanctions",
                "ukraine",
                "protest",
                "budget",
                "coalition",
                "debate",
                "ballot",
                "referendum",
                "manifesto",
                "democracy",
                "legislation",
                "inflation",
                "healthcare",
                "immigration",
                "senate",
                "congress",
                "filibuster",
                "lobbying",
                "subsidy",
                "tariff",
                "diplomacy",
                "treaty",
                "summit",
                "veto",
                "amendment",
                "gerrymander",
                "turnout",
                "polling",
                "constituency",
                "austerity",
                "pension",
                "strike",
                "union",
            ],
            Topic::Tech => &[
                "rust",
                "compiler",
                "database",
                "kernel",
                "deploy",
                "container",
                "latency",
                "api",
                "framework",
                "typescript",
                "refactor",
                "benchmark",
                "release",
                "bug",
                "patch",
                "terminal",
                "protocol",
                "encryption",
                "microservice",
                "monolith",
                "regression",
                "linter",
                "runtime",
                "allocator",
                "scheduler",
                "firmware",
                "opensource",
                "maintainer",
                "pullrequest",
                "changelog",
                "dependency",
                "sandbox",
                "telemetry",
                "observability",
                "incident",
                "oncall",
                "rollback",
                "pipelines",
                "cache",
                "shard",
            ],
            Topic::GameDev => &[
                "shader",
                "engine",
                "sprite",
                "gamejam",
                "indiedev",
                "unity",
                "godot",
                "pixelart",
                "playtest",
                "roguelike",
                "devlog",
                "prototype",
                "voxel",
                "collision",
                "leveldesign",
                "tilemap",
                "raycast",
                "particles",
                "animation",
                "rigging",
                "soundtrack",
                "publisher",
                "steamdeck",
                "controller",
                "speedrun",
                "procedural",
                "dungeon",
                "quest",
                "inventory",
                "dialogue",
                "cutscene",
                "framerate",
                "optimization",
                "beta",
                "patchnotes",
                "modding",
            ],
            Topic::Ai => &[
                "model",
                "training",
                "dataset",
                "neural",
                "transformer",
                "inference",
                "gradient",
                "benchmark",
                "alignment",
                "embedding",
                "diffusion",
                "finetune",
                "paper",
                "arxiv",
                "overfitting",
                "tokenizer",
                "attention",
                "pretraining",
                "distillation",
                "quantization",
                "hallucination",
                "prompt",
                "reinforcement",
                "reward",
                "agents",
                "robotics",
                "vision",
                "segmentation",
                "classifier",
                "regression",
                "baseline",
                "ablation",
                "checkpoint",
                "epochs",
                "loss",
                "convergence",
            ],
            Topic::History => &[
                "archive",
                "medieval",
                "empire",
                "manuscript",
                "excavation",
                "dynasty",
                "archaeology",
                "treaty",
                "antiquity",
                "chronicle",
                "artifact",
                "century",
                "reign",
                "translation",
                "primary",
                "sources",
                "crusade",
                "plague",
                "renaissance",
                "monastery",
                "cartography",
                "numismatics",
                "epigraphy",
                "oralhistory",
                "colonial",
                "abolition",
                "suffrage",
                "industrial",
                "revolution",
                "dynastic",
                "siege",
                "fortress",
                "parchment",
                "scriptorium",
                "heraldry",
                "genealogy",
            ],
            Topic::Sports => &[
                "match",
                "goal",
                "league",
                "transfer",
                "coach",
                "penalty",
                "fixture",
                "stadium",
                "worldcup",
                "qualifier",
                "injury",
                "derby",
                "champions",
                "kit",
                "referee",
                "offside",
                "marathon",
                "sprint",
                "podium",
                "medal",
                "tournament",
                "bracket",
                "playoff",
                "overtime",
                "hattrick",
                "cleansheet",
                "relegation",
                "promotion",
                "scouting",
                "academy",
                "captain",
                "substitute",
                "freekick",
                "tiebreak",
                "grandslam",
                "paddock",
            ],
            Topic::Art => &[
                "sketch",
                "watercolor",
                "gallery",
                "exhibition",
                "portrait",
                "canvas",
                "commission",
                "illustration",
                "photography",
                "lens",
                "exposure",
                "print",
                "sculpture",
                "mural",
                "palette",
                "studio",
                "charcoal",
                "gouache",
                "linocut",
                "etching",
                "ceramics",
                "glaze",
                "kiln",
                "weaving",
                "textile",
                "collage",
                "perspective",
                "composition",
                "vignette",
                "monochrome",
                "bokeh",
                "aperture",
                "darkroom",
                "filmgrain",
                "curator",
                "biennale",
            ],
            Topic::Science => &[
                "experiment",
                "telescope",
                "genome",
                "climate",
                "fossil",
                "quantum",
                "molecule",
                "spacecraft",
                "vaccine",
                "hypothesis",
                "peerreview",
                "lab",
                "asteroid",
                "neuron",
                "enzyme",
                "plasma",
                "spectroscopy",
                "supernova",
                "exoplanet",
                "mitochondria",
                "crispr",
                "protein",
                "catalyst",
                "isotope",
                "seismograph",
                "glacier",
                "biodiversity",
                "ecosystem",
                "pollinator",
                "microbiome",
                "radiocarbon",
                "superconductor",
                "photosynthesis",
                "tectonics",
                "entropy",
                "collider",
            ],
            Topic::Food => &[
                "recipe",
                "sourdough",
                "espresso",
                "ramen",
                "roast",
                "fermented",
                "seasonal",
                "bakery",
                "curry",
                "harvest",
                "tasting",
                "vegan",
                "brunch",
                "marinade",
                "dumplings",
                "pastry",
                "braise",
                "umami",
                "charcuterie",
                "gnocchi",
                "paella",
                "kimchi",
                "miso",
                "tahini",
                "saffron",
                "zest",
                "caramelize",
                "proofing",
                "crumb",
                "ganache",
                "meringue",
                "brine",
                "skillet",
                "mandoline",
                "julienne",
                "confit",
            ],
            Topic::Smalltalk => &[
                "morning",
                "coffee",
                "weekend",
                "weather",
                "commute",
                "garden",
                "cat",
                "dog",
                "walk",
                "rain",
                "sunset",
                "nap",
                "tea",
                "monday",
                "holiday",
                "cozy",
                "laundry",
                "errands",
                "groceries",
                "podcast",
                "crossword",
                "jigsaw",
                "knitting",
                "houseplant",
                "balcony",
                "neighbour",
                "traffic",
                "umbrella",
                "sweater",
                "fireplace",
                "leftovers",
                "alarm",
                "snooze",
                "daydream",
                "stroll",
                "picnic",
            ],
        }
    }

    /// Hashtags the topic emits on the given platform. The Twitter and
    /// Mastodon hashtag sets deliberately overlap only partially, matching
    /// the disjoint top-30 lists of Fig. 15.
    pub fn hashtags(self, platform: Platform) -> &'static [&'static str] {
        match (self, platform) {
            (Topic::Fediverse, _) => &[
                "#fediverse",
                "#mastodon",
                "#activitypub",
                "#introduction",
                "#mastodontips",
                "#foss",
            ],
            (Topic::Migration, Platform::Twitter) => &[
                "#TwitterMigration",
                "#Mastodon",
                "#ByeByeTwitter",
                "#GoodByeTwitter",
                "#RIPTwitter",
                "#MastodonMigration",
                "#MastodonSocial",
            ],
            (Topic::Migration, Platform::Mastodon) => &[
                "#TwitterMigration",
                "#twitterrefugee",
                "#newhere",
                "#introductions",
                "#migration",
            ],
            (Topic::Entertainment, Platform::Twitter) => &[
                "#NowPlaying",
                "#BBC6Music",
                "#Eurovision",
                "#StrangerThings",
                "#TheCrown",
            ],
            (Topic::Entertainment, Platform::Mastodon) => {
                &["#NowPlaying", "#music", "#film", "#tvshows"]
            }
            (Topic::Celebrities, Platform::Twitter) => {
                &["#BarbaraHolzer", "#Oscars", "#MetGala", "#RoyalFamily"]
            }
            (Topic::Celebrities, Platform::Mastodon) => &["#celebrity", "#redcarpet"],
            (Topic::Politics, Platform::Twitter) => &[
                "#StandWithUkraine",
                "#GeneralElectionNow",
                "#Midterms2022",
                "#NHS",
                "#CostOfLivingCrisis",
                "#COP27",
            ],
            (Topic::Politics, Platform::Mastodon) => &["#politics", "#ukraine", "#uspol"],
            (Topic::Tech, Platform::Twitter) => {
                &["#100DaysOfCode", "#rustlang", "#javascript", "#DevOps"]
            }
            (Topic::Tech, Platform::Mastodon) => {
                &["#rustlang", "#programming", "#linux", "#selfhosting"]
            }
            (Topic::GameDev, Platform::Twitter) => {
                &["#gamedev", "#indiedev", "#screenshotsaturday"]
            }
            (Topic::GameDev, Platform::Mastodon) => {
                &["#gamedev", "#indiedev", "#pixelart", "#godot"]
            }
            (Topic::Ai, Platform::Twitter) => &["#AI", "#MachineLearning", "#NeurIPS2022"],
            (Topic::Ai, Platform::Mastodon) => &["#ai", "#machinelearning", "#llm"],
            (Topic::History, Platform::Twitter) => &["#OnThisDay", "#histodons"],
            (Topic::History, Platform::Mastodon) => &["#histodons", "#history", "#archaeology"],
            (Topic::Sports, Platform::Twitter) => {
                &["#WorldCup2022", "#PremierLeague", "#F1", "#NFL"]
            }
            (Topic::Sports, Platform::Mastodon) => &["#football", "#sports"],
            (Topic::Art, Platform::Twitter) => &["#ArtistOnTwitter", "#photography", "#inktober"],
            (Topic::Art, Platform::Mastodon) => &["#mastoart", "#photography", "#art", "#fediart"],
            (Topic::Science, Platform::Twitter) => &["#SciComm", "#ClimateAction", "#Artemis1"],
            (Topic::Science, Platform::Mastodon) => &["#science", "#astronomy", "#climate"],
            (Topic::Food, Platform::Twitter) => &["#FoodTwitter", "#baking"],
            (Topic::Food, Platform::Mastodon) => &["#cooking", "#foodie", "#vegan"],
            (Topic::Smalltalk, Platform::Twitter) => &["#MondayMotivation", "#CatsOfTwitter"],
            (Topic::Smalltalk, Platform::Mastodon) => &["#caturday", "#mosstodon", "#goodmorning"],
        }
    }

    /// `true` for the niche topics that have a dedicated topical instance in
    /// the simulated fediverse (the paper's `sigmoid.social`,
    /// `historians.social`, `mastodon.gamedev.place` pattern).
    pub fn has_topical_instance(self) -> bool {
        matches!(
            self,
            Topic::GameDev | Topic::Ai | Topic::History | Topic::Tech | Topic::Art | Topic::Science
        )
    }
}

impl fmt::Display for Topic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// General-purpose filler vocabulary shared by every topic. These are the
/// "stopwords" the embedding deliberately ignores so that unrelated posts do
/// not look similar just because they both say "really the with today".
pub const GENERAL_WORDS: &[&str] = &[
    "the", "a", "and", "with", "today", "just", "really", "about", "think", "going", "still",
    "very", "some", "more", "this", "that", "here", "there", "have", "been", "what", "when",
    "nice", "good", "great", "honestly", "maybe", "probably", "finally", "again",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_topic_has_words_and_hashtags() {
        for t in Topic::ALL {
            assert!(!t.words().is_empty(), "{t} has no words");
            for p in Platform::ALL {
                assert!(!t.hashtags(p).is_empty(), "{t} has no hashtags on {p}");
            }
        }
    }

    #[test]
    fn paper_hashtags_present() {
        // The hashtags called out by name in Fig. 15 must be emitted.
        let tw_ent = Topic::Entertainment.hashtags(Platform::Twitter);
        assert!(tw_ent.contains(&"#NowPlaying"));
        assert!(tw_ent.contains(&"#BBC6Music"));
        assert!(Topic::Celebrities
            .hashtags(Platform::Twitter)
            .contains(&"#BarbaraHolzer"));
        let tw_pol = Topic::Politics.hashtags(Platform::Twitter);
        assert!(tw_pol.contains(&"#StandWithUkraine"));
        assert!(tw_pol.contains(&"#GeneralElectionNow"));
        assert!(Topic::Fediverse
            .hashtags(Platform::Mastodon)
            .contains(&"#fediverse"));
        assert!(Topic::Migration
            .hashtags(Platform::Mastodon)
            .contains(&"#TwitterMigration"));
    }

    #[test]
    fn topic_words_are_single_lowercase_tokens() {
        for t in Topic::ALL {
            for w in t.words() {
                assert!(
                    w.bytes().all(|b| b.is_ascii_lowercase()),
                    "{t}: bad word {w:?}"
                );
            }
        }
    }

    #[test]
    fn topical_instance_topics() {
        assert!(Topic::Ai.has_topical_instance());
        assert!(Topic::History.has_topical_instance());
        assert!(Topic::GameDev.has_topical_instance());
        assert!(!Topic::Migration.has_topical_instance());
        assert!(!Topic::Smalltalk.has_topical_instance());
    }
}

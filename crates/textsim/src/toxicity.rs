//! Lexicon + logistic toxicity scoring — the offline stand-in for the
//! Perspective API's `TOXICITY` attribute (§6.3).
//!
//! Perspective maps a post to a score in `[0, 1]`; the paper thresholds at
//! 0.5. Our scorer does the same: a post accumulates logit mass for each
//! lexicon hit (strong insults weigh more than mild negativity) and the
//! logit is squashed through a sigmoid. Clean text scores ≈ 0.04, mildly
//! negative text ≈ 0.1–0.3, and text with two or more strong insults —
//! which is what the generator's "toxic" mode produces — scores > 0.5.

use crate::token::tokenize;

/// The threshold the paper uses to call a post toxic (§6.3: "we use 0.5").
pub const TOXICITY_THRESHOLD: f64 = 0.5;

/// Strong insult vocabulary. (Deliberately mild placeholder insults — the
/// *scoring mechanics*, not the lexicon contents, are what the reproduction
/// exercises.)
const STRONG: &[&str] = &[
    "idiot",
    "moron",
    "idiots",
    "morons",
    "pathetic",
    "scumbag",
    "garbage",
    "trash",
    "clown",
    "clowns",
    "loser",
    "losers",
    "disgusting",
    "fraud",
    "liar",
    "liars",
    "stupid",
    "imbecile",
];

/// Mild negativity; contributes but does not cross the threshold alone.
const MILD: &[&str] = &[
    "hate",
    "awful",
    "terrible",
    "worst",
    "dumb",
    "shut",
    "ridiculous",
    "useless",
    "nonsense",
    "whining",
    "annoying",
    "ugly",
];

const BASE_LOGIT: f64 = -3.2;
const STRONG_LOGIT: f64 = 2.4;
const MILD_LOGIT: f64 = 0.9;

/// A deterministic toxicity scorer with the Perspective-API interface:
/// text in, score in `[0, 1]` out.
#[derive(Debug, Clone, Default)]
pub struct ToxicityScorer;

impl ToxicityScorer {
    /// Create a scorer.
    pub fn new() -> Self {
        ToxicityScorer
    }

    /// Score a post. 0 = clean, 1 = maximally toxic.
    pub fn score(&self, text: &str) -> f64 {
        let mut logit = BASE_LOGIT;
        for tok in tokenize(text) {
            let t = tok.strip_prefix('#').unwrap_or(&tok);
            if STRONG.contains(&t) {
                logit += STRONG_LOGIT;
            } else if MILD.contains(&t) {
                logit += MILD_LOGIT;
            }
        }
        sigmoid(logit)
    }

    /// Perspective-style decision: is the post toxic at the paper's 0.5
    /// threshold?
    pub fn is_toxic(&self, text: &str) -> bool {
        self.score(text) > TOXICITY_THRESHOLD
    }
}

/// The vocabulary the post generator draws from when asked to produce a
/// toxic post. Re-exported so the generator and the scorer cannot drift
/// apart.
pub fn strong_lexicon() -> &'static [&'static str] {
    STRONG
}

/// Mild-negativity lexicon (see [`strong_lexicon`]).
pub fn mild_lexicon() -> &'static [&'static str] {
    MILD
}

fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_text_scores_low() {
        let s = ToxicityScorer::new();
        let score = s.score("lovely sunset over the harbour tonight #photography");
        assert!(score < 0.1, "score = {score}");
        assert!(!s.is_toxic("what a great concert"));
    }

    #[test]
    fn empty_text_scores_base() {
        let s = ToxicityScorer::new();
        assert!(s.score("") < 0.05);
    }

    #[test]
    fn single_strong_insult_is_below_threshold() {
        // One insult reads as heated, not "likely to make people leave".
        let s = ToxicityScorer::new();
        let score = s.score("that referee is an idiot");
        assert!(score > 0.1 && score < TOXICITY_THRESHOLD, "score = {score}");
    }

    #[test]
    fn two_strong_insults_cross_threshold() {
        let s = ToxicityScorer::new();
        let score = s.score("you pathetic clown nobody wants you here");
        assert!(score > TOXICITY_THRESHOLD, "score = {score}");
        assert!(s.is_toxic("stupid pathetic garbage take"));
    }

    #[test]
    fn mild_words_accumulate_but_slowly() {
        let s = ToxicityScorer::new();
        let one = s.score("this is awful");
        let many = s.score("awful terrible worst dumb ridiculous");
        assert!(one < 0.2);
        assert!(many > one);
        // Even five mild words read as negative, borderline toxic.
        assert!(many > 0.5, "score = {many}");
    }

    #[test]
    fn score_is_monotone_in_insult_count() {
        let s = ToxicityScorer::new();
        let mut prev = 0.0;
        let mut text = String::from("take");
        for _ in 0..5 {
            text.push_str(" idiot");
            let score = s.score(&text);
            assert!(score > prev);
            prev = score;
        }
        assert!(prev > 0.9);
    }

    #[test]
    fn scores_bounded() {
        let s = ToxicityScorer::new();
        let big = "idiot ".repeat(500);
        let score = s.score(&big);
        assert!((0.0..=1.0).contains(&score));
    }

    #[test]
    fn hashtags_of_insults_count() {
        let s = ToxicityScorer::new();
        assert!(s.score("#idiot #clown energy") > s.score("neutral words here"));
    }

    #[test]
    fn case_insensitive() {
        let s = ToxicityScorer::new();
        assert_eq!(s.score("IDIOT CLOWN"), s.score("idiot clown"));
    }
}

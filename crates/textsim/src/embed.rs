//! Feature-hashing sentence embeddings — the offline stand-in for SBERT.
//!
//! §6.1 of the paper calls two posts *similar* when the cosine similarity of
//! their SBERT sentence embeddings exceeds 0.7. We reproduce the decision
//! structure with a deterministic bag-of-content-words embedding:
//!
//! * each content token is hashed into a fixed-dimension signed vector
//!   (classic feature hashing / SimHash construction),
//! * stopwords and purely-structural tokens are dropped so two unrelated
//!   posts do not look similar merely by sharing function words,
//! * vectors are L2-normalized; [`cosine`] is then a dot product.
//!
//! Texts that share most of their content words (paraphrases, cross-posts
//! with edited hashtags) land well above 0.7; posts about different topics
//! land near 0. The unit tests pin this behaviour.

use crate::token::tokenize;
use crate::topic::GENERAL_WORDS;

/// Embedding dimensionality. 128 gives a negligible collision rate for
/// post-sized token sets while staying cheap to compare.
pub const DIM: usize = 128;

/// The similarity threshold used throughout the paper (§6.1).
pub const SIMILARITY_THRESHOLD: f64 = 0.7;

/// A fixed-dimension, L2-normalized sentence embedding.
#[derive(Debug, Clone, PartialEq)]
pub struct Embedding {
    v: [f32; DIM],
    /// Number of content tokens that contributed (0 for empty text).
    pub token_count: usize,
}

impl Embedding {
    /// The zero embedding (empty text).
    pub fn zero() -> Self {
        Embedding {
            v: [0.0; DIM],
            token_count: 0,
        }
    }

    /// Raw vector access (normalized).
    pub fn as_slice(&self) -> &[f32] {
        &self.v
    }
}

/// 64-bit FNV-1a, the token hash.
fn hash_token(t: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in t.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    // Finalize to spread low bits.
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^ (h >> 33)
}

fn is_stopword(t: &str) -> bool {
    GENERAL_WORDS.contains(&t)
}

/// Embed a post. Deterministic: equal texts produce equal embeddings.
pub fn embed(text: &str) -> Embedding {
    let mut v = [0.0f32; DIM];
    let mut token_count = 0usize;
    for tok in tokenize(text) {
        if is_stopword(&tok) {
            continue;
        }
        token_count += 1;
        let h = hash_token(&tok);
        // Each token contributes to 4 coordinates with ±1 signs, SimHash-style.
        for k in 0..4 {
            let bits = h.rotate_left(16 * k as u32);
            let idx = (bits as usize) % DIM;
            let sign = if (bits >> 63) & 1 == 1 { 1.0 } else { -1.0 };
            v[idx] += sign;
        }
    }
    let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
    if norm > 0.0 {
        for x in &mut v {
            *x /= norm;
        }
    }
    Embedding { v, token_count }
}

/// Cosine similarity of two embeddings, in `[-1, 1]`. Zero embeddings have
/// similarity 0 with everything (including themselves), matching how an
/// empty post is treated as incomparable.
pub fn cosine(a: &Embedding, b: &Embedding) -> f64 {
    a.v.iter()
        .zip(b.v.iter())
        .map(|(x, y)| f64::from(x * y))
        .sum()
}

/// Convenience: are two texts "similar" per the paper's threshold?
pub fn is_similar(a: &str, b: &str) -> bool {
    cosine(&embed(a), &embed(b)) > SIMILARITY_THRESHOLD
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_texts_have_similarity_one() {
        let e1 = embed("the rust compiler is fast #rustlang");
        let e2 = embed("the rust compiler is fast #rustlang");
        assert!((cosine(&e1, &e2) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn embeddings_are_normalized() {
        let e = embed("some words to embed here");
        let norm: f32 = e.as_slice().iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!((norm - 1.0).abs() < 1e-5);
    }

    #[test]
    fn empty_text_is_zero() {
        let e = embed("");
        assert_eq!(e.token_count, 0);
        assert_eq!(cosine(&e, &e), 0.0);
        let f = embed("actual content words appear");
        assert_eq!(cosine(&e, &f), 0.0);
    }

    #[test]
    fn stopwords_do_not_contribute() {
        let e = embed("the and with today just really");
        assert_eq!(e.token_count, 0);
    }

    #[test]
    fn paraphrase_overlap_is_similar() {
        // ~80% shared content words: this is what a cross-posted status with
        // a retagged hashtag looks like.
        let a = "instance federation server admin timeline boost toot activitypub decentralized moderation";
        let b = "instance federation server admin timeline boost toot activitypub decentralized community";
        assert!(
            is_similar(a, b),
            "cosine = {}",
            cosine(&embed(a), &embed(b))
        );
    }

    #[test]
    fn unrelated_topics_are_dissimilar() {
        let a = "shader engine sprite gamejam indiedev unity godot pixelart";
        let b = "recipe sourdough espresso ramen roast fermented seasonal bakery";
        let sim = cosine(&embed(a), &embed(b));
        assert!(sim < SIMILARITY_THRESHOLD, "cosine = {sim}");
        assert!(
            sim.abs() < 0.5,
            "unrelated posts should be near-orthogonal: {sim}"
        );
    }

    #[test]
    fn similarity_is_symmetric() {
        let pairs = [
            (
                "match goal league transfer",
                "coach penalty fixture stadium",
            ),
            ("model training dataset", "model training dataset neural"),
        ];
        for (a, b) in pairs {
            let (ea, eb) = (embed(a), embed(b));
            assert!((cosine(&ea, &eb) - cosine(&eb, &ea)).abs() < 1e-12);
        }
    }

    #[test]
    fn cosine_bounded() {
        let texts = [
            "election parliament policy minister vote",
            "sketch watercolor gallery exhibition",
            "morning coffee weekend weather",
            "election parliament policy minister vote campaign",
        ];
        for a in &texts {
            for b in &texts {
                let c = cosine(&embed(a), &embed(b));
                assert!((-1.0001..=1.0001).contains(&c), "{a} vs {b}: {c}");
            }
        }
    }

    #[test]
    fn word_order_is_ignored() {
        // Bag-of-words by construction — like sentence embeddings, shuffling
        // words keeps the meaning vector nearly unchanged.
        let a = embed("quantum telescope genome climate fossil");
        let b = embed("fossil climate genome telescope quantum");
        assert!((cosine(&a, &b) - 1.0).abs() < 1e-6);
    }
}

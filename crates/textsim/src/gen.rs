//! The synthetic post generator used by the world simulator.
//!
//! Posts are bags of topic words + general filler + platform-appropriate
//! hashtags. The generator also provides the two transformations the
//! cross-platform similarity analysis (Fig. 14) needs:
//!
//! * [`PostGenerator::paraphrase`] — a light rewrite that keeps ≥ 75% of
//!   content words, guaranteeing cosine similarity above the paper's 0.7
//!   threshold (this is what a manually mirrored post looks like);
//! * [`PostGenerator::toxicify`] — injects enough insult vocabulary to push
//!   the post over the Perspective-style 0.5 toxicity threshold (Fig. 16).

use crate::topic::{Topic, GENERAL_WORDS};
use crate::toxicity::{mild_lexicon, strong_lexicon};
use flock_core::{DetRng, Platform};

/// Tunable knobs for post generation.
#[derive(Debug, Clone)]
pub struct PostGenerator {
    /// Minimum content words per post.
    pub min_words: usize,
    /// Maximum content words per post.
    pub max_words: usize,
    /// Probability that a generated word is a general filler word rather
    /// than a topic word.
    pub filler_ratio: f64,
    /// Fraction of content words preserved by [`Self::paraphrase`].
    pub paraphrase_keep: f64,
}

impl Default for PostGenerator {
    fn default() -> Self {
        PostGenerator {
            min_words: 6,
            max_words: 16,
            filler_ratio: 0.35,
            paraphrase_keep: 0.85,
        }
    }
}

impl PostGenerator {
    /// Generate body text (no hashtags) about a topic.
    pub fn generate(&self, topic: Topic, rng: &mut DetRng) -> String {
        let n = rng.range_i64(self.min_words as i64, self.max_words as i64) as usize;
        let words = topic.words();
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            if rng.chance(self.filler_ratio) {
                out.push(*rng.choose(GENERAL_WORDS));
            } else {
                out.push(*rng.choose(words));
            }
        }
        out.join(" ")
    }

    /// Generate a full post: body + up to `max_hashtags` platform-specific
    /// hashtags for the topic.
    pub fn compose(
        &self,
        topic: Topic,
        platform: Platform,
        max_hashtags: usize,
        rng: &mut DetRng,
    ) -> String {
        let mut text = self.generate(topic, rng);
        if max_hashtags > 0 {
            let tags = topic.hashtags(platform);
            let n = rng.below_usize(max_hashtags + 1).min(tags.len());
            let mut chosen: Vec<&str> = Vec::with_capacity(n);
            while chosen.len() < n {
                let t = *rng.choose(tags);
                if !chosen.contains(&t) {
                    chosen.push(t);
                }
            }
            for t in chosen {
                text.push(' ');
                text.push_str(t);
            }
        }
        text
    }

    /// Produce a light rewrite of `text`: each non-hashtag token is kept
    /// with probability [`Self::paraphrase_keep`] and otherwise replaced
    /// with a general filler word (which the embedding ignores), with a
    /// floor of 75% kept so the result always clears the similarity
    /// threshold. Hashtags are always kept — users mirror their tags.
    pub fn paraphrase(&self, text: &str, rng: &mut DetRng) -> String {
        let tokens: Vec<&str> = text.split_whitespace().collect();
        let content_idx: Vec<usize> = tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| !t.starts_with('#'))
            .map(|(i, _)| i)
            .collect();
        let max_replacements = (content_idx.len() / 4).max(1); // keep ≥ 75%, change ≥ 1
        let mut replaced = 0usize;
        let mut out: Vec<String> = Vec::with_capacity(tokens.len());
        // Pre-pick one forced replacement so a paraphrase is never the
        // identical string (mirroring by hand always edits something).
        let forced = if content_idx.is_empty() {
            usize::MAX
        } else {
            content_idx[rng.below_usize(content_idx.len())]
        };
        for (i, tok) in tokens.iter().enumerate() {
            let is_content = content_idx.contains(&i);
            if is_content
                && replaced < max_replacements
                && (i == forced || !rng.chance(self.paraphrase_keep))
            {
                out.push((*rng.choose(GENERAL_WORDS)).to_string());
                replaced += 1;
            } else {
                out.push((*tok).to_string());
            }
        }
        out.join(" ")
    }

    /// Inject insult vocabulary into `text` so the toxicity scorer rates it
    /// above the 0.5 threshold: two or three strong insults plus one mild
    /// word, appended in sentence position.
    pub fn toxicify(&self, text: &str, rng: &mut DetRng) -> String {
        let strong = strong_lexicon();
        let mild = mild_lexicon();
        let n_strong = 2 + rng.below_usize(2); // 2 or 3
        let mut out = String::from(text);
        for _ in 0..n_strong {
            out.push(' ');
            out.push_str(rng.choose::<&str>(strong));
        }
        if rng.chance(0.5) {
            out.push(' ');
            out.push_str(rng.choose::<&str>(mild));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::embed::{cosine, embed, SIMILARITY_THRESHOLD};
    use crate::token::extract_hashtags;
    use crate::toxicity::ToxicityScorer;

    #[test]
    fn generate_respects_word_bounds() {
        let g = PostGenerator::default();
        let mut rng = DetRng::new(1);
        for _ in 0..100 {
            let text = g.generate(Topic::Tech, &mut rng);
            let n = text.split_whitespace().count();
            assert!((g.min_words..=g.max_words).contains(&n), "{n} words");
        }
    }

    #[test]
    fn generate_is_deterministic() {
        let g = PostGenerator::default();
        let mut a = DetRng::new(7);
        let mut b = DetRng::new(7);
        assert_eq!(
            g.generate(Topic::Food, &mut a),
            g.generate(Topic::Food, &mut b)
        );
    }

    #[test]
    fn compose_adds_platform_hashtags() {
        let g = PostGenerator::default();
        let mut rng = DetRng::new(2);
        let mut saw_tag = false;
        for _ in 0..50 {
            let post = g.compose(Topic::Migration, Platform::Twitter, 3, &mut rng);
            let tags = extract_hashtags(&post);
            if !tags.is_empty() {
                saw_tag = true;
                for t in &tags {
                    let expected: Vec<String> = Topic::Migration
                        .hashtags(Platform::Twitter)
                        .iter()
                        .map(|s| s.to_ascii_lowercase())
                        .collect();
                    assert!(expected.contains(t), "unexpected tag {t}");
                }
            }
        }
        assert!(saw_tag);
    }

    #[test]
    fn compose_zero_hashtags() {
        let g = PostGenerator::default();
        let mut rng = DetRng::new(3);
        let post = g.compose(Topic::Sports, Platform::Mastodon, 0, &mut rng);
        assert!(extract_hashtags(&post).is_empty());
    }

    #[test]
    fn paraphrase_is_similar_never_identical_guaranteed() {
        let g = PostGenerator::default();
        let mut rng = DetRng::new(4);
        for i in 0..200 {
            let mut post_rng = DetRng::new(1000 + i);
            let post = g.compose(Topic::Ai, Platform::Twitter, 2, &mut post_rng);
            let para = g.paraphrase(&post, &mut rng);
            let sim = cosine(&embed(&post), &embed(&para));
            assert!(
                sim > SIMILARITY_THRESHOLD,
                "paraphrase fell below threshold: {sim}\n  a={post}\n  b={para}"
            );
        }
    }

    #[test]
    fn paraphrase_keeps_hashtags() {
        let g = PostGenerator::default();
        let mut rng = DetRng::new(5);
        let post = "model training dataset neural #ai #machinelearning";
        for _ in 0..20 {
            let para = g.paraphrase(post, &mut rng);
            let tags = extract_hashtags(&para);
            assert!(tags.contains(&"#ai".to_string()));
            assert!(tags.contains(&"#machinelearning".to_string()));
        }
    }

    #[test]
    fn toxicify_crosses_threshold() {
        let g = PostGenerator::default();
        let scorer = ToxicityScorer::new();
        let mut rng = DetRng::new(6);
        for i in 0..100 {
            let mut post_rng = DetRng::new(2000 + i);
            let post = g.generate(Topic::Politics, &mut post_rng);
            assert!(!scorer.is_toxic(&post), "clean post scored toxic: {post}");
            let toxic = g.toxicify(&post, &mut rng);
            assert!(
                scorer.is_toxic(&toxic),
                "toxicified post not toxic: {toxic}"
            );
        }
    }

    #[test]
    fn different_topics_rarely_similar() {
        let g = PostGenerator::default();
        let mut rng = DetRng::new(8);
        let mut similar = 0;
        let n = 300;
        for _ in 0..n {
            let a = g.generate(Topic::GameDev, &mut rng);
            let b = g.generate(Topic::Food, &mut rng);
            if cosine(&embed(&a), &embed(&b)) > SIMILARITY_THRESHOLD {
                similar += 1;
            }
        }
        assert!(similar < n / 50, "{similar}/{n} cross-topic pairs similar");
    }

    #[test]
    fn same_topic_independent_posts_mostly_dissimilar() {
        let g = PostGenerator::default();
        let mut rng = DetRng::new(9);
        let mut similar = 0;
        let n = 300;
        for _ in 0..n {
            let a = g.generate(Topic::Fediverse, &mut rng);
            let b = g.generate(Topic::Fediverse, &mut rng);
            if cosine(&embed(&a), &embed(&b)) > SIMILARITY_THRESHOLD {
                similar += 1;
            }
        }
        // Independent posts about the same topic should usually NOT read as
        // the same post; allow a small accidental-overlap rate.
        assert!(similar < n / 10, "{similar}/{n} same-topic pairs similar");
    }
}

//! Tokenization and hashtag extraction.

/// Split text into lowercase word tokens. Hashtags are kept *with* their
/// `#` so that downstream consumers can distinguish `#mastodon` (the tag)
/// from `mastodon` (the word); URLs are kept whole; everything else is
/// split on non-alphanumeric boundaries.
pub fn tokenize(text: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    for raw in text.split_whitespace() {
        if raw.starts_with("http://") || raw.starts_with("https://") {
            tokens.push(trim_trailing_punct(raw).to_ascii_lowercase());
            continue;
        }
        if let Some(tag) = raw.strip_prefix('#') {
            let tag: String = tag
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                .collect();
            if !tag.is_empty() {
                tokens.push(format!("#{}", tag.to_ascii_lowercase()));
                continue;
            }
        }
        let mut current = String::new();
        for c in raw.chars() {
            if c.is_ascii_alphanumeric() || c == '_' || c == '\'' {
                current.extend(c.to_lowercase());
            } else if !current.is_empty() {
                tokens.push(std::mem::take(&mut current));
            }
        }
        if !current.is_empty() {
            tokens.push(current);
        }
    }
    tokens
}

/// Extract the hashtags from a post, lowercased, `#` included, in order of
/// appearance with duplicates preserved (frequency analyses count them).
pub fn extract_hashtags(text: &str) -> Vec<String> {
    tokenize(text)
        .into_iter()
        .filter(|t| t.starts_with('#'))
        .collect()
}

fn trim_trailing_punct(s: &str) -> &str {
    s.trim_end_matches(|c: char| !c.is_ascii_alphanumeric() && c != '/')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_tokenization() {
        assert_eq!(
            tokenize("Hello, World! It's me."),
            vec!["hello", "world", "it's", "me"]
        );
    }

    #[test]
    fn hashtags_kept_intact() {
        assert_eq!(
            tokenize("leaving. #ByeByeTwitter forever"),
            vec!["leaving", "#byebyetwitter", "forever"]
        );
    }

    #[test]
    fn hashtag_trailing_punctuation_stripped() {
        assert_eq!(
            extract_hashtags("so long! #RIPTwitter."),
            vec!["#riptwitter"]
        );
    }

    #[test]
    fn urls_kept_whole() {
        let t = tokenize("find me at https://mas.to/@alice!");
        assert!(t.contains(&"https://mas.to/@alice".to_string()));
    }

    #[test]
    fn extract_hashtags_in_order_with_duplicates() {
        assert_eq!(
            extract_hashtags("#a text #B more #a"),
            vec!["#a", "#b", "#a"]
        );
    }

    #[test]
    fn empty_and_punctuation_only() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("... !!! ???").is_empty());
        assert!(extract_hashtags("# #!").is_empty());
    }
}

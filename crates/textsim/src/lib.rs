//! # flock-textsim — the text substrate
//!
//! The paper's RQ3 analyses operate on post *text*: hashtag frequencies
//! (Fig. 15), cross-platform content similarity via SBERT sentence
//! embeddings and cosine similarity (Fig. 14), and toxicity via Google
//! Jigsaw's Perspective API (Fig. 16). Neither SBERT nor Perspective is
//! available offline, so this crate provides deterministic substitutes with
//! the **same interfaces and decision structure**:
//!
//! * a topic-conditioned synthetic post generator ([`gen`]) used by the
//!   world simulator,
//! * a tokenizer and hashtag extractor ([`token`]),
//! * feature-hashing sentence embeddings + cosine similarity ([`mod@embed`]) —
//!   like SBERT, texts that share most content words land above the paper's
//!   0.7 similarity threshold, unrelated texts land below it,
//! * a lexicon + logistic toxicity scorer ([`toxicity`]) — like Perspective,
//!   it maps a post to a score in `[0, 1]` that the analysis thresholds
//!   at 0.5.
//!
//! ```
//! use flock_textsim::prelude::*;
//! use flock_core::DetRng;
//!
//! let mut rng = DetRng::new(1);
//! let gen = PostGenerator::default();
//! let post = gen.generate(Topic::Fediverse, &mut rng);
//! let para = gen.paraphrase(&post, &mut rng);
//! let (e1, e2) = (embed(&post), embed(&para));
//! assert!(cosine(&e1, &e2) > 0.7, "paraphrases are 'similar'");
//! ```

pub mod embed;
pub mod gen;
pub mod token;
pub mod topic;
pub mod toxicity;

pub mod prelude {
    pub use crate::embed::{cosine, embed, Embedding, SIMILARITY_THRESHOLD};
    pub use crate::gen::PostGenerator;
    pub use crate::token::{extract_hashtags, tokenize};
    pub use crate::topic::Topic;
    pub use crate::toxicity::{ToxicityScorer, TOXICITY_THRESHOLD};
}

pub use prelude::*;

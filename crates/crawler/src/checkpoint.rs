//! Crawl checkpointing — kill a crawl mid-scenario, restart the process,
//! and converge to the same dataset.
//!
//! The unit of progress is a completed pipeline *phase* (see
//! [`crate::pipeline::PHASES`]): after each phase the crawler persists the
//! dataset-so-far plus the virtual clock, and a resumed crawl replays only
//! the phases that never completed. A phase that was interrupted midway is
//! re-run from scratch against a **fresh** API server — per-key fault
//! state lives in the server, so restarting the phase re-derives the same
//! per-key outcomes and the resumed crawl's dataset is byte-identical to
//! an uninterrupted run (crawl *accounting* in [`CrawlStats`] legitimately
//! differs: requests spent inside the killed phase are not replayed).
//!
//! [`CrawlStats`]: crate::dataset::CrawlStats

use crate::dataset::Dataset;
use flock_core::{FlockError, Result};
use serde::{Deserialize, Serialize};
use std::path::Path;

/// A crawl checkpoint: which phases completed, where the virtual clock
/// stood, and the dataset accumulated so far.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Names of completed phases, in execution order.
    pub completed: Vec<String>,
    /// The API server's virtual clock when the checkpoint was taken; a
    /// resumed crawl advances its (fresh) server to this point so waits
    /// already paid are not paid again.
    pub clock_secs: u64,
    /// The dataset as of the last completed phase.
    pub dataset: Dataset,
}

impl Checkpoint {
    /// Serialize to JSON.
    pub fn to_json(&self) -> Result<String> {
        serde_json::to_string(self)
            .map_err(|e| FlockError::InvalidConfig(format!("serialize checkpoint: {e}")))
    }

    /// Deserialize from JSON.
    pub fn from_json(json: &str) -> Result<Checkpoint> {
        serde_json::from_str(json)
            .map_err(|e| FlockError::InvalidConfig(format!("deserialize checkpoint: {e}")))
    }

    /// Write atomically **and durably**: unique temp file in the same
    /// directory, `fsync` the data, rename over the target, then `fsync`
    /// the directory so the rename itself survives a power loss. Without
    /// the syncs, rename-over-old could be reordered ahead of the data
    /// write by the filesystem, leaving a zero-length or torn checkpoint
    /// after a crash — the exact state this format exists to prevent. The
    /// temp name carries the pid so two crawlers checkpointing side by
    /// side (or a crashed run's leftover) can never clobber each other's
    /// in-flight writes; `path.with_extension("tmp")` was shared.
    pub fn save(&self, path: &Path) -> Result<()> {
        use std::io::Write;

        let json = self.to_json()?;
        let file_name = path
            .file_name()
            .ok_or_else(|| {
                FlockError::InvalidConfig(format!(
                    "checkpoint path {} has no file name",
                    path.display()
                ))
            })?
            .to_string_lossy()
            .into_owned();
        let tmp = path.with_file_name(format!(".{file_name}.tmp.{}", std::process::id()));
        let err = |stage: &str, p: &Path, e: std::io::Error| {
            FlockError::InvalidConfig(format!("{stage} {}: {e}", p.display()))
        };
        let result = (|| {
            let mut f = std::fs::File::create(&tmp).map_err(|e| err("create", &tmp, e))?;
            f.write_all(json.as_bytes())
                .map_err(|e| err("write", &tmp, e))?;
            f.sync_all().map_err(|e| err("fsync", &tmp, e))?;
            drop(f);
            std::fs::rename(&tmp, path).map_err(|e| {
                FlockError::InvalidConfig(format!(
                    "rename {} -> {}: {e}",
                    tmp.display(),
                    path.display()
                ))
            })?;
            // Durability of the rename: fsync the parent directory (no-op
            // on platforms where directories cannot be opened, e.g.
            // Windows — there File::open on a dir fails and we skip).
            if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
                if let Ok(dir) = std::fs::File::open(parent) {
                    dir.sync_all().map_err(|e| err("fsync dir", parent, e))?;
                }
            }
            Ok(())
        })();
        if result.is_err() {
            // Best-effort cleanup so failed saves don't strand temp files.
            std::fs::remove_file(&tmp).ok();
        }
        result
    }

    /// Read a checkpoint back.
    pub fn load(path: &Path) -> Result<Checkpoint> {
        let json = std::fs::read_to_string(path)
            .map_err(|e| FlockError::InvalidConfig(format!("read {}: {e}", path.display())))?;
        Checkpoint::from_json(&json)
    }

    /// [`Checkpoint::load`], returning `None` when no checkpoint exists
    /// yet (the first run of a resumable crawl).
    pub fn load_if_exists(path: &Path) -> Result<Option<Checkpoint>> {
        if path.exists() {
            Ok(Some(Checkpoint::load(path)?))
        } else {
            Ok(None)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        Checkpoint {
            completed: vec![
                "discover.collect_tweets".to_string(),
                "discover.match_users".to_string(),
            ],
            clock_secs: 12_345,
            dataset: Dataset {
                instance_list: vec!["mastodon.social".into()],
                searched_users: 7,
                ..Dataset::default()
            },
        }
    }

    #[test]
    fn json_round_trip() {
        let cp = sample();
        let back = Checkpoint::from_json(&cp.to_json().unwrap()).unwrap();
        assert_eq!(back.completed, cp.completed);
        assert_eq!(back.clock_secs, cp.clock_secs);
        assert_eq!(back.dataset.searched_users, 7);
    }

    #[test]
    fn save_load_and_missing() {
        let dir = std::env::temp_dir().join("flock_checkpoint_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("crawl.ckpt");
        std::fs::remove_file(&path).ok();
        assert!(Checkpoint::load_if_exists(&path).unwrap().is_none());
        let cp = sample();
        cp.save(&path).unwrap();
        // No temp file (old shared name or the new unique one) outlives a
        // successful save.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.contains(".tmp"))
            .collect();
        assert!(
            leftovers.is_empty(),
            "temp files left behind: {leftovers:?}"
        );
        let back = Checkpoint::load_if_exists(&path).unwrap().unwrap();
        assert_eq!(back.completed.len(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn save_overwrites_previous_checkpoint_atomically() {
        let dir = std::env::temp_dir().join("flock_checkpoint_overwrite_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("crawl.ckpt");
        std::fs::remove_file(&path).ok();
        let mut cp = sample();
        cp.save(&path).unwrap();
        cp.completed.push("timelines.twitter".to_string());
        cp.clock_secs = 99_999;
        cp.save(&path).unwrap();
        let back = Checkpoint::load(&path).unwrap();
        assert_eq!(back.completed.len(), 3);
        assert_eq!(back.clock_secs, 99_999);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_checkpoint_is_rejected() {
        for bad in ["", "{", "null", "{\"completed\": 3}"] {
            assert!(Checkpoint::from_json(bad).is_err(), "{bad:?} parsed");
        }
    }
}

//! Crawl checkpointing — kill a crawl mid-scenario, restart the process,
//! and converge to the same dataset.
//!
//! The unit of progress is a completed pipeline *phase* (see
//! [`crate::pipeline::PHASES`]): after each phase the crawler persists the
//! dataset-so-far plus the virtual clock, and a resumed crawl replays only
//! the phases that never completed. A phase that was interrupted midway is
//! re-run from scratch against a **fresh** API server — per-key fault
//! state lives in the server, so restarting the phase re-derives the same
//! per-key outcomes and the resumed crawl's dataset is byte-identical to
//! an uninterrupted run (crawl *accounting* in [`CrawlStats`] legitimately
//! differs: requests spent inside the killed phase are not replayed).
//!
//! [`CrawlStats`]: crate::dataset::CrawlStats

use crate::dataset::Dataset;
use flock_core::{FlockError, Result};
use serde::{Deserialize, Serialize};
use std::path::Path;

/// A crawl checkpoint: which phases completed, where the virtual clock
/// stood, and the dataset accumulated so far.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Names of completed phases, in execution order.
    pub completed: Vec<String>,
    /// The API server's virtual clock when the checkpoint was taken; a
    /// resumed crawl advances its (fresh) server to this point so waits
    /// already paid are not paid again.
    pub clock_secs: u64,
    /// The dataset as of the last completed phase.
    pub dataset: Dataset,
}

impl Checkpoint {
    /// Serialize to JSON.
    pub fn to_json(&self) -> Result<String> {
        serde_json::to_string(self)
            .map_err(|e| FlockError::InvalidConfig(format!("serialize checkpoint: {e}")))
    }

    /// Deserialize from JSON.
    pub fn from_json(json: &str) -> Result<Checkpoint> {
        serde_json::from_str(json)
            .map_err(|e| FlockError::InvalidConfig(format!("deserialize checkpoint: {e}")))
    }

    /// Write atomically: temp file in the same directory, then rename, so
    /// a crash mid-write never leaves a torn checkpoint behind.
    pub fn save(&self, path: &Path) -> Result<()> {
        let json = self.to_json()?;
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, json)
            .map_err(|e| FlockError::InvalidConfig(format!("write {}: {e}", tmp.display())))?;
        std::fs::rename(&tmp, path).map_err(|e| {
            FlockError::InvalidConfig(format!(
                "rename {} -> {}: {e}",
                tmp.display(),
                path.display()
            ))
        })
    }

    /// Read a checkpoint back.
    pub fn load(path: &Path) -> Result<Checkpoint> {
        let json = std::fs::read_to_string(path)
            .map_err(|e| FlockError::InvalidConfig(format!("read {}: {e}", path.display())))?;
        Checkpoint::from_json(&json)
    }

    /// [`Checkpoint::load`], returning `None` when no checkpoint exists
    /// yet (the first run of a resumable crawl).
    pub fn load_if_exists(path: &Path) -> Result<Option<Checkpoint>> {
        if path.exists() {
            Ok(Some(Checkpoint::load(path)?))
        } else {
            Ok(None)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        Checkpoint {
            completed: vec![
                "discover.collect_tweets".to_string(),
                "discover.match_users".to_string(),
            ],
            clock_secs: 12_345,
            dataset: Dataset {
                instance_list: vec!["mastodon.social".into()],
                searched_users: 7,
                ..Dataset::default()
            },
        }
    }

    #[test]
    fn json_round_trip() {
        let cp = sample();
        let back = Checkpoint::from_json(&cp.to_json().unwrap()).unwrap();
        assert_eq!(back.completed, cp.completed);
        assert_eq!(back.clock_secs, cp.clock_secs);
        assert_eq!(back.dataset.searched_users, 7);
    }

    #[test]
    fn save_load_and_missing() {
        let dir = std::env::temp_dir().join("flock_checkpoint_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("crawl.ckpt");
        std::fs::remove_file(&path).ok();
        assert!(Checkpoint::load_if_exists(&path).unwrap().is_none());
        let cp = sample();
        cp.save(&path).unwrap();
        // The temp file never outlives a successful save.
        assert!(!path.with_extension("tmp").exists());
        let back = Checkpoint::load_if_exists(&path).unwrap().unwrap();
        assert_eq!(back.completed.len(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_checkpoint_is_rejected() {
        for bad in ["", "{", "null", "{\"completed\": 3}"] {
            assert!(Checkpoint::from_json(bad).is_err(), "{bad:?} parsed");
        }
    }
}

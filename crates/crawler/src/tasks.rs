//! Logical crawl tasks for the discrete-event scheduler.
//!
//! When [`CrawlerConfig::tasks`](crate::pipeline::CrawlerConfig::tasks) is
//! set, the §3.2–§3.3 expand phases run on the `flock-sched` executor
//! instead of the thread-per-item worker pool: each work item (one
//! timeline, one followee record, one instance's activity) becomes a
//! lightweight state machine that *yields* whenever the legacy code would
//! have advanced the virtual clock — rate-limit refills, outage windows,
//! transient backoffs — and the executor multiplexes thousands of such
//! logical connections over a handful of OS threads, advancing the clock
//! only when nothing is runnable.
//!
//! The state machines here mirror the legacy per-item functions in
//! `pipeline.rs` step for step: the same spans, the same attempt records,
//! the same typed-outcome mapping, the same retry budgets. A task's
//! in-flight request keeps its span open across yields ([`ReqState`]),
//! and each second the executor moves the clock is charged — at event
//! fire time, via the [`WaitBill`] attached to the yield — to the same
//! `(span, phase, cause)` bucket the legacy path would have charged
//! inline. That preserves the attribution identity (per-phase wait
//! buckets + work = phase duration) under multiplexing.

use crate::dataset::{
    FolloweeRecord, MastodonCrawlOutcome, MatchedUser, TimelineStatus, TimelineTweet,
    TwitterCrawlOutcome,
};
use crate::pipeline::Crawler;
use flock_apis::server::ApiServer;
use flock_apis::types::ActivityRow;
use flock_core::{Day, FlockError, MastodonHandle, Result, TwitterUserId};
use flock_obs::trace::{self, FaultKind, SpanOutcome};
use flock_obs::WaitCause;
use flock_sched::{Clock, Executor, Step, Task};
use std::sync::atomic::Ordering;

/// What one yielded wait is charged to when its event fires: the same
/// `(span, phase, cause)` triple `Crawler::wait_out` charges inline on
/// the legacy path.
pub(crate) struct WaitBill {
    span: u64,
    phase: &'static str,
    cause: WaitCause,
}

/// One logical request in flight: the open span plus the retry budgets
/// that survive across scheduler yields. The legacy equivalent is the
/// local state of one `Crawler::request` call; here it must live in the
/// task because the stack unwinds at every yield.
pub(crate) struct ReqState {
    span: u64,
    phase: &'static str,
    label: String,
    transient: u32,
    waited: u64,
    last_outcome: SpanOutcome,
}

/// Outcome of driving one attempt of an in-flight request: either the
/// request finished (span closed, result ready) or the task must park
/// until `until` and bill the wait when it fires.
pub(crate) enum ReqPoll<T> {
    Wait { until: u64, bill: WaitBill },
    Done(Result<T>),
}

impl<'a> Crawler<'a> {
    /// Open the logical-request span for a scheduled request — the
    /// counterpart of the `span_begin` at the top of `Crawler::request`.
    fn sched_begin(&self, label: String) -> ReqState {
        let phase = self.current_phase();
        let span =
            self.obs
                .span_begin(phase, &label, None, trace::current_worker(), self.api.now());
        ReqState {
            span,
            phase,
            label,
            transient: 0,
            waited: 0,
            // Overwritten by every attempt; only an interrupt before the
            // first attempt leaves the placeholder.
            last_outcome: SpanOutcome::Fault(FaultKind::Other),
        }
    }

    /// One server attempt of an in-flight request — one iteration of the
    /// legacy `request_attempts` loop, with every inline clock advance
    /// replaced by a [`ReqPoll::Wait`] yield.
    fn sched_attempt<T>(&self, st: &mut ReqState, f: impl FnOnce() -> Result<T>) -> ReqPoll<T> {
        if let Some(cap) = self.config.abort_after_requests {
            if self.requests_made.fetch_add(1, Ordering::Relaxed) >= cap {
                return self.sched_finish(st, Err(FlockError::Interrupted));
            }
        }
        self.m.attempts.inc();
        let before = self.api.now();
        let r = {
            let _guard = trace::span_scope(st.span);
            f()
        };
        let attempt = trace::take_attempt();
        let outcome = match (&r, attempt) {
            (_, Some(a)) => a.outcome,
            (Ok(_), None) => SpanOutcome::Granted,
            (Err(FlockError::RateLimited { .. }), None) => {
                SpanOutcome::RateLimited { storm: false }
            }
            (Err(FlockError::InstanceOutage { .. }), None)
            | (Err(FlockError::InstanceUnavailable(_)), None) => {
                SpanOutcome::Fault(FaultKind::Outage)
            }
            (Err(FlockError::StaleCursor(_)), None) => SpanOutcome::StaleCursor,
            (Err(_), None) => SpanOutcome::Fault(FaultKind::Other),
        };
        self.obs.span_attempt(
            st.span,
            st.phase,
            &st.label,
            trace::current_worker(),
            attempt.map(|a| a.family),
            outcome,
            before,
            before,
        );
        st.last_outcome = outcome;
        match r {
            Ok(v) => self.sched_finish(st, Ok(v)),
            Err(FlockError::RateLimited { retry_after_secs }) => {
                self.m.rate_limited.inc();
                let cause = if outcome == (SpanOutcome::RateLimited { storm: true }) {
                    WaitCause::RetryAfterStorm
                } else {
                    WaitCause::TokenBucket
                };
                self.sched_wait(st, retry_after_secs, before, cause)
            }
            Err(FlockError::InstanceOutage { retry_after_secs }) => {
                self.m.outage_waits.inc();
                self.sched_wait(st, retry_after_secs, before, WaitCause::Outage)
            }
            Err(e) if e.is_retryable() => {
                self.m.transient_failures.inc();
                st.transient += 1;
                if st.transient > self.config.max_transient_retries {
                    return self.sched_finish(st, Err(e));
                }
                self.obs.event(
                    before,
                    "crawler.transient_retry",
                    &format!("attempt {}: {e}", st.transient),
                );
                ReqPoll::Wait {
                    until: before.saturating_add(self.config.transient_backoff_secs),
                    bill: WaitBill {
                        span: st.span,
                        phase: st.phase,
                        cause: WaitCause::TransientBackoff,
                    },
                }
            }
            Err(e) => self.sched_finish(st, Err(e)),
        }
    }

    /// The yield counterpart of `Crawler::wait_out`: record the wait,
    /// enforce the cumulative cap, and hand the deadline to the executor
    /// instead of advancing the clock here. The charge happens when the
    /// event fires, for exactly the seconds the clock actually moves.
    fn sched_wait<T>(
        &self,
        st: &mut ReqState,
        retry_after_secs: u64,
        before: u64,
        cause: WaitCause,
    ) -> ReqPoll<T> {
        self.m.retry_wait_secs.record(retry_after_secs);
        st.waited = st.waited.saturating_add(retry_after_secs);
        if st.waited > self.config.max_rate_limit_wait_secs {
            self.m.budget_exhausted.inc();
            self.obs.event(
                before,
                "crawler.retry_budget_exhausted",
                &format!(
                    "waited {}s virtual > cap {}s",
                    st.waited, self.config.max_rate_limit_wait_secs
                ),
            );
            return self.sched_finish(
                st,
                Err(FlockError::RetryBudgetExhausted {
                    waited_secs: st.waited,
                }),
            );
        }
        ReqPoll::Wait {
            until: before.saturating_add(retry_after_secs),
            bill: WaitBill {
                span: st.span,
                phase: st.phase,
                cause,
            },
        }
    }

    fn sched_finish<T>(&self, st: &ReqState, r: Result<T>) -> ReqPoll<T> {
        self.obs.span_end(st.span, self.api.now(), st.last_outcome);
        ReqPoll::Done(r)
    }
}

/// Drive one attempt of a task's current request, opening the span lazily
/// on the first attempt and closing the slot when the request finishes.
fn attempt<T>(
    c: &Crawler,
    req: &mut Option<ReqState>,
    label: impl FnOnce() -> String,
    f: impl FnOnce() -> Result<T>,
) -> ReqPoll<T> {
    let st = match req {
        Some(st) => st,
        None => req.insert(c.sched_begin(label())),
    };
    let p = c.sched_attempt(st, f);
    if matches!(p, ReqPoll::Done(_)) {
        *req = None;
    }
    p
}

/// The API server's virtual clock, seen through the scheduler's eyes:
/// `advance_to` is `ApiServer::advance_clock_to`, so the executor owns
/// every clock movement of a scheduled phase.
struct ApiClock<'a>(&'a ApiServer);

impl Clock for ApiClock<'_> {
    fn now(&self) -> u64 {
        self.0.now()
    }

    fn advance_to(&self, deadline_secs: u64) -> u64 {
        self.0.advance_clock_to(deadline_secs)
    }
}

/// Run a batch of tasks on the executor: `workers` OS threads, up to
/// `window` logical tasks in flight, waits billed to the crawler's span
/// ledger at fire time. Returns the tasks in input order.
fn run_tasks<S>(c: &Crawler, window: usize, tasks: Vec<S>) -> Result<Vec<S>>
where
    S: Task<Bill = WaitBill>,
{
    let ex = Executor::new(c.config.workers, window)?;
    let obs = &c.obs;
    Ok(ex.run(&ApiClock(c.api), tasks, |bill, applied| {
        obs.attribute_wait(bill.span, bill.phase, bill.cause, applied);
    }))
}

/// Take a finished task's output. The executor drains every task to
/// `Done`, so a missing output can only mean a task lied about being
/// done; surface it as an interrupt rather than unwrapping.
fn take_output<T>(out: Option<Result<T>>) -> Result<T> {
    out.unwrap_or(Err(FlockError::Interrupted))
}

// ---- §3.2: Twitter timelines ---------------------------------------------

type TwitterOut = (Vec<TimelineTweet>, TwitterCrawlOutcome, Option<String>);

/// State machine mirror of `Crawler::crawl_one_twitter_timeline`.
struct TwitterTimelineTask<'c, 'a> {
    c: &'c Crawler<'a>,
    m: &'c MatchedUser,
    timeline: Vec<TimelineTweet>,
    cursor: Option<String>,
    req: Option<ReqState>,
    out: Option<Result<TwitterOut>>,
}

impl TwitterTimelineTask<'_, '_> {
    fn finish(&mut self, outcome: TwitterCrawlOutcome, skip: Option<String>) -> Step<WaitBill> {
        self.out = Some(Ok((std::mem::take(&mut self.timeline), outcome, skip)));
        Step::Done
    }
}

impl Task for TwitterTimelineTask<'_, '_> {
    type Bill = WaitBill;

    fn poll(&mut self, _now: u64) -> Step<WaitBill> {
        if self.out.is_some() {
            return Step::Done;
        }
        let (c, m) = (self.c, self.m);
        let cursor = self.cursor.clone();
        let r = match attempt(
            c,
            &mut self.req,
            || format!("twitter_timeline:{}", m.twitter_id.0),
            || {
                c.api.twitter_timeline(
                    m.twitter_id,
                    Day::STUDY_START,
                    Day::STUDY_END,
                    cursor.as_deref(),
                )
            },
        ) {
            ReqPoll::Wait { until, bill } => return Step::Wait { until, bill },
            ReqPoll::Done(r) => r,
        };
        match r {
            Ok(page) => {
                self.timeline
                    .extend(page.items.into_iter().map(|t| TimelineTweet {
                        id: t.id,
                        day: t.day,
                        text: t.text,
                        source: t.source,
                    }));
                match page.next {
                    Some(cur) => {
                        self.cursor = Some(cur);
                        Step::Ready
                    }
                    None => self.finish(TwitterCrawlOutcome::Ok, None),
                }
            }
            Err(FlockError::Forbidden(msg)) => {
                let outcome = if msg.contains("suspended") {
                    TwitterCrawlOutcome::Suspended
                } else {
                    TwitterCrawlOutcome::Protected
                };
                self.finish(outcome, None)
            }
            Err(FlockError::NotFound(_)) => self.finish(TwitterCrawlOutcome::Deleted, None),
            Err(FlockError::Interrupted) => {
                self.out = Some(Err(FlockError::Interrupted));
                Step::Done
            }
            Err(e) if e.is_retryable() => {
                self.finish(TwitterCrawlOutcome::Unreachable, Some(e.to_string()))
            }
            Err(_) => self.finish(TwitterCrawlOutcome::Deleted, None),
        }
    }
}

/// Scheduled variant of the Twitter-timeline fan-out; results in
/// `matched` order, exactly like the worker-pool merge.
pub(crate) fn twitter_timelines(
    c: &Crawler,
    matched: &[MatchedUser],
    window: usize,
) -> Result<Vec<TwitterOut>> {
    let tasks: Vec<TwitterTimelineTask> = matched
        .iter()
        .map(|m| TwitterTimelineTask {
            c,
            m,
            timeline: Vec::new(),
            cursor: None,
            req: None,
            out: None,
        })
        .collect();
    let done = run_tasks(c, window, tasks)?;
    let mut merged = Vec::with_capacity(done.len());
    for t in done {
        merged.push(take_output(t.out)?);
    }
    Ok(merged)
}

// ---- §3.2: Mastodon timelines --------------------------------------------

type MastodonOut = (Vec<TimelineStatus>, MastodonCrawlOutcome, Option<String>);

/// State machine mirror of `Crawler::crawl_one_mastodon_timeline`: walk
/// each source handle's status pages (a switched user's pre-move statuses
/// live on the first instance), then classify.
struct MastodonTimelineTask<'c, 'a> {
    c: &'c Crawler<'a>,
    sources: Vec<MastodonHandle>,
    src: usize,
    cursor: Option<String>,
    statuses: Vec<TimelineStatus>,
    any_down: bool,
    skip: Option<String>,
    req: Option<ReqState>,
    out: Option<Result<MastodonOut>>,
}

impl MastodonTimelineTask<'_, '_> {
    fn next_source(&mut self) -> Step<WaitBill> {
        self.src += 1;
        self.cursor = None;
        Step::Ready
    }

    fn finalize(&mut self) -> Step<WaitBill> {
        let mut statuses = std::mem::take(&mut self.statuses);
        let out = if statuses.is_empty() {
            if self.any_down {
                (statuses, MastodonCrawlOutcome::InstanceDown, None)
            } else if self.skip.is_some() {
                (
                    statuses,
                    MastodonCrawlOutcome::Unreachable,
                    self.skip.take(),
                )
            } else {
                (statuses, MastodonCrawlOutcome::NoStatuses, None)
            }
        } else {
            statuses.sort_by_key(|s| s.day);
            (statuses, MastodonCrawlOutcome::Ok, None)
        };
        self.out = Some(Ok(out));
        Step::Done
    }
}

impl Task for MastodonTimelineTask<'_, '_> {
    type Bill = WaitBill;

    fn poll(&mut self, _now: u64) -> Step<WaitBill> {
        if self.out.is_some() {
            return Step::Done;
        }
        let Some(src) = self.sources.get(self.src).cloned() else {
            return self.finalize();
        };
        let c = self.c;
        let cursor = self.cursor.clone();
        let r = match attempt(
            c,
            &mut self.req,
            || format!("statuses:{src}"),
            || c.api.mastodon_account_statuses(&src, cursor.as_deref()),
        ) {
            ReqPoll::Wait { until, bill } => return Step::Wait { until, bill },
            ReqPoll::Done(r) => r,
        };
        match r {
            Ok(page) => {
                self.statuses
                    .extend(page.items.into_iter().map(|s| TimelineStatus {
                        day: s.day,
                        text: s.content,
                    }));
                match page.next {
                    Some(cur) => {
                        self.cursor = Some(cur);
                        Step::Ready
                    }
                    None => self.next_source(),
                }
            }
            Err(FlockError::InstanceUnavailable(_)) => {
                self.any_down = true;
                self.next_source()
            }
            Err(FlockError::Interrupted) => {
                self.out = Some(Err(FlockError::Interrupted));
                Step::Done
            }
            Err(e) if e.is_retryable() => {
                self.skip = Some(e.to_string());
                self.next_source()
            }
            Err(_) => self.next_source(),
        }
    }
}

/// Scheduled variant of the Mastodon-timeline fan-out; results in
/// `matched` order.
pub(crate) fn mastodon_timelines(
    c: &Crawler,
    matched: &[MatchedUser],
    window: usize,
) -> Result<Vec<MastodonOut>> {
    let tasks: Vec<MastodonTimelineTask> = matched
        .iter()
        .map(|m| {
            let mut sources = vec![m.resolved_handle.clone()];
            if m.switched() {
                sources.push(m.handle.clone());
            }
            MastodonTimelineTask {
                c,
                sources,
                src: 0,
                cursor: None,
                statuses: Vec::new(),
                any_down: false,
                skip: None,
                req: None,
                out: None,
            }
        })
        .collect();
    let done = run_tasks(c, window, tasks)?;
    let mut merged = Vec::with_capacity(done.len());
    for t in done {
        merged.push(take_output(t.out)?);
    }
    Ok(merged)
}

// ---- §3.3: followees ------------------------------------------------------

type FolloweeOut = (Option<FolloweeRecord>, Option<String>);

enum FolloweeStage {
    Twitter,
    Mastodon,
}

/// State machine mirror of `Crawler::crawl_one_followees`: the Twitter
/// side first (the endpoint the record hinges on), then the Mastodon
/// side, which the record survives without.
struct FolloweeTask<'c, 'a> {
    c: &'c Crawler<'a>,
    m: &'c MatchedUser,
    stage: FolloweeStage,
    twitter: Vec<TwitterUserId>,
    mastodon: Vec<MastodonHandle>,
    cursor: Option<String>,
    req: Option<ReqState>,
    out: Option<Result<FolloweeOut>>,
}

impl FolloweeTask<'_, '_> {
    fn finish_record(&mut self) -> Step<WaitBill> {
        self.out = Some(Ok((
            Some(FolloweeRecord {
                twitter: std::mem::take(&mut self.twitter),
                mastodon: std::mem::take(&mut self.mastodon),
            }),
            None,
        )));
        Step::Done
    }
}

impl Task for FolloweeTask<'_, '_> {
    type Bill = WaitBill;

    fn poll(&mut self, _now: u64) -> Step<WaitBill> {
        if self.out.is_some() {
            return Step::Done;
        }
        let (c, m) = (self.c, self.m);
        let cursor = self.cursor.clone();
        match self.stage {
            FolloweeStage::Twitter => {
                let r = match attempt(
                    c,
                    &mut self.req,
                    || format!("twitter_following:{}", m.twitter_id.0),
                    || c.api.twitter_following(m.twitter_id, cursor.as_deref()),
                ) {
                    ReqPoll::Wait { until, bill } => return Step::Wait { until, bill },
                    ReqPoll::Done(r) => r,
                };
                match r {
                    Ok(page) => {
                        self.twitter.extend(page.items);
                        match page.next {
                            Some(cur) => self.cursor = Some(cur),
                            None => {
                                self.stage = FolloweeStage::Mastodon;
                                self.cursor = None;
                            }
                        }
                        Step::Ready
                    }
                    Err(FlockError::Interrupted) => {
                        self.out = Some(Err(FlockError::Interrupted));
                        Step::Done
                    }
                    // Chaos/transient exhaustion is a coverage gap worth
                    // reporting; protected or deleted accounts are
                    // expected states and skip silently.
                    Err(e) if e.is_retryable() => {
                        self.out = Some(Ok((None, Some(e.to_string()))));
                        Step::Done
                    }
                    Err(_) => {
                        self.out = Some(Ok((None, None)));
                        Step::Done
                    }
                }
            }
            FolloweeStage::Mastodon => {
                let r = match attempt(
                    c,
                    &mut self.req,
                    || format!("mastodon_following:{}", m.resolved_handle),
                    || {
                        c.api
                            .mastodon_account_following(&m.resolved_handle, cursor.as_deref())
                    },
                ) {
                    ReqPoll::Wait { until, bill } => return Step::Wait { until, bill },
                    ReqPoll::Done(r) => r,
                };
                match r {
                    Ok(page) => {
                        self.mastodon.extend(page.items);
                        match page.next {
                            Some(cur) => {
                                self.cursor = Some(cur);
                                Step::Ready
                            }
                            None => self.finish_record(),
                        }
                    }
                    Err(FlockError::Interrupted) => {
                        self.out = Some(Err(FlockError::Interrupted));
                        Step::Done
                    }
                    // The record survives without the Mastodon side.
                    Err(_) => self.finish_record(),
                }
            }
        }
    }
}

/// Scheduled variant of the followee fan-out; results in `targets` order.
pub(crate) fn followees(
    c: &Crawler,
    targets: &[MatchedUser],
    window: usize,
) -> Result<Vec<FolloweeOut>> {
    let tasks: Vec<FolloweeTask> = targets
        .iter()
        .map(|m| FolloweeTask {
            c,
            m,
            stage: FolloweeStage::Twitter,
            twitter: Vec::new(),
            mastodon: Vec::new(),
            cursor: None,
            req: None,
            out: None,
        })
        .collect();
    let done = run_tasks(c, window, tasks)?;
    let mut merged = Vec::with_capacity(done.len());
    for t in done {
        merged.push(take_output(t.out)?);
    }
    Ok(merged)
}

// ---- Fig. 3 cross-check: weekly activity ----------------------------------

/// Per-instance outcome of the scheduled weekly-activity crawl, merged
/// into the dataset by the caller in `domains` order.
pub(crate) enum WeeklyOutcome {
    Rows(Vec<ActivityRow>),
    /// Down instances simply stay absent.
    Down,
    /// Retries exhausted; recorded as a coverage gap.
    Skipped(String),
}

struct WeeklyActivityTask<'c, 'a> {
    c: &'c Crawler<'a>,
    domain: &'c str,
    req: Option<ReqState>,
    out: Option<Result<WeeklyOutcome>>,
}

impl Task for WeeklyActivityTask<'_, '_> {
    type Bill = WaitBill;

    fn poll(&mut self, _now: u64) -> Step<WaitBill> {
        if self.out.is_some() {
            return Step::Done;
        }
        let (c, domain) = (self.c, self.domain);
        let r = match attempt(
            c,
            &mut self.req,
            || format!("weekly_activity:{domain}"),
            || c.api.mastodon_instance_activity(domain),
        ) {
            ReqPoll::Wait { until, bill } => return Step::Wait { until, bill },
            ReqPoll::Done(r) => r,
        };
        self.out = Some(match r {
            Ok(rows) => Ok(WeeklyOutcome::Rows(rows)),
            Err(FlockError::InstanceUnavailable(_)) => Ok(WeeklyOutcome::Down),
            Err(e) if e.is_retryable() => Ok(WeeklyOutcome::Skipped(e.to_string())),
            Err(e) => Err(e),
        });
        Step::Done
    }
}

/// Scheduled variant of the weekly-activity crawl; outcomes in `domains`
/// order, so coverage gaps are recorded in the same order the legacy
/// serial loop records them.
pub(crate) fn weekly_activity(
    c: &Crawler,
    domains: &[String],
    window: usize,
) -> Result<Vec<WeeklyOutcome>> {
    let tasks: Vec<WeeklyActivityTask> = domains
        .iter()
        .map(|domain| WeeklyActivityTask {
            c,
            domain,
            req: None,
            out: None,
        })
        .collect();
    let done = run_tasks(c, window, tasks)?;
    let mut merged = Vec::with_capacity(done.len());
    for t in done {
        merged.push(take_output(t.out)?);
    }
    Ok(merged)
}

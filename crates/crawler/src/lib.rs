//! # flock-crawler — the paper's data-collection pipeline (§3)
//!
//! This crate is the measurement instrument under reproduction: it talks
//! only to the simulated API surface (`flock-apis`) and rediscovers the
//! migration the way the paper did — instance list, tweet search, the
//! hierarchical bio-then-tweet handle matcher with its username-equality
//! guard, both timeline crawls with their coverage taxonomies, the 10%
//! median-stratified followee sample, and the weekly-activity cross-check.
//!
//! The output is a [`dataset::Dataset`]: the observed (not ground-truth)
//! view that `flock-analysis` computes every figure from.
//!
//! ```no_run
//! use flock_crawler::prelude::*;
//! use flock_apis::ApiServer;
//! use flock_fedisim::{World, WorldConfig};
//! use std::sync::Arc;
//!
//! let world = Arc::new(World::generate(&WorldConfig::small()).unwrap());
//! let api = ApiServer::with_defaults(world).unwrap();
//! let dataset = crawl(&api).unwrap();
//! println!("identified {} migrants", dataset.matched.len());
//! ```

pub mod checkpoint;
pub mod csv;
pub mod dataset;
pub mod persist;
pub mod pipeline;
pub(crate) mod tasks;
pub mod worker_pool;

pub mod prelude {
    pub use crate::checkpoint::Checkpoint;
    pub use crate::csv::{tweets_from_csv, tweets_to_csv};
    pub use crate::dataset::{
        CollectedTweet, CoverageReport, CrawlStats, Dataset, FolloweeRecord, MastodonCrawlOutcome,
        MatchSource, MatchedUser, QueryKind, SkippedItem, TimelineStatus, TimelineTweet,
        TwitterCrawlOutcome,
    };
    pub use crate::pipeline::{crawl, migration_queries, Crawler, CrawlerConfig, PHASES};
}

pub use prelude::*;

//! RFC-4180 CSV export of the collected-tweet table.
//!
//! The JSON dataset (see [`crate::persist`]) is the full release artifact;
//! the CSV view exists for spreadsheet- and pandas-style consumers of the
//! §3.1 search results. Tweet text is adversarial by construction — the
//! text simulator emits commas, quotes, and handles, and real release data
//! would contain newlines — so the writer quotes per RFC 4180 (double any
//! embedded `"`, quote any field containing `,`, `"`, CR, or LF) and the
//! reader is strict: ragged rows, unterminated quotes, bare quotes inside
//! unquoted fields, and unknown enum spellings are all
//! [`FlockError::MalformedRecord`], never silently-corrupted rows.

use crate::dataset::{CollectedTweet, QueryKind};
use flock_core::{Day, FlockError, Result, TweetId, TwitterUserId};

/// Column order of the export, also written as the header row.
const HEADER: &str = "id,author,day,source,via,text";

fn via_str(via: QueryKind) -> &'static str {
    match via {
        QueryKind::Keyword => "keyword",
        QueryKind::Hashtag => "hashtag",
        QueryKind::InstanceLink => "instance_link",
    }
}

fn via_parse(s: &str) -> Result<QueryKind> {
    match s {
        "keyword" => Ok(QueryKind::Keyword),
        "hashtag" => Ok(QueryKind::Hashtag),
        "instance_link" => Ok(QueryKind::InstanceLink),
        other => Err(FlockError::MalformedRecord(format!(
            "unknown query kind {other:?}"
        ))),
    }
}

/// Quote a field iff RFC 4180 requires it.
fn escape_field(field: &str) -> String {
    if field.contains(['"', ',', '\r', '\n']) {
        let mut out = String::with_capacity(field.len() + 2);
        out.push('"');
        for c in field.chars() {
            if c == '"' {
                out.push('"');
            }
            out.push(c);
        }
        out.push('"');
        out
    } else {
        field.to_string()
    }
}

/// Serialize collected tweets to RFC-4180 CSV (header + one row per tweet,
/// `\r\n` row terminators as the RFC specifies).
pub fn tweets_to_csv(tweets: &[CollectedTweet]) -> String {
    let mut out = String::new();
    out.push_str(HEADER);
    out.push_str("\r\n");
    for t in tweets {
        out.push_str(&t.id.raw().to_string());
        out.push(',');
        out.push_str(&t.author.raw().to_string());
        out.push(',');
        out.push_str(&t.day.0.to_string());
        out.push(',');
        out.push_str(&escape_field(&t.source));
        out.push(',');
        out.push_str(via_str(t.via));
        out.push(',');
        out.push_str(&escape_field(&t.text));
        out.push_str("\r\n");
    }
    out
}

/// One decoded record: the fields of a row, in order.
type Row = Vec<String>;

/// Strict RFC-4180 tokenizer. Returns rows of fields; rejects a quote
/// appearing mid-field outside quoting and quoted fields that never close.
fn parse_rows(input: &str) -> Result<Vec<Row>> {
    let mut rows = Vec::new();
    let mut row: Row = Vec::new();
    let mut field = String::new();
    let mut chars = input.chars().peekable();
    // Distinguish "empty field" from "no field yet" only at row ends: a
    // trailing newline ends the file, it does not open an empty row.
    let mut in_quotes = false;
    let mut row_started = false;
    while let Some(c) = chars.next() {
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                _ => field.push(c),
            }
            continue;
        }
        match c {
            '"' => {
                if field.is_empty() {
                    in_quotes = true;
                    row_started = true;
                } else {
                    return Err(FlockError::MalformedRecord(format!(
                        "bare quote inside unquoted field at row {}",
                        rows.len() + 2
                    )));
                }
            }
            ',' => {
                row.push(std::mem::take(&mut field));
                row_started = true;
            }
            '\r' | '\n' => {
                if c == '\r' && chars.peek() == Some(&'\n') {
                    chars.next();
                }
                if row_started || !field.is_empty() {
                    row.push(std::mem::take(&mut field));
                    rows.push(std::mem::take(&mut row));
                }
                row_started = false;
            }
            _ => {
                field.push(c);
                row_started = true;
            }
        }
    }
    if in_quotes {
        return Err(FlockError::MalformedRecord(
            "unterminated quoted field at end of input".into(),
        ));
    }
    if row_started || !field.is_empty() {
        row.push(field);
        rows.push(row);
    }
    Ok(rows)
}

fn parse_num<T: std::str::FromStr>(s: &str, what: &str, line: usize) -> Result<T> {
    s.parse().map_err(|_| {
        FlockError::MalformedRecord(format!("row {line}: {what} is not a number: {s:?}"))
    })
}

/// Parse CSV produced by [`tweets_to_csv`] back into records. Strict: the
/// header must match, every row must have exactly six fields, and numeric /
/// enum fields must decode.
pub fn tweets_from_csv(input: &str) -> Result<Vec<CollectedTweet>> {
    let rows = parse_rows(input)?;
    let mut iter = rows.into_iter();
    let header = iter
        .next()
        .ok_or_else(|| FlockError::MalformedRecord("empty CSV input".into()))?;
    if header.join(",") != HEADER {
        return Err(FlockError::MalformedRecord(format!(
            "unexpected header: {:?}",
            header.join(",")
        )));
    }
    let mut out = Vec::new();
    for (i, row) in iter.enumerate() {
        let line = i + 2; // 1-based, after the header
        if row.len() != 6 {
            return Err(FlockError::MalformedRecord(format!(
                "row {line}: expected 6 fields, found {}",
                row.len()
            )));
        }
        out.push(CollectedTweet {
            id: TweetId(parse_num(&row[0], "id", line)?),
            author: TwitterUserId(parse_num(&row[1], "author", line)?),
            day: Day(parse_num(&row[2], "day", line)?),
            source: row[3].clone(),
            via: via_parse(&row[4])
                .map_err(|e| FlockError::MalformedRecord(format!("row {line}: {e}")))?,
            text: row[5].clone(),
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use flock_core::DetRng;
    use flock_textsim::{PostGenerator, Topic};

    fn tweet(id: u64, text: &str, source: &str, via: QueryKind) -> CollectedTweet {
        CollectedTweet {
            id: TweetId(id),
            author: TwitterUserId(id * 7),
            day: Day(28),
            text: text.into(),
            source: source.into(),
            via,
        }
    }

    #[test]
    fn plain_rows_round_trip() {
        let tweets = vec![
            tweet(
                1,
                "leaving for mastodon",
                "Twitter Web App",
                QueryKind::Keyword,
            ),
            tweet(2, "#TwitterMigration", "Tweetbot", QueryKind::Hashtag),
        ];
        let csv = tweets_to_csv(&tweets);
        let back = tweets_from_csv(&csv).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].text, tweets[0].text);
        assert_eq!(back[1].via, QueryKind::Hashtag);
        assert_eq!(back[1].day, Day(28));
    }

    #[test]
    fn adversarial_fields_round_trip() {
        // Every RFC-4180 special in one corpus: commas, quotes, both
        // newline conventions, leading/trailing whitespace, empty text.
        let cases = [
            "hello, world",
            "she said \"bye\"",
            "line one\nline two",
            "crlf\r\nrow",
            "\"fully quoted\"",
            ",,,",
            "",
            "  padded  ",
            "mixed, \"all\" of\nthe, above\r\n\"ok\"",
        ];
        let tweets: Vec<CollectedTweet> = cases
            .iter()
            .enumerate()
            .map(|(i, text)| tweet(i as u64, text, "App, \"v2\"", QueryKind::InstanceLink))
            .collect();
        let csv = tweets_to_csv(&tweets);
        let back = tweets_from_csv(&csv).unwrap();
        assert_eq!(back.len(), tweets.len());
        for (a, b) in tweets.iter().zip(&back) {
            assert_eq!(a.text, b.text);
            assert_eq!(a.source, b.source);
            assert_eq!(a.id, b.id);
        }
    }

    #[test]
    fn simulated_post_text_round_trips() {
        // Generated migration-era post text, spiked with the characters the
        // generator itself may or may not emit — the writer must not care.
        let mut rng = DetRng::new(1);
        let gen = PostGenerator::default();
        let tweets: Vec<CollectedTweet> = (0..50)
            .map(|i| {
                let mut text = gen.generate(Topic::Fediverse, &mut rng);
                if i % 3 == 0 {
                    text.push_str(", \"so long\"\nsee you @there@example.social");
                }
                tweet(i, &text, "Twitter for iPhone", QueryKind::Keyword)
            })
            .collect();
        let back = tweets_from_csv(&tweets_to_csv(&tweets)).unwrap();
        assert_eq!(back.len(), tweets.len());
        for (a, b) in tweets.iter().zip(&back) {
            assert_eq!(a.text, b.text);
        }
    }

    #[test]
    fn strict_parser_rejects_malformed_input() {
        let reject = |input: &str, why: &str| {
            let got = tweets_from_csv(input);
            assert!(
                matches!(got, Err(FlockError::MalformedRecord(_))),
                "{why}: expected MalformedRecord, got {got:?}"
            );
        };
        reject("", "empty input");
        reject("id,author\r\n", "wrong header");
        reject(&format!("{HEADER}\r\n1,2,28,app\r\n"), "ragged row (short)");
        reject(
            &format!("{HEADER}\r\n1,2,28,app,keyword,x,extra\r\n"),
            "ragged row (long)",
        );
        reject(
            &format!("{HEADER}\r\n1,2,28,app,keyword,\"open\r\n"),
            "unterminated quote",
        );
        reject(
            &format!("{HEADER}\r\n1,2,28,ap\"p,keyword,x\r\n"),
            "bare quote in unquoted field",
        );
        reject(
            &format!("{HEADER}\r\n1,2,28,app,telepathy,x\r\n"),
            "unknown query kind",
        );
        reject(
            &format!("{HEADER}\r\nnope,2,28,app,keyword,x\r\n"),
            "non-numeric id",
        );
    }

    #[test]
    fn header_only_is_empty_not_error() {
        assert!(tweets_from_csv(&format!("{HEADER}\r\n"))
            .unwrap()
            .is_empty());
        // Trailing newline variants and a lone LF terminator also parse.
        assert!(tweets_from_csv(HEADER).unwrap().is_empty());
        assert!(tweets_from_csv(&format!("{HEADER}\n")).unwrap().is_empty());
    }

    #[test]
    fn negative_days_and_lf_rows_parse() {
        let csv = format!("{HEADER}\n5,35,-120,app,hashtag,hello\n");
        let back = tweets_from_csv(&csv).unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].day, Day(-120));
        assert_eq!(back[0].author, TwitterUserId(35));
    }
}

//! The dataset the crawl produces — everything downstream analysis sees.
//!
//! Nothing in here is ground truth: every field was observed through the
//! public API surface, with the same blind spots the paper had (deleted
//! accounts, protected tweets, down instances, handles nobody announced).

use flock_apis::types::{ActivityRow, InstanceInfoObject, MastodonAccountObject};
use flock_core::{Day, MastodonHandle, SortedVecMap, TweetId, TwitterUserId};
use serde::{Deserialize, Serialize};

/// Which §3.1 query family matched a collected tweet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum QueryKind {
    /// A keyword / phrase query ('mastodon', "bye bye twitter", …).
    Keyword,
    /// A migration hashtag query (#TwitterMigration, …).
    Hashtag,
    /// An instance-link query (`url:"mastodon.social"`, …).
    InstanceLink,
}

/// A tweet captured by the §3.1 search.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CollectedTweet {
    pub id: TweetId,
    pub author: TwitterUserId,
    pub day: Day,
    pub text: String,
    pub source: String,
    /// First query family that surfaced it.
    pub via: QueryKind,
}

/// How a Twitter→Mastodon mapping was established (§3.1's hierarchy).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MatchSource {
    /// Handle found in profile metadata (bio) — accepted for any username.
    Bio,
    /// Handle found in tweet text — accepted only when the Twitter and
    /// Mastodon usernames are identical.
    TweetText,
}

/// An identified migrant: a Twitter account mapped to a Mastodon handle.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MatchedUser {
    pub twitter_id: TwitterUserId,
    pub twitter_username: String,
    pub twitter_created: Day,
    pub verified: bool,
    pub twitter_followers: u64,
    pub twitter_followees: u64,
    /// The handle as announced.
    pub handle: MastodonHandle,
    pub matched_via: MatchSource,
    /// Day of the user's earliest collected migration tweet — the visible
    /// announcement. Used as the join-date proxy when the Mastodon account
    /// itself is unreachable (the paper could always see announcement
    /// dates).
    pub first_seen: Option<Day>,
    /// The account after following any `moved_to` redirect.
    pub resolved_handle: MastodonHandle,
    /// Account object fetched from the (reachable) instance.
    pub account: Option<MastodonAccountObject>,
    /// The original account object when a `moved_to` redirect was followed
    /// (i.e. the user switched instance, §5.3).
    pub first_account: Option<MastodonAccountObject>,
}

impl MatchedUser {
    /// Did this user switch instance (observable via `moved_to`)?
    pub fn switched(&self) -> bool {
        self.resolved_handle != self.handle
    }
}

/// Why a Twitter timeline crawl failed — the §3.2 coverage taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TwitterCrawlOutcome {
    Ok,
    Suspended,
    Deleted,
    Protected,
    /// Transient retries exhausted (fault injection / chaos): the account
    /// may exist, but the crawler could not retrieve its timeline.
    Unreachable,
}

/// Why a Mastodon timeline crawl yielded nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MastodonCrawlOutcome {
    Ok,
    /// The account exists but has zero statuses (paper: 9.20%).
    NoStatuses,
    /// The instance was unreachable at crawl time (paper: 11.58%).
    InstanceDown,
    /// Transient retries exhausted (fault injection / chaos): the instance
    /// answered, but the timeline could not be retrieved.
    Unreachable,
}

/// One piece of work the crawler gave up on after exhausting its retries —
/// the graceful-degradation record chaos scenarios leave behind.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SkippedItem {
    /// Pipeline phase that skipped the item (e.g. `expand.followees`).
    pub phase: String,
    /// What was skipped, human-readable and stable for a given seed.
    pub item: String,
    /// The error that exhausted the retries.
    pub reason: String,
}

/// Everything the crawl skipped and why. Entries are recorded in phase
/// order and, within a phase, in the phase's deterministic work order, so
/// the report is byte-identical across worker counts for a given seed and
/// fault plan.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoverageReport {
    pub skipped: Vec<SkippedItem>,
}

impl CoverageReport {
    /// Record one skipped item.
    pub fn record_skip(
        &mut self,
        phase: &str,
        item: impl Into<String>,
        reason: impl std::fmt::Display,
    ) {
        self.skipped.push(SkippedItem {
            phase: phase.to_string(),
            item: item.into(),
            reason: reason.to_string(),
        });
    }

    /// Number of skipped items.
    pub fn len(&self) -> usize {
        self.skipped.len()
    }

    /// True when nothing was skipped.
    pub fn is_empty(&self) -> bool {
        self.skipped.is_empty()
    }

    /// Per-phase skip counts, one `phase: n` line each, phase order.
    pub fn summary(&self) -> String {
        let mut counts: Vec<(&str, usize)> = Vec::new();
        for s in &self.skipped {
            match counts.iter_mut().find(|(p, _)| *p == s.phase) {
                Some((_, n)) => *n += 1,
                None => counts.push((&s.phase, 1)),
            }
        }
        counts
            .iter()
            .map(|(p, n)| format!("{p}: {n}"))
            .collect::<Vec<_>>()
            .join("\n")
    }
}

/// A crawled tweet in a user's timeline (the §3.2 corpus).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TimelineTweet {
    pub id: TweetId,
    pub day: Day,
    pub text: String,
    pub source: String,
}

/// A crawled Mastodon status.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TimelineStatus {
    pub day: Day,
    pub text: String,
}

/// Followee data for one sampled user (§3.3).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FolloweeRecord {
    /// Twitter accounts the user follows.
    pub twitter: Vec<TwitterUserId>,
    /// Mastodon accounts the user follows (resolved handles).
    pub mastodon: Vec<MastodonHandle>,
}

/// Counters for the crawl's interaction with the APIs.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct CrawlStats {
    pub requests: u64,
    pub rate_limited: u64,
    pub transient_failures: u64,
    /// Virtual seconds of API time the crawl consumed.
    pub virtual_secs: u64,
}

/// The §3 dataset.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Dataset {
    /// The instances.social-style seed list.
    pub instance_list: Vec<String>,
    /// Every tweet the §3.1 search captured (deduplicated).
    pub collected_tweets: Vec<CollectedTweet>,
    /// Distinct authors in `collected_tweets`.
    pub searched_users: usize,
    /// Identified migrants, §3.1.
    pub matched: Vec<MatchedUser>,
    /// §3.2 Twitter timelines (only for `Ok` outcomes).
    #[serde(with = "as_pairs")]
    pub twitter_timelines: SortedVecMap<TwitterUserId, Vec<TimelineTweet>>,
    /// §3.2 crawl outcome per matched user.
    #[serde(with = "as_pairs")]
    pub twitter_outcomes: SortedVecMap<TwitterUserId, TwitterCrawlOutcome>,
    /// §3.2 Mastodon timelines keyed by resolved handle.
    #[serde(with = "as_pairs")]
    pub mastodon_timelines: SortedVecMap<MastodonHandle, Vec<TimelineStatus>>,
    /// §3.2 Mastodon outcome per matched user (keyed by Twitter id).
    #[serde(with = "as_pairs")]
    pub mastodon_outcomes: SortedVecMap<TwitterUserId, MastodonCrawlOutcome>,
    /// §3.3 followee sample (keyed by Twitter id; ~10% of matched users).
    #[serde(with = "as_pairs")]
    pub followees: SortedVecMap<TwitterUserId, FolloweeRecord>,
    /// §3.1 cross-check: weekly activity per instance domain.
    pub weekly_activity: SortedVecMap<String, Vec<ActivityRow>>,
    /// Public per-instance metadata (registered users incl. background —
    /// what instances.social reported for the landing instances).
    #[serde(default)]
    pub instance_info: SortedVecMap<String, InstanceInfoObject>,
    /// What the crawl skipped after exhausting retries, and why — the
    /// degradation record a chaos scenario leaves behind. Empty on a
    /// fault-free crawl of fully-crawlable users.
    #[serde(default)]
    pub coverage: CoverageReport,
    /// Crawl accounting.
    pub stats: CrawlStats,
}

impl Dataset {
    /// Instances that actually received matched users.
    pub fn landing_instances(&self) -> Vec<String> {
        let mut set: Vec<String> = self
            .matched
            .iter()
            .map(|m| m.resolved_handle.instance().to_string())
            .collect();
        set.sort();
        set.dedup();
        set
    }

    /// Matched users that live on a given instance (post-redirect).
    pub fn users_on_instance(&self, domain: &str) -> Vec<&MatchedUser> {
        self.matched
            .iter()
            .filter(|m| m.resolved_handle.instance() == domain)
            .collect()
    }

    /// Find a matched user by Twitter id.
    pub fn matched_by_id(&self, id: TwitterUserId) -> Option<&MatchedUser> {
        self.matched.iter().find(|m| m.twitter_id == id)
    }
}

/// Serialize maps with non-string keys (ids, handles) as JSON pair lists.
/// The output bytes are identical to the previous `BTreeMap`-backed
/// encoding: a `SortedVecMap` iterates in ascending key order too.
pub(crate) mod as_pairs {
    use flock_core::SortedVecMap;
    use serde::de::DeserializeOwned;
    use serde::{Deserialize, Deserializer, Serialize, Serializer};

    pub fn serialize<K, V, S>(map: &SortedVecMap<K, V>, s: S) -> Result<S::Ok, S::Error>
    where
        K: Serialize + Ord,
        V: Serialize,
        S: Serializer,
    {
        // A SortedVecMap already iterates in key order, so output is stable.
        let pairs: Vec<(&K, &V)> = map.iter().collect();
        pairs.serialize(s)
    }

    pub fn deserialize<'de, K, V, D>(d: D) -> Result<SortedVecMap<K, V>, D::Error>
    where
        K: DeserializeOwned + Ord,
        V: DeserializeOwned,
        D: Deserializer<'de>,
    {
        let pairs: Vec<(K, V)> = Vec::deserialize(d)?;
        Ok(pairs.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn handle(s: &str) -> MastodonHandle {
        s.parse().unwrap()
    }

    fn matched(u: &str, h: &str, resolved: &str) -> MatchedUser {
        MatchedUser {
            twitter_id: TwitterUserId(1),
            twitter_username: u.into(),
            twitter_created: Day(-1000),
            verified: false,
            twitter_followers: 10,
            twitter_followees: 20,
            handle: handle(h),
            matched_via: MatchSource::Bio,
            first_seen: None,
            resolved_handle: handle(resolved),
            account: None,
            first_account: None,
        }
    }

    #[test]
    fn switched_detection() {
        let stay = matched("a", "@a@one.example", "@a@one.example");
        assert!(!stay.switched());
        let moved = matched("b", "@b@one.example", "@b@two.example");
        assert!(moved.switched());
    }

    #[test]
    fn landing_instances_dedup_sorted() {
        let mut d = Dataset::default();
        d.matched.push(matched("a", "@a@b.example", "@a@b.example"));
        d.matched.push(matched("c", "@c@a.example", "@c@a.example"));
        d.matched.push(matched("d", "@d@b.example", "@d@b.example"));
        assert_eq!(d.landing_instances(), vec!["a.example", "b.example"]);
        assert_eq!(d.users_on_instance("b.example").len(), 2);
    }
}

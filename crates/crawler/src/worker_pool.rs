//! A small fixed-size worker pool over crossbeam scoped threads.
//!
//! Every parallel crawl phase has the same shape: a read-only slice of work
//! items, a per-item function that talks to the API server, and a need for
//! the combined result to be **independent of scheduling** — the paper
//! pipeline promises bit-identical datasets for a given seed no matter how
//! many workers run. This helper centralises that shape:
//!
//! * workers pull item *indexes* off a shared atomic counter (dynamic load
//!   balancing, no per-item channel traffic);
//! * results carry their input index and are merged back **in input
//!   order**, so downstream code never observes completion order;
//! * a panic in any worker propagates to the caller (no half-merged data).
//!
//! This is the legacy thread-per-worker execution path; the discrete-event
//! scheduler (`flock-sched`, [`crate::pipeline::CrawlerConfig::tasks`])
//! multiplexes logical tasks over the same worker-slot model without
//! pinning a thread per in-flight request.

use flock_core::{FlockError, Result};
use flock_obs::Gauge;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Run `f` over every item of `items` on up to `workers` threads and return
/// the results in input order. `f` receives `(index, &item)`.
///
/// `workers == 0` is a typed configuration error — a zero used to be
/// silently clamped to 1, which made `--workers 0` behave like
/// `--workers 1` instead of failing loudly. With a single worker (or a
/// single item) the pool degrades to a plain in-place loop — same code
/// path the multi-worker case reduces to, so a one-worker crawl and an
/// eight-worker crawl produce identical output by construction.
pub fn run<T, R, F>(workers: usize, items: &[T], f: F) -> Result<Vec<R>>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    run_gauged(workers, items, None, f)
}

/// [`run`], additionally tracking how many items are still unclaimed in an
/// observability gauge (scheduling-tier: the instantaneous depth depends
/// on thread timing, but the high-watermark is the input length by
/// construction). `None` skips all instrumentation.
pub fn run_gauged<T, R, F>(
    workers: usize,
    items: &[T],
    depth: Option<&Gauge>,
    f: F,
) -> Result<Vec<R>>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    if workers == 0 {
        return Err(FlockError::InvalidConfig(
            "worker pool needs at least one worker (workers = 0)".to_string(),
        ));
    }
    let report = |claimed: usize| {
        if let Some(g) = depth {
            g.set(items.len().saturating_sub(claimed) as u64);
        }
    };
    let workers = workers.min(items.len()).max(1);
    if workers <= 1 {
        // Serial runs are still "worker 0" to the trace layer, so spans
        // carry a worker slot at every worker count.
        let _trace = flock_obs::trace::worker_scope(0);
        return Ok(items
            .iter()
            .enumerate()
            .map(|(i, item)| {
                report(i);
                f(i, item)
            })
            .collect());
    }
    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(items.len()));
    crossbeam::scope(|scope| {
        let next = &next;
        let slots = &slots;
        let f = &f;
        let report = &report;
        for slot in 0..workers {
            scope.spawn(move |_| {
                let _trace = flock_obs::trace::worker_scope(slot);
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    report(i);
                    let r = f(i, &items[i]);
                    slots.lock().push((i, r));
                }
            });
        }
    })
    // flock-lint: allow(panic) a panicked worker already poisoned the crawl; re-raise on the coordinator
    .expect("crawl worker panicked");
    let mut out = slots.into_inner();
    // Completion order is scheduling noise; input order is the contract.
    out.sort_by_key(|(i, _)| *i);
    debug_assert_eq!(out.len(), items.len());
    Ok(out.into_iter().map(|(_, r)| r).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn preserves_input_order() {
        let items: Vec<usize> = (0..500).collect();
        let out = run(8, &items, |i, &x| {
            assert_eq!(i, x);
            x * 2
        })
        .unwrap();
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn worker_counts_agree() {
        let items: Vec<u64> = (0..97).collect();
        let serial = run(1, &items, |_, &x| x * x + 1).unwrap();
        for w in [2, 3, 8, 64] {
            assert_eq!(
                run(w, &items, |_, &x| x * x + 1).unwrap(),
                serial,
                "workers={w}"
            );
        }
    }

    #[test]
    fn zero_workers_is_a_typed_error_not_a_clamp() {
        let items: Vec<usize> = (0..4).collect();
        match run(0, &items, |_, &x| x) {
            Err(FlockError::InvalidConfig(msg)) => assert!(msg.contains("workers")),
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
        // Even with no items there is nothing to clamp silently.
        let empty: Vec<usize> = Vec::new();
        assert!(matches!(
            run(0, &empty, |_, &x| x),
            Err(FlockError::InvalidConfig(_))
        ));
    }

    #[test]
    fn every_item_processed_exactly_once() {
        let items: Vec<usize> = (0..1000).collect();
        let hits = AtomicUsize::new(0);
        let out = run(8, &items, |_, _| {
            hits.fetch_add(1, Ordering::Relaxed);
        })
        .unwrap();
        assert_eq!(out.len(), items.len());
        assert_eq!(hits.load(Ordering::Relaxed), items.len());
    }

    #[test]
    fn empty_and_single_item_inputs() {
        let empty: Vec<u8> = Vec::new();
        assert!(run(8, &empty, |_, &x| x).unwrap().is_empty());
        assert_eq!(run(8, &[42u8], |_, &x| x).unwrap(), vec![42]);
    }

    #[test]
    fn workers_carry_trace_slots() {
        let items: Vec<usize> = (0..64).collect();
        let slots = run(4, &items, |_, _| flock_obs::trace::current_worker()).unwrap();
        assert!(slots.iter().all(|s| matches!(s, Some(w) if *w < 4)));
        // Serial path is worker 0, and the scope is restored afterwards.
        let serial = run(1, &items, |_, _| flock_obs::trace::current_worker()).unwrap();
        assert!(serial.iter().all(|s| *s == Some(0)));
        assert_eq!(flock_obs::trace::current_worker(), None);
    }

    #[test]
    fn queue_depth_gauge_watermarks_at_input_length() {
        let g = flock_obs::Registry::new().gauge("flock.test.depth", flock_obs::Tier::Sched);
        let items: Vec<usize> = (0..64).collect();
        let out = run_gauged(4, &items, Some(&g), |_, &x| x).unwrap();
        assert_eq!(out, items);
        assert_eq!(g.high_watermark(), items.len() as u64);
        // Serial path reports too.
        let g2 = flock_obs::Registry::new().gauge("flock.test.depth2", flock_obs::Tier::Sched);
        run_gauged(1, &items, Some(&g2), |_, &x| x).unwrap();
        assert_eq!(g2.high_watermark(), items.len() as u64);
    }
}

//! The §3 collection pipeline, end to end.
//!
//! The crawler only talks to [`ApiServer`]'s public surface. It implements
//! the paper's methodology faithfully:
//!
//! 1. **§3.1** — seed from the instances.social-style list; run every
//!    keyword, hashtag, and instance-link search query over the collection
//!    window; hierarchically map authors to Mastodon handles (bio first,
//!    then tweet text with the username-equality guard); resolve each
//!    handle against its instance, following `moved_to` redirects.
//! 2. **§3.2** — crawl both timelines (Oct 1 – Nov 30) for every matched
//!    user, recording the coverage taxonomy (suspended / deleted /
//!    protected; no statuses / instance down).
//! 3. **§3.3** — crawl followees for a 10% sample stratified around the
//!    median followee count (5% above, 5% below), on both platforms.
//! 4. **Fig. 3 cross-check** — crawl weekly activity for every landing
//!    instance.
//!
//! Rate limits are honoured by advancing the server's virtual clock
//! (the crawler's "sleep"); transient errors are retried with backoff; the
//! Mastodon crawl fans out over worker threads via `crossbeam`.

use crate::checkpoint::Checkpoint;
use crate::dataset::{
    CollectedTweet, CrawlStats, Dataset, FolloweeRecord, MastodonCrawlOutcome, MatchSource,
    MatchedUser, QueryKind, TimelineStatus, TimelineTweet, TwitterCrawlOutcome,
};
use crate::worker_pool;
use flock_apis::server::ApiServer;
use flock_apis::types::TwitterUserObject;
use flock_core::handle::extract_handles;
use flock_core::{Day, DetRng, FlockError, MastodonHandle, Result, TweetId, TwitterUserId};
use flock_obs::trace::{self, FaultKind, SpanOutcome};
use flock_obs::{Counter, Gauge, Histogram, Registry, Tier, WaitCause, SECONDS_BOUNDS};
use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Crawl tuning.
#[derive(Debug, Clone)]
pub struct CrawlerConfig {
    /// Fraction of matched users whose followees are crawled (paper: 10%).
    // flock-lint: allow(float-in-data-tier) single scalar config knob, never accumulated; its one use is a reason-allowed product below
    pub followee_sample_fraction: f64,
    /// Retries for transient failures before giving up on a request.
    pub max_transient_retries: u32,
    /// Backoff (virtual seconds) between transient retries.
    pub transient_backoff_secs: u64,
    /// Worker threads for the Mastodon timeline crawl (in scheduler mode,
    /// the OS threads the logical tasks multiplex over). Zero is a typed
    /// configuration error, not a silent clamp.
    pub workers: usize,
    /// Logical concurrency for the §3.2–§3.3 expand phases. `None` (the
    /// default) keeps the legacy thread-per-item worker pool; `Some(n)`
    /// runs the parallel phases on the `flock-sched` discrete-event
    /// executor instead, multiplexing up to `n` concurrent logical
    /// connections over the `workers` OS threads. The produced dataset is
    /// byte-identical either way; only scheduling-tier telemetry (waits,
    /// rejections, virtual durations) may differ. `Some(0)` is a typed
    /// configuration error.
    pub tasks: Option<usize>,
    /// Seed for the followee-sample draw.
    pub seed: u64,
    /// Also crawl followees for every observed instance-switcher (on top of
    /// the 10% sample). Fig. 10 analyzes switchers' ego networks, which a
    /// plain 10% draw would mostly miss; the paper §5.3 likewise required
    /// followee data for its switcher analysis.
    pub include_switchers: bool,
    /// Cap on the **cumulative** virtual seconds one logical request may
    /// spend waiting out rate limits before the crawler gives up with
    /// [`FlockError::RetryBudgetExhausted`]. The legitimate waits are
    /// large (the follows family allows 15 requests / 15 min, §3.3), so
    /// the default is one generous virtual week — far above anything a
    /// healthy policy produces, small enough that a zero-refill or
    /// misconfigured bucket fails fast instead of livelocking the crawl.
    pub max_rate_limit_wait_secs: u64,
    /// Fault-injection hook for checkpoint/resume tests: after this many
    /// logical requests the crawler stops cold with
    /// [`FlockError::Interrupted`], simulating a mid-crawl kill. `None`
    /// (the default) never interrupts.
    pub abort_after_requests: Option<u64>,
}

impl Default for CrawlerConfig {
    fn default() -> Self {
        CrawlerConfig {
            // flock-lint: allow(float-in-data-tier) literal default for the reason-allowed config scalar above
            followee_sample_fraction: 0.10,
            max_transient_retries: 5,
            transient_backoff_secs: 30,
            workers: 4,
            tasks: None,
            seed: 0xC4A41,
            include_switchers: true,
            max_rate_limit_wait_secs: 604_800,
            abort_after_requests: None,
        }
    }
}

/// The six pipeline phases in execution order — the names double as the
/// telemetry span names and as the checkpoint granularity of
/// [`Crawler::run_resumable`].
pub const PHASES: [&str; 6] = [
    "discover.collect_tweets",
    "discover.match_users",
    "expand.twitter_timelines",
    "expand.mastodon_timelines",
    "expand.followees",
    "expand.weekly_activity",
];

/// The §3.1 keyword and hashtag queries, verbatim from the paper.
pub fn migration_queries() -> Vec<(String, QueryKind)> {
    let mut q = vec![
        ("mastodon".to_string(), QueryKind::Keyword),
        ("\"bye bye twitter\"".to_string(), QueryKind::Keyword),
        ("\"good bye twitter\"".to_string(), QueryKind::Keyword),
    ];
    for tag in [
        "#Mastodon",
        "#MastodonMigration",
        "#ByeByeTwitter",
        "#GoodByeTwitter",
        "#TwitterMigration",
        "#MastodonSocial",
        "#RIPTwitter",
    ] {
        q.push((tag.to_string(), QueryKind::Hashtag));
    }
    q
}

/// The crawler's registry handles, under `flock.crawler.<subsystem>.<metric>`.
///
/// The `discover.*` / `expand.*` counters are facts about the dataset and
/// live in the deterministic tier; attempts, rejections, backoffs and the
/// worker-pool queue depth depend on thread scheduling and live in the
/// scheduling tier.
pub(crate) struct CrawlerMetrics {
    pub(crate) attempts: Counter,
    pub(crate) rate_limited: Counter,
    pub(crate) outage_waits: Counter,
    pub(crate) transient_failures: Counter,
    pub(crate) retry_wait_secs: Histogram,
    pub(crate) budget_exhausted: Counter,
    queue_depth: Gauge,
    collected_tweets: Counter,
    matched_users: Counter,
    twitter_timelines: Counter,
    mastodon_timelines: Counter,
    followee_records: Counter,
    weekly_instances: Counter,
    coverage_skipped: Counter,
}

impl CrawlerMetrics {
    fn new(obs: &Registry) -> CrawlerMetrics {
        let data = |n: &str| obs.counter(n, Tier::Data);
        let sched = |n: &str| obs.counter(n, Tier::Sched);
        CrawlerMetrics {
            attempts: sched("flock.crawler.requests.attempts"),
            rate_limited: sched("flock.crawler.requests.rate_limited"),
            outage_waits: sched("flock.crawler.requests.outage_waits"),
            transient_failures: sched("flock.crawler.requests.transient_failures"),
            retry_wait_secs: obs.histogram(
                "flock.crawler.retry.wait_secs",
                Tier::Sched,
                &SECONDS_BOUNDS,
            ),
            budget_exhausted: sched("flock.crawler.retry.budget_exhausted"),
            queue_depth: obs.gauge("flock.crawler.worker_pool.queue_depth", Tier::Sched),
            collected_tweets: data("flock.crawler.discover.collected_tweets"),
            matched_users: data("flock.crawler.discover.matched_users"),
            twitter_timelines: data("flock.crawler.expand.twitter_timelines"),
            mastodon_timelines: data("flock.crawler.expand.mastodon_timelines"),
            followee_records: data("flock.crawler.expand.followee_records"),
            weekly_instances: data("flock.crawler.expand.weekly_instances"),
            coverage_skipped: data("flock.crawler.coverage.skipped"),
        }
    }
}

/// The crawler.
pub struct Crawler<'a> {
    pub(crate) api: &'a ApiServer,
    pub(crate) config: CrawlerConfig,
    pub(crate) obs: Registry,
    pub(crate) m: CrawlerMetrics,
    /// Logical requests issued so far, for `abort_after_requests`.
    pub(crate) requests_made: AtomicU64,
    /// Index into [`PHASES`] of the phase currently running
    /// (`usize::MAX` outside any phase) — the trace id every request
    /// span is filed under.
    phase_idx: AtomicUsize,
}

impl<'a> Crawler<'a> {
    /// Create a crawler over an API server (with a private registry).
    ///
    /// Degenerate concurrency settings (`workers == 0`,
    /// `tasks == Some(0)`) are [`FlockError::InvalidConfig`] — they used
    /// to be clamped silently downstream, which made `--workers 0` behave
    /// like `--workers 1`.
    pub fn new(api: &'a ApiServer, config: CrawlerConfig) -> Result<Self> {
        Crawler::with_registry(api, config, Registry::new())
    }

    /// Create a crawler recording into `obs` — pass the same registry to
    /// [`ApiServer::with_obs`] to see both sides of every request. One
    /// crawl per registry: handles are cumulative, so a second crawl on
    /// the same registry adds onto the first crawl's totals.
    pub fn with_registry(api: &'a ApiServer, config: CrawlerConfig, obs: Registry) -> Result<Self> {
        if config.workers == 0 {
            return Err(FlockError::InvalidConfig(
                "crawler needs at least one worker thread (workers = 0)".to_string(),
            ));
        }
        if config.tasks == Some(0) {
            return Err(FlockError::InvalidConfig(
                "scheduler mode needs at least one logical task (tasks = 0)".to_string(),
            ));
        }
        let m = CrawlerMetrics::new(&obs);
        Ok(Crawler {
            api,
            config,
            obs,
            m,
            requests_made: AtomicU64::new(0),
            phase_idx: AtomicUsize::new(usize::MAX),
        })
    }

    /// The trace id for spans opened right now: the running phase's name,
    /// or the `"crawl"` envelope outside any phase.
    pub(crate) fn current_phase(&self) -> &'static str {
        PHASES
            .get(self.phase_idx.load(Ordering::Relaxed))
            .copied()
            .unwrap_or("crawl")
    }

    /// The registry this crawler records into.
    pub fn registry(&self) -> &Registry {
        &self.obs
    }

    /// Run the §3 pipeline and produce the dataset.
    pub fn run(&self) -> Result<Dataset> {
        let start_virtual = self.api.now();
        self.obs.phase_start(start_virtual, "crawl");
        let mut ds = self.base_dataset();
        for name in PHASES {
            self.run_phase(name, &mut ds)?;
        }
        self.finish(&mut ds, start_virtual);
        Ok(ds)
    }

    /// [`Crawler::run`] with phase-level checkpointing: after every
    /// completed phase the dataset-so-far is persisted to
    /// `checkpoint_path`, and a crawl that starts with a checkpoint on
    /// disk skips the phases it records. A crawl killed mid-phase (e.g.
    /// via [`CrawlerConfig::abort_after_requests`], or a real crash)
    /// re-runs that phase from scratch on resume — against a **fresh**
    /// [`ApiServer`], since per-key fault state lives in the server — and
    /// converges to the dataset an uninterrupted run produces.
    ///
    /// The checkpoint is deliberately left on disk after a successful
    /// run; callers own its lifecycle.
    pub fn run_resumable(&self, checkpoint_path: &Path) -> Result<Dataset> {
        let start_virtual = self.api.now();
        self.obs.phase_start(start_virtual, "crawl");
        let (mut ds, mut completed) = match Checkpoint::load_if_exists(checkpoint_path)? {
            Some(cp) => {
                // Waits already paid before the kill stay paid.
                self.api.advance_clock_to(cp.clock_secs);
                (cp.dataset, cp.completed)
            }
            None => (self.base_dataset(), Vec::new()),
        };
        for name in PHASES {
            if completed.iter().any(|p| p == name) {
                continue;
            }
            self.run_phase(name, &mut ds)?;
            completed.push(name.to_string());
            Checkpoint {
                completed: completed.clone(),
                clock_secs: self.api.now(),
                dataset: ds.clone(),
            }
            .save(checkpoint_path)?;
        }
        self.finish(&mut ds, start_virtual);
        Ok(ds)
    }

    /// The §3.1 discovery phases: tweet collection and hierarchical handle
    /// matching. Serial by nature — every query deduplicates against the
    /// tweets all earlier queries collected.
    pub fn discover(&self) -> Result<Dataset> {
        let mut ds = self.base_dataset();
        for name in &PHASES[..2] {
            self.run_phase(name, &mut ds)?;
        }
        Ok(ds)
    }

    /// The §3.2–§3.3 crawl phases plus the Fig. 3 activity cross-check:
    /// per-user work fanned out over [`worker_pool`], results merged in
    /// matched-index order. Public (separately from [`Crawler::run`]) so
    /// benches can time the parallel phases against a fixed discovery.
    pub fn expand(&self, ds: &mut Dataset) -> Result<()> {
        for name in &PHASES[2..] {
            self.run_phase(name, ds)?;
        }
        Ok(())
    }

    /// An empty dataset seeded with the instance list.
    fn base_dataset(&self) -> Dataset {
        Dataset {
            instance_list: self.api.instances_social_list(),
            ..Dataset::default()
        }
    }

    /// Run one named phase: telemetry span, body, dataset-derived counter.
    fn run_phase(&self, name: &str, ds: &mut Dataset) -> Result<()> {
        let idx = PHASES.iter().position(|p| *p == name).unwrap_or(usize::MAX);
        self.phase_idx.store(idx, Ordering::Relaxed);
        self.obs.phase_start(self.api.now(), name);
        match name {
            "discover.collect_tweets" => {
                self.collect_tweets(ds)?;
                self.m
                    .collected_tweets
                    .add(ds.collected_tweets.len() as u64);
            }
            "discover.match_users" => {
                self.match_users(ds)?;
                self.m.matched_users.add(ds.matched.len() as u64);
            }
            "expand.twitter_timelines" => {
                self.crawl_twitter_timelines(ds)?;
                self.m
                    .twitter_timelines
                    .add(ds.twitter_timelines.len() as u64);
            }
            "expand.mastodon_timelines" => {
                self.crawl_mastodon_timelines(ds)?;
                self.m
                    .mastodon_timelines
                    .add(ds.mastodon_timelines.len() as u64);
            }
            "expand.followees" => {
                self.crawl_followees(ds)?;
                self.m.followee_records.add(ds.followees.len() as u64);
            }
            "expand.weekly_activity" => {
                self.crawl_weekly_activity(ds)?;
                self.m.weekly_instances.add(ds.weekly_activity.len() as u64);
            }
            other => {
                return Err(FlockError::InvalidConfig(format!(
                    "unknown crawl phase {other:?}"
                )))
            }
        }
        self.phase_idx.store(usize::MAX, Ordering::Relaxed);
        self.obs.phase_end(self.api.now(), name);
        Ok(())
    }

    /// Fill in crawl accounting and close the crawl span.
    fn finish(&self, ds: &mut Dataset, start_virtual: u64) {
        self.m.coverage_skipped.add(ds.coverage.len() as u64);
        ds.stats = CrawlStats {
            requests: self.m.attempts.get(),
            rate_limited: self.m.rate_limited.get(),
            transient_failures: self.m.transient_failures.get(),
            virtual_secs: self.api.now() - start_virtual,
        };
        self.obs.phase_end(self.api.now(), "crawl");
    }

    /// Rate-limit-aware, transient-retrying request wrapper.
    ///
    /// Rate limits are waited out with [`ApiServer::advance_clock_to`]
    /// against a deadline computed from the clock **before** the attempt:
    /// when several workers are parked on the same bucket, each advance is
    /// a `max` to the shared refill point, where the old additive
    /// `advance_clock(retry_after_secs)` stacked all the waits and
    /// overshot it. The cumulative wait per logical request is capped by
    /// `max_rate_limit_wait_secs` so a non-refilling bucket surfaces as a
    /// typed error instead of a livelock.
    ///
    /// Every call opens one **logical request span** (trace id = current
    /// phase, label = the caller-supplied request name) and records one
    /// child span per server attempt, with the typed outcome the API
    /// layer left in the thread-local trace context. Every second the
    /// wrapper moves the virtual clock is charged to a [`WaitCause`]
    /// bucket on the span *and* on the phase's wait ledger — the
    /// attribution invariant the profiler and the integration tests rest
    /// on: per-phase buckets sum exactly to the phase's virtual duration.
    fn request<T>(&self, label: &str, f: impl FnMut() -> Result<T>) -> Result<T> {
        let phase = self.current_phase();
        let span = self
            .obs
            .span_begin(phase, label, None, trace::current_worker(), self.api.now());
        let _guard = trace::span_scope(span);
        // Overwritten by every attempt; only an interrupt before the
        // first attempt leaves the placeholder.
        let mut last_outcome = SpanOutcome::Fault(FaultKind::Other);
        let result = self.request_attempts(phase, span, label, &mut last_outcome, f);
        self.obs.span_end(span, self.api.now(), last_outcome);
        result
    }

    fn request_attempts<T>(
        &self,
        phase: &str,
        span: u64,
        label: &str,
        last_outcome: &mut SpanOutcome,
        mut f: impl FnMut() -> Result<T>,
    ) -> Result<T> {
        let mut transient = 0;
        let mut waited: u64 = 0;
        loop {
            if let Some(cap) = self.config.abort_after_requests {
                if self.requests_made.fetch_add(1, Ordering::Relaxed) >= cap {
                    return Err(FlockError::Interrupted);
                }
            }
            self.m.attempts.inc();
            let before = self.api.now();
            let r = f();
            // The acquire decision left the typed outcome in the
            // thread-local context; a request that never reached a token
            // bucket (unknown handle, interrupt) falls back to the shape
            // of its error.
            let attempt = trace::take_attempt();
            let outcome = match (&r, attempt) {
                (_, Some(a)) => a.outcome,
                (Ok(_), None) => SpanOutcome::Granted,
                (Err(FlockError::RateLimited { .. }), None) => {
                    SpanOutcome::RateLimited { storm: false }
                }
                (Err(FlockError::InstanceOutage { .. }), None)
                | (Err(FlockError::InstanceUnavailable(_)), None) => {
                    SpanOutcome::Fault(FaultKind::Outage)
                }
                (Err(FlockError::StaleCursor(_)), None) => SpanOutcome::StaleCursor,
                (Err(_), None) => SpanOutcome::Fault(FaultKind::Other),
            };
            self.obs.span_attempt(
                span,
                phase,
                label,
                trace::current_worker(),
                attempt.map(|a| a.family),
                outcome,
                before,
                before,
            );
            *last_outcome = outcome;
            match r {
                Ok(v) => return Ok(v),
                Err(FlockError::RateLimited { retry_after_secs }) => {
                    self.m.rate_limited.inc();
                    // Storm rejections are indistinguishable from a
                    // genuinely empty bucket out here — the typed outcome
                    // from the server is what tells the wait buckets
                    // apart.
                    let cause = if outcome == (SpanOutcome::RateLimited { storm: true }) {
                        WaitCause::RetryAfterStorm
                    } else {
                        WaitCause::TokenBucket
                    };
                    self.wait_out(&mut waited, retry_after_secs, before, span, phase, cause)?;
                }
                // A finite chaos outage window advertises when the
                // instance is back; wait it out exactly like a rate limit
                // (against the same cumulative budget) so the eventual
                // response — and therefore the dataset — is independent
                // of when the window was hit.
                Err(FlockError::InstanceOutage { retry_after_secs }) => {
                    self.m.outage_waits.inc();
                    self.wait_out(
                        &mut waited,
                        retry_after_secs,
                        before,
                        span,
                        phase,
                        WaitCause::Outage,
                    )?;
                }
                Err(e) if e.is_retryable() => {
                    self.m.transient_failures.inc();
                    transient += 1;
                    if transient > self.config.max_transient_retries {
                        return Err(e);
                    }
                    self.obs.event(
                        before,
                        "crawler.transient_retry",
                        &format!("attempt {transient}: {e}"),
                    );
                    let applied = self.api.advance_clock(self.config.transient_backoff_secs);
                    self.obs
                        .attribute_wait(span, phase, WaitCause::TransientBackoff, applied);
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Shared wait path for rate limits and finite outage windows: record
    /// the wait, enforce the cumulative cap, advance the clock to the
    /// deadline computed from the pre-attempt instant, and charge exactly
    /// the seconds the clock actually moved (another worker may already
    /// have paid part of the wait) to the span and the phase ledger.
    #[allow(clippy::too_many_arguments)]
    fn wait_out(
        &self,
        waited: &mut u64,
        retry_after_secs: u64,
        before: u64,
        span: u64,
        phase: &str,
        cause: WaitCause,
    ) -> Result<()> {
        self.m.retry_wait_secs.record(retry_after_secs);
        *waited = waited.saturating_add(retry_after_secs);
        if *waited > self.config.max_rate_limit_wait_secs {
            self.m.budget_exhausted.inc();
            self.obs.event(
                before,
                "crawler.retry_budget_exhausted",
                &format!(
                    "waited {waited}s virtual > cap {}s",
                    self.config.max_rate_limit_wait_secs
                ),
            );
            return Err(FlockError::RetryBudgetExhausted {
                waited_secs: *waited,
            });
        }
        let applied = self
            .api
            .advance_clock_to(before.saturating_add(retry_after_secs));
        self.obs.attribute_wait(span, phase, cause, applied);
        Ok(())
    }

    // ---- §3.1 phase A: tweet collection ---------------------------------

    fn collect_tweets(&self, ds: &mut Dataset) -> Result<()> {
        let mut queries = migration_queries();
        for domain in &ds.instance_list {
            queries.push((format!("url:\"{domain}\""), QueryKind::InstanceLink));
        }
        let mut seen: BTreeMap<TweetId, usize> = BTreeMap::new();
        for (q, kind) in queries {
            let mut cursor: Option<String> = None;
            loop {
                let page = match self.request(&format!("search:{q}"), || {
                    self.api.twitter_search(
                        &q,
                        Day::COLLECTION_START,
                        Day::COLLECTION_END,
                        cursor.as_deref(),
                    )
                }) {
                    Ok(p) => p,
                    // A single broken query must not sink the collection.
                    Err(FlockError::InvalidQuery(_)) => break,
                    // Retries exhausted on a transient fault: skip the
                    // query's remaining pages, record the gap, move on.
                    Err(e) if e.is_retryable() => {
                        ds.coverage
                            .record_skip(PHASES[0], format!("search {q:?}"), e);
                        break;
                    }
                    Err(e) => return Err(e),
                };
                for t in page.items {
                    if let std::collections::btree_map::Entry::Vacant(e) = seen.entry(t.id) {
                        e.insert(ds.collected_tweets.len());
                        ds.collected_tweets.push(CollectedTweet {
                            id: t.id,
                            author: t.author_id,
                            day: t.day,
                            text: t.text,
                            source: t.source,
                            via: kind,
                        });
                    }
                }
                match page.next {
                    Some(c) => cursor = Some(c),
                    None => break,
                }
            }
        }
        let authors: BTreeSet<TwitterUserId> =
            ds.collected_tweets.iter().map(|t| t.author).collect();
        ds.searched_users = authors.len();
        Ok(())
    }

    // ---- §3.1 phase B: hierarchical handle matching ----------------------

    fn match_users(&self, ds: &mut Dataset) -> Result<()> {
        let instance_set: BTreeSet<&str> = ds.instance_list.iter().map(String::as_str).collect();
        // Collection-time author metadata, batched.
        let mut authors: Vec<TwitterUserId> = ds
            .collected_tweets
            .iter()
            .map(|t| t.author)
            .collect::<BTreeSet<_>>()
            .into_iter()
            .collect();
        authors.sort();
        let mut metadata: BTreeMap<TwitterUserId, TwitterUserObject> = BTreeMap::new();
        for chunk in authors.chunks(100) {
            let first = chunk.first().map_or(0, |id| id.0);
            let users = match self
                .request(&format!("user_expansion:{first}+{}", chunk.len()), || {
                    self.api.twitter_search_user_expansion(chunk)
                }) {
                Ok(users) => users,
                // Authors in a failed chunk keep their tweets but cannot
                // be matched (no metadata); record the gap and move on.
                Err(e) if e.is_retryable() => {
                    ds.coverage.record_skip(
                        PHASES[1],
                        format!("user-expansion chunk of {} from id {first}", chunk.len()),
                        e,
                    );
                    continue;
                }
                Err(e) => return Err(e),
            };
            for u in users {
                metadata.insert(u.id, u);
            }
        }
        // Tweets per author, for the text fallback.
        let mut tweets_by_author: BTreeMap<TwitterUserId, Vec<usize>> = BTreeMap::new();
        for (i, t) in ds.collected_tweets.iter().enumerate() {
            tweets_by_author.entry(t.author).or_default().push(i);
        }

        for author in authors {
            let Some(meta) = metadata.get(&author) else {
                continue;
            };
            // Step 1: profile metadata (any username accepted).
            let mut found: Option<(MastodonHandle, MatchSource)> =
                extract_handles(&meta.description)
                    .into_iter()
                    .find(|h| instance_set.contains(h.instance()))
                    .map(|h| (h, MatchSource::Bio));
            // Step 2: tweet text, only when usernames are identical.
            if found.is_none() {
                'outer: for &ti in tweets_by_author.get(&author).into_iter().flatten() {
                    for h in extract_handles(&ds.collected_tweets[ti].text) {
                        if instance_set.contains(h.instance()) && h.username() == meta.username {
                            found = Some((h, MatchSource::TweetText));
                            break 'outer;
                        }
                    }
                }
            }
            let Some((handle, matched_via)) = found else {
                continue;
            };

            // Resolve the handle on its instance, following moved_to once.
            let (account, first_account, resolved_handle) = match self
                .request(&format!("lookup:{handle}"), || {
                    self.api.mastodon_lookup_account(&handle)
                }) {
                Ok(acct) => match &acct.moved_to {
                    Some(target) => {
                        let target = target.clone();
                        match self.request(&format!("lookup:{target}"), || {
                            self.api.mastodon_lookup_account(&target)
                        }) {
                            Ok(new_acct) => (Some(new_acct), Some(acct), target.clone()),
                            Err(FlockError::Interrupted) => return Err(FlockError::Interrupted),
                            Err(_) => (None, Some(acct), target.clone()),
                        }
                    }
                    None => (Some(acct), None, handle.clone()),
                },
                // Down instance: keep the match, account data missing.
                Err(FlockError::InstanceUnavailable(_)) => (None, None, handle.clone()),
                // Dangling handle (announced but never created): drop.
                Err(FlockError::NotFound(_)) => continue,
                // Retries exhausted: the mapping cannot be confirmed;
                // record the gap and drop the candidate.
                Err(e) if e.is_retryable() => {
                    ds.coverage.record_skip(
                        PHASES[1],
                        format!("account lookup for author {}", author.0),
                        e,
                    );
                    continue;
                }
                Err(e) => return Err(e),
            };

            let first_seen = tweets_by_author
                .get(&author)
                .into_iter()
                .flatten()
                .map(|&ti| ds.collected_tweets[ti].day)
                .min();
            ds.matched.push(MatchedUser {
                twitter_id: author,
                twitter_username: meta.username.clone(),
                twitter_created: meta.created_at,
                verified: meta.verified,
                twitter_followers: meta.followers_count,
                twitter_followees: meta.following_count,
                handle,
                matched_via,
                first_seen,
                resolved_handle,
                account,
                first_account,
            });
        }
        // Deterministic order for everything downstream.
        ds.matched.sort_by_key(|m| m.twitter_id);
        Ok(())
    }

    // ---- §3.2: timelines --------------------------------------------------

    fn crawl_twitter_timelines(&self, ds: &mut Dataset) -> Result<()> {
        // Nothing merges until every per-user result is in: an interrupt
        // anywhere leaves the dataset untouched, so the phase re-runs
        // cleanly on resume.
        let merged = match self.config.tasks {
            Some(window) => crate::tasks::twitter_timelines(self, &ds.matched, window)?,
            None => {
                let results = worker_pool::run_gauged(
                    self.config.workers,
                    &ds.matched,
                    Some(&self.m.queue_depth),
                    |_, m| self.crawl_one_twitter_timeline(m),
                )?;
                let mut merged = Vec::with_capacity(ds.matched.len());
                for r in results {
                    merged.push(r?);
                }
                merged
            }
        };
        for (m, (timeline, outcome, skip)) in ds.matched.iter().zip(merged) {
            if outcome == TwitterCrawlOutcome::Ok {
                ds.twitter_timelines.insert(m.twitter_id, timeline);
            }
            if let Some(reason) = skip {
                ds.coverage.record_skip(
                    PHASES[2],
                    format!("twitter timeline of {}", m.twitter_id.0),
                    reason,
                );
            }
            ds.twitter_outcomes.insert(m.twitter_id, outcome);
        }
        Ok(())
    }

    fn crawl_one_twitter_timeline(
        &self,
        m: &MatchedUser,
    ) -> Result<(Vec<TimelineTweet>, TwitterCrawlOutcome, Option<String>)> {
        let mut timeline = Vec::new();
        let mut cursor: Option<String> = None;
        let mut skip = None;
        let outcome = loop {
            match self.request(&format!("twitter_timeline:{}", m.twitter_id.0), || {
                self.api.twitter_timeline(
                    m.twitter_id,
                    Day::STUDY_START,
                    Day::STUDY_END,
                    cursor.as_deref(),
                )
            }) {
                Ok(page) => {
                    timeline.extend(page.items.into_iter().map(|t| TimelineTweet {
                        id: t.id,
                        day: t.day,
                        text: t.text,
                        source: t.source,
                    }));
                    match page.next {
                        Some(c) => cursor = Some(c),
                        None => break TwitterCrawlOutcome::Ok,
                    }
                }
                Err(FlockError::Forbidden(msg)) => {
                    break if msg.contains("suspended") {
                        TwitterCrawlOutcome::Suspended
                    } else {
                        TwitterCrawlOutcome::Protected
                    };
                }
                Err(FlockError::NotFound(_)) => break TwitterCrawlOutcome::Deleted,
                Err(FlockError::Interrupted) => return Err(FlockError::Interrupted),
                // Retries exhausted on a transient fault: the account may
                // exist, but its timeline is out of reach this crawl.
                Err(e) if e.is_retryable() => {
                    skip = Some(e.to_string());
                    break TwitterCrawlOutcome::Unreachable;
                }
                Err(_) => break TwitterCrawlOutcome::Deleted,
            }
        };
        Ok((timeline, outcome, skip))
    }

    fn crawl_mastodon_timelines(&self, ds: &mut Dataset) -> Result<()> {
        let merged = match self.config.tasks {
            Some(window) => crate::tasks::mastodon_timelines(self, &ds.matched, window)?,
            None => {
                let results = worker_pool::run_gauged(
                    self.config.workers,
                    &ds.matched,
                    Some(&self.m.queue_depth),
                    |_, m| self.crawl_one_mastodon_timeline(m),
                )?;
                let mut merged = Vec::with_capacity(ds.matched.len());
                for r in results {
                    merged.push(r?);
                }
                merged
            }
        };
        for (m, (statuses, outcome, skip)) in ds.matched.iter().zip(merged) {
            if outcome == MastodonCrawlOutcome::Ok {
                ds.mastodon_timelines
                    .insert(m.resolved_handle.clone(), statuses);
            }
            if let Some(reason) = skip {
                ds.coverage.record_skip(
                    PHASES[3],
                    format!("mastodon timeline of {}", m.twitter_id.0),
                    reason,
                );
            }
            ds.mastodon_outcomes.insert(m.twitter_id, outcome);
        }
        Ok(())
    }

    fn crawl_one_mastodon_timeline(
        &self,
        m: &MatchedUser,
    ) -> Result<(Vec<TimelineStatus>, MastodonCrawlOutcome, Option<String>)> {
        let mut statuses = Vec::new();
        let mut any_down = false;
        let mut skip = None;
        // A switched user's pre-move statuses live on the first instance.
        let mut sources = vec![m.resolved_handle.clone()];
        if m.switched() {
            sources.push(m.handle.clone());
        }
        for src in sources {
            let mut cursor: Option<String> = None;
            loop {
                match self.request(&format!("statuses:{src}"), || {
                    self.api.mastodon_account_statuses(&src, cursor.as_deref())
                }) {
                    Ok(page) => {
                        statuses.extend(page.items.into_iter().map(|s| TimelineStatus {
                            day: s.day,
                            text: s.content,
                        }));
                        match page.next {
                            Some(c) => cursor = Some(c),
                            None => break,
                        }
                    }
                    Err(FlockError::InstanceUnavailable(_)) => {
                        any_down = true;
                        break;
                    }
                    Err(FlockError::Interrupted) => return Err(FlockError::Interrupted),
                    Err(e) if e.is_retryable() => {
                        skip = Some(e.to_string());
                        break;
                    }
                    Err(_) => break,
                }
            }
        }
        Ok(if statuses.is_empty() {
            if any_down {
                (statuses, MastodonCrawlOutcome::InstanceDown, None)
            } else if skip.is_some() {
                (statuses, MastodonCrawlOutcome::Unreachable, skip)
            } else {
                (statuses, MastodonCrawlOutcome::NoStatuses, None)
            }
        } else {
            statuses.sort_by_key(|s| s.day);
            (statuses, MastodonCrawlOutcome::Ok, None)
        })
    }

    // ---- §3.3: followees ----------------------------------------------------

    /// Pick the 10% sample: 5% (of all matched users) drawn from above the
    /// median followee count, 5% from below, exactly as §3.3 describes.
    fn sample_for_followees(&self, ds: &Dataset) -> Vec<TwitterUserId> {
        let mut by_count: Vec<(u64, TwitterUserId)> = ds
            .matched
            .iter()
            .map(|m| (m.twitter_followees, m.twitter_id))
            .collect();
        by_count.sort();
        let n = by_count.len();
        if n < 4 {
            return by_count.into_iter().map(|(_, id)| id).collect();
        }
        let half = n / 2;
        // flock-lint: allow(float-in-data-tier) one product of one config scalar computed once on one thread; IEEE-754 multiply+round of these magnitudes is exact and platform-stable, and no cross-worker accumulation exists
        let per_side = ((n as f64) * self.config.followee_sample_fraction / 2.0).round() as usize;
        let mut rng = DetRng::new(self.config.seed);
        let below: Vec<TwitterUserId> = rng
            .sample(by_count[..half].iter().map(|&(_, id)| id), per_side)
            .into_iter()
            .collect();
        let above: Vec<TwitterUserId> = rng
            .sample(by_count[half..].iter().map(|&(_, id)| id), per_side)
            .into_iter()
            .collect();
        let mut all: Vec<TwitterUserId> = below.into_iter().chain(above).collect();
        if self.config.include_switchers {
            all.extend(
                ds.matched
                    .iter()
                    .filter(|m| m.switched())
                    .map(|m| m.twitter_id),
            );
        }
        all.sort();
        all.dedup();
        all
    }

    fn crawl_followees(&self, ds: &mut Dataset) -> Result<()> {
        let sample = self.sample_for_followees(ds);
        let targets: Vec<MatchedUser> = sample
            .iter()
            .filter_map(|id| ds.matched_by_id(*id).cloned())
            .collect();
        let merged = match self.config.tasks {
            Some(window) => crate::tasks::followees(self, &targets, window)?,
            None => {
                let results = worker_pool::run_gauged(
                    self.config.workers,
                    &targets,
                    Some(&self.m.queue_depth),
                    |_, m| self.crawl_one_followees(m),
                )?;
                let mut merged = Vec::with_capacity(targets.len());
                for r in results {
                    merged.push(r?);
                }
                merged
            }
        };
        for (m, (rec, skip)) in targets.iter().zip(merged) {
            if let Some(rec) = rec {
                ds.followees.insert(m.twitter_id, rec);
            }
            if let Some(reason) = skip {
                ds.coverage.record_skip(
                    PHASES[4],
                    format!("followees of {}", m.twitter_id.0),
                    reason,
                );
            }
        }
        Ok(())
    }

    /// Both followee lists for one sampled user; `(None, reason)` when the
    /// Twitter side (the endpoint the record hinges on) is unavailable.
    fn crawl_one_followees(
        &self,
        m: &MatchedUser,
    ) -> Result<(Option<FolloweeRecord>, Option<String>)> {
        // Twitter side (the brutally rate-limited endpoint).
        let mut twitter = Vec::new();
        let mut cursor: Option<String> = None;
        loop {
            match self.request(&format!("twitter_following:{}", m.twitter_id.0), || {
                self.api.twitter_following(m.twitter_id, cursor.as_deref())
            }) {
                Ok(page) => {
                    twitter.extend(page.items);
                    match page.next {
                        Some(c) => cursor = Some(c),
                        None => break,
                    }
                }
                Err(FlockError::Interrupted) => return Err(FlockError::Interrupted),
                // Chaos/transient exhaustion is a coverage gap worth
                // reporting; protected or deleted accounts are expected
                // states and skip silently, as they always have.
                Err(e) if e.is_retryable() => return Ok((None, Some(e.to_string()))),
                Err(_) => return Ok((None, None)),
            }
        }
        // Mastodon side.
        let mut mastodon = Vec::new();
        let mut cursor: Option<String> = None;
        loop {
            match self.request(&format!("mastodon_following:{}", m.resolved_handle), || {
                self.api
                    .mastodon_account_following(&m.resolved_handle, cursor.as_deref())
            }) {
                Ok(page) => {
                    mastodon.extend(page.items);
                    match page.next {
                        Some(c) => cursor = Some(c),
                        None => break,
                    }
                }
                Err(FlockError::Interrupted) => return Err(FlockError::Interrupted),
                // The record survives without the Mastodon side.
                Err(_) => break,
            }
        }
        Ok((Some(FolloweeRecord { twitter, mastodon }), None))
    }

    // ---- Fig. 3 cross-check: weekly activity --------------------------------

    fn crawl_weekly_activity(&self, ds: &mut Dataset) -> Result<()> {
        let domains = ds.landing_instances();
        if let Some(window) = self.config.tasks {
            let outcomes = crate::tasks::weekly_activity(self, &domains, window)?;
            for (domain, out) in domains.into_iter().zip(outcomes) {
                match out {
                    crate::tasks::WeeklyOutcome::Rows(rows) => {
                        ds.weekly_activity.insert(domain, rows);
                    }
                    // Down instances simply stay absent.
                    crate::tasks::WeeklyOutcome::Down => {}
                    crate::tasks::WeeklyOutcome::Skipped(reason) => {
                        ds.coverage.record_skip(
                            PHASES[5],
                            format!("weekly activity of {domain}"),
                            reason,
                        );
                    }
                }
            }
            return Ok(());
        }
        for domain in domains {
            match self.request(&format!("weekly_activity:{domain}"), || {
                self.api.mastodon_instance_activity(&domain)
            }) {
                Ok(rows) => {
                    ds.weekly_activity.insert(domain, rows);
                }
                // Down instances simply stay absent.
                Err(FlockError::InstanceUnavailable(_)) => {}
                Err(e) if e.is_retryable() => {
                    ds.coverage
                        .record_skip(PHASES[5], format!("weekly activity of {domain}"), e);
                }
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    // ---- load driver --------------------------------------------------------

    /// Drive `connections` simultaneous logical Mastodon-timeline
    /// connections over the matched users of `ds` (cycling when
    /// `connections` exceeds the matched count) and return the number of
    /// request attempts issued. In scheduler mode
    /// ([`CrawlerConfig::tasks`]) the connections multiplex over the
    /// configured OS threads; in legacy mode each worker thread crawls
    /// its items back to back. Benches use this to compare the two
    /// execution models on identical request load.
    pub fn drive_connections(&self, ds: &Dataset, connections: usize) -> Result<u64> {
        if connections == 0 {
            return Err(FlockError::InvalidConfig(
                "drive_connections needs at least one connection".to_string(),
            ));
        }
        if ds.matched.is_empty() {
            return Err(FlockError::InvalidConfig(
                "drive_connections needs a dataset with matched users".to_string(),
            ));
        }
        let items: Vec<MatchedUser> = ds
            .matched
            .iter()
            .cycle()
            .take(connections)
            .cloned()
            .collect();
        let idx = 3; // expand.mastodon_timelines
        self.phase_idx.store(idx, Ordering::Relaxed);
        self.obs.phase_start(self.api.now(), PHASES[idx]);
        let before = self.m.attempts.get();
        match self.config.tasks {
            Some(window) => {
                crate::tasks::mastodon_timelines(self, &items, window)?;
            }
            None => {
                let results = worker_pool::run_gauged(
                    self.config.workers,
                    &items,
                    Some(&self.m.queue_depth),
                    |_, m| self.crawl_one_mastodon_timeline(m),
                )?;
                for r in results {
                    r?;
                }
            }
        }
        self.obs.phase_end(self.api.now(), PHASES[idx]);
        self.phase_idx.store(usize::MAX, Ordering::Relaxed);
        Ok(self.m.attempts.get() - before)
    }
}

/// Convenience: run the crawler with defaults.
pub fn crawl(api: &ApiServer) -> Result<Dataset> {
    Crawler::new(api, CrawlerConfig::default())?.run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use flock_fedisim::{World, WorldConfig};
    use std::sync::Arc;

    use std::sync::OnceLock;

    /// The standard world + crawl, shared across tests (generating a world
    /// and crawling it is the expensive part; the assertions are cheap).
    fn shared() -> &'static (Arc<World>, Dataset) {
        static CELL: OnceLock<(Arc<World>, Dataset)> = OnceLock::new();
        CELL.get_or_init(|| {
            let world = Arc::new(World::generate(&WorldConfig::small().with_seed(2024)).unwrap());
            let api = ApiServer::with_defaults(world.clone()).unwrap();
            let ds = crawl(&api).unwrap();
            (world, ds)
        })
    }

    #[test]
    fn full_pipeline_identifies_most_announcing_migrants() {
        let (world, ds) = shared();

        // Identified handles must be real ground-truth accounts...
        for m in &ds.matched {
            let truth = world
                .account_by_handle(&m.handle)
                .unwrap_or_else(|| panic!("false positive: {}", m.handle));
            assert_eq!(truth.owner, m.twitter_id, "mis-attributed {}", m.handle);
        }
        // ...and most announcing migrants are found (the method is a lower
        // bound: bio-less different-username announcers are invisible).
        let identifiable = world
            .accounts
            .iter()
            .filter(|a| {
                a.in_bio
                    || (a.in_tweet
                        && a.first_handle.username() == world.users[a.owner.index()].username)
            })
            .count();
        assert!(
            ds.matched.len() as f64 > identifiable as f64 * 0.85,
            "matched {} of {} identifiable",
            ds.matched.len(),
            identifiable
        );
        assert!(
            ds.matched.len() < world.n_migrants(),
            "method must undercount"
        );
        // The search saw many more users than it could map (paper: 1.02M vs
        // 136k).
        assert!(ds.searched_users > ds.matched.len() * 2);
    }

    #[test]
    fn match_sources_follow_hierarchy() {
        let (world, ds) = shared();
        let mut bio = 0;
        let mut text = 0;
        for m in &ds.matched {
            match m.matched_via {
                MatchSource::Bio => {
                    bio += 1;
                    let truth = world.account_by_handle(&m.handle).unwrap();
                    assert!(truth.in_bio);
                }
                MatchSource::TweetText => {
                    text += 1;
                    // Username-equality guard.
                    assert_eq!(m.handle.username(), m.twitter_username);
                }
            }
        }
        assert!(bio > 0 && text > 0, "bio {bio} text {text}");
    }

    #[test]
    fn coverage_taxonomy_is_recorded() {
        let (_world, ds) = shared();
        let ok = ds
            .twitter_outcomes
            .values()
            .filter(|o| **o == TwitterCrawlOutcome::Ok)
            .count();
        assert_eq!(ds.twitter_timelines.len(), ok);
        // The large majority of Twitter timelines crawl fine (paper: 94.88%).
        assert!(ok as f64 / ds.matched.len() as f64 > 0.85);
        // Mastodon outcomes cover every matched user.
        assert_eq!(ds.mastodon_outcomes.len(), ds.matched.len());
        let down = ds
            .mastodon_outcomes
            .values()
            .filter(|o| **o == MastodonCrawlOutcome::InstanceDown)
            .count();
        assert!(down > 0, "downtime injection must be visible");
    }

    #[test]
    fn followee_sample_is_ten_percent_stratified() {
        let (_world, ds) = shared();
        let switchers = ds.matched.iter().filter(|m| m.switched()).count();
        let target = ds.matched.len() / 10 + switchers;
        let got = ds.followees.len();
        assert!(
            (got as i64 - target as i64).abs() <= (target as i64 / 3).max(3),
            "sample {got} vs target {target}"
        );
        // Stratification: both sides of the median are represented.
        let mut counts: Vec<u64> = ds.matched.iter().map(|m| m.twitter_followees).collect();
        counts.sort();
        let median = counts[counts.len() / 2];
        let above = ds
            .followees
            .keys()
            .filter(|id| ds.matched_by_id(**id).unwrap().twitter_followees > median)
            .count();
        assert!(above > 0 && above < got);
    }

    #[test]
    fn followee_lists_round_trip_ground_truth() {
        let (world, ds) = shared();
        for (id, rec) in &ds.followees {
            let truth_account = world.account_of_user(*id).unwrap();
            let truth = &world.twitter_followees[truth_account.id.index()];
            assert_eq!(rec.twitter.len(), truth.len());
        }
    }

    #[test]
    fn switched_users_resolved_through_moved_to() {
        let (world, ds) = shared();
        let mut observed_switchers = 0;
        for m in &ds.matched {
            if m.switched() {
                observed_switchers += 1;
                let truth = world.account_by_handle(&m.handle).unwrap();
                assert!(truth.switch.is_some());
                assert_eq!(&m.resolved_handle, &truth.handle);
            }
        }
        assert!(observed_switchers > 0, "no switchers observed");
    }

    #[test]
    fn weekly_activity_covers_reachable_landing_instances() {
        let (world, ds) = shared();
        for domain in ds.landing_instances() {
            let inst = world.instance_by_domain(&domain).unwrap();
            if !inst.down_at_crawl {
                assert!(
                    ds.weekly_activity.contains_key(&domain),
                    "missing activity for {domain}"
                );
            }
        }
    }

    #[test]
    fn crawl_is_deterministic() {
        let (world, a) = shared();
        let api2 = ApiServer::with_defaults(world.clone()).unwrap();
        let b = crawl(&api2).unwrap();
        assert_eq!(a.matched.len(), b.matched.len());
        assert_eq!(a.collected_tweets.len(), b.collected_tweets.len());
        assert_eq!(a.followees.len(), b.followees.len());
    }

    /// Scheduler mode produces the same dataset as the legacy worker
    /// pool — dataset content is Data-tier and must not depend on the
    /// execution model (the root `scheduler.rs` integration tests enforce
    /// byte-identity on the serialized form; this is the in-crate smoke).
    #[test]
    fn scheduled_crawl_matches_legacy_dataset() {
        let (world, legacy) = shared();
        let api = ApiServer::with_defaults(world.clone()).unwrap();
        let config = CrawlerConfig {
            tasks: Some(64),
            ..CrawlerConfig::default()
        };
        let sched = Crawler::new(&api, config).unwrap().run().unwrap();
        // Request counts and virtual durations are scheduling-tier; the
        // Data tier is everything else, compared on the serialized form.
        let strip = |mut ds: Dataset| {
            ds.stats = CrawlStats {
                requests: 0,
                rate_limited: 0,
                transient_failures: 0,
                virtual_secs: 0,
            };
            serde_json::to_string(&ds).unwrap()
        };
        assert_eq!(strip(legacy.clone()), strip(sched));
    }

    /// Degenerate concurrency settings fail loudly at construction.
    #[test]
    fn zero_workers_or_tasks_is_a_typed_error() {
        let (world, _) = shared();
        let api = ApiServer::with_defaults(world.clone()).unwrap();
        let zero_workers = CrawlerConfig {
            workers: 0,
            ..CrawlerConfig::default()
        };
        assert!(matches!(
            Crawler::new(&api, zero_workers).map(|_| ()),
            Err(FlockError::InvalidConfig(_))
        ));
        let zero_tasks = CrawlerConfig {
            tasks: Some(0),
            ..CrawlerConfig::default()
        };
        assert!(matches!(
            Crawler::new(&api, zero_tasks).map(|_| ()),
            Err(FlockError::InvalidConfig(_))
        ));
    }

    #[test]
    fn rate_limits_cost_virtual_time() {
        let (_world, ds) = shared();
        assert!(ds.stats.requests > 100);
        // The follows endpoint (15 req/15 min) forces waiting.
        assert!(ds.stats.rate_limited > 0, "no rate limiting observed");
        assert!(ds.stats.virtual_secs > 0);
    }

    #[test]
    fn survives_transient_faults() {
        let world = Arc::new(World::generate(&WorldConfig::small().with_seed(3030)).unwrap());
        let api_cfg = flock_apis::ApiConfig {
            transient_error_rate: 0.05,
            ..Default::default()
        };
        let api = ApiServer::new(world, api_cfg).unwrap();
        let ds = crawl(&api).unwrap();
        assert!(ds.stats.transient_failures > 0);
        assert!(!ds.matched.is_empty());
    }

    /// Regression (unbounded retry): a zero-refill `RatePolicy` used to
    /// livelock `Crawler::request` forever — `retry_after` saturates, the
    /// loop retried unconditionally. The cumulative virtual wait is now
    /// capped and surfaces as a typed, non-retryable error.
    #[test]
    fn unbounded_rate_limit_wait_is_capped() {
        let world = Arc::new(World::generate(&WorldConfig::small().with_seed(11)).unwrap());
        let api_cfg = flock_apis::ApiConfig {
            search_policy: flock_apis::RatePolicy {
                capacity: 0,
                window_secs: 900,
            },
            ..Default::default()
        };
        let api = ApiServer::new(world, api_cfg).unwrap();
        let crawler = Crawler::new(&api, CrawlerConfig::default()).unwrap();
        match crawler.run() {
            Err(FlockError::RetryBudgetExhausted { waited_secs }) => {
                assert!(waited_secs > CrawlerConfig::default().max_rate_limit_wait_secs);
            }
            other => panic!("expected RetryBudgetExhausted, got {other:?}"),
        }
    }

    /// The registry sees everything `CrawlStats` reports, plus the
    /// dataset-derived counters and the per-phase span events.
    #[test]
    fn registry_captures_counters_and_phase_spans() {
        let (world, _) = shared();
        let obs = Registry::new();
        let api = ApiServer::with_obs(world.clone(), flock_apis::ApiConfig::default(), obs.clone())
            .unwrap();
        let crawler = Crawler::with_registry(&api, CrawlerConfig::default(), obs.clone()).unwrap();
        let ds = crawler.run().unwrap();
        assert_eq!(
            obs.counter_value("flock.crawler.requests.attempts"),
            Some(ds.stats.requests)
        );
        assert_eq!(
            obs.counter_value("flock.crawler.requests.rate_limited"),
            Some(ds.stats.rate_limited)
        );
        assert_eq!(
            obs.counter_value("flock.crawler.discover.collected_tweets"),
            Some(ds.collected_tweets.len() as u64)
        );
        assert_eq!(
            obs.counter_value("flock.crawler.discover.matched_users"),
            Some(ds.matched.len() as u64)
        );
        // crawl + 2 discover + 4 expand phases, a start and an end each.
        assert!(obs.event_count() >= 14, "{} events", obs.event_count());
        let text = obs.export_text();
        assert!(text.contains("phase_start name=discover.collect_tweets"));
        assert!(text.contains("phase_end name=expand.weekly_activity"));
        // The API server recorded into the same registry.
        assert!(obs
            .counter_value("flock.apis.search.granted")
            .is_some_and(|v| v > 0));
        // Deterministic-tier snapshot is non-empty and carries both crates.
        let snap = obs.snapshot();
        assert!(snap.contains("flock.crawler.discover.matched_users"));
        assert!(snap.contains("flock.apis.follows.granted"));
    }
}

//! Dataset persistence and anonymization.
//!
//! §3.4 of the paper: *"We anonymize the data before use … Upon acceptance
//! of the paper, anonymized data will be made available to the public."*
//! This module implements that release path: a [`Dataset`] serializes to
//! JSON, and [`Dataset::anonymized`] produces the shareable variant —
//! usernames and handles replaced by stable pseudonyms (instance domains
//! are retained: they are the unit of the RQ1/RQ2 analyses), with handle
//! occurrences inside post text rewritten to match.

use crate::dataset::{Dataset, MatchedUser};
use flock_core::handle::extract_handles;
use flock_core::{FlockError, MastodonHandle, Result};
use std::collections::BTreeMap;
use std::path::Path;

impl Dataset {
    /// Serialize to pretty JSON.
    pub fn to_json(&self) -> Result<String> {
        serde_json::to_string_pretty(self)
            .map_err(|e| FlockError::InvalidConfig(format!("serialize: {e}")))
    }

    /// Deserialize from JSON.
    pub fn from_json(json: &str) -> Result<Dataset> {
        serde_json::from_str(json)
            .map_err(|e| FlockError::InvalidConfig(format!("deserialize: {e}")))
    }

    /// Write JSON to a file.
    pub fn save(&self, path: &Path) -> Result<()> {
        std::fs::write(path, self.to_json()?)
            .map_err(|e| FlockError::InvalidConfig(format!("write {}: {e}", path.display())))
    }

    /// Read a dataset back from a file.
    pub fn load(path: &Path) -> Result<Dataset> {
        let json = std::fs::read_to_string(path)
            .map_err(|e| FlockError::InvalidConfig(format!("read {}: {e}", path.display())))?;
        Dataset::from_json(&json)
    }

    /// The anonymized release variant: every username becomes a stable
    /// pseudonym derived from `salt`, both in the records and inside post
    /// text. Instance domains, dates, counts, sources and non-handle text
    /// are retained — they carry the scientific content.
    pub fn anonymized(&self, salt: u64) -> Result<Dataset> {
        let mut names = Pseudonyms::new(salt);
        // Collect every username we must rewrite: matched users' Twitter
        // usernames and all handle usernames.
        for m in &self.matched {
            names.assign(&m.twitter_username);
            names.assign(m.handle.username());
            names.assign(m.resolved_handle.username());
        }

        let anon_handle = |h: &MastodonHandle, names: &mut Pseudonyms| -> Result<MastodonHandle> {
            MastodonHandle::new(&names.assign(h.username()), h.instance())
        };
        let anon_text = |text: &str, names: &mut Pseudonyms| -> Result<String> {
            let mut out = text.to_string();
            for h in extract_handles(text) {
                let replacement = anon_handle(&h, names)?;
                out = out.replace(&h.to_string(), &replacement.to_string());
                out = out.replace(&h.profile_url(), &replacement.profile_url());
            }
            Ok(out)
        };

        let matched: Vec<MatchedUser> = self
            .matched
            .iter()
            .map(|m| {
                let mut a = m.clone();
                a.twitter_username = names.assign(&m.twitter_username);
                a.handle = anon_handle(&m.handle, &mut names)?;
                a.resolved_handle = anon_handle(&m.resolved_handle, &mut names)?;
                if let Some(acct) = &mut a.account {
                    acct.handle = anon_handle(&acct.handle, &mut names)?;
                    if let Some(moved) = &acct.moved_to {
                        acct.moved_to = Some(anon_handle(moved, &mut names)?);
                    }
                }
                if let Some(acct) = &mut a.first_account {
                    acct.handle = anon_handle(&acct.handle, &mut names)?;
                    if let Some(moved) = &acct.moved_to {
                        acct.moved_to = Some(anon_handle(moved, &mut names)?);
                    }
                }
                Ok(a)
            })
            .collect::<Result<_>>()?;

        let collected_tweets = self
            .collected_tweets
            .iter()
            .map(|t| {
                let mut t = t.clone();
                t.text = anon_text(&t.text, &mut names)?;
                Ok(t)
            })
            .collect::<Result<_>>()?;
        let twitter_timelines = self
            .twitter_timelines
            .iter()
            .map(|(id, tl)| {
                let tl = tl
                    .iter()
                    .map(|t| {
                        let mut t = t.clone();
                        t.text = anon_text(&t.text, &mut names)?;
                        Ok(t)
                    })
                    .collect::<Result<_>>()?;
                Ok((*id, tl))
            })
            .collect::<Result<_>>()?;
        let mastodon_timelines = self
            .mastodon_timelines
            .iter()
            .map(|(h, tl)| {
                let tl = tl
                    .iter()
                    .map(|s| {
                        let mut s = s.clone();
                        s.text = anon_text(&s.text, &mut names)?;
                        Ok(s)
                    })
                    .collect::<Result<_>>()?;
                Ok((anon_handle(h, &mut names)?, tl))
            })
            .collect::<Result<_>>()?;
        let followees = self
            .followees
            .iter()
            .map(|(id, rec)| {
                let mut rec = rec.clone();
                rec.mastodon = rec
                    .mastodon
                    .iter()
                    .map(|h| anon_handle(h, &mut names))
                    .collect::<Result<_>>()?;
                Ok((*id, rec))
            })
            .collect::<Result<_>>()?;

        Ok(Dataset {
            instance_list: self.instance_list.clone(),
            collected_tweets,
            searched_users: self.searched_users,
            matched,
            twitter_timelines,
            twitter_outcomes: self.twitter_outcomes.clone(),
            mastodon_timelines,
            mastodon_outcomes: self.mastodon_outcomes.clone(),
            followees,
            weekly_activity: self.weekly_activity.clone(),
            instance_info: self.instance_info.clone(),
            // Skip reasons name queries and domains, never usernames.
            coverage: self.coverage.clone(),
            stats: self.stats,
        })
    }
}

/// Deterministic username → pseudonym assignment.
struct Pseudonyms {
    salt: u64,
    map: BTreeMap<String, String>,
}

impl Pseudonyms {
    fn new(salt: u64) -> Self {
        Pseudonyms {
            salt,
            map: BTreeMap::new(),
        }
    }

    /// Pseudonym for a username (stable within one anonymization pass).
    fn assign(&mut self, username: &str) -> String {
        if let Some(p) = self.map.get(username) {
            return p.clone();
        }
        let mut h = self.salt ^ 0xcbf2_9ce4_8422_2325;
        for b in username.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        let p = format!("user_{h:012x}");
        self.map.insert(username.to_string(), p.clone());
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{CollectedTweet, MatchSource, QueryKind};
    use flock_core::{Day, TweetId, TwitterUserId};

    fn sample() -> Dataset {
        let mut ds = Dataset {
            instance_list: vec!["mastodon.social".into()],
            ..Dataset::default()
        };
        ds.matched.push(MatchedUser {
            twitter_id: TwitterUserId(1),
            twitter_username: "quiet_otter".into(),
            twitter_created: Day(-1000),
            verified: true,
            twitter_followers: 10,
            twitter_followees: 20,
            handle: "@quiet_otter@mastodon.social".parse().unwrap(),
            matched_via: MatchSource::Bio,
            first_seen: Some(Day(28)),
            resolved_handle: "@quiet_otter@mastodon.social".parse().unwrap(),
            account: None,
            first_account: None,
        });
        ds.collected_tweets.push(CollectedTweet {
            id: TweetId(0),
            author: TwitterUserId(1),
            day: Day(28),
            text: "bye! find me at @quiet_otter@mastodon.social".into(),
            source: "Twitter Web App".into(),
            via: QueryKind::Keyword,
        });
        ds.searched_users = 1;
        ds
    }

    #[test]
    fn json_round_trip() {
        let ds = sample();
        let json = ds.to_json().unwrap();
        let back = Dataset::from_json(&json).unwrap();
        assert_eq!(back.matched.len(), 1);
        assert_eq!(back.matched[0].handle, ds.matched[0].handle);
        assert_eq!(back.collected_tweets[0].text, ds.collected_tweets[0].text);
        assert_eq!(back.searched_users, 1);
    }

    #[test]
    fn save_and_load() {
        let dir = std::env::temp_dir().join("flock_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ds.json");
        let ds = sample();
        ds.save(&path).unwrap();
        let back = Dataset::load(&path).unwrap();
        assert_eq!(back.matched.len(), ds.matched.len());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_json_is_rejected_cleanly() {
        for bad in ["", "{", "null", "[1,2,3]", "{\"matched\": 7}"] {
            assert!(Dataset::from_json(bad).is_err(), "{bad:?} parsed");
        }
        assert!(Dataset::load(std::path::Path::new("/no/such/file.json")).is_err());
    }

    #[test]
    fn anonymization_scrubs_usernames_everywhere() {
        let ds = sample();
        let anon = ds.anonymized(42).unwrap();
        assert_ne!(anon.matched[0].twitter_username, "quiet_otter");
        assert_ne!(anon.matched[0].handle.username(), "quiet_otter");
        // The instance stays — it's the unit of analysis.
        assert_eq!(anon.matched[0].handle.instance(), "mastodon.social");
        // Text mentions are rewritten consistently with the record.
        assert!(!anon.collected_tweets[0].text.contains("quiet_otter"));
        assert!(anon.collected_tweets[0]
            .text
            .contains(anon.matched[0].handle.username()));
    }

    #[test]
    fn anonymization_is_deterministic_and_salted() {
        let ds = sample();
        let a = ds.anonymized(42).unwrap();
        let b = ds.anonymized(42).unwrap();
        assert_eq!(a.matched[0].twitter_username, b.matched[0].twitter_username);
        let c = ds.anonymized(43).unwrap();
        assert_ne!(a.matched[0].twitter_username, c.matched[0].twitter_username);
    }

    #[test]
    fn anonymization_preserves_structure() {
        let ds = sample();
        let anon = ds.anonymized(7).unwrap();
        assert_eq!(anon.matched.len(), ds.matched.len());
        assert_eq!(anon.collected_tweets.len(), ds.collected_tweets.len());
        assert_eq!(anon.matched[0].twitter_id, ds.matched[0].twitter_id);
        assert_eq!(anon.matched[0].first_seen, ds.matched[0].first_seen);
    }
}

//! Property-based tests over the generative models.

use flock_core::Day;
use flock_core::{DetRng, TwitterUserId};
use flock_fedisim::graph::{build_friend_graph, realize_followees};
use flock_fedisim::instances::generate_instances;
use flock_fedisim::migration::{migration_intensity, sample_migration_day, InstanceSampler};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn friend_graph_invariants_hold_for_any_params(
        seed in any::<u64>(),
        n in 2usize..400,
        m_median in 1.0f64..30.0,
        sigma in 0.1f64..1.5,
        loner in 0.0f64..0.3,
    ) {
        let mut rng = DetRng::new(seed);
        let g = build_friend_graph(n, m_median, sigma, loner, &mut rng);
        prop_assert_eq!(g.len(), n);
        for (i, friends) in (0..n).map(|i| (i, g.friends(i))) {
            let mut sorted = friends.to_vec();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), friends.len(), "duplicate edge at {}", i);
            for &f in friends {
                prop_assert!((f as usize) < n);
                prop_assert_ne!(f as usize, i, "self loop");
                prop_assert!(
                    g.friends(f as usize).contains(&(i as u32)),
                    "asymmetric edge {} -> {}", i, f
                );
            }
        }
    }

    #[test]
    fn realized_followees_are_unique_and_self_free(
        seed in any::<u64>(),
        n_friends in 0usize..40,
        target in 0usize..200,
    ) {
        let mut rng = DetRng::new(seed);
        let me = TwitterUserId(0);
        let friends: Vec<TwitterUserId> = (1..=n_friends as u64).map(TwitterUserId).collect();
        let pool: Vec<TwitterUserId> = (1_000..2_000).map(TwitterUserId).collect();
        let list = realize_followees(me, &friends, target, &pool, &mut rng);
        let mut unique = list.clone();
        unique.sort();
        unique.dedup();
        prop_assert_eq!(unique.len(), list.len(), "duplicates");
        prop_assert!(!list.contains(&me));
        // All friends present; size at least max(friends, ~target reachable).
        for f in &friends {
            prop_assert!(list.contains(f));
        }
        prop_assert!(list.len() >= n_friends);
    }

    #[test]
    fn instance_sampler_never_escapes_bounds(
        n in 1usize..3000,
        s in 0.3f64..3.5,
        seed in any::<u64>(),
    ) {
        let sampler = InstanceSampler::new(n, s);
        let mut rng = DetRng::new(seed);
        for _ in 0..200 {
            let eng = 0.1 + rng.f64() * 4.0;
            prop_assert!(sampler.sample(eng, &mut rng) < n);
        }
    }

    #[test]
    fn instance_generation_scales(n in 10usize..2000, s in 0.5f64..3.0, seed in any::<u64>()) {
        let mut rng = DetRng::new(seed);
        let instances = generate_instances(n, s, &mut rng);
        prop_assert_eq!(instances.len(), n);
        prop_assert!(instances[0].flagship);
        let mut seen = std::collections::HashSet::new();
        for (i, inst) in instances.iter().enumerate() {
            prop_assert_eq!(inst.id.index(), i);
            prop_assert!(seen.insert(inst.domain.clone()), "dup domain {}", inst.domain);
            prop_assert!(inst.created < Day(0));
        }
    }

    #[test]
    fn migration_days_always_in_collection_window(seed in any::<u64>()) {
        let mut rng = DetRng::new(seed);
        for _ in 0..200 {
            let d = sample_migration_day(&mut rng);
            prop_assert!(d.in_collection_window());
            prop_assert!(migration_intensity(d) > 0.0);
        }
    }
}

//! The assembled world: both platforms, fully generated and cross-linked.
//!
//! [`World::generate`] runs the whole pipeline bottom-up:
//!
//! 1. instances, users, and the migrant friend graph;
//! 2. the migration model (who moves when, to which instance);
//! 3. Twitter followee-list realization (what the follows API can return);
//! 4. ActivityPub registration + Mastodon follows through the real
//!    federation substrate (`flock-activitypub`), including `Move`-based
//!    instance switches;
//! 5. content (tweets, statuses, announcements, cross-posts);
//! 6. the weekly activity ledger and the Fig. 1 interest series;
//! 7. crawl-time fault assignment (which instances are down).
//!
//! Every phase draws from its own forked RNG stream, so the world is
//! bit-reproducible from `config.seed` and insensitive to draw-count
//! changes in sibling phases.

use crate::activity::{build_ledger, ActivityLedger};
use crate::config::WorldConfig;
use crate::content::{generate_content, Corpora, MirrorBehavior, StatusStore, TweetStore};
use crate::graph::{build_friend_graph, realize_followees, MigrantFriendGraph};
use crate::instances::{generate_instances, Instance};
use crate::interest::{generate_interest, InterestReport};
use crate::migration::{run_migration, MastodonAccount};
use crate::switching::run_switching;
use crate::users::{generate_users, TwitterUser};
use flock_activitypub::{ActorUri, FediverseNetwork, NetworkConfig};
use flock_core::{
    DetRng, FlockError, InstanceId, MastodonAccountId, MastodonHandle, Result, SortedVecMap,
    StatusId, TweetId, TwitterUserId,
};
use std::collections::BTreeMap;

/// The fully-generated two-platform world.
#[derive(Debug)]
pub struct World {
    pub config: WorldConfig,
    pub instances: Vec<Instance>,
    pub users: Vec<TwitterUser>,
    /// Migrant index → index into `users`.
    pub migrant_users: Vec<usize>,
    /// Ground-truth Mastodon accounts, in migrant-index order.
    pub accounts: Vec<MastodonAccount>,
    /// Friend graph over migrant indices.
    pub friend_graph: MigrantFriendGraph,
    /// Realized Twitter followee lists, in migrant-index order.
    pub twitter_followees: Vec<Vec<TwitterUserId>>,
    pub tweets: TweetStore,
    pub statuses: StatusStore,
    /// Per-migrant mirroring behaviour.
    pub mirror_behavior: Vec<MirrorBehavior>,
    /// The ActivityPub substrate carrying Mastodon's social graph.
    pub fediverse: FediverseNetwork,
    pub ledger: ActivityLedger,
    pub interest: InterestReport,

    // ---- indexes ---------------------------------------------------------
    instance_by_domain: SortedVecMap<String, InstanceId>,
    user_by_username: SortedVecMap<String, TwitterUserId>,
    account_by_owner: SortedVecMap<TwitterUserId, MastodonAccountId>,
    account_by_handle: SortedVecMap<MastodonHandle, MastodonAccountId>,
    /// Per-user `(start, len)` into the tweet arena. Content generation
    /// emits each user's tweets as one contiguous id run (canonical
    /// chunk order), so the author index is two words per user instead
    /// of a map of id vectors.
    tweets_by_author: Vec<(u64, u32)>,
    /// Per-migrant `(start, len)` into the status arena; same contract.
    statuses_by_account: Vec<(u64, u32)>,
}

impl World {
    /// Generate a world from a validated config.
    pub fn generate(config: &WorldConfig) -> Result<World> {
        config.validate()?;
        let mut root = DetRng::new(config.seed);
        // Phase 1: instances + users + migrant graph.
        let instances = generate_instances(
            config.n_instances,
            config.instance_zipf_exponent,
            &mut root.fork("instances"),
        );
        let mut users = generate_users(config, &mut root.fork("users"));
        let migrant_users: Vec<usize> = users
            .iter()
            .enumerate()
            .filter(|(_, u)| u.is_migrant)
            .map(|(i, _)| i)
            .collect();
        // Friend-graph median stub count calibrated so that the mean
        // migrated-followee *fraction* lands near the configured 5.99%.
        // The modest sigma keeps the median friend count high enough that
        // being the *first* mover of one's ego network stays rare (§5.2's
        // 4.98%).
        let m_median =
            (config.followee_migrant_fraction * config.twitter_followee_median * 0.305).max(2.0);
        let friend_graph = build_friend_graph(
            migrant_users.len(),
            m_median,
            0.55,
            0.045,
            &mut root.fork("friend-graph"),
        );

        // Phase 2: migration decisions.
        let mut accounts = run_migration(
            &users,
            &migrant_users,
            &friend_graph,
            &instances,
            config,
            &mut root.fork("migration"),
        )?;

        // Phase 3: Twitter followee lists (migrants only, like the paper).
        let non_migrant_pool: Vec<TwitterUserId> = users
            .iter()
            .filter(|u| !u.is_migrant)
            .map(|u| u.id)
            .collect();
        let mut followee_rng = root.fork("followees");
        let twitter_followees: Vec<Vec<TwitterUserId>> = migrant_users
            .iter()
            .enumerate()
            .map(|(mi, &ui)| {
                let friend_ids: Vec<TwitterUserId> = friend_graph
                    .friends(mi)
                    .iter()
                    .map(|&f| users[migrant_users[f as usize]].id)
                    .collect();
                realize_followees(
                    users[ui].id,
                    &friend_ids,
                    users[ui].followee_count as usize,
                    &non_migrant_pool,
                    &mut followee_rng,
                )
            })
            .collect();

        // Phase 4: switching (before federation wiring so Move targets are
        // known), then the ActivityPub substrate.
        let switched = run_switching(
            &mut accounts,
            &users,
            &migrant_users,
            &friend_graph,
            &instances,
            config,
            &mut root.fork("switching"),
        )?;
        let fediverse = build_fediverse(
            &instances,
            &users,
            &migrant_users,
            &accounts,
            &friend_graph,
            &switched,
            config,
            &mut root.fork("fediverse"),
        )?;

        // Phase 5: content.
        let Corpora {
            tweets,
            statuses,
            mirror_behavior,
            never_posted: _,
        } = generate_content(
            &mut users,
            &migrant_users,
            &accounts,
            config,
            &mut root.fork("content"),
        );

        // Phase 6: ledger + interest.
        let mut instances = instances;
        let ledger = build_ledger(
            &instances,
            &accounts,
            &statuses,
            config,
            &mut root.fork("ledger"),
        );
        let interest = generate_interest(&mut root.fork("interest"));

        // Phase 7: crawl-time instance downtime. Mark instances down,
        // smallest-first with some randomness, until the share of migrants
        // on down instances reaches the configured rate. The flagship and
        // next few giants stay up (they did in reality).
        assign_downtime(
            &mut instances,
            &accounts,
            config,
            &mut root.fork("downtime"),
        );

        // ---- indexes ----------------------------------------------------
        let instance_by_domain = instances.iter().map(|i| (i.domain.clone(), i.id)).collect();
        let user_by_username = users.iter().map(|u| (u.username.clone(), u.id)).collect();
        let account_by_owner = accounts.iter().map(|a| (a.owner, a.id)).collect();
        // Collected (not inserted one by one): handles arrive in random
        // key order, and FromIterator's collect-then-sort is O(n log n)
        // where an insert loop is O(n²) element moves at paper scale.
        // Later pairs win on duplicate keys, same as the insert loop did.
        let account_by_handle: SortedVecMap<MastodonHandle, MastodonAccountId> = accounts
            .iter()
            .flat_map(|a| [(a.first_handle.clone(), a.id), (a.handle.clone(), a.id)])
            .collect();
        // Each user's tweets occupy one contiguous id run (the content
        // stream emits whole per-user chunks), so the author index is a
        // flat (start, len) table. debug_assert guards the contract.
        let mut tweets_by_author: Vec<(u64, u32)> = vec![(0, 0); users.len()];
        for i in 0..tweets.len() {
            let a = tweets.author(i).index();
            let (start, len) = &mut tweets_by_author[a];
            if *len == 0 {
                *start = i as u64;
            } else {
                debug_assert_eq!(*start + *len as u64, i as u64, "tweet run not contiguous");
            }
            *len += 1;
        }
        let mut statuses_by_account: Vec<(u64, u32)> = vec![(0, 0); accounts.len()];
        for i in 0..statuses.len() {
            let a = statuses.account(i).index();
            let (start, len) = &mut statuses_by_account[a];
            if *len == 0 {
                *start = i as u64;
            } else {
                debug_assert_eq!(*start + *len as u64, i as u64, "status run not contiguous");
            }
            *len += 1;
        }

        Ok(World {
            config: config.clone(),
            instances,
            users,
            migrant_users,
            accounts,
            friend_graph,
            twitter_followees,
            tweets,
            statuses,
            mirror_behavior,
            fediverse,
            ledger,
            interest,
            instance_by_domain,
            user_by_username,
            account_by_owner,
            account_by_handle,
            tweets_by_author,
            statuses_by_account,
        })
    }

    // ---- lookups ----------------------------------------------------------

    /// Instance by domain name.
    pub fn instance_by_domain(&self, domain: &str) -> Option<&Instance> {
        self.instance_by_domain
            .get(domain)
            .map(|id| &self.instances[id.index()])
    }

    /// Twitter user by id.
    pub fn user(&self, id: TwitterUserId) -> Option<&TwitterUser> {
        self.users.get(id.index())
    }

    /// Twitter user by username.
    pub fn user_by_username(&self, username: &str) -> Option<&TwitterUser> {
        self.user_by_username
            .get(username)
            .and_then(|id| self.users.get(id.index()))
    }

    /// Mastodon account by id.
    pub fn account(&self, id: MastodonAccountId) -> Option<&MastodonAccount> {
        self.accounts.get(id.index())
    }

    /// Mastodon account owned by a Twitter user (ground truth).
    pub fn account_of_user(&self, user: TwitterUserId) -> Option<&MastodonAccount> {
        self.account_by_owner
            .get(&user)
            .and_then(|id| self.accounts.get(id.index()))
    }

    /// Mastodon account by handle (first or current).
    pub fn account_by_handle(&self, handle: &MastodonHandle) -> Option<&MastodonAccount> {
        self.account_by_handle
            .get(handle)
            .and_then(|id| self.accounts.get(id.index()))
    }

    /// Migrant index of an account.
    pub fn migrant_index(&self, account: MastodonAccountId) -> usize {
        account.index()
    }

    /// Tweets of one author (ids in chronological generation order —
    /// one contiguous run of the dense id space).
    pub fn tweets_of(&self, author: TwitterUserId) -> impl Iterator<Item = TweetId> {
        let (start, len) = self
            .tweets_by_author
            .get(author.index())
            .copied()
            .unwrap_or((0, 0));
        (start..start + len as u64).map(TweetId)
    }

    /// Statuses of one account (one contiguous run of the dense id space).
    pub fn statuses_of(&self, account: MastodonAccountId) -> impl Iterator<Item = StatusId> {
        let (start, len) = self
            .statuses_by_account
            .get(account.index())
            .copied()
            .unwrap_or((0, 0));
        (start..start + len as u64).map(StatusId)
    }

    /// The ActivityPub actor URI of an account (its *current* identity).
    pub fn actor_of(&self, account: &MastodonAccount) -> ActorUri {
        ActorUri::from_handle(&account.handle)
    }

    /// Mastodon followees of an account, resolved through the federation
    /// substrate.
    pub fn mastodon_following(&self, account: &MastodonAccount) -> Vec<ActorUri> {
        self.fediverse
            .following_of(&self.actor_of(account))
            .map(|s| s.to_vec())
            .unwrap_or_default()
    }

    /// Mastodon followers of an account.
    pub fn mastodon_followers(&self, account: &MastodonAccount) -> Vec<ActorUri> {
        self.fediverse
            .followers_of(&self.actor_of(account))
            .map(|s| s.to_vec())
            .unwrap_or_default()
    }

    /// Ground-truth migrant count.
    pub fn n_migrants(&self) -> usize {
        self.accounts.len()
    }

    /// The federation adjacency (domain → sorted peer domains) behind the
    /// per-instance peers-list endpoint, derived from the ActivityPub
    /// substrate's follow edges. Pure in the world seed.
    pub fn federation_peers(&self) -> BTreeMap<String, Vec<String>> {
        self.fediverse.federation_peers()
    }

    /// The flagship instance domains (the paper's `mastodon.social` tier) —
    /// the natural bootstrap set for a continuous monitor, in rank order.
    pub fn flagship_domains(&self) -> Vec<String> {
        self.instances
            .iter()
            .filter(|i| i.flagship)
            .map(|i| i.domain.clone())
            .collect()
    }

    /// Domains eligible for chaos-plan outage injection: instances that
    /// are still reachable at crawl time, minus the flagship (the paper's
    /// `mastodon.social` stayed up throughout the migration, and several
    /// figures depend on it answering). Returned in rank order so a
    /// seeded sample over the list is deterministic.
    pub fn outage_candidates(&self) -> Vec<String> {
        self.instances
            .iter()
            .filter(|i| !i.down_at_crawl && !i.flagship)
            .map(|i| i.domain.clone())
            .collect()
    }

    /// One-paragraph world summary for logs and examples.
    pub fn summary(&self) -> String {
        let switchers = self.accounts.iter().filter(|a| a.switch.is_some()).count();
        let early = self
            .accounts
            .iter()
            .filter(|a| !a.created.is_post_takeover())
            .count();
        let down = self.instances.iter().filter(|i| i.down_at_crawl).count();
        format!(
            "{} searchable users, {} migrants ({} early adopters, {} switchers) across              {} instances ({} down at crawl); {} tweets, {} statuses",
            self.users.len(),
            self.n_migrants(),
            early,
            switchers,
            self.instances.len(),
            down,
            self.tweets.len(),
            self.statuses.len(),
        )
    }
}

/// Wire the Mastodon side of the world through the ActivityPub substrate.
#[allow(clippy::too_many_arguments)]
fn build_fediverse(
    instances: &[Instance],
    users: &[TwitterUser],
    migrant_users: &[usize],
    accounts: &[MastodonAccount],
    graph: &MigrantFriendGraph,
    switched: &[usize],
    config: &WorldConfig,
    rng: &mut DetRng,
) -> Result<FediverseNetwork> {
    let mut net = FediverseNetwork::new(NetworkConfig::default(), rng.next_u64());
    for inst in instances {
        net.register_instance(&inst.domain);
    }
    // Register every account at its *first* handle.
    let actors: Vec<ActorUri> = accounts
        .iter()
        .map(|a| net.register_actor(a.first_handle.username(), a.first_handle.instance()))
        .collect::<Result<_>>()?;

    // Group accounts by first instance for local-discovery follows.
    let mut by_instance: BTreeMap<InstanceId, Vec<usize>> = BTreeMap::new();
    for (mi, a) in accounts.iter().enumerate() {
        by_instance.entry(a.first_instance).or_default().push(mi);
    }
    // Visibility classes: "invisible" accounts (no avatar, no posts yet)
    // attract almost no follows — the §5.1 users with zero Mastodon
    // followers; "passive" accounts never follow anyone themselves.
    let invisible: Vec<bool> = (0..accounts.len()).map(|_| rng.chance(0.10)).collect();
    let passive: Vec<bool> = (0..accounts.len()).map(|_| rng.chance(0.04)).collect();

    // Popularity weights for remote discovery: well-followed Twitter
    // accounts attract disproportionate Mastodon follows, which skews the
    // follower distribution below the followee one (Fig. 7's 38 vs 48).
    let cumulative: Vec<f64> = {
        let mut acc = 0.0;
        migrant_users
            .iter()
            .enumerate()
            .map(|(mi, &ui)| {
                if !invisible[mi] {
                    // Twitter fame and Mastodon activeness both attract
                    // discovery follows.
                    acc +=
                        (users[ui].follower_count as f64).sqrt() * users[ui].engagement.powf(1.5);
                }
                acc
            })
            .collect()
    };
    let total_weight = cumulative.last().copied().unwrap_or(0.0);

    // Follows: re-follow migrated Twitter friends + discoveries (local
    // timeline + federated timeline). Everything scales with engagement —
    // the dedicated users who seek out tiny instances are precisely the
    // ones who build big Mastodon networks (the Fig. 6 paradox).
    for mi in 0..accounts.len() {
        if passive[mi] {
            continue;
        }
        let me = &actors[mi];
        let engagement = users[migrant_users[mi]].engagement;
        let refollow_p = (config.mastodon_refollow_rate * (0.55 + 0.45 * engagement)).min(0.98);
        for &f in graph.friends(mi) {
            // Friends find even invisible accounts (they knew the person),
            // but far less reliably.
            let p = if invisible[f as usize] {
                refollow_p * 0.03
            } else {
                refollow_p
            };
            if rng.chance(p) {
                net.follow(me, &actors[f as usize])
                    .map_err(|e| FlockError::DeliveryFailed(e.to_string()))?;
            }
        }
        let n_discover =
            rng.poisson(config.mastodon_local_follow_mean * engagement.powf(0.9)) as usize;
        let locals = &by_instance[&accounts[mi].first_instance];
        for _ in 0..n_discover {
            // Local timeline when there are neighbours, federated timeline
            // (popularity-weighted) otherwise or 40% of the time anyway.
            let target = if locals.len() > 1 && rng.chance(0.45) {
                locals[rng.below_usize(locals.len())]
            } else if total_weight > 0.0 {
                let x = rng.f64() * total_weight;
                cumulative
                    .partition_point(|c| *c < x)
                    .min(accounts.len() - 1)
            } else {
                continue;
            };
            if target != mi && !invisible[target] {
                net.follow(me, &actors[target])
                    .map_err(|e| FlockError::DeliveryFailed(e.to_string()))?;
            }
        }
    }
    net.run_to_quiescence(64);

    // Instance switches become real ActivityPub Moves.
    for &mi in switched {
        let a = &accounts[mi];
        let old = &actors[mi];
        let new = ActorUri::from_handle(&a.handle);
        net.register_actor(&new.name, &new.domain)
            .map_err(|e| FlockError::DeliveryFailed(format!("switch target: {e}")))?;
        net.set_also_known_as(&new, old)?;
        // The mover re-follows from the new account (Mastodon's follow
        // export/import step), then the Move transfers the followers.
        let following = net
            .following_of(old)
            .map(|s| s.to_vec())
            .unwrap_or_default();
        for f in following {
            net.undo_follow(old, &f)?;
            // A followee may itself be a moved-away identity by now; the
            // import simply skips dead follows, like Mastodon's does.
            match net.follow(&new, &f) {
                Ok(()) | Err(FlockError::Forbidden(_)) => {}
                Err(e) => return Err(e),
            }
        }
        net.move_account(old, &new)?;
        net.run_to_quiescence(64);
    }
    net.run_to_quiescence(256);
    Ok(net)
}

/// Mark instances as down at crawl time until the share of migrants on
/// down instances reaches `instance_down_rate`. Small instances first (big
/// instances had the resources to stay up).
fn assign_downtime(
    instances: &mut [Instance],
    accounts: &[MastodonAccount],
    config: &WorldConfig,
    rng: &mut DetRng,
) {
    let mut user_count = vec![0usize; instances.len()];
    for a in accounts {
        user_count[a.instance.index()] += 1;
    }
    let total: usize = user_count.iter().sum();
    if total == 0 {
        return;
    }
    // Candidates: every instance but the 5 largest, in uniformly random
    // order — downtime hit servers of all sizes in Nov 2022, only the
    // giants had the resources to reliably stay up.
    let mut order: Vec<usize> = (0..instances.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(user_count[i]));
    let mut candidates: Vec<usize> = order[5.min(order.len())..].to_vec();
    rng.shuffle(&mut candidates);
    // Round to nearest: the old truncating cast quietly shrank the down
    // cohort (at small scales by enough to miss the configured rate).
    let target = (total as f64 * config.instance_down_rate).round() as usize;
    let mut covered = 0usize;
    for idx in candidates {
        if covered >= target {
            break;
        }
        instances[idx].down_at_crawl = true;
        covered += user_count[idx];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world() -> World {
        World::generate(&WorldConfig::small().with_seed(77)).unwrap()
    }

    #[test]
    fn generates_consistent_world() {
        let w = world();
        assert_eq!(w.migrant_users.len(), w.accounts.len());
        assert_eq!(w.twitter_followees.len(), w.accounts.len());
        assert_eq!(w.friend_graph.len(), w.accounts.len());
        assert!(w.n_migrants() > 100, "{} migrants", w.n_migrants());
        assert!(!w.tweets.is_empty() && !w.statuses.is_empty());
    }

    #[test]
    fn indexes_are_consistent() {
        let w = world();
        for a in &w.accounts {
            assert_eq!(w.account_of_user(a.owner).unwrap().id, a.id);
            assert_eq!(w.account_by_handle(&a.first_handle).unwrap().id, a.id);
            assert_eq!(w.account_by_handle(&a.handle).unwrap().id, a.id);
            let inst = &w.instances[a.instance.index()];
            assert_eq!(a.handle.instance(), inst.domain);
        }
        for (i, u) in w.users.iter().enumerate() {
            assert_eq!(u.id.index(), i);
            assert_eq!(w.user_by_username(&u.username).unwrap().id, u.id);
        }
    }

    #[test]
    fn every_account_is_a_registered_actor() {
        let w = world();
        for a in &w.accounts {
            assert!(
                w.fediverse
                    .resolve(a.handle.username(), a.handle.instance())
                    .is_some(),
                "unresolvable actor {}",
                a.handle
            );
        }
    }

    #[test]
    fn mastodon_follow_graph_exists_and_is_nontrivial() {
        let w = world();
        let mut with_following = 0;
        let mut with_followers = 0;
        for a in &w.accounts {
            if !w.mastodon_following(a).is_empty() {
                with_following += 1;
            }
            if !w.mastodon_followers(a).is_empty() {
                with_followers += 1;
            }
        }
        let n = w.accounts.len();
        assert!(
            with_following > n * 8 / 10,
            "{with_following}/{n} follow someone"
        );
        assert!(
            with_followers > n * 7 / 10,
            "{with_followers}/{n} have followers"
        );
    }

    #[test]
    fn switched_accounts_moved_on_the_network() {
        let w = world();
        let switchers: Vec<&MastodonAccount> =
            w.accounts.iter().filter(|a| a.switch.is_some()).collect();
        assert!(!switchers.is_empty());
        for a in switchers {
            let old = ActorUri::from_handle(&a.first_handle);
            let old_actor = w.fediverse.actor(&old).expect("old actor exists");
            assert!(old_actor.has_moved(), "{} did not move", a.first_handle);
            assert!(
                w.fediverse.followers_of(&old).unwrap().is_empty(),
                "old account retains followers"
            );
            // The new identity exists and carries the social graph.
            let new = ActorUri::from_handle(&a.handle);
            assert!(w.fediverse.actor(&new).is_some());
        }
    }

    #[test]
    fn downtime_share_close_to_config() {
        let w = world();
        let down_users = w
            .accounts
            .iter()
            .filter(|a| w.instances[a.instance.index()].down_at_crawl)
            .count() as f64
            / w.accounts.len() as f64;
        assert!(
            (down_users - w.config.instance_down_rate).abs() < 0.05,
            "down share {down_users}"
        );
        // The flagship stayed up.
        assert!(!w.instances[0].down_at_crawl);
    }

    #[test]
    fn realized_rates_track_configured() {
        // Pin the rate × population computations at small() scale: the old
        // truncating casts systematically undershot the configured rates,
        // which only shows up when realized counts are compared to the
        // configuration rather than to other realized counts.
        let w = world();
        let n = w.users.len() as f64;

        let migrant_share = w.n_migrants() as f64 / n;
        assert!(
            (migrant_share - w.config.migrant_fraction).abs() < 0.02,
            "migrant share {migrant_share} vs {}",
            w.config.migrant_fraction
        );

        let switchers = w.accounts.iter().filter(|a| a.switch.is_some()).count();
        let switch_target = (w.accounts.len() as f64 * w.config.switch_rate).round() as usize;
        assert!(
            switchers.abs_diff(switch_target) <= switch_target / 3 + 2,
            "{switchers} switchers vs target {switch_target}"
        );

        let down_users = w
            .accounts
            .iter()
            .filter(|a| w.instances[a.instance.index()].down_at_crawl)
            .count() as f64;
        // The down cohort must reach the *rounded* target, never stop a
        // truncated-cast short of it (instance granularity can overshoot).
        let down_target = (w.accounts.len() as f64 * w.config.instance_down_rate).round();
        assert!(
            down_users >= down_target,
            "down users {down_users} below rounded target {down_target}"
        );
    }

    #[test]
    fn determinism_same_seed_same_world() {
        let a = World::generate(&WorldConfig::small().with_seed(5)).unwrap();
        let b = World::generate(&WorldConfig::small().with_seed(5)).unwrap();
        assert_eq!(a.n_migrants(), b.n_migrants());
        assert_eq!(a.tweets.len(), b.tweets.len());
        assert_eq!(a.statuses.len(), b.statuses.len());
        assert_eq!(
            a.accounts
                .iter()
                .map(|x| x.handle.to_string())
                .collect::<Vec<_>>(),
            b.accounts
                .iter()
                .map(|x| x.handle.to_string())
                .collect::<Vec<_>>()
        );
        assert_eq!(
            a.tweets
                .iter()
                .map(|t| t.text.to_string())
                .take(500)
                .collect::<Vec<_>>(),
            b.tweets
                .iter()
                .map(|t| t.text.to_string())
                .take(500)
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn different_seed_different_world() {
        let a = World::generate(&WorldConfig::small().with_seed(5)).unwrap();
        let b = World::generate(&WorldConfig::small().with_seed(6)).unwrap();
        assert_ne!(
            a.tweets
                .iter()
                .map(|t| t.text.to_string())
                .take(200)
                .collect::<Vec<_>>(),
            b.tweets
                .iter()
                .map(|t| t.text.to_string())
                .take(200)
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn summary_mentions_the_scale() {
        let w = world();
        let s = w.summary();
        assert!(s.contains(&w.n_migrants().to_string()));
        assert!(s.contains(&w.instances.len().to_string()));
    }

    #[test]
    fn invalid_config_rejected() {
        let mut c = WorldConfig::small();
        c.migrant_fraction = 2.0;
        assert!(World::generate(&c).is_err());
    }
}

//! Per-instance weekly activity (Fig. 3).
//!
//! Mastodon exposes a public weekly-activity endpoint (statuses, logins,
//! registrations per week) which the paper crawled for all 2,879 landing
//! instances. Only a minority of the post-takeover registration wave is
//! visible to the §3.1 handle matcher (Mastodon announced 1M+ sign-ups
//! while the paper tracked 136k), so the ledger combines:
//!
//! * the *tracked* migrants' registrations and statuses, counted exactly;
//! * an *untracked background* population whose registrations surge after
//!   the takeover by `background_surge_factor`.

use crate::config::WorldConfig;
use crate::content::StatusStore;
use crate::instances::Instance;
use crate::migration::MastodonAccount;
use flock_core::{Day, DetRng, InstanceId, Week};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One week of one instance's activity, in the shape of Mastodon's
/// `/api/v1/instance/activity` response.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WeeklyActivity {
    pub statuses: u64,
    pub logins: u64,
    pub registrations: u64,
}

/// The full ledger: instance → week → activity.
#[derive(Debug, Clone, Default)]
pub struct ActivityLedger {
    per_instance: Vec<BTreeMap<Week, WeeklyActivity>>,
}

impl ActivityLedger {
    /// Weekly activity of one instance, oldest week first.
    pub fn instance_weeks(&self, id: InstanceId) -> Option<&BTreeMap<Week, WeeklyActivity>> {
        self.per_instance.get(id.index())
    }

    /// Sum of a metric across all instances, per week.
    pub fn totals(&self) -> BTreeMap<Week, WeeklyActivity> {
        let mut out: BTreeMap<Week, WeeklyActivity> = BTreeMap::new();
        for inst in &self.per_instance {
            for (w, a) in inst {
                let e = out.entry(*w).or_default();
                e.statuses += a.statuses;
                e.logins += a.logins;
                e.registrations += a.registrations;
            }
        }
        out
    }
}

/// Weeks covered by the ledger: eight weeks of pre-takeover baseline
/// through the end of the study window.
pub fn ledger_weeks() -> Vec<Week> {
    let first = Day(-56).week();
    let last = Day::STUDY_END.week();
    let mut weeks = Vec::new();
    let mut w = first;
    while w <= last {
        weeks.push(w);
        w = Week(w.0 + 1);
    }
    weeks
}

/// Background-surge multiplier for a week (1.0 before the takeover, ramping
/// to `surge` at the takeover and decaying gently afterwards — Fig. 3's
/// sustained elevation).
fn surge_factor(week: Week, surge: f64) -> f64 {
    let takeover_week = Day::TAKEOVER.week();
    if week < takeover_week {
        1.0
    } else {
        let k = (week.0 - takeover_week.0) as f64;
        1.0 + (surge - 1.0) * (-k / 8.0).exp().max(0.35)
    }
}

/// Build the ledger from the tracked world plus synthetic background noise.
pub fn build_ledger(
    instances: &[Instance],
    accounts: &[MastodonAccount],
    statuses: &StatusStore,
    config: &WorldConfig,
    rng: &mut DetRng,
) -> ActivityLedger {
    let weeks = ledger_weeks();
    let mut per_instance: Vec<BTreeMap<Week, WeeklyActivity>> =
        vec![BTreeMap::new(); instances.len()];

    // Popularity share normalized so the flagship's background is
    // `background_weekly_registrations × instances.len() / 4` and the tail
    // gets a trickle.
    let pop_sum: f64 = instances.iter().map(|i| i.popularity).sum();

    for inst in instances {
        let share = inst.popularity / pop_sum;
        let base_reg = config.background_weekly_registrations * share * instances.len() as f64;
        let entry = &mut per_instance[inst.id.index()];
        for &w in &weeks {
            // Instances that did not exist yet have no activity.
            if w.monday() < inst.created {
                continue;
            }
            let s = surge_factor(w, config.background_surge_factor);
            let regs = rng.poisson(base_reg * s);
            // Logins scale with the (slowly accumulating) background user
            // base; statuses with logins.
            let logins = rng.poisson(base_reg * 14.0 * s.sqrt());
            let statuses = rng.poisson(base_reg * 45.0 * s.sqrt());
            entry.insert(
                w,
                WeeklyActivity {
                    statuses,
                    logins,
                    registrations: regs,
                },
            );
        }
    }

    // Tracked registrations: each migrant account lands in its creation
    // week on its first instance.
    for a in accounts {
        let w = a.created.week();
        let e = per_instance[a.first_instance.index()].entry(w).or_default();
        e.registrations += 1;
        e.logins += 1;
    }

    // Tracked statuses (and the login activity they imply).
    for s in statuses {
        let a = &accounts[s.account.index()];
        let inst = if let Some(sw) = &a.switch {
            if s.day >= sw.day {
                sw.to
            } else {
                sw.from
            }
        } else {
            a.instance
        };
        let e = per_instance[inst.index()].entry(s.day.week()).or_default();
        e.statuses += 1;
    }

    ActivityLedger { per_instance }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instances::generate_instances;

    #[test]
    fn weeks_cover_baseline_and_window() {
        let weeks = ledger_weeks();
        assert!(weeks.len() >= 14, "{} weeks", weeks.len());
        assert!(weeks.first().unwrap().monday() <= Day(-50));
        assert!(*weeks.last().unwrap() >= Day::STUDY_END.week());
        for pair in weeks.windows(2) {
            assert_eq!(pair[1].0, pair[0].0 + 1);
        }
    }

    #[test]
    fn surge_kicks_in_at_takeover() {
        let pre = surge_factor(Day(10).week(), 9.0);
        let post = surge_factor(Day(30).week(), 9.0);
        assert_eq!(pre, 1.0);
        assert!(post > 5.0, "post-takeover surge {post}");
        let late = surge_factor(Day(58).week(), 9.0);
        assert!(late > 1.5 && late <= post);
    }

    #[test]
    fn ledger_registrations_jump_after_takeover() {
        let config = WorldConfig::small().with_seed(50);
        let mut rng = DetRng::new(1);
        let instances = generate_instances(
            config.n_instances,
            config.instance_zipf_exponent,
            &mut rng.fork("inst"),
        );
        let ledger = build_ledger(&instances, &[], &StatusStore::default(), &config, &mut rng);
        let totals = ledger.totals();
        let takeover_week = Day::TAKEOVER.week();
        let pre: u64 = totals
            .iter()
            .filter(|(w, _)| **w < takeover_week)
            .map(|(_, a)| a.registrations)
            .sum();
        let pre_weeks = totals.keys().filter(|w| **w < takeover_week).count() as u64;
        let post: u64 = totals
            .iter()
            .filter(|(w, _)| **w >= takeover_week)
            .map(|(_, a)| a.registrations)
            .sum();
        let post_weeks = totals.keys().filter(|w| **w >= takeover_week).count() as u64;
        let pre_rate = pre as f64 / pre_weeks as f64;
        let post_rate = post as f64 / post_weeks as f64;
        assert!(
            post_rate > pre_rate * 3.0,
            "registrations {pre_rate}/wk -> {post_rate}/wk"
        );
    }

    #[test]
    fn tracked_accounts_counted_in_creation_week() {
        use crate::migration::MastodonAccount;
        use flock_core::{MastodonAccountId, MastodonHandle, TwitterUserId};
        let config = WorldConfig::small().with_seed(51);
        let mut rng = DetRng::new(2);
        let instances = generate_instances(20, 1.3, &mut rng);
        let account = MastodonAccount {
            id: MastodonAccountId(0),
            owner: TwitterUserId(0),
            handle: MastodonHandle::new("a", "mastodon.social").unwrap(),
            first_handle: MastodonHandle::new("a", "mastodon.social").unwrap(),
            instance: InstanceId(0),
            first_instance: InstanceId(0),
            created: Day(28),
            created_tod_secs: 0,
            announced: Day(28),
            in_bio: true,
            in_tweet: true,
            switch: None,
        };
        let mut cfg = config;
        cfg.background_weekly_registrations = 0.0;
        let ledger = build_ledger(
            &instances,
            &[account],
            &StatusStore::default(),
            &cfg,
            &mut rng,
        );
        let weeks = ledger.instance_weeks(InstanceId(0)).unwrap();
        let reg: u64 = weeks.values().map(|a| a.registrations).sum();
        assert_eq!(reg, 1);
        assert_eq!(weeks.get(&Day(28).week()).unwrap().registrations, 1);
    }

    #[test]
    fn flagship_has_most_background_activity() {
        let config = WorldConfig::small().with_seed(52);
        let mut rng = DetRng::new(3);
        let instances = generate_instances(
            config.n_instances,
            config.instance_zipf_exponent,
            &mut rng.fork("i"),
        );
        let ledger = build_ledger(&instances, &[], &StatusStore::default(), &config, &mut rng);
        let sum_regs = |id: InstanceId| -> u64 {
            ledger
                .instance_weeks(id)
                .unwrap()
                .values()
                .map(|a| a.registrations)
                .sum()
        };
        let flagship = sum_regs(InstanceId(0));
        let mid = sum_regs(InstanceId(50));
        assert!(flagship > mid, "flagship {flagship} vs mid {mid}");
    }
}

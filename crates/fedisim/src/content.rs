//! Timeline generation: every tweet and status in the world.
//!
//! This module produces the corpora that RQ3 (and the §3.1 search) operate
//! on:
//!
//! * migrants tweet throughout the window (their Twitter activity does
//!   *not* drop after migrating — Fig. 11) and post statuses from the day
//!   they join, ramping up;
//! * the migration announcement tweet carries the Mastodon handle and
//!   migration hashtags (what the §3.1 matcher finds);
//! * non-migrant "noise" users tweet migration keywords without moving
//!   (the paper matched 1.02M tweet authors but could map only 136k);
//! * cross-poster users mirror content *identically* via the two tools the
//!   paper names (Fig. 12/13); manual mirrorers paraphrase (similar-but-
//!   not-identical, Fig. 14);
//! * a per-user toxicity propensity injects insult vocabulary at the
//!   platform-specific rates behind Fig. 16.

use crate::config::WorldConfig;
use crate::migration::MastodonAccount;
use crate::users::TwitterUser;
use flock_core::{Day, DetRng, MastodonAccountId, Platform, StatusId, TweetId, TwitterUserId};
use flock_textsim::{PostGenerator, Topic};
use serde::{Deserialize, Serialize};

/// A tweet.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Tweet {
    pub id: TweetId,
    pub author: TwitterUserId,
    pub day: Day,
    pub text: String,
    /// Index into [`SOURCES`].
    pub source: u16,
}

/// A Mastodon status.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Status {
    pub id: StatusId,
    pub account: MastodonAccountId,
    pub day: Day,
    pub text: String,
}

/// Tweet sources (clients), most popular first — the Fig. 12 table.
/// The two cross-posting tools the paper names sit at fixed indices
/// [`SOURCE_CROSSPOSTER`] and [`SOURCE_MOA`].
pub const SOURCES: &[(&str, f64)] = &[
    ("Twitter Web App", 30.0),
    ("Twitter for iPhone", 28.0),
    ("Twitter for Android", 22.0),
    ("Twitter for iPad", 6.0),
    ("TweetDeck", 5.0),
    ("Tweetbot for iOS", 2.5),
    ("Twitter for Mac", 1.8),
    ("Hootsuite Inc.", 1.6),
    ("Buffer", 1.4),
    ("IFTTT", 1.2),
    ("Echofon", 1.0),
    ("Fenix 2", 0.9),
    ("Talon Android", 0.8),
    ("Twitterrific for iOS", 0.8),
    ("dlvr.it", 0.7),
    ("SocialFlow", 0.6),
    ("Sprout Social", 0.6),
    ("Tweetlogix", 0.5),
    ("Plume for Twitter", 0.5),
    ("Janetter", 0.4),
    ("Twidere for Android", 0.4),
    ("TweetCaster for Android", 0.35),
    ("UberSocial for iPhone", 0.3),
    ("Owly", 0.3),
    ("Zapier.com", 0.25),
    ("Crowdfire App", 0.2),
    ("Typefully", 0.2),
    ("Chirpty", 0.15),
    ("Mastodon-Twitter Crossposter", 0.10),
    ("Moa Bridge", 0.06),
];

/// Index of "Mastodon-Twitter Crossposter" in [`SOURCES`].
pub const SOURCE_CROSSPOSTER: u16 = 28;
/// Index of "Moa Bridge" in [`SOURCES`].
pub const SOURCE_MOA: u16 = 29;

/// The §3.1 search keywords ('mastodon', 'bye bye twitter', 'good bye
/// twitter') — announcement and noise tweets embed these.
pub const MIGRATION_PHRASES: &[&str] = &[
    "mastodon",
    "bye bye twitter",
    "good bye twitter",
    "leaving for mastodon",
    "find me on mastodon",
];

/// Keyword-free announcement leads: these tweets are only discoverable
/// through the §3.1 *instance-link* queries (`url:"<domain>"`), giving
/// Fig. 2 its second series.
pub const LINK_ONLY_PHRASES: &[&str] = &[
    "new home:",
    "you can now find me here:",
    "settled in over at",
    "my new corner of the internet:",
    "posting here from now on:",
];

/// How a user mirrors content across platforms (Fig. 14 trichotomy).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MirrorBehavior {
    /// 84%: the two accounts carry different personas.
    None,
    /// Runs one of the two cross-posting tools: identical mirrors.
    CrossPoster { source: u16 },
    /// Mirrors by hand: paraphrased (similar, not identical).
    Manual,
}

/// Everything the content phase produced.
#[derive(Debug, Default)]
pub struct Corpora {
    pub tweets: Vec<Tweet>,
    pub statuses: Vec<Status>,
    /// Per-migrant mirror behaviour (migrant index order).
    pub mirror_behavior: Vec<MirrorBehavior>,
    /// Per-migrant "never posted a status" flag (paper: 9.20%).
    pub never_posted: Vec<bool>,
}

/// Per-user topic choice for one tweet.
fn tweet_topic(user: &TwitterUser, migrated: bool, rng: &mut DetRng) -> Topic {
    let r = rng.f64();
    if migrated && r < 0.08 {
        Topic::Migration
    } else if r < 0.45 {
        user.primary_topic
    } else if r < 0.65 {
        user.secondary_topic
    } else {
        *rng.choose(&Topic::ALL)
    }
}

/// Per-user topic choice for one status: Mastodon talk is dominated by the
/// Fediverse and the migration itself (Fig. 15).
fn status_topic(user: &TwitterUser, rng: &mut DetRng) -> Topic {
    let r = rng.f64();
    if r < 0.30 {
        Topic::Fediverse
    } else if r < 0.48 {
        Topic::Migration
    } else if r < 0.78 {
        user.primary_topic
    } else if r < 0.90 {
        user.secondary_topic
    } else {
        *rng.choose(&Topic::ALL)
    }
}

/// Day after which the cross-posters broke (Twitter revoked their API
/// rate-limits late in November — the Fig. 13 downward tail).
const CROSSPOSTER_BREAK_DAY: i32 = 54;

/// Generate all content. `accounts` must be in migrant-index order and
/// `migrant_users[i]` maps migrant index → index into `users`.
pub fn generate_content(
    users: &mut [TwitterUser],
    migrant_users: &[usize],
    accounts: &[MastodonAccount],
    config: &WorldConfig,
    rng: &mut DetRng,
) -> Corpora {
    let gen = PostGenerator::default();
    let mut out = Corpora::default();
    let source_weights: Vec<f64> = SOURCES.iter().map(|(_, w)| *w).collect();

    // Assign preferred clients to everyone (cross-poster tools excluded
    // from organic preference).
    for u in users.iter_mut() {
        if u.preferred_client == usize::MAX {
            let mut c = rng.choose_weighted(&source_weights);
            while c as u16 == SOURCE_CROSSPOSTER || c as u16 == SOURCE_MOA {
                c = rng.choose_weighted(&source_weights);
            }
            u.preferred_client = c;
        }
    }

    // Mirror behaviour + never-posted flags per migrant.
    for _ in accounts {
        let b = if rng.chance(config.crossposter_rate) {
            MirrorBehavior::CrossPoster {
                source: if rng.chance(0.62) {
                    SOURCE_CROSSPOSTER
                } else {
                    SOURCE_MOA
                },
            }
        } else if rng.chance(config.manual_mirror_rate) {
            MirrorBehavior::Manual
        } else {
            MirrorBehavior::None
        };
        out.mirror_behavior.push(b);
        out.never_posted.push(rng.chance(config.never_posted_rate));
    }

    let mut next_tweet: u64 = 0;
    let mut next_status: u64 = 0;
    let mut tweet_id = |out: &mut Corpora, author, day, text: String, source| {
        out.tweets.push(Tweet {
            id: TweetId(next_tweet),
            author,
            day,
            text,
            source,
        });
        next_tweet += 1;
        TweetId(next_tweet - 1)
    };
    let mut status_id = |out: &mut Corpora, account, day, text: String| {
        out.statuses.push(Status {
            id: StatusId(next_status),
            account,
            day,
            text,
        });
        next_status += 1;
        StatusId(next_status - 1)
    };

    // ---- migrants: full two-platform timelines --------------------------
    for (mi, &ui) in migrant_users.iter().enumerate() {
        let account = &accounts[mi];
        let behavior = out.mirror_behavior[mi];
        let never_posted = out.never_posted[mi];
        let user = users[ui].clone();
        let tweet_tox = user.toxicity;
        let status_tox = user.toxicity * config.mastodon_toxicity_factor;
        let status_rate = config.statuses_per_day_mean * user.engagement;
        let active_from = account.created.max(Day::STUDY_START);
        // Abandonment (the §8 retention question): a slice of the wave goes
        // quiet on Mastodon a couple of weeks after arriving, while their
        // Twitter posting continues unchanged.
        let abandon_after: Option<Day> = if rng.chance(config.mastodon_abandon_rate) {
            let lag = rng
                .exponential(1.0 / config.mastodon_abandon_after_days_mean)
                .round() as i32;
            Some(account.announced + lag.max(2))
        } else {
            None
        };

        // Bio update: the §3.1 matcher reads profile metadata first.
        if account.in_bio {
            let handle_text = if rng.chance(0.7) {
                account.first_handle.to_string()
            } else {
                account.first_handle.profile_url()
            };
            users[ui].bio = format!("{} | {}", user.bio, handle_text);
        }

        for day in Day::study_days() {
            // -- tweets -----------------------------------------------------
            let n_tweets = rng.poisson(user.tweet_rate.min(12.0)) as usize;
            let mut todays_tweets: Vec<TweetId> = Vec::with_capacity(n_tweets + 1);
            for _ in 0..n_tweets {
                let topic = tweet_topic(&user, day >= account.announced, rng);
                let mut text = gen.compose(topic, Platform::Twitter, 2, rng);
                if rng.chance(tweet_tox) {
                    text = gen.toxicify(&text, rng);
                }
                let id = tweet_id(&mut out, user.id, day, text, user.preferred_client as u16);
                todays_tweets.push(id);
            }

            // -- the announcement tweet --------------------------------------
            if day == account.announced {
                // A third of handle-bearing announcements are link-only:
                // no migration keyword, no hashtag — the paper's
                // instance-link queries are what catch these (Fig. 2).
                let text = if account.in_tweet && rng.chance(0.33) {
                    format!(
                        "{} {}",
                        rng.choose::<&str>(LINK_ONLY_PHRASES),
                        account.first_handle.profile_url()
                    )
                } else {
                    let phrase = *rng.choose(MIGRATION_PHRASES);
                    let mut text = if account.in_tweet {
                        let handle_text = if rng.chance(0.6) {
                            account.first_handle.to_string()
                        } else {
                            account.first_handle.profile_url()
                        };
                        format!("{phrase}! i am now at {handle_text}")
                    } else {
                        format!("{phrase}! you know where to find me")
                    };
                    // Migration hashtags make the tweet searchable (§3.1).
                    let tags = Topic::Migration.hashtags(Platform::Twitter);
                    text.push(' ');
                    text.push_str(rng.choose::<&str>(tags));
                    if rng.chance(0.5) {
                        text.push(' ');
                        text.push_str(rng.choose::<&str>(tags));
                    }
                    text
                };
                tweet_id(&mut out, user.id, day, text, user.preferred_client as u16);
            }

            // -- statuses -----------------------------------------------------
            if never_posted || day < active_from {
                continue;
            }
            if let Some(quit) = abandon_after {
                if day >= quit {
                    continue;
                }
            }
            // Early-adopter accounts idle along pre-announcement; everyone
            // ramps up over ~6 days after they arrive/announce.
            let rate = if day < account.announced {
                0.15 * status_rate
            } else {
                let t = (day - account.announced.max(active_from)) as f64;
                status_rate * (1.0 - (-(t + 1.0) / 6.0).exp())
            };
            let n_statuses = rng.poisson(rate.min(10.0)) as usize;
            for _ in 0..n_statuses {
                // Cross-posting tools mirror identically — and also post a
                // copy on Twitter attributed to the tool (Fig. 12).
                let tools_alive = day.offset() <= CROSSPOSTER_BREAK_DAY || rng.chance(0.25);
                match behavior {
                    MirrorBehavior::CrossPoster { source }
                        if day >= account.announced
                            && tools_alive
                            && rng.chance(config.crosspost_per_post) =>
                    {
                        let topic = status_topic(&user, rng);
                        let mut text = gen.compose(topic, Platform::Mastodon, 2, rng);
                        if rng.chance(status_tox) {
                            text = gen.toxicify(&text, rng);
                        }
                        status_id(&mut out, account.id, day, text.clone());
                        tweet_id(&mut out, user.id, day, text, source);
                    }
                    MirrorBehavior::Manual
                        if !todays_tweets.is_empty()
                            && rng.chance(config.manual_mirror_per_post) =>
                    {
                        // Paraphrase one of today's tweets: similar, not
                        // identical (Fig. 14's middle band).
                        let src = &out.tweets
                            [todays_tweets[rng.below_usize(todays_tweets.len())].index()];
                        let text = gen.paraphrase(&src.text.clone(), rng);
                        status_id(&mut out, account.id, day, text);
                    }
                    _ => {
                        let topic = status_topic(&user, rng);
                        let mut text = gen.compose(topic, Platform::Mastodon, 2, rng);
                        if rng.chance(status_tox) {
                            text = gen.toxicify(&text, rng);
                        }
                        status_id(&mut out, account.id, day, text);
                    }
                }
            }
        }
    }

    // ---- noise users: migration chatter without migrating ----------------
    for (ui, user) in users.iter().enumerate() {
        if user.is_migrant {
            continue;
        }
        let window_days =
            (Day::COLLECTION_END.offset() - Day::COLLECTION_START.offset() + 1) as f64;
        let n = rng.poisson(config.noise_tweet_rate * window_days) as usize;
        for _ in 0..n {
            let day = {
                // Noise chatter follows the same event-driven intensity.
                crate::migration::sample_migration_day(rng)
            };
            let phrase = *rng.choose(MIGRATION_PHRASES);
            let topic_text = gen.generate(Topic::Migration, rng);
            let tags = Topic::Migration.hashtags(Platform::Twitter);
            let mut text = format!("{topic_text} {phrase} {}", rng.choose(tags));
            if rng.chance(user.toxicity) {
                text = gen.toxicify(&text, rng);
            }
            tweet_id(
                &mut out,
                TwitterUserId::from_index(ui),
                day,
                text,
                user.preferred_client as u16,
            );
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::build_friend_graph;
    use crate::instances::generate_instances;
    use crate::migration::run_migration;
    use crate::users::generate_users;
    use flock_textsim::{extract_hashtags, ToxicityScorer};

    fn build() -> (
        WorldConfig,
        Vec<TwitterUser>,
        Vec<usize>,
        Vec<MastodonAccount>,
        Corpora,
    ) {
        let config = WorldConfig::small().with_seed(41);
        let mut rng = DetRng::new(config.seed);
        let mut users = generate_users(&config, &mut rng.fork("users"));
        let migrants: Vec<usize> = users
            .iter()
            .enumerate()
            .filter(|(_, u)| u.is_migrant)
            .map(|(i, _)| i)
            .collect();
        let graph = build_friend_graph(migrants.len(), 12.0, 0.9, 0.04, &mut rng.fork("graph"));
        let instances = generate_instances(
            config.n_instances,
            config.instance_zipf_exponent,
            &mut rng.fork("inst"),
        );
        let accounts = run_migration(
            &users,
            &migrants,
            &graph,
            &instances,
            &config,
            &mut rng.fork("mig"),
        )
        .unwrap();
        let corpora = generate_content(
            &mut users,
            &migrants,
            &accounts,
            &config,
            &mut rng.fork("content"),
        );
        (config, users, migrants, accounts, corpora)
    }

    #[test]
    fn source_constants_point_at_the_tools() {
        assert_eq!(
            SOURCES[SOURCE_CROSSPOSTER as usize].0,
            "Mastodon-Twitter Crossposter"
        );
        assert_eq!(SOURCES[SOURCE_MOA as usize].0, "Moa Bridge");
    }

    #[test]
    fn tweets_and_statuses_are_generated_in_window() {
        let (_config, _users, _migrants, _accounts, corpora) = build();
        assert!(!corpora.tweets.is_empty());
        assert!(!corpora.statuses.is_empty());
        assert!(corpora.tweets.iter().all(|t| t.day.in_study_window()));
        assert!(corpora.statuses.iter().all(|s| s.day.in_study_window()));
        // Ids are dense and ordered.
        for (i, t) in corpora.tweets.iter().enumerate() {
            assert_eq!(t.id.index(), i);
        }
        for (i, s) in corpora.statuses.iter().enumerate() {
            assert_eq!(s.id.index(), i);
        }
    }

    #[test]
    fn statuses_only_after_account_creation() {
        let (_config, _users, _migrants, accounts, corpora) = build();
        for s in &corpora.statuses {
            let acct = &accounts[s.account.index()];
            assert!(
                s.day >= acct.created,
                "status on {} before account creation {}",
                s.day,
                acct.created
            );
        }
    }

    #[test]
    fn never_posted_accounts_have_no_statuses() {
        let (_config, _users, _migrants, _accounts, corpora) = build();
        for (mi, &np) in corpora.never_posted.iter().enumerate() {
            if np {
                assert!(
                    !corpora.statuses.iter().any(|s| s.account.index() == mi),
                    "never-posted migrant {mi} has statuses"
                );
            }
        }
    }

    #[test]
    fn announcement_tweets_carry_handles_when_in_tweet() {
        let (_config, users, migrants, accounts, corpora) = build();
        let mut found_handle = 0;
        for (mi, acct) in accounts.iter().enumerate() {
            if !acct.in_tweet {
                continue;
            }
            let uid = users[migrants[mi]].id;
            let day = acct.announced;
            let has = corpora.tweets.iter().any(|t| {
                t.author == uid
                    && t.day == day
                    && flock_core::handle::extract_handles(&t.text)
                        .iter()
                        .any(|h| h == &acct.first_handle)
            });
            assert!(has, "migrant {mi} announced without handle");
            found_handle += 1;
        }
        assert!(found_handle > 0);
    }

    #[test]
    fn bios_updated_for_in_bio_migrants() {
        let (_config, users, migrants, accounts, _corpora) = build();
        for (mi, acct) in accounts.iter().enumerate() {
            let bio = &users[migrants[mi]].bio;
            let extracted = flock_core::handle::extract_handles(bio);
            if acct.in_bio {
                assert!(
                    extracted.iter().any(|h| h == &acct.first_handle),
                    "bio missing handle: {bio}"
                );
            } else {
                assert!(extracted.is_empty(), "unexpected handle in bio: {bio}");
            }
        }
    }

    #[test]
    fn crossposters_produce_identical_pairs_with_tool_source() {
        let (_config, users, migrants, accounts, corpora) = build();
        let mut tool_tweets = 0;
        for (mi, b) in corpora.mirror_behavior.iter().enumerate() {
            if let MirrorBehavior::CrossPoster { source } = b {
                let uid = users[migrants[mi]].id;
                let aid = accounts[mi].id;
                for t in corpora
                    .tweets
                    .iter()
                    .filter(|t| t.author == uid && t.source == *source)
                {
                    tool_tweets += 1;
                    assert!(
                        corpora
                            .statuses
                            .iter()
                            .any(|s| s.account == aid && s.text == t.text && s.day == t.day),
                        "tool tweet without identical status"
                    );
                }
            }
        }
        assert!(tool_tweets > 0, "no cross-posted tweets generated");
    }

    #[test]
    fn toxicity_lower_on_mastodon() {
        // Aggregate across a medium world for stable rates.
        let config = WorldConfig::medium().with_seed(42);
        let mut rng = DetRng::new(config.seed);
        let mut users = generate_users(&config, &mut rng.fork("users"));
        let migrants: Vec<usize> = users
            .iter()
            .enumerate()
            .filter(|(_, u)| u.is_migrant)
            .map(|(i, _)| i)
            .collect();
        let graph = build_friend_graph(migrants.len(), 12.0, 0.9, 0.04, &mut rng.fork("graph"));
        let instances = generate_instances(
            config.n_instances,
            config.instance_zipf_exponent,
            &mut rng.fork("inst"),
        );
        let accounts = run_migration(
            &users,
            &migrants,
            &graph,
            &instances,
            &config,
            &mut rng.fork("mig"),
        )
        .unwrap();
        let corpora = generate_content(
            &mut users,
            &migrants,
            &accounts,
            &config,
            &mut rng.fork("content"),
        );
        let scorer = ToxicityScorer::new();
        let sample = |texts: Vec<&String>| {
            let n = texts.len().min(20_000);
            let toxic = texts.iter().take(n).filter(|t| scorer.is_toxic(t)).count();
            toxic as f64 / n as f64
        };
        let tw = sample(corpora.tweets.iter().map(|t| &t.text).collect());
        let ms = sample(corpora.statuses.iter().map(|s| &s.text).collect());
        assert!(tw > ms, "twitter {tw} should exceed mastodon {ms}");
        assert!((0.01..0.12).contains(&tw), "tweet toxicity {tw}");
    }

    #[test]
    fn posts_carry_platform_hashtags() {
        let (_config, _users, _migrants, _accounts, corpora) = build();
        let tw_tags: usize = corpora
            .tweets
            .iter()
            .map(|t| extract_hashtags(&t.text).len())
            .sum();
        let ms_tags: usize = corpora
            .statuses
            .iter()
            .map(|s| extract_hashtags(&s.text).len())
            .sum();
        assert!(tw_tags > 0 && ms_tags > 0);
    }

    #[test]
    fn noise_users_tweet_keywords_only_in_collection_window() {
        let (_config, users, _migrants, _accounts, corpora) = build();
        for t in &corpora.tweets {
            if !users[t.author.index()].is_migrant {
                assert!(t.day.in_collection_window());
                let lower = t.text.to_lowercase();
                assert!(
                    MIGRATION_PHRASES.iter().any(|p| lower.contains(p))
                        || lower.contains("#twittermigration"),
                    "noise tweet without keyword: {}",
                    t.text
                );
            }
        }
    }
}

#[cfg(test)]
mod abandonment_tests {
    use super::*;
    use crate::graph::build_friend_graph;
    use crate::instances::generate_instances;
    use crate::migration::run_migration;
    use crate::users::generate_users;

    fn corpora_with(abandon_rate: f64) -> (Vec<MastodonAccount>, Corpora) {
        let mut config = WorldConfig::small().with_seed(71);
        config.mastodon_abandon_rate = abandon_rate;
        let mut rng = DetRng::new(config.seed);
        let mut users = generate_users(&config, &mut rng.fork("users"));
        let migrants: Vec<usize> = users
            .iter()
            .enumerate()
            .filter(|(_, u)| u.is_migrant)
            .map(|(i, _)| i)
            .collect();
        let graph = build_friend_graph(migrants.len(), 12.0, 0.55, 0.045, &mut rng.fork("g"));
        let instances = generate_instances(
            config.n_instances,
            config.instance_zipf_exponent,
            &mut rng.fork("i"),
        );
        let accounts = run_migration(
            &users,
            &migrants,
            &graph,
            &instances,
            &config,
            &mut rng.fork("m"),
        )
        .unwrap();
        let corpora = generate_content(
            &mut users,
            &migrants,
            &accounts,
            &config,
            &mut rng.fork("c"),
        );
        (accounts, corpora)
    }

    #[test]
    fn universal_abandonment_silences_the_tail_of_the_window() {
        let (accounts, corpora) = corpora_with(1.0);
        // With everyone quitting shortly after announcing, late-window
        // statuses become rare relative to the no-abandonment world.
        let late = corpora
            .statuses
            .iter()
            .filter(|s| s.day.offset() >= 55)
            .count();
        let (_, keep) = corpora_with(0.0);
        let late_keep = keep
            .statuses
            .iter()
            .filter(|s| s.day.offset() >= 55)
            .count();
        assert!(
            (late as f64) < (late_keep as f64) * 0.35,
            "abandonment must thin late statuses: {late} vs {late_keep}"
        );
        // Twitter posting is unaffected by Mastodon abandonment.
        let late_tweets =
            |c: &Corpora| c.tweets.iter().filter(|t| t.day.offset() >= 55).count() as f64;
        let ratio = late_tweets(&corpora) / late_tweets(&keep);
        assert!((0.8..1.2).contains(&ratio), "tweet ratio {ratio}");
        assert_eq!(accounts.len(), keep.never_posted.len());
    }
}

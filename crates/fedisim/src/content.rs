//! Timeline generation: every tweet and status in the world.
//!
//! This module produces the corpora that RQ3 (and the §3.1 search) operate
//! on:
//!
//! * migrants tweet throughout the window (their Twitter activity does
//!   *not* drop after migrating — Fig. 11) and post statuses from the day
//!   they join, ramping up;
//! * the migration announcement tweet carries the Mastodon handle and
//!   migration hashtags (what the §3.1 matcher finds);
//! * non-migrant "noise" users tweet migration keywords without moving
//!   (the paper matched 1.02M tweet authors but could map only 136k);
//! * cross-poster users mirror content *identically* via the two tools the
//!   paper names (Fig. 12/13); manual mirrorers paraphrase (similar-but-
//!   not-identical, Fig. 14);
//! * a per-user toxicity propensity injects insult vocabulary at the
//!   platform-specific rates behind Fig. 16.

use crate::config::WorldConfig;
use crate::migration::MastodonAccount;
use crate::users::TwitterUser;
use flock_core::{Day, DetRng, MastodonAccountId, Platform, StatusId, TweetId, TwitterUserId};
use flock_textsim::{PostGenerator, Topic};
use serde::{Deserialize, Serialize};

/// A tweet.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Tweet {
    pub id: TweetId,
    pub author: TwitterUserId,
    pub day: Day,
    pub text: String,
    /// Index into [`SOURCES`].
    pub source: u16,
}

/// A Mastodon status.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Status {
    pub id: StatusId,
    pub account: MastodonAccountId,
    pub day: Day,
    pub text: String,
}

/// Tweet sources (clients), most popular first — the Fig. 12 table.
/// The two cross-posting tools the paper names sit at fixed indices
/// [`SOURCE_CROSSPOSTER`] and [`SOURCE_MOA`].
pub const SOURCES: &[(&str, f64)] = &[
    ("Twitter Web App", 30.0),
    ("Twitter for iPhone", 28.0),
    ("Twitter for Android", 22.0),
    ("Twitter for iPad", 6.0),
    ("TweetDeck", 5.0),
    ("Tweetbot for iOS", 2.5),
    ("Twitter for Mac", 1.8),
    ("Hootsuite Inc.", 1.6),
    ("Buffer", 1.4),
    ("IFTTT", 1.2),
    ("Echofon", 1.0),
    ("Fenix 2", 0.9),
    ("Talon Android", 0.8),
    ("Twitterrific for iOS", 0.8),
    ("dlvr.it", 0.7),
    ("SocialFlow", 0.6),
    ("Sprout Social", 0.6),
    ("Tweetlogix", 0.5),
    ("Plume for Twitter", 0.5),
    ("Janetter", 0.4),
    ("Twidere for Android", 0.4),
    ("TweetCaster for Android", 0.35),
    ("UberSocial for iPhone", 0.3),
    ("Owly", 0.3),
    ("Zapier.com", 0.25),
    ("Crowdfire App", 0.2),
    ("Typefully", 0.2),
    ("Chirpty", 0.15),
    ("Mastodon-Twitter Crossposter", 0.10),
    ("Moa Bridge", 0.06),
];

/// Index of "Mastodon-Twitter Crossposter" in [`SOURCES`].
pub const SOURCE_CROSSPOSTER: u16 = 28;
/// Index of "Moa Bridge" in [`SOURCES`].
pub const SOURCE_MOA: u16 = 29;

/// The §3.1 search keywords ('mastodon', 'bye bye twitter', 'good bye
/// twitter') — announcement and noise tweets embed these.
pub const MIGRATION_PHRASES: &[&str] = &[
    "mastodon",
    "bye bye twitter",
    "good bye twitter",
    "leaving for mastodon",
    "find me on mastodon",
];

/// Keyword-free announcement leads: these tweets are only discoverable
/// through the §3.1 *instance-link* queries (`url:"<domain>"`), giving
/// Fig. 2 its second series.
pub const LINK_ONLY_PHRASES: &[&str] = &[
    "new home:",
    "you can now find me here:",
    "settled in over at",
    "my new corner of the internet:",
    "posting here from now on:",
];

/// How a user mirrors content across platforms (Fig. 14 trichotomy).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MirrorBehavior {
    /// 84%: the two accounts carry different personas.
    None,
    /// Runs one of the two cross-posting tools: identical mirrors.
    CrossPoster { source: u16 },
    /// Mirrors by hand: paraphrased (similar, not identical).
    Manual,
}

/// Columnar arena holding every tweet: one concatenated text buffer plus
/// parallel compact columns, instead of one heap `String` (and one `Vec`
/// slot of padding) per tweet. At paper scale the corpus runs to tens of
/// millions of tweets — per-tweet allocations dominated both peak RSS and
/// allocator traffic before this layout. Ids are dense and implicit:
/// tweet `i` is `TweetId(i)`, in generation order.
#[derive(Debug, Default, Clone)]
pub struct TweetStore {
    authors: Vec<TwitterUserId>,
    days: Vec<Day>,
    sources: Vec<u16>,
    /// All tweet texts, concatenated in id order.
    text: String,
    /// `text_ends[i]` = byte offset one past tweet `i`'s text.
    text_ends: Vec<u64>,
}

/// One tweet viewed out of a [`TweetStore`] (text borrowed, not cloned).
#[derive(Debug, Clone, Copy)]
pub struct TweetView<'a> {
    pub id: TweetId,
    pub author: TwitterUserId,
    pub day: Day,
    pub text: &'a str,
    pub source: u16,
}

impl TweetStore {
    /// Number of tweets.
    pub fn len(&self) -> usize {
        self.authors.len()
    }

    /// True when no tweets were generated.
    pub fn is_empty(&self) -> bool {
        self.authors.is_empty()
    }

    /// Append a tweet; its id is its position.
    pub fn push(&mut self, author: TwitterUserId, day: Day, text: &str, source: u16) -> TweetId {
        let id = TweetId(self.authors.len() as u64);
        self.authors.push(author);
        self.days.push(day);
        self.sources.push(source);
        self.text.push_str(text);
        self.text_ends.push(self.text.len() as u64);
        id
    }

    fn text_range(&self, i: usize) -> (usize, usize) {
        let start = if i == 0 {
            0
        } else {
            self.text_ends[i - 1] as usize
        };
        (start, self.text_ends[i] as usize)
    }

    /// Text of tweet `i`.
    pub fn text(&self, i: usize) -> &str {
        let (s, e) = self.text_range(i);
        &self.text[s..e]
    }

    /// Day of tweet `i`.
    pub fn day(&self, i: usize) -> Day {
        self.days[i]
    }

    /// Author of tweet `i`.
    pub fn author(&self, i: usize) -> TwitterUserId {
        self.authors[i]
    }

    /// Source (client) index of tweet `i`.
    pub fn source(&self, i: usize) -> u16 {
        self.sources[i]
    }

    /// Tweet `i` as a view.
    pub fn get(&self, i: usize) -> TweetView<'_> {
        TweetView {
            id: TweetId(i as u64),
            author: self.authors[i],
            day: self.days[i],
            text: self.text(i),
            source: self.sources[i],
        }
    }

    /// All tweets in id order.
    pub fn iter(&self) -> TweetIter<'_> {
        TweetIter { store: self, i: 0 }
    }

    /// Bytes of text held (diagnostics).
    pub fn text_bytes(&self) -> usize {
        self.text.len()
    }
}

/// Iterator over a [`TweetStore`] in id order.
pub struct TweetIter<'a> {
    store: &'a TweetStore,
    i: usize,
}

impl<'a> Iterator for TweetIter<'a> {
    type Item = TweetView<'a>;

    fn next(&mut self) -> Option<TweetView<'a>> {
        if self.i >= self.store.len() {
            return None;
        }
        let v = self.store.get(self.i);
        self.i += 1;
        Some(v)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.store.len() - self.i;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for TweetIter<'_> {}

impl<'a> IntoIterator for &'a TweetStore {
    type Item = TweetView<'a>;
    type IntoIter = TweetIter<'a>;

    fn into_iter(self) -> TweetIter<'a> {
        self.iter()
    }
}

/// Columnar arena for Mastodon statuses; same layout contract as
/// [`TweetStore`]: status `i` is `StatusId(i)`, in generation order.
#[derive(Debug, Default, Clone)]
pub struct StatusStore {
    accounts: Vec<MastodonAccountId>,
    days: Vec<Day>,
    text: String,
    text_ends: Vec<u64>,
}

/// One status viewed out of a [`StatusStore`].
#[derive(Debug, Clone, Copy)]
pub struct StatusView<'a> {
    pub id: StatusId,
    pub account: MastodonAccountId,
    pub day: Day,
    pub text: &'a str,
}

impl StatusStore {
    /// Number of statuses.
    pub fn len(&self) -> usize {
        self.accounts.len()
    }

    /// True when no statuses were generated.
    pub fn is_empty(&self) -> bool {
        self.accounts.is_empty()
    }

    /// Append a status; its id is its position.
    pub fn push(&mut self, account: MastodonAccountId, day: Day, text: &str) -> StatusId {
        let id = StatusId(self.accounts.len() as u64);
        self.accounts.push(account);
        self.days.push(day);
        self.text.push_str(text);
        self.text_ends.push(self.text.len() as u64);
        id
    }

    fn text_range(&self, i: usize) -> (usize, usize) {
        let start = if i == 0 {
            0
        } else {
            self.text_ends[i - 1] as usize
        };
        (start, self.text_ends[i] as usize)
    }

    /// Text of status `i`.
    pub fn text(&self, i: usize) -> &str {
        let (s, e) = self.text_range(i);
        &self.text[s..e]
    }

    /// Day of status `i`.
    pub fn day(&self, i: usize) -> Day {
        self.days[i]
    }

    /// Account of status `i`.
    pub fn account(&self, i: usize) -> MastodonAccountId {
        self.accounts[i]
    }

    /// Status `i` as a view.
    pub fn get(&self, i: usize) -> StatusView<'_> {
        StatusView {
            id: StatusId(i as u64),
            account: self.accounts[i],
            day: self.days[i],
            text: self.text(i),
        }
    }

    /// All statuses in id order.
    pub fn iter(&self) -> StatusIter<'_> {
        StatusIter { store: self, i: 0 }
    }

    /// Bytes of text held (diagnostics).
    pub fn text_bytes(&self) -> usize {
        self.text.len()
    }
}

/// Iterator over a [`StatusStore`] in id order.
pub struct StatusIter<'a> {
    store: &'a StatusStore,
    i: usize,
}

impl<'a> Iterator for StatusIter<'a> {
    type Item = StatusView<'a>;

    fn next(&mut self) -> Option<StatusView<'a>> {
        if self.i >= self.store.len() {
            return None;
        }
        let v = self.store.get(self.i);
        self.i += 1;
        Some(v)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.store.len() - self.i;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for StatusIter<'_> {}

impl<'a> IntoIterator for &'a StatusStore {
    type Item = StatusView<'a>;
    type IntoIter = StatusIter<'a>;

    fn into_iter(self) -> StatusIter<'a> {
        self.iter()
    }
}

/// Everything the content phase produced.
#[derive(Debug, Default)]
pub struct Corpora {
    pub tweets: TweetStore,
    pub statuses: StatusStore,
    /// Per-migrant mirror behaviour (migrant index order).
    pub mirror_behavior: Vec<MirrorBehavior>,
    /// Per-migrant "never posted a status" flag (paper: 9.20%).
    pub never_posted: Vec<bool>,
}

/// Per-user topic choice for one tweet.
fn tweet_topic(user: &TwitterUser, migrated: bool, rng: &mut DetRng) -> Topic {
    let r = rng.f64();
    if migrated && r < 0.08 {
        Topic::Migration
    } else if r < 0.45 {
        user.primary_topic
    } else if r < 0.65 {
        user.secondary_topic
    } else {
        *rng.choose(&Topic::ALL)
    }
}

/// Per-user topic choice for one status: Mastodon talk is dominated by the
/// Fediverse and the migration itself (Fig. 15).
fn status_topic(user: &TwitterUser, rng: &mut DetRng) -> Topic {
    let r = rng.f64();
    if r < 0.30 {
        Topic::Fediverse
    } else if r < 0.48 {
        Topic::Migration
    } else if r < 0.78 {
        user.primary_topic
    } else if r < 0.90 {
        user.secondary_topic
    } else {
        *rng.choose(&Topic::ALL)
    }
}

/// Day after which the cross-posters broke (Twitter revoked their API
/// rate-limits late in November — the Fig. 13 downward tail).
const CROSSPOSTER_BREAK_DAY: i32 = 54;

/// The sequential "plan" half of content generation: everything that must
/// be drawn in a fixed global order (client preferences, per-migrant
/// behaviour flags, bio updates) plus the two stream bases per-user
/// generators derive their private RNGs from.
///
/// Splitting the plan from the per-user timelines is what makes content
/// **streamable**: after `plan_content`, any user's timeline is a pure
/// function of `(plan, user, account)` via [`DetRng::stream`], so chunks
/// can be produced on demand, in any order, and byte-identical to the
/// eager pass — the contract `streaming_matches_eager` pins.
#[derive(Debug)]
pub struct ContentPlan {
    /// Per-migrant mirror behaviour (migrant index order).
    pub mirror_behavior: Vec<MirrorBehavior>,
    /// Per-migrant "never posted a status" flag (paper: 9.20%).
    pub never_posted: Vec<bool>,
    /// Per-migrant Mastodon abandonment day, when drawn.
    pub abandon_after: Vec<Option<Day>>,
    /// Base seed of the per-migrant stream family.
    migrant_base: u64,
    /// Base seed of the per-noise-user stream family.
    noise_base: u64,
}

/// Run the sequential plan phase: assigns preferred clients, applies bio
/// updates (the §3.1 matcher reads profile metadata), and fixes every
/// per-migrant coin that the old one-pass generator drew inline.
/// `accounts` must be in migrant-index order and `migrant_users[i]` maps
/// migrant index → index into `users`.
pub fn plan_content(
    users: &mut [TwitterUser],
    migrant_users: &[usize],
    accounts: &[MastodonAccount],
    config: &WorldConfig,
    rng: &mut DetRng,
) -> ContentPlan {
    let source_weights: Vec<f64> = SOURCES.iter().map(|(_, w)| *w).collect();

    // Assign preferred clients to everyone (cross-poster tools excluded
    // from organic preference).
    for u in users.iter_mut() {
        if u.preferred_client == usize::MAX {
            let mut c = rng.choose_weighted(&source_weights);
            while c as u16 == SOURCE_CROSSPOSTER || c as u16 == SOURCE_MOA {
                c = rng.choose_weighted(&source_weights);
            }
            u.preferred_client = c;
        }
    }

    // Mirror behaviour + never-posted flags per migrant.
    let mut mirror_behavior = Vec::with_capacity(accounts.len());
    let mut never_posted = Vec::with_capacity(accounts.len());
    for _ in accounts {
        let b = if rng.chance(config.crossposter_rate) {
            MirrorBehavior::CrossPoster {
                source: if rng.chance(0.62) {
                    SOURCE_CROSSPOSTER
                } else {
                    SOURCE_MOA
                },
            }
        } else if rng.chance(config.manual_mirror_rate) {
            MirrorBehavior::Manual
        } else {
            MirrorBehavior::None
        };
        mirror_behavior.push(b);
        never_posted.push(rng.chance(config.never_posted_rate));
    }

    // Abandonment (the §8 retention question): a slice of the wave goes
    // quiet on Mastodon a couple of weeks after arriving, while their
    // Twitter posting continues unchanged. Drawn here (not per-timeline)
    // so the per-user streams stay pure.
    let mut abandon_after = Vec::with_capacity(accounts.len());
    for account in accounts {
        abandon_after.push(if rng.chance(config.mastodon_abandon_rate) {
            let lag = rng
                .exponential(1.0 / config.mastodon_abandon_after_days_mean)
                .round() as i32;
            Some(account.announced + lag.max(2))
        } else {
            None
        });
    }

    // Bio updates: the §3.1 matcher reads profile metadata first.
    for (mi, &ui) in migrant_users.iter().enumerate() {
        let account = &accounts[mi];
        if account.in_bio {
            let handle_text = if rng.chance(0.7) {
                account.first_handle.to_string()
            } else {
                account.first_handle.profile_url()
            };
            users[ui].bio = format!("{} | {}", users[ui].bio, handle_text);
        }
    }

    ContentPlan {
        mirror_behavior,
        never_posted,
        abandon_after,
        migrant_base: rng.next_u64(),
        noise_base: rng.next_u64(),
    }
}

/// One user's generated content, ids **local to the chunk** (dense from
/// zero, generation order). [`ContentStream`] renumbers them into the
/// global dense id space as chunks are consumed.
#[derive(Debug, Default)]
pub struct UserContent {
    pub tweets: Vec<Tweet>,
    pub statuses: Vec<Status>,
}

/// Generate migrant `mi`'s full two-platform timeline from its private
/// stream. Pure in `(plan, user, account)` — never touches global state.
fn migrant_content(
    mi: usize,
    user: &TwitterUser,
    account: &MastodonAccount,
    plan: &ContentPlan,
    config: &WorldConfig,
    gen: &PostGenerator,
) -> UserContent {
    let mut rng = DetRng::stream(plan.migrant_base, mi as u64);
    let rng = &mut rng;
    let mut out = UserContent::default();
    let behavior = plan.mirror_behavior[mi];
    let never_posted = plan.never_posted[mi];
    let abandon_after = plan.abandon_after[mi];
    let tweet_tox = user.toxicity;
    let status_tox = user.toxicity * config.mastodon_toxicity_factor;
    let status_rate = config.statuses_per_day_mean * user.engagement;
    let active_from = account.created.max(Day::STUDY_START);

    for day in Day::study_days() {
        // -- tweets -----------------------------------------------------
        let n_tweets = rng.poisson(user.tweet_rate.min(12.0)) as usize;
        let mut todays_tweets: Vec<usize> = Vec::with_capacity(n_tweets + 1);
        for _ in 0..n_tweets {
            let topic = tweet_topic(user, day >= account.announced, rng);
            let mut text = gen.compose(topic, Platform::Twitter, 2, rng);
            if rng.chance(tweet_tox) {
                text = gen.toxicify(&text, rng);
            }
            todays_tweets.push(out.tweets.len());
            out.tweets.push(Tweet {
                id: TweetId(out.tweets.len() as u64),
                author: user.id,
                day,
                text,
                source: user.preferred_client as u16,
            });
        }

        // -- the announcement tweet --------------------------------------
        if day == account.announced {
            // A third of handle-bearing announcements are link-only:
            // no migration keyword, no hashtag — the paper's
            // instance-link queries are what catch these (Fig. 2).
            let text = if account.in_tweet && rng.chance(0.33) {
                format!(
                    "{} {}",
                    rng.choose::<&str>(LINK_ONLY_PHRASES),
                    account.first_handle.profile_url()
                )
            } else {
                let phrase = *rng.choose(MIGRATION_PHRASES);
                let mut text = if account.in_tweet {
                    let handle_text = if rng.chance(0.6) {
                        account.first_handle.to_string()
                    } else {
                        account.first_handle.profile_url()
                    };
                    format!("{phrase}! i am now at {handle_text}")
                } else {
                    format!("{phrase}! you know where to find me")
                };
                // Migration hashtags make the tweet searchable (§3.1).
                let tags = Topic::Migration.hashtags(Platform::Twitter);
                text.push(' ');
                text.push_str(rng.choose::<&str>(tags));
                if rng.chance(0.5) {
                    text.push(' ');
                    text.push_str(rng.choose::<&str>(tags));
                }
                text
            };
            out.tweets.push(Tweet {
                id: TweetId(out.tweets.len() as u64),
                author: user.id,
                day,
                text,
                source: user.preferred_client as u16,
            });
        }

        // -- statuses -----------------------------------------------------
        if never_posted || day < active_from {
            continue;
        }
        if let Some(quit) = abandon_after {
            if day >= quit {
                continue;
            }
        }
        // Early-adopter accounts idle along pre-announcement; everyone
        // ramps up over ~6 days after they arrive/announce.
        let rate = if day < account.announced {
            0.15 * status_rate
        } else {
            let t = (day - account.announced.max(active_from)) as f64;
            status_rate * (1.0 - (-(t + 1.0) / 6.0).exp())
        };
        let n_statuses = rng.poisson(rate.min(10.0)) as usize;
        for _ in 0..n_statuses {
            // Cross-posting tools mirror identically — and also post a
            // copy on Twitter attributed to the tool (Fig. 12).
            let tools_alive = day.offset() <= CROSSPOSTER_BREAK_DAY || rng.chance(0.25);
            match behavior {
                MirrorBehavior::CrossPoster { source }
                    if day >= account.announced
                        && tools_alive
                        && rng.chance(config.crosspost_per_post) =>
                {
                    let topic = status_topic(user, rng);
                    let mut text = gen.compose(topic, Platform::Mastodon, 2, rng);
                    if rng.chance(status_tox) {
                        text = gen.toxicify(&text, rng);
                    }
                    out.statuses.push(Status {
                        id: StatusId(out.statuses.len() as u64),
                        account: account.id,
                        day,
                        text: text.clone(),
                    });
                    out.tweets.push(Tweet {
                        id: TweetId(out.tweets.len() as u64),
                        author: user.id,
                        day,
                        text,
                        source,
                    });
                }
                MirrorBehavior::Manual
                    if !todays_tweets.is_empty() && rng.chance(config.manual_mirror_per_post) =>
                {
                    // Paraphrase one of today's tweets: similar, not
                    // identical (Fig. 14's middle band). Today's tweets
                    // are chunk-local, so the lookup needs no global
                    // corpus — the property that lets chunks stream.
                    let src = &out.tweets[todays_tweets[rng.below_usize(todays_tweets.len())]];
                    let text = gen.paraphrase(&src.text.clone(), rng);
                    out.statuses.push(Status {
                        id: StatusId(out.statuses.len() as u64),
                        account: account.id,
                        day,
                        text,
                    });
                }
                _ => {
                    let topic = status_topic(user, rng);
                    let mut text = gen.compose(topic, Platform::Mastodon, 2, rng);
                    if rng.chance(status_tox) {
                        text = gen.toxicify(&text, rng);
                    }
                    out.statuses.push(Status {
                        id: StatusId(out.statuses.len() as u64),
                        account: account.id,
                        day,
                        text,
                    });
                }
            }
        }
    }
    out
}

/// Generate one noise user's migration chatter from its private stream.
fn noise_content(
    ui: usize,
    user: &TwitterUser,
    plan: &ContentPlan,
    config: &WorldConfig,
    gen: &PostGenerator,
) -> UserContent {
    let mut rng = DetRng::stream(plan.noise_base, ui as u64);
    let rng = &mut rng;
    let mut out = UserContent::default();
    let window_days = (Day::COLLECTION_END.offset() - Day::COLLECTION_START.offset() + 1) as f64;
    let n = rng.poisson(config.noise_tweet_rate * window_days) as usize;
    for _ in 0..n {
        let day = {
            // Noise chatter follows the same event-driven intensity.
            crate::migration::sample_migration_day(rng)
        };
        let phrase = *rng.choose(MIGRATION_PHRASES);
        let topic_text = gen.generate(Topic::Migration, rng);
        let tags = Topic::Migration.hashtags(Platform::Twitter);
        let mut text = format!("{topic_text} {phrase} {}", rng.choose(tags));
        if rng.chance(user.toxicity) {
            text = gen.toxicify(&text, rng);
        }
        out.tweets.push(Tweet {
            id: TweetId(out.tweets.len() as u64),
            author: TwitterUserId::from_index(ui),
            day,
            text,
            source: user.preferred_client as u16,
        });
    }
    out
}

/// Streaming content generator: yields one [`UserContent`] chunk per user
/// in canonical corpus order (migrants in migrant-index order, then noise
/// users in user-index order), renumbering chunk-local ids into the global
/// dense id space. Driving the stream to completion and concatenating the
/// chunks is byte-identical to [`generate_content`]'s arenas — consumers
/// that only need one pass (index builders, exporters) never have to hold
/// the whole corpus.
pub struct ContentStream<'a> {
    users: &'a [TwitterUser],
    migrant_users: &'a [usize],
    accounts: &'a [MastodonAccount],
    plan: &'a ContentPlan,
    config: &'a WorldConfig,
    gen: PostGenerator,
    /// Next migrant index to emit; once `== migrant_users.len()`, noise.
    next_migrant: usize,
    /// Next user index to consider for noise emission.
    next_noise: usize,
    next_tweet: u64,
    next_status: u64,
}

impl<'a> ContentStream<'a> {
    /// A stream over every user's content, in canonical order.
    pub fn new(
        users: &'a [TwitterUser],
        migrant_users: &'a [usize],
        accounts: &'a [MastodonAccount],
        plan: &'a ContentPlan,
        config: &'a WorldConfig,
    ) -> Self {
        ContentStream {
            users,
            migrant_users,
            accounts,
            plan,
            config,
            gen: PostGenerator::default(),
            next_migrant: 0,
            next_noise: 0,
            next_tweet: 0,
            next_status: 0,
        }
    }

    fn renumber(&mut self, mut chunk: UserContent) -> UserContent {
        for t in &mut chunk.tweets {
            t.id = TweetId(self.next_tweet);
            self.next_tweet += 1;
        }
        for s in &mut chunk.statuses {
            s.id = StatusId(self.next_status);
            self.next_status += 1;
        }
        chunk
    }
}

impl Iterator for ContentStream<'_> {
    type Item = UserContent;

    fn next(&mut self) -> Option<UserContent> {
        if self.next_migrant < self.migrant_users.len() {
            let mi = self.next_migrant;
            self.next_migrant += 1;
            let ui = self.migrant_users[mi];
            let chunk = migrant_content(
                mi,
                &self.users[ui],
                &self.accounts[mi],
                self.plan,
                self.config,
                &self.gen,
            );
            return Some(self.renumber(chunk));
        }
        while self.next_noise < self.users.len() {
            let ui = self.next_noise;
            self.next_noise += 1;
            let user = &self.users[ui];
            if user.is_migrant {
                continue;
            }
            let chunk = noise_content(ui, user, self.plan, self.config, &self.gen);
            return Some(self.renumber(chunk));
        }
        None
    }
}

/// Generate all content eagerly into the columnar arenas: runs the plan,
/// then drains a [`ContentStream`] in canonical order. `accounts` must be
/// in migrant-index order and `migrant_users[i]` maps migrant index →
/// index into `users`.
pub fn generate_content(
    users: &mut [TwitterUser],
    migrant_users: &[usize],
    accounts: &[MastodonAccount],
    config: &WorldConfig,
    rng: &mut DetRng,
) -> Corpora {
    let plan = plan_content(users, migrant_users, accounts, config, rng);
    let mut out = Corpora {
        mirror_behavior: plan.mirror_behavior.clone(),
        never_posted: plan.never_posted.clone(),
        ..Corpora::default()
    };
    for chunk in ContentStream::new(users, migrant_users, accounts, &plan, config) {
        for t in &chunk.tweets {
            out.tweets.push(t.author, t.day, &t.text, t.source);
        }
        for s in &chunk.statuses {
            out.statuses.push(s.account, s.day, &s.text);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::build_friend_graph;
    use crate::instances::generate_instances;
    use crate::migration::run_migration;
    use crate::users::generate_users;
    use flock_textsim::{extract_hashtags, ToxicityScorer};

    fn build() -> (
        WorldConfig,
        Vec<TwitterUser>,
        Vec<usize>,
        Vec<MastodonAccount>,
        Corpora,
    ) {
        let config = WorldConfig::small().with_seed(41);
        let mut rng = DetRng::new(config.seed);
        let mut users = generate_users(&config, &mut rng.fork("users"));
        let migrants: Vec<usize> = users
            .iter()
            .enumerate()
            .filter(|(_, u)| u.is_migrant)
            .map(|(i, _)| i)
            .collect();
        let graph = build_friend_graph(migrants.len(), 12.0, 0.9, 0.04, &mut rng.fork("graph"));
        let instances = generate_instances(
            config.n_instances,
            config.instance_zipf_exponent,
            &mut rng.fork("inst"),
        );
        let accounts = run_migration(
            &users,
            &migrants,
            &graph,
            &instances,
            &config,
            &mut rng.fork("mig"),
        )
        .unwrap();
        let corpora = generate_content(
            &mut users,
            &migrants,
            &accounts,
            &config,
            &mut rng.fork("content"),
        );
        (config, users, migrants, accounts, corpora)
    }

    #[test]
    fn source_constants_point_at_the_tools() {
        assert_eq!(
            SOURCES[SOURCE_CROSSPOSTER as usize].0,
            "Mastodon-Twitter Crossposter"
        );
        assert_eq!(SOURCES[SOURCE_MOA as usize].0, "Moa Bridge");
    }

    #[test]
    fn tweets_and_statuses_are_generated_in_window() {
        let (_config, _users, _migrants, _accounts, corpora) = build();
        assert!(!corpora.tweets.is_empty());
        assert!(!corpora.statuses.is_empty());
        assert!(corpora.tweets.iter().all(|t| t.day.in_study_window()));
        assert!(corpora.statuses.iter().all(|s| s.day.in_study_window()));
        // Ids are dense and ordered.
        for (i, t) in corpora.tweets.iter().enumerate() {
            assert_eq!(t.id.index(), i);
        }
        for (i, s) in corpora.statuses.iter().enumerate() {
            assert_eq!(s.id.index(), i);
        }
    }

    #[test]
    fn statuses_only_after_account_creation() {
        let (_config, _users, _migrants, accounts, corpora) = build();
        for s in &corpora.statuses {
            let acct = &accounts[s.account.index()];
            assert!(
                s.day >= acct.created,
                "status on {} before account creation {}",
                s.day,
                acct.created
            );
        }
    }

    #[test]
    fn never_posted_accounts_have_no_statuses() {
        let (_config, _users, _migrants, _accounts, corpora) = build();
        for (mi, &np) in corpora.never_posted.iter().enumerate() {
            if np {
                assert!(
                    !corpora.statuses.iter().any(|s| s.account.index() == mi),
                    "never-posted migrant {mi} has statuses"
                );
            }
        }
    }

    #[test]
    fn announcement_tweets_carry_handles_when_in_tweet() {
        let (_config, users, migrants, accounts, corpora) = build();
        let mut found_handle = 0;
        for (mi, acct) in accounts.iter().enumerate() {
            if !acct.in_tweet {
                continue;
            }
            let uid = users[migrants[mi]].id;
            let day = acct.announced;
            let has = corpora.tweets.iter().any(|t| {
                t.author == uid
                    && t.day == day
                    && flock_core::handle::extract_handles(t.text)
                        .iter()
                        .any(|h| h == &acct.first_handle)
            });
            assert!(has, "migrant {mi} announced without handle");
            found_handle += 1;
        }
        assert!(found_handle > 0);
    }

    #[test]
    fn bios_updated_for_in_bio_migrants() {
        let (_config, users, migrants, accounts, _corpora) = build();
        for (mi, acct) in accounts.iter().enumerate() {
            let bio = &users[migrants[mi]].bio;
            let extracted = flock_core::handle::extract_handles(bio);
            if acct.in_bio {
                assert!(
                    extracted.iter().any(|h| h == &acct.first_handle),
                    "bio missing handle: {bio}"
                );
            } else {
                assert!(extracted.is_empty(), "unexpected handle in bio: {bio}");
            }
        }
    }

    #[test]
    fn crossposters_produce_identical_pairs_with_tool_source() {
        let (_config, users, migrants, accounts, corpora) = build();
        let mut tool_tweets = 0;
        for (mi, b) in corpora.mirror_behavior.iter().enumerate() {
            if let MirrorBehavior::CrossPoster { source } = b {
                let uid = users[migrants[mi]].id;
                let aid = accounts[mi].id;
                for t in corpora
                    .tweets
                    .iter()
                    .filter(|t| t.author == uid && t.source == *source)
                {
                    tool_tweets += 1;
                    assert!(
                        corpora
                            .statuses
                            .iter()
                            .any(|s| s.account == aid && s.text == t.text && s.day == t.day),
                        "tool tweet without identical status"
                    );
                }
            }
        }
        assert!(tool_tweets > 0, "no cross-posted tweets generated");
    }

    #[test]
    fn toxicity_lower_on_mastodon() {
        // Aggregate across a medium world for stable rates.
        let config = WorldConfig::medium().with_seed(42);
        let mut rng = DetRng::new(config.seed);
        let mut users = generate_users(&config, &mut rng.fork("users"));
        let migrants: Vec<usize> = users
            .iter()
            .enumerate()
            .filter(|(_, u)| u.is_migrant)
            .map(|(i, _)| i)
            .collect();
        let graph = build_friend_graph(migrants.len(), 12.0, 0.9, 0.04, &mut rng.fork("graph"));
        let instances = generate_instances(
            config.n_instances,
            config.instance_zipf_exponent,
            &mut rng.fork("inst"),
        );
        let accounts = run_migration(
            &users,
            &migrants,
            &graph,
            &instances,
            &config,
            &mut rng.fork("mig"),
        )
        .unwrap();
        let corpora = generate_content(
            &mut users,
            &migrants,
            &accounts,
            &config,
            &mut rng.fork("content"),
        );
        let scorer = ToxicityScorer::new();
        let sample = |texts: Vec<&str>| {
            let n = texts.len().min(20_000);
            let toxic = texts.iter().take(n).filter(|t| scorer.is_toxic(t)).count();
            toxic as f64 / n as f64
        };
        let tw = sample(corpora.tweets.iter().map(|t| t.text).collect());
        let ms = sample(corpora.statuses.iter().map(|s| s.text).collect());
        assert!(tw > ms, "twitter {tw} should exceed mastodon {ms}");
        assert!((0.01..0.12).contains(&tw), "tweet toxicity {tw}");
    }

    #[test]
    fn posts_carry_platform_hashtags() {
        let (_config, _users, _migrants, _accounts, corpora) = build();
        let tw_tags: usize = corpora
            .tweets
            .iter()
            .map(|t| extract_hashtags(t.text).len())
            .sum();
        let ms_tags: usize = corpora
            .statuses
            .iter()
            .map(|s| extract_hashtags(s.text).len())
            .sum();
        assert!(tw_tags > 0 && ms_tags > 0);
    }

    #[test]
    fn streaming_matches_eager() {
        // The streaming contract: draining a ContentStream chunk-by-chunk
        // reproduces the eager arenas byte-for-byte, including the user
        // mutations from the plan phase. This is what lets paper-scale
        // consumers generate per-user content on demand.
        let config = WorldConfig::medium().with_seed(97);
        let mut rng = DetRng::new(config.seed);
        let users = generate_users(&config, &mut rng.fork("users"));
        let migrants: Vec<usize> = users
            .iter()
            .enumerate()
            .filter(|(_, u)| u.is_migrant)
            .map(|(i, _)| i)
            .collect();
        let graph = build_friend_graph(migrants.len(), 12.0, 0.9, 0.04, &mut rng.fork("graph"));
        let instances = generate_instances(
            config.n_instances,
            config.instance_zipf_exponent,
            &mut rng.fork("inst"),
        );
        let accounts = run_migration(
            &users,
            &migrants,
            &graph,
            &instances,
            &config,
            &mut rng.fork("mig"),
        )
        .unwrap();

        // Both paths must start from the same RNG position: fork once,
        // clone (`fork` itself consumes a parent draw).
        let content_rng = rng.fork("content");

        // Eager path.
        let mut eager_users = users.clone();
        let eager = generate_content(
            &mut eager_users,
            &migrants,
            &accounts,
            &config,
            &mut content_rng.clone(),
        );

        // Lazy path: plan, then drain the stream chunk-by-chunk.
        let mut lazy_users = users.clone();
        let plan = plan_content(
            &mut lazy_users,
            &migrants,
            &accounts,
            &config,
            &mut content_rng.clone(),
        );
        let mut lazy = Corpora {
            mirror_behavior: plan.mirror_behavior.clone(),
            never_posted: plan.never_posted.clone(),
            ..Corpora::default()
        };
        let mut chunks = 0usize;
        for chunk in ContentStream::new(&lazy_users, &migrants, &accounts, &plan, &config) {
            for t in &chunk.tweets {
                // Chunk ids arrive already renumbered into the global space.
                assert_eq!(t.id.index(), lazy.tweets.len());
                lazy.tweets.push(t.author, t.day, &t.text, t.source);
            }
            for s in &chunk.statuses {
                assert_eq!(s.id.index(), lazy.statuses.len());
                lazy.statuses.push(s.account, s.day, &s.text);
            }
            chunks += 1;
        }

        assert!(chunks > migrants.len(), "stream must cover noise users too");
        assert_eq!(eager.tweets.len(), lazy.tweets.len());
        assert_eq!(eager.statuses.len(), lazy.statuses.len());
        assert_eq!(eager.mirror_behavior, lazy.mirror_behavior);
        assert_eq!(eager.never_posted, lazy.never_posted);
        for i in 0..eager.tweets.len() {
            let a = eager.tweets.get(i);
            let b = lazy.tweets.get(i);
            assert_eq!(a.author, b.author);
            assert_eq!(a.day, b.day);
            assert_eq!(a.source, b.source);
            assert_eq!(a.text, b.text, "tweet {i} text diverged");
        }
        for i in 0..eager.statuses.len() {
            let a = eager.statuses.get(i);
            let b = lazy.statuses.get(i);
            assert_eq!(a.account, b.account);
            assert_eq!(a.day, b.day);
            assert_eq!(a.text, b.text, "status {i} text diverged");
        }
        // Plan-phase user mutations (bios, clients) are identical too.
        for (a, b) in eager_users.iter().zip(lazy_users.iter()) {
            assert_eq!(a.bio, b.bio);
            assert_eq!(a.preferred_client, b.preferred_client);
        }
    }

    #[test]
    fn noise_users_tweet_keywords_only_in_collection_window() {
        let (_config, users, _migrants, _accounts, corpora) = build();
        for t in &corpora.tweets {
            if !users[t.author.index()].is_migrant {
                assert!(t.day.in_collection_window());
                let lower = t.text.to_lowercase();
                assert!(
                    MIGRATION_PHRASES.iter().any(|p| lower.contains(p))
                        || lower.contains("#twittermigration"),
                    "noise tweet without keyword: {}",
                    t.text
                );
            }
        }
    }
}

#[cfg(test)]
mod abandonment_tests {
    use super::*;
    use crate::graph::build_friend_graph;
    use crate::instances::generate_instances;
    use crate::migration::run_migration;
    use crate::users::generate_users;

    fn corpora_with(abandon_rate: f64) -> (Vec<MastodonAccount>, Corpora) {
        let mut config = WorldConfig::small().with_seed(71);
        config.mastodon_abandon_rate = abandon_rate;
        let mut rng = DetRng::new(config.seed);
        let mut users = generate_users(&config, &mut rng.fork("users"));
        let migrants: Vec<usize> = users
            .iter()
            .enumerate()
            .filter(|(_, u)| u.is_migrant)
            .map(|(i, _)| i)
            .collect();
        let graph = build_friend_graph(migrants.len(), 12.0, 0.55, 0.045, &mut rng.fork("g"));
        let instances = generate_instances(
            config.n_instances,
            config.instance_zipf_exponent,
            &mut rng.fork("i"),
        );
        let accounts = run_migration(
            &users,
            &migrants,
            &graph,
            &instances,
            &config,
            &mut rng.fork("m"),
        )
        .unwrap();
        let corpora = generate_content(
            &mut users,
            &migrants,
            &accounts,
            &config,
            &mut rng.fork("c"),
        );
        (accounts, corpora)
    }

    #[test]
    fn universal_abandonment_silences_the_tail_of_the_window() {
        let (accounts, corpora) = corpora_with(1.0);
        // With everyone quitting shortly after announcing, late-window
        // statuses become rare relative to the no-abandonment world.
        let late = corpora
            .statuses
            .iter()
            .filter(|s| s.day.offset() >= 55)
            .count();
        let (_, keep) = corpora_with(0.0);
        let late_keep = keep
            .statuses
            .iter()
            .filter(|s| s.day.offset() >= 55)
            .count();
        assert!(
            (late as f64) < (late_keep as f64) * 0.35,
            "abandonment must thin late statuses: {late} vs {late_keep}"
        );
        // Twitter posting is unaffected by Mastodon abandonment.
        let late_tweets =
            |c: &Corpora| c.tweets.iter().filter(|t| t.day.offset() >= 55).count() as f64;
        let ratio = late_tweets(&corpora) / late_tweets(&keep);
        assert!((0.8..1.2).contains(&ratio), "tweet ratio {ratio}");
        assert_eq!(accounts.len(), keep.never_posted.len());
    }
}

//! World configuration: scale presets and every behavioural rate, each
//! anchored to the paper statistic it reproduces.
//!
//! The reproduction target is the *proportions* the paper reports, not its
//! absolute counts (our substrate is a simulator, not Nov-2022 Twitter), so
//! the presets scale the population down while keeping every rate intact.

use flock_core::FlockError;
use serde::{Deserialize, Serialize};

/// Full configuration of the simulated world.
///
/// Defaults reproduce the paper's published rates; the scale fields choose
/// how many users/instances/posts to simulate.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorldConfig {
    /// Master seed; every subsystem forks its own stream from it.
    pub seed: u64,

    // ---- scale ----------------------------------------------------------
    /// Users who post tweets matching the §3.1 search queries
    /// (paper: 1,024,577). Only a minority actually migrate.
    pub n_searchable_users: usize,
    /// Fraction of searchable users who truly migrate. The paper identified
    /// 136,009 of 1,024,577 ⇒ ≈ 13.3% (their method is a lower bound; we
    /// generate slightly more ground-truth migrants than get identified).
    pub migrant_fraction: f64,
    /// Instances on the global `instances.social`-style list
    /// (paper: 15,886; migrants landed on 2,879 of them).
    pub n_instances: usize,

    // ---- §3.1 identification --------------------------------------------
    /// P(migrant reuses their Twitter username on Mastodon) (paper: 72%).
    pub same_username_rate: f64,
    /// P(migrant puts the Mastodon handle in their Twitter bio). Bio
    /// matches are accepted for any username; tweet-text matches only when
    /// usernames are identical, so this drives identification coverage.
    pub handle_in_bio_rate: f64,
    /// P(migrant tweets their handle at migration time).
    pub handle_in_tweet_rate: f64,
    /// P(searchable non-migrant tweets migration keywords on a given
    /// event-window day) — the noise corpus the search must sift.
    pub noise_tweet_rate: f64,
    /// P(migrant has legacy verified status) (paper: 4%).
    pub verified_rate: f64,

    // ---- §3.2 crawl-coverage fates --------------------------------------
    /// P(identified migrant's Twitter account is suspended at crawl time)
    /// (paper: 0.08%).
    pub twitter_suspended_rate: f64,
    /// P(deleted/deactivated at crawl time) (paper: 2.26%).
    pub twitter_deleted_rate: f64,
    /// P(tweets protected at crawl time) (paper: 2.78%).
    pub twitter_protected_rate: f64,
    /// P(a migrant's instance is down at Mastodon crawl time)
    /// (paper: 11.58% of users were on unreachable instances).
    pub instance_down_rate: f64,
    /// P(migrant never posted a status) (paper: 9.20%).
    pub never_posted_rate: f64,

    // ---- §4 instance landscape ------------------------------------------
    /// Zipf exponent of instance popularity. Calibrated so ≈ 96% of users
    /// land on the top 25% of instances (Fig. 5) with a heavy single-user
    /// tail (13.16% of instances, Fig. 6a).
    pub instance_zipf_exponent: f64,
    /// P(Mastodon account predates the takeover) (paper: 21%).
    pub early_adopter_rate: f64,

    // ---- §5 social network ----------------------------------------------
    /// Median Twitter followees of migrated users (paper: 787).
    pub twitter_followee_median: f64,
    /// Median Twitter followers of migrated users (paper: 744).
    pub twitter_follower_median: f64,
    /// Log-normal sigma for both Twitter degree distributions.
    pub twitter_degree_sigma: f64,
    /// Mean fraction of a migrant's followees who also migrate
    /// (paper: 5.99%).
    pub followee_migrant_fraction: f64,
    /// P(choosing the modal instance of one's already-migrated friends
    /// instead of sampling by popularity/topic) — the herding knob behind
    /// the 14.72% same-instance statistic.
    pub herding_probability: f64,
    /// Fraction of a migrant's migrated Twitter followees they manage to
    /// re-follow on Mastodon (drives the 38/48 median degrees of Fig. 7).
    pub mastodon_refollow_rate: f64,
    /// Mean number of *local* (same-instance) discoveries a migrant follows
    /// on Mastodon, scaled by engagement.
    pub mastodon_local_follow_mean: f64,

    // ---- §5.3 switching --------------------------------------------------
    /// P(a migrant switches instance during the window) (paper: 4.09%).
    pub switch_rate: f64,
    /// P(a switch happens after the takeover | switch) (paper: 97.22%).
    pub switch_post_takeover_rate: f64,

    // ---- §6 content -------------------------------------------------------
    /// Mean tweets/day of an active migrant during the window
    /// (paper: 16.1M tweets / 129k users / 61 days ≈ 2.0).
    pub tweets_per_day_mean: f64,
    /// Mean statuses/day once on Mastodon (paper: 5.7M / 107k / ~30 days,
    /// ramping from 0 at join).
    pub statuses_per_day_mean: f64,
    /// P(user runs a cross-posting tool) (paper: 5.73% used one at least
    /// once).
    pub crossposter_rate: f64,
    /// P(user manually mirrors some content without a tool). Together with
    /// cross-posters this complements the 84.45% of users whose content is
    /// fully different.
    pub manual_mirror_rate: f64,
    /// Per-post mirror probability for manual mirrorers (paraphrased, hence
    /// "similar" not "identical").
    pub manual_mirror_per_post: f64,
    /// Per-post mirror probability for cross-poster users (identical text).
    pub crosspost_per_post: f64,
    /// P(a migrant abandons Mastodon before the window ends). The paper's
    /// §8 asks whether users retain their accounts; follow-up studies in
    /// early 2023 found roughly a quarter of the wave going quiet within
    /// weeks — this knob drives the `retention` extension analysis.
    pub mastodon_abandon_rate: f64,
    /// Mean days between joining and going quiet, for abandoners.
    pub mastodon_abandon_after_days_mean: f64,
    /// Mean per-user toxic fraction on Twitter (paper: 4.02%).
    pub twitter_toxicity_mean: f64,
    /// Multiplier applied to a user's toxicity on Mastodon (paper observes
    /// 2.07% vs 4.02% ⇒ ≈ 0.5).
    pub mastodon_toxicity_factor: f64,

    // ---- background fediverse activity (Fig. 3) ---------------------------
    /// Untracked background registrations per instance per week before the
    /// takeover (scaled by instance popularity).
    pub background_weekly_registrations: f64,
    /// Surge multiplier applied to background registrations after the
    /// takeover (Mastodon gained 1M+ users while the paper tracked 136k,
    /// i.e. most of the wave is invisible to the §3.1 method).
    pub background_surge_factor: f64,
}

impl WorldConfig {
    /// CI/test scale: ≈ 2.5k searchable users, ≈ 330 migrants. Runs the
    /// whole pipeline in well under a second.
    pub fn small() -> Self {
        WorldConfig {
            n_searchable_users: 2_500,
            n_instances: 120,
            ..WorldConfig::default_rates(11)
        }
    }

    /// Demo scale: ≈ 25k searchable users, ≈ 3.3k migrants, 500 instances.
    pub fn medium() -> Self {
        WorldConfig {
            n_searchable_users: 25_000,
            n_instances: 500,
            ..WorldConfig::default_rates(11)
        }
    }

    /// Closest-to-paper scale that still runs in minutes: a 1:10 scaling of
    /// the paper's counts (≈ 102k searchable users, ≈ 13.6k migrants,
    /// ≈ 1,589 instances).
    pub fn paper() -> Self {
        WorldConfig {
            n_searchable_users: 102_458,
            n_instances: 1_589,
            ..WorldConfig::default_rates(11)
        }
    }

    /// Full paper scale, 1:1 with the study's counts: 1,024,577 searchable
    /// users and 15,886 listed instances, every behavioural rate unchanged.
    /// Around 150k ground-truth migrants and tens of millions of posts —
    /// this is the preset the arena storage and streaming content
    /// generation exist for. Expect minutes of wall-clock and a few GB of
    /// RSS, not laptop-hostile hours.
    pub fn paper_scale() -> Self {
        WorldConfig {
            n_searchable_users: 1_024_577,
            n_instances: 15_886,
            ..WorldConfig::default_rates(11)
        }
    }

    /// The paper-calibrated rates with everything else defaulted.
    fn default_rates(seed: u64) -> Self {
        WorldConfig {
            seed,
            n_searchable_users: 2_500,
            migrant_fraction: 0.146,
            n_instances: 120,
            same_username_rate: 0.645,
            handle_in_bio_rate: 0.62,
            handle_in_tweet_rate: 0.75,
            noise_tweet_rate: 0.065,
            verified_rate: 0.04,
            twitter_suspended_rate: 0.0008,
            twitter_deleted_rate: 0.0226,
            twitter_protected_rate: 0.0278,
            instance_down_rate: 0.1158,
            never_posted_rate: 0.092,
            instance_zipf_exponent: 2.25,
            early_adopter_rate: 0.21,
            twitter_followee_median: 787.0,
            twitter_follower_median: 744.0,
            twitter_degree_sigma: 1.1,
            followee_migrant_fraction: 0.0599,
            herding_probability: 0.22,
            mastodon_refollow_rate: 0.75,
            mastodon_local_follow_mean: 30.0,
            switch_rate: 0.046,
            switch_post_takeover_rate: 0.9722,
            tweets_per_day_mean: 2.0,
            statuses_per_day_mean: 1.6,
            crossposter_rate: 0.0573,
            manual_mirror_rate: 0.16,
            manual_mirror_per_post: 0.95,
            crosspost_per_post: 0.28,
            mastodon_abandon_rate: 0.22,
            mastodon_abandon_after_days_mean: 16.0,
            twitter_toxicity_mean: 0.0402,
            mastodon_toxicity_factor: 0.5,
            background_weekly_registrations: 6.0,
            background_surge_factor: 9.0,
        }
    }

    /// Override the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Expected number of ground-truth migrants, rounded to nearest (a
    /// truncating cast here understated the expectation by up to a user).
    pub fn expected_migrants(&self) -> usize {
        (self.n_searchable_users as f64 * self.migrant_fraction).round() as usize
    }

    /// Validate that every probability is a probability and every scale is
    /// non-degenerate.
    pub fn validate(&self) -> Result<(), FlockError> {
        let probs: [(&str, f64); 19] = [
            ("migrant_fraction", self.migrant_fraction),
            ("same_username_rate", self.same_username_rate),
            ("handle_in_bio_rate", self.handle_in_bio_rate),
            ("handle_in_tweet_rate", self.handle_in_tweet_rate),
            ("verified_rate", self.verified_rate),
            ("twitter_suspended_rate", self.twitter_suspended_rate),
            ("twitter_deleted_rate", self.twitter_deleted_rate),
            ("twitter_protected_rate", self.twitter_protected_rate),
            ("instance_down_rate", self.instance_down_rate),
            ("never_posted_rate", self.never_posted_rate),
            ("early_adopter_rate", self.early_adopter_rate),
            ("followee_migrant_fraction", self.followee_migrant_fraction),
            ("herding_probability", self.herding_probability),
            ("mastodon_refollow_rate", self.mastodon_refollow_rate),
            ("switch_rate", self.switch_rate),
            ("switch_post_takeover_rate", self.switch_post_takeover_rate),
            ("crossposter_rate", self.crossposter_rate),
            ("manual_mirror_rate", self.manual_mirror_rate),
            ("mastodon_abandon_rate", self.mastodon_abandon_rate),
        ];
        for (name, p) in probs {
            if !(0.0..=1.0).contains(&p) {
                return Err(FlockError::InvalidConfig(format!(
                    "{name} = {p} is not a probability"
                )));
            }
        }
        if self.n_searchable_users < 100 {
            return Err(FlockError::InvalidConfig(
                "need at least 100 searchable users".into(),
            ));
        }
        if self.n_instances < 10 {
            return Err(FlockError::InvalidConfig(
                "need at least 10 instances".into(),
            ));
        }
        if self.expected_migrants() < 20 {
            return Err(FlockError::InvalidConfig(
                "migrant_fraction × n_searchable_users too small".into(),
            ));
        }
        if self.instance_zipf_exponent <= 0.0 {
            return Err(FlockError::InvalidConfig(
                "instance_zipf_exponent must be positive".into(),
            ));
        }
        Ok(())
    }
}

impl Default for WorldConfig {
    fn default() -> Self {
        WorldConfig::small()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        WorldConfig::small().validate().unwrap();
        WorldConfig::medium().validate().unwrap();
        WorldConfig::paper().validate().unwrap();
        WorldConfig::paper_scale().validate().unwrap();
    }

    #[test]
    fn paper_scale_matches_the_study_counts() {
        let c = WorldConfig::paper_scale();
        assert_eq!(c.n_searchable_users, 1_024_577);
        assert_eq!(c.n_instances, 15_886);
        // Rates are the same calibration as every other preset.
        let base = WorldConfig::paper();
        assert_eq!(c.migrant_fraction, base.migrant_fraction);
        assert_eq!(c.instance_down_rate, base.instance_down_rate);
        let m = c.expected_migrants();
        assert!((130_000..160_000).contains(&m), "{m}");
    }

    #[test]
    fn expected_migrants_rounds_to_nearest() {
        let mut c = WorldConfig::small();
        c.n_searchable_users = 1_000;
        c.migrant_fraction = 0.1466; // 146.6 → 147, not a truncated 146
        assert_eq!(c.expected_migrants(), 147);
    }

    #[test]
    fn paper_preset_is_one_tenth_scale() {
        let c = WorldConfig::paper();
        // 1,024,577 / 10 ≈ 102,458 searchable users; 15,886 / 10 ≈ 1,589.
        assert_eq!(c.n_searchable_users, 102_458);
        assert_eq!(c.n_instances, 1_589);
        // ≈ 13,600 ground-truth migrants (the paper identified 13,601 at
        // this scale).
        let m = c.expected_migrants();
        assert!((13_000..16_000).contains(&m), "{m}");
    }

    #[test]
    fn invalid_probability_rejected() {
        let mut c = WorldConfig::small();
        c.switch_rate = 1.5;
        assert!(c.validate().is_err());
        c.switch_rate = -0.1;
        assert!(c.validate().is_err());
    }

    #[test]
    fn degenerate_scale_rejected() {
        let mut c = WorldConfig::small();
        c.n_searchable_users = 10;
        assert!(c.validate().is_err());
        let mut c = WorldConfig::small();
        c.n_instances = 2;
        assert!(c.validate().is_err());
        let mut c = WorldConfig::small();
        c.migrant_fraction = 0.001;
        assert!(c.validate().is_err());
    }

    #[test]
    fn with_seed() {
        let c = WorldConfig::small().with_seed(99);
        assert_eq!(c.seed, 99);
    }
}

//! The Twitter social graph, realized the way the paper could see it.
//!
//! The paper crawls **followee lists of migrated users only** (§3.3 — the
//! Twitter follows API was too rate-limited for more). We mirror that: the
//! simulator realizes full followee lists for ground-truth migrants and
//! keeps scalar degree targets for everyone else.
//!
//! A migrant's followees are a mixture of:
//!
//! * **migrant friends** — edges of a preferential-attachment "friend
//!   graph" drawn among migrants. These are the followees who also migrate,
//!   the quantity RQ2 measures (mean 5.99% of followees, 3.94% of users
//!   with none);
//! * **non-migrant fill** — uniformly sampled non-migrating users, padding
//!   the list up to the user's followee-count target.
//!
//! The friend graph is also what the migration model's herding and the
//! switching model's "friends moved there first" behaviour read.

use flock_core::{DetRng, TwitterUserId};

/// Undirected friend graph over the migrant subset, by migrant index
/// (positions in the world's migrant list, *not* raw user ids).
#[derive(Debug, Clone)]
pub struct MigrantFriendGraph {
    /// Adjacency list; `adj[i]` holds migrant indices, sorted, deduped.
    pub adj: Vec<Vec<u32>>,
}

impl MigrantFriendGraph {
    /// Number of migrants.
    pub fn len(&self) -> usize {
        self.adj.len()
    }

    /// `true` if there are no migrants.
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Friends of migrant `i`.
    pub fn friends(&self, i: usize) -> &[u32] {
        &self.adj[i]
    }

    /// Mean degree.
    pub fn mean_degree(&self) -> f64 {
        if self.adj.is_empty() {
            return 0.0;
        }
        self.adj.iter().map(Vec::len).sum::<usize>() as f64 / self.adj.len() as f64
    }
}

/// Build the migrant friend graph by preferential attachment.
///
/// Migrants are processed in a random order; each brings
/// `m ~ LogNormal(ln(m_median), sigma)` stubs attached to existing migrants
/// with probability proportional to `degree + 1`. A `loner_fraction` of
/// migrants contribute no stubs of their own (they can still be chosen as
/// targets, but rarely — this yields the ~4% of migrants none of whose
/// followees migrate).
pub fn build_friend_graph(
    n_migrants: usize,
    m_median: f64,
    sigma: f64,
    loner_fraction: f64,
    rng: &mut DetRng,
) -> MigrantFriendGraph {
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n_migrants];
    if n_migrants < 2 {
        return MigrantFriendGraph { adj };
    }
    let mut order: Vec<u32> = (0..n_migrants as u32).collect();
    rng.shuffle(&mut order);

    // Loners contribute no stubs and are never chosen as targets: these are
    // the migrants none of whose followees migrate (§5.2's 3.94%).
    let loner: Vec<bool> = (0..n_migrants)
        .map(|_| rng.chance(loner_fraction))
        .collect();

    // Repeated-nodes trick for preferential attachment: `targets` holds one
    // entry per degree endpoint, so uniform sampling from it is
    // degree-proportional.
    let mut targets: Vec<u32> = Vec::with_capacity(n_migrants * (m_median as usize).max(1) * 2);
    let mut arrived: Vec<u32> = Vec::with_capacity(n_migrants);

    for &node in &order {
        if loner[node as usize] {
            continue;
        }
        if arrived.is_empty() {
            arrived.push(node);
            targets.push(node);
            continue;
        }
        let m = rng.lognormal(m_median.ln(), sigma).round().max(1.0) as usize;
        let m = m.min(arrived.len());
        let mut chosen: Vec<u32> = Vec::with_capacity(m);
        let mut attempts = 0;
        while chosen.len() < m && attempts < m * 20 {
            attempts += 1;
            // Mix degree-proportional and uniform choice (uniform share
            // keeps low-degree nodes reachable, producing a softer tail).
            let t = if rng.chance(0.8) && !targets.is_empty() {
                targets[rng.below_usize(targets.len())]
            } else {
                arrived[rng.below_usize(arrived.len())]
            };
            if t != node && !chosen.contains(&t) {
                chosen.push(t);
            }
        }
        for &t in &chosen {
            adj[node as usize].push(t);
            adj[t as usize].push(node);
            targets.push(node);
            targets.push(t);
        }
        arrived.push(node);
        targets.push(node); // baseline attractiveness
    }

    for list in &mut adj {
        list.sort_unstable();
        list.dedup();
    }
    MigrantFriendGraph { adj }
}

/// Realize the full followee list of one migrant: their migrated friends
/// (mapped to user ids) plus uniformly-sampled non-migrant fill up to
/// `target_count`.
///
/// `non_migrant_pool` must be non-empty. The result is deduplicated and
/// never contains `self_id`.
pub fn realize_followees(
    self_id: TwitterUserId,
    friend_user_ids: &[TwitterUserId],
    target_count: usize,
    non_migrant_pool: &[TwitterUserId],
    rng: &mut DetRng,
) -> Vec<TwitterUserId> {
    let mut out: Vec<TwitterUserId> = friend_user_ids
        .iter()
        .copied()
        .filter(|&u| u != self_id)
        .collect();
    let fill = target_count.saturating_sub(out.len());
    if fill > 0 && !non_migrant_pool.is_empty() {
        // Sample without replacement when the pool is large relative to the
        // request; fall back to best-effort rejection otherwise.
        let mut seen: std::collections::BTreeSet<TwitterUserId> = out.iter().copied().collect();
        seen.insert(self_id);
        let mut added = 0;
        let mut attempts = 0;
        let max_attempts = fill * 10 + 100;
        while added < fill && attempts < max_attempts {
            attempts += 1;
            let cand = non_migrant_pool[rng.below_usize(non_migrant_pool.len())];
            if seen.insert(cand) {
                out.push(cand);
                added += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn friend_graph_is_symmetric_and_loopless() {
        let mut rng = DetRng::new(1);
        let g = build_friend_graph(500, 12.0, 0.9, 0.04, &mut rng);
        for (i, friends) in g.adj.iter().enumerate() {
            for &f in friends {
                assert_ne!(f as usize, i, "self loop at {i}");
                assert!(
                    g.adj[f as usize].contains(&(i as u32)),
                    "asymmetric edge {i} -> {f}"
                );
            }
            let mut d = friends.clone();
            d.dedup();
            assert_eq!(d.len(), friends.len(), "duplicate edges at {i}");
        }
    }

    #[test]
    fn mean_degree_tracks_m_median() {
        let mut rng = DetRng::new(2);
        let g = build_friend_graph(2000, 15.0, 0.9, 0.04, &mut rng);
        let d = g.mean_degree();
        // Each non-loner contributes ~m edges; with the log-normal tail the
        // mean degree lands in the ballpark of 2 × median-ish.
        assert!((15.0..80.0).contains(&d), "mean degree {d}");
    }

    #[test]
    fn loners_exist() {
        let mut rng = DetRng::new(3);
        let g = build_friend_graph(2000, 15.0, 0.9, 0.08, &mut rng);
        let isolated = g.adj.iter().filter(|a| a.is_empty()).count();
        assert!(isolated > 0, "expected some isolated migrants");
        assert!(
            (isolated as f64) < 0.2 * g.len() as f64,
            "too many isolated: {isolated}"
        );
    }

    #[test]
    fn degree_distribution_is_skewed() {
        let mut rng = DetRng::new(4);
        let g = build_friend_graph(3000, 12.0, 1.0, 0.04, &mut rng);
        let mut degrees: Vec<usize> = g.adj.iter().map(Vec::len).collect();
        degrees.sort_unstable();
        let median = degrees[degrees.len() / 2] as f64;
        let max = *degrees.last().unwrap() as f64;
        assert!(
            max > median * 5.0,
            "hub-free graph: median {median}, max {max}"
        );
    }

    #[test]
    fn tiny_graphs() {
        let mut rng = DetRng::new(5);
        assert_eq!(build_friend_graph(0, 10.0, 1.0, 0.0, &mut rng).len(), 0);
        assert_eq!(
            build_friend_graph(1, 10.0, 1.0, 0.0, &mut rng).adj[0].len(),
            0
        );
        let g2 = build_friend_graph(2, 10.0, 1.0, 0.0, &mut rng);
        assert_eq!(g2.len(), 2);
    }

    #[test]
    fn realize_followees_contains_friends_and_hits_target() {
        let mut rng = DetRng::new(6);
        let me = TwitterUserId(0);
        let friends: Vec<TwitterUserId> = (1..=10).map(TwitterUserId).collect();
        let pool: Vec<TwitterUserId> = (100..1100).map(TwitterUserId).collect();
        let list = realize_followees(me, &friends, 50, &pool, &mut rng);
        assert_eq!(list.len(), 50);
        for f in &friends {
            assert!(list.contains(f));
        }
        let unique: std::collections::HashSet<_> = list.iter().collect();
        assert_eq!(unique.len(), list.len(), "duplicates in followees");
        assert!(!list.contains(&me));
    }

    #[test]
    fn realize_followees_when_friends_exceed_target() {
        let mut rng = DetRng::new(7);
        let me = TwitterUserId(0);
        let friends: Vec<TwitterUserId> = (1..=30).map(TwitterUserId).collect();
        let pool: Vec<TwitterUserId> = (100..200).map(TwitterUserId).collect();
        // Target smaller than friend count: all friends still included
        // (the relationship exists regardless of the scalar target).
        let list = realize_followees(me, &friends, 10, &pool, &mut rng);
        assert_eq!(list.len(), 30);
    }

    #[test]
    fn deterministic() {
        let build = |seed| {
            let mut rng = DetRng::new(seed);
            build_friend_graph(400, 10.0, 0.8, 0.05, &mut rng).adj
        };
        assert_eq!(build(9), build(9));
        assert_ne!(build(9), build(10));
    }
}

//! Instance switching (§5.3).
//!
//! 4.09% of migrants move their account from the instance they first joined
//! (almost always after the takeover). The paper finds the pattern is
//! (a) flagship/general-purpose → topic-specific, and (b) strongly driven
//! by the social network: on average 46.98% of a switcher's migrated
//! followees are on the *second* instance (vs 11.4% on the first), and
//! 77.42% of them arrived there before the switcher.
//!
//! The model therefore prefers switchers whose friends cluster on some
//! other instance, moves them there, and otherwise falls back to the
//! topical instance of the user's niche.

use crate::config::WorldConfig;
use crate::graph::MigrantFriendGraph;
use crate::instances::Instance;
use crate::migration::{MastodonAccount, SwitchRecord};
use crate::users::TwitterUser;
use flock_core::{Day, DetRng, InstanceId, MastodonHandle, Result};
use std::collections::BTreeMap;

/// The friends' modal instance and its share among migrated friends.
fn modal_friend_instance(
    mi: usize,
    graph: &MigrantFriendGraph,
    accounts: &[MastodonAccount],
) -> Option<(InstanceId, f64)> {
    let friends = graph.friends(mi);
    if friends.is_empty() {
        return None;
    }
    let mut counts: BTreeMap<InstanceId, usize> = BTreeMap::new();
    for &f in friends {
        *counts
            .entry(accounts[f as usize].first_instance)
            .or_insert(0) += 1;
    }
    let (inst, c) = counts
        .into_iter()
        .max_by_key(|(id, c)| (*c, std::cmp::Reverse(id.raw())))?;
    Some((inst, c as f64 / friends.len() as f64))
}

/// Pick a switch day for an account: mostly post-takeover (the paper's
/// 97.22%), after the user has had time to gain experience on the first
/// instance, and late enough that most of their friends are already on the
/// destination.
fn switch_day(account: &MastodonAccount, config: &WorldConfig, rng: &mut DetRng) -> Day {
    let pre_takeover_possible = account.created.offset() < 24;
    if pre_takeover_possible && !rng.chance(config.switch_post_takeover_rate) {
        // Rare pre-takeover switch by an early adopter.
        let lo = account.created.offset() + 1;
        return Day(rng.range_i64(i64::from(lo), 25) as i32);
    }
    // Post-takeover: between a few days after joining and the end of the
    // window, biased late (users switch "once they are more experienced").
    let lo = (account.announced.offset() + 3).max(Day::TAKEOVER.offset());
    let hi = 59;
    if lo >= hi {
        return Day(hi);
    }
    // Min of two uniforms: switches skew earlier, so that a realistic
    // share of the destination community arrives after the switcher.
    let a = rng.range_i64(i64::from(lo), i64::from(hi)) as i32;
    let b = rng.range_i64(i64::from(lo), i64::from(hi)) as i32;
    Day(a.min(b))
}

/// Run the switching model over the accounts, in place. Returns the migrant
/// indices that switched.
pub fn run_switching(
    accounts: &mut [MastodonAccount],
    users: &[TwitterUser],
    migrant_users: &[usize],
    graph: &MigrantFriendGraph,
    instances: &[Instance],
    config: &WorldConfig,
    rng: &mut DetRng,
) -> Result<Vec<usize>> {
    let n = accounts.len();
    let target = ((n as f64) * config.switch_rate).round() as usize;
    if target == 0 {
        return Ok(Vec::new());
    }

    // Candidates: users who joined a big general-purpose instance (the
    // paper's switches flow from flagship/general instances to smaller,
    // topic-specific ones) whose friends cluster somewhere else. Drawn at
    // random (not extremity-ranked) so the switcher population mixes strong
    // and moderate pulls, like the Fig. 10 CDFs.
    let general_cutoff = InstanceId::from_index(instances.len().min(12));
    let mut scored: Vec<(usize, InstanceId)> = (0..n)
        .filter_map(|mi| {
            let (inst, share) = modal_friend_instance(mi, graph, accounts)?;
            (accounts[mi].first_instance < general_cutoff
                && inst != accounts[mi].first_instance
                && share >= 0.15)
                .then_some((mi, inst))
        })
        .collect();
    rng.shuffle(&mut scored);

    let mut switchers: Vec<(usize, InstanceId)> = scored.into_iter().take(target).collect();

    // Fill the remainder with topic-driven switches: users on big general
    // instances moving to their niche's server.
    if switchers.len() < target {
        let taken: std::collections::BTreeSet<usize> =
            switchers.iter().map(|&(mi, _)| mi).collect();
        for mi in 0..n {
            if switchers.len() >= target {
                break;
            }
            if taken.contains(&mi) || accounts[mi].first_instance >= general_cutoff {
                continue;
            }
            let user = &users[migrant_users[mi]];
            let dest = if user.primary_topic.has_topical_instance() {
                instances
                    .iter()
                    .find(|i| i.topic == Some(user.primary_topic))
                    .map(|i| i.id)
            } else {
                // Generic restlessness: hop to a mid-popularity instance.
                let hi = instances.len().min(60) as i64;
                Some(instances[rng.range_i64(3, hi - 1) as usize].id)
            };
            if let Some(dest) = dest {
                if dest != accounts[mi].first_instance {
                    switchers.push((mi, dest));
                }
            }
        }
    }

    let mut switched = Vec::with_capacity(switchers.len());
    for (mi, dest) in switchers {
        let day = switch_day(&accounts[mi], config, rng);
        let new_handle = MastodonHandle::new(
            accounts[mi].first_handle.username(),
            &instances[dest.index()].domain,
        )?;
        let from = accounts[mi].first_instance;
        accounts[mi].switch = Some(SwitchRecord {
            from,
            to: dest,
            day,
            tod_secs: rng.below(86_400) as u32,
        });
        accounts[mi].instance = dest;
        accounts[mi].handle = new_handle;
        switched.push(mi);
    }
    Ok(switched)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::build_friend_graph;
    use crate::instances::generate_instances;
    use crate::migration::run_migration;
    use crate::users::generate_users;

    fn build() -> (
        WorldConfig,
        Vec<TwitterUser>,
        Vec<usize>,
        MigrantFriendGraph,
        Vec<Instance>,
        Vec<MastodonAccount>,
    ) {
        let config = WorldConfig::medium().with_seed(31);
        let mut rng = DetRng::new(config.seed);
        let users = generate_users(&config, &mut rng.fork("users"));
        let migrants: Vec<usize> = users
            .iter()
            .enumerate()
            .filter(|(_, u)| u.is_migrant)
            .map(|(i, _)| i)
            .collect();
        let graph = build_friend_graph(migrants.len(), 12.0, 0.9, 0.04, &mut rng.fork("graph"));
        let instances = generate_instances(
            config.n_instances,
            config.instance_zipf_exponent,
            &mut rng.fork("inst"),
        );
        let accounts = run_migration(
            &users,
            &migrants,
            &graph,
            &instances,
            &config,
            &mut rng.fork("mig"),
        )
        .unwrap();
        (config, users, migrants, graph, instances, accounts)
    }

    #[test]
    fn switch_rate_matches_config() {
        let (config, users, migrants, graph, instances, mut accounts) = build();
        let mut rng = DetRng::new(1);
        let switched = run_switching(
            &mut accounts,
            &users,
            &migrants,
            &graph,
            &instances,
            &config,
            &mut rng,
        )
        .unwrap();
        let rate = switched.len() as f64 / accounts.len() as f64;
        assert!(
            (rate - config.switch_rate).abs() < 0.01,
            "switch rate {rate} vs {}",
            config.switch_rate
        );
    }

    #[test]
    fn switches_change_instance_and_update_handle() {
        let (config, users, migrants, graph, instances, mut accounts) = build();
        let mut rng = DetRng::new(2);
        let switched = run_switching(
            &mut accounts,
            &users,
            &migrants,
            &graph,
            &instances,
            &config,
            &mut rng,
        )
        .unwrap();
        assert!(!switched.is_empty());
        for &mi in &switched {
            let a = &accounts[mi];
            let s = a.switch.as_ref().unwrap();
            assert_ne!(s.from, s.to);
            assert_eq!(a.instance, s.to);
            assert_eq!(a.first_instance, s.from);
            assert_eq!(a.handle.instance(), instances[s.to.index()].domain);
            assert_eq!(a.handle.username(), a.first_handle.username());
            assert!(s.day > a.created, "switch before account existed");
            assert!(s.day.offset() <= 59);
        }
    }

    #[test]
    fn switches_are_mostly_post_takeover() {
        let (config, users, migrants, graph, instances, mut accounts) = build();
        let mut rng = DetRng::new(3);
        let switched = run_switching(
            &mut accounts,
            &users,
            &migrants,
            &graph,
            &instances,
            &config,
            &mut rng,
        )
        .unwrap();
        let post = switched
            .iter()
            .filter(|&&mi| accounts[mi].switch.as_ref().unwrap().day.is_post_takeover())
            .count() as f64
            / switched.len() as f64;
        assert!(post > 0.9, "post-takeover share {post}");
    }

    #[test]
    fn switchers_tend_toward_friend_clusters() {
        let (config, users, migrants, graph, instances, mut accounts) = build();
        let mut rng = DetRng::new(4);
        let before = accounts.clone();
        let switched = run_switching(
            &mut accounts,
            &users,
            &migrants,
            &graph,
            &instances,
            &config,
            &mut rng,
        )
        .unwrap();
        // For switchers chosen from the friend-cluster pool, the share of
        // friends at the destination must exceed the share at the origin.
        let mut better = 0;
        let mut total = 0;
        for &mi in &switched {
            let friends = graph.friends(mi);
            if friends.is_empty() {
                continue;
            }
            let s = accounts[mi].switch.as_ref().unwrap();
            let at = |inst: InstanceId| {
                friends
                    .iter()
                    .filter(|&&f| before[f as usize].first_instance == inst)
                    .count() as f64
                    / friends.len() as f64
            };
            total += 1;
            if at(s.to) > at(s.from) {
                better += 1;
            }
        }
        assert!(total > 0);
        assert!(
            better as f64 / total as f64 > 0.5,
            "only {better}/{total} switches moved toward friends"
        );
    }

    #[test]
    fn no_switches_when_rate_zero() {
        let (mut config, users, migrants, graph, instances, mut accounts) = build();
        config.switch_rate = 0.0;
        let mut rng = DetRng::new(5);
        let switched = run_switching(
            &mut accounts,
            &users,
            &migrants,
            &graph,
            &instances,
            &config,
            &mut rng,
        )
        .unwrap();
        assert!(switched.is_empty());
        assert!(accounts.iter().all(|a| a.switch.is_none()));
    }
}

//! The Mastodon instance population.
//!
//! We seed the landscape with the real instances the paper names —
//! `mastodon.social` (the flagship run by Mastodon gGmbH, §4),
//! `mastodon.online`, the topical servers `sigmoid.social` (AI),
//! `historians.social` (history) and `mastodon.gamedev.place` (game
//! development) from §5.2–5.3 — and fill the long tail with synthetic
//! domains. Popularity follows a Zipf law over rank, which is what produces
//! the paper's centralization curve (Fig. 5) and the 13.16% single-user
//! tail (Fig. 6a) at the same time.

use flock_core::{Day, DetRng, InstanceId};
use flock_textsim::Topic;
use serde::{Deserialize, Serialize};

/// A Mastodon server.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Instance {
    /// Dense id (also the popularity rank: 0 = most popular).
    pub id: InstanceId,
    /// DNS name.
    pub domain: String,
    /// Topical niche, if any (general-purpose otherwise).
    pub topic: Option<Topic>,
    /// Zipf popularity weight used by the instance-choice model.
    pub popularity: f64,
    /// When the server came online (well before the study window).
    pub created: Day,
    /// Whether this is the flagship (`mastodon.social`).
    pub flagship: bool,
    /// Assigned at world build: unreachable during the §3.2 crawl
    /// (the paper lost 11.58% of users to down instances).
    pub down_at_crawl: bool,
}

/// Well-known general-purpose instances, most popular first.
/// `mastodon.social` must stay at rank 0 (Fig. 4).
const GENERAL_DOMAINS: &[&str] = &[
    "mastodon.social",
    "mastodon.online",
    "mstdn.social",
    "mas.to",
    "mastodon.world",
    "mastodonapp.uk",
    "mstdn.party",
    "universeodon.com",
    "mastodon.cloud",
    "toot.community",
    "c.im",
    "masto.ai",
    "mastodon.nl",
    "mstdn.ca",
    "aus.social",
    "mastodon.ie",
    "mastodon.nz",
    "tooting.ch",
    "social.vivaldi.net",
    "mastodon.uno",
];

/// Topical instances named in the paper plus a few real-world peers; each
/// is tied to the [`Topic`] whose users it attracts.
const TOPICAL_DOMAINS: &[(&str, Topic)] = &[
    ("sigmoid.social", Topic::Ai),
    ("historians.social", Topic::History),
    ("mastodon.gamedev.place", Topic::GameDev),
    ("fosstodon.org", Topic::Tech),
    ("hachyderm.io", Topic::Tech),
    ("mastodon.art", Topic::Art),
    ("scholar.social", Topic::Science),
    ("astrodon.social", Topic::Science),
    ("gamedev.lgbt", Topic::GameDev),
    ("techhub.social", Topic::Tech),
    ("photog.social", Topic::Art),
    ("mathstodon.xyz", Topic::Science),
];

const SYNTH_PREFIXES: &[&str] = &[
    "toot", "fedi", "masto", "social", "den", "hive", "nest", "flock", "roost", "perch", "aviary",
    "murmur", "chirp", "echo", "plume",
];
const SYNTH_MIDDLES: &[&str] = &[
    "berlin", "tokyo", "austin", "oslo", "quebec", "lisbon", "seoul", "cymru", "bavaria", "norden",
    "pacific", "alpine", "harbor", "prairie", "tundra", "valley", "meadow", "summit", "delta",
    "citadel", "village", "garden", "grove", "haven", "harvest",
];
const SYNTH_TLDS: &[&str] = &[
    "social", "online", "club", "city", "zone", "cafe", "space", "town",
];

/// Generate the instance population, popularity-ranked.
///
/// Rank 0 is the flagship; ranks 1..~20 are the named general instances;
/// topical instances are interleaved in the upper-middle of the ranking
/// (popular within their niche but smaller than the flagships); the rest
/// of the tail is synthetic.
pub fn generate_instances(n: usize, zipf_exponent: f64, rng: &mut DetRng) -> Vec<Instance> {
    // flock-lint: allow(panic) documented world-config floor; WorldConfig validation rejects smaller n first
    assert!(n >= 10, "need at least 10 instances");
    let mut domains: Vec<(String, Option<Topic>)> = Vec::with_capacity(n);
    for d in GENERAL_DOMAINS.iter().take(n) {
        domains.push(((*d).to_string(), None));
    }
    // Interleave topical instances starting right after the big generals.
    for (d, t) in TOPICAL_DOMAINS {
        if domains.len() < n {
            domains.push(((*d).to_string(), Some(*t)));
        }
    }
    // Synthetic tail. Names are generated deterministically and uniquely.
    let mut counter = 0usize;
    while domains.len() < n {
        let p = SYNTH_PREFIXES[counter % SYNTH_PREFIXES.len()];
        let m = SYNTH_MIDDLES[(counter / SYNTH_PREFIXES.len()) % SYNTH_MIDDLES.len()];
        let t =
            SYNTH_TLDS[(counter / (SYNTH_PREFIXES.len() * SYNTH_MIDDLES.len())) % SYNTH_TLDS.len()];
        let overflow = counter / (SYNTH_PREFIXES.len() * SYNTH_MIDDLES.len() * SYNTH_TLDS.len());
        let domain = if overflow == 0 {
            format!("{p}.{m}.{t}")
        } else {
            format!("{p}{overflow}.{m}.{t}")
        };
        domains.push((domain, None));
        counter += 1;
    }

    domains
        .into_iter()
        .enumerate()
        .map(|(rank, (domain, topic))| {
            // Zipf weight by rank; topical instances get a niche boost so
            // they punch above their global rank *within their topic*
            // (handled in the choice model), not here.
            let popularity = 1.0 / ((rank + 1) as f64).powf(zipf_exponent);
            // Servers came online between Mastodon's 2016 launch and mid-2022.
            let created = Day(-(rng.range_i64(120, 2200) as i32));
            Instance {
                id: InstanceId::from_index(rank),
                domain,
                topic,
                popularity,
                created,
                flagship: rank == 0,
                down_at_crawl: false,
            }
        })
        .collect()
}

/// Indexes of instances dedicated to `topic`.
pub fn topical_instances(instances: &[Instance], topic: Topic) -> Vec<InstanceId> {
    instances
        .iter()
        .filter(|i| i.topic == Some(topic))
        .map(|i| i.id)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flagship_is_mastodon_social() {
        let mut rng = DetRng::new(1);
        let inst = generate_instances(100, 1.3, &mut rng);
        assert_eq!(inst[0].domain, "mastodon.social");
        assert!(inst[0].flagship);
        assert!(inst.iter().skip(1).all(|i| !i.flagship));
    }

    #[test]
    fn domains_are_unique_and_valid() {
        let mut rng = DetRng::new(2);
        let inst = generate_instances(3000, 1.3, &mut rng);
        assert_eq!(inst.len(), 3000);
        let mut seen = std::collections::HashSet::new();
        for i in &inst {
            assert!(seen.insert(i.domain.clone()), "duplicate {}", i.domain);
            assert!(
                flock_core::handle::is_valid_domain(&i.domain),
                "invalid domain {}",
                i.domain
            );
        }
    }

    #[test]
    fn popularity_is_monotonically_decreasing() {
        let mut rng = DetRng::new(3);
        let inst = generate_instances(500, 1.3, &mut rng);
        for w in inst.windows(2) {
            assert!(w[0].popularity >= w[1].popularity);
        }
        assert!((inst[0].popularity - 1.0).abs() < 1e-12);
    }

    #[test]
    fn paper_topical_instances_present() {
        let mut rng = DetRng::new(4);
        let inst = generate_instances(120, 1.3, &mut rng);
        for (d, t) in [
            ("sigmoid.social", Topic::Ai),
            ("historians.social", Topic::History),
            ("mastodon.gamedev.place", Topic::GameDev),
        ] {
            let found = inst.iter().find(|i| i.domain == d).expect(d);
            assert_eq!(found.topic, Some(t));
        }
    }

    #[test]
    fn topical_lookup() {
        let mut rng = DetRng::new(5);
        let inst = generate_instances(200, 1.3, &mut rng);
        let ai = topical_instances(&inst, Topic::Ai);
        assert!(!ai.is_empty());
        for id in ai {
            assert_eq!(inst[id.index()].topic, Some(Topic::Ai));
        }
    }

    #[test]
    fn created_before_study() {
        let mut rng = DetRng::new(6);
        let inst = generate_instances(100, 1.3, &mut rng);
        assert!(inst.iter().all(|i| i.created < Day(0)));
    }

    #[test]
    fn deterministic() {
        let mut a = DetRng::new(7);
        let mut b = DetRng::new(7);
        let ia = generate_instances(300, 1.3, &mut a);
        let ib = generate_instances(300, 1.3, &mut b);
        assert_eq!(
            ia.iter()
                .map(|i| (&i.domain, i.created))
                .collect::<Vec<_>>(),
            ib.iter()
                .map(|i| (&i.domain, i.created))
                .collect::<Vec<_>>()
        );
    }
}

//! The Twitter-side user population.
//!
//! These are the 1M-ish users whose tweets match the §3.1 search queries.
//! A configurable fraction are ground-truth migrants; the rest discuss the
//! migration without moving (the paper could only map 136k of the 1.02M
//! tweet authors to Mastodon accounts).

use crate::config::WorldConfig;
use flock_core::{Day, DetRng, TwitterUserId};
use flock_textsim::Topic;
use serde::{Deserialize, Serialize};

/// What the §3.2 timeline crawl will find when it asks for this account.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AccountFate {
    /// Crawlable.
    Active,
    /// Suspended by the platform (paper: 0.08% of identified migrants).
    Suspended,
    /// Deleted/deactivated by the user (paper: 2.26% — the users who
    /// "completely left Twitter", §8).
    Deleted,
    /// Tweets are protected (paper: 2.78%).
    Protected,
}

/// A Twitter account.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TwitterUser {
    pub id: TwitterUserId,
    /// Unique lowercase username.
    pub username: String,
    /// Profile display name.
    pub display_name: String,
    /// Profile bio; the migration announcer may append a Mastodon handle
    /// here (the §3.1 matcher checks metadata first).
    pub bio: String,
    /// Account creation date (median migrated account is 11.5 years old).
    pub created: Day,
    /// Legacy verified badge (paper: 4% of migrants).
    pub verified: bool,
    /// Main interest; drives topics, hashtags and topical-instance choice.
    pub primary_topic: Topic,
    /// Secondary interest.
    pub secondary_topic: Topic,
    /// Multiplicative activity/networking trait (log-normal, median 1).
    /// High-engagement users post more, follow more, and are the ones who
    /// seek out small topical instances (the Fig. 6 paradox).
    pub engagement: f64,
    /// Per-user probability that any given post is toxic.
    pub toxicity: f64,
    /// Expected tweets per day in the study window.
    pub tweet_rate: f64,
    /// Twitter follower count (scalar; lists are only realized for
    /// migrants, matching what the paper could crawl).
    pub follower_count: u64,
    /// Twitter followee count.
    pub followee_count: u64,
    /// Crawl-time account state.
    pub fate: AccountFate,
    /// Ground truth: does this user migrate during the window?
    pub is_migrant: bool,
    /// Index into the tweet-source table (the user's usual client).
    pub preferred_client: usize,
}

const NAME_ADJECTIVES: &[&str] = &[
    "quiet",
    "bright",
    "mossy",
    "rapid",
    "velvet",
    "cosmic",
    "amber",
    "silver",
    "crimson",
    "wandering",
    "curious",
    "patient",
    "fuzzy",
    "sleepy",
    "electric",
    "northern",
    "salty",
    "gentle",
    "lunar",
    "verdant",
    "rusty",
    "hollow",
    "golden",
    "misty",
    "bold",
];
const NAME_NOUNS: &[&str] = &[
    "otter", "falcon", "badger", "fern", "comet", "harbor", "willow", "ember", "raven", "maple",
    "cedar", "drift", "spark", "quill", "marsh", "summit", "pebble", "gale", "thicket", "lantern",
    "anchor", "sprout", "beacon", "prism", "burrow",
];

/// Generate a unique username for the `i`-th user.
pub fn username_for(i: usize) -> String {
    let a = NAME_ADJECTIVES[i % NAME_ADJECTIVES.len()];
    let n = NAME_NOUNS[(i / NAME_ADJECTIVES.len()) % NAME_NOUNS.len()];
    let suffix = i / (NAME_ADJECTIVES.len() * NAME_NOUNS.len());
    if suffix == 0 {
        format!("{a}_{n}")
    } else {
        format!("{a}_{n}_{suffix}")
    }
}

/// Relative popularity of topics among *Twitter* posters (Fig. 15 shows a
/// diverse mix there). Order matches [`Topic::ALL`].
fn topic_weights() -> [f64; 14] {
    // Fediverse, Migration, Entertainment, Celebrities, Politics, Tech,
    // GameDev, Ai, History, Sports, Art, Science, Food, Smalltalk
    [
        2.0, 4.0, 10.0, 6.0, 10.0, 8.0, 3.0, 3.0, 2.5, 8.0, 5.0, 4.0, 4.0, 9.0,
    ]
}

/// Generate the searchable-user population. `migrant_flags[i]` marks the
/// ground-truth migrants (chosen uniformly at random here; *when* they
/// migrate is the migration model's job).
pub fn generate_users(config: &WorldConfig, rng: &mut DetRng) -> Vec<TwitterUser> {
    let n = config.n_searchable_users;
    let weights = topic_weights();
    let mut users = Vec::with_capacity(n);
    for i in 0..n {
        let is_migrant = rng.chance(config.migrant_fraction);
        let engagement = rng.lognormal(0.0, 0.6);
        // Account age: log-normal in days, median ≈ 11.5 years (§5.1).
        let age_days = rng
            .lognormal((4200.0f64).ln(), 0.55)
            .clamp(30.0, 16.5 * 365.0);
        let primary_topic = Topic::ALL[rng.choose_weighted(&weights)];
        let secondary_topic = Topic::ALL[rng.choose_weighted(&weights)];
        let verified = rng.chance(config.verified_rate);
        // Degrees: log-normal around the paper's medians, correlated with
        // engagement (active users follow and are followed more), and
        // boosted for verified accounts.
        let deg_boost = engagement.powf(0.5) * if verified { 4.0 } else { 1.0 };
        let follower_count = (rng.lognormal(
            config.twitter_follower_median.ln(),
            config.twitter_degree_sigma,
        ) * deg_boost) as u64;
        let followee_count = (rng.lognormal(
            config.twitter_followee_median.ln(),
            config.twitter_degree_sigma,
        ) * engagement.powf(0.3))
        .clamp(1.0, 100_000.0) as u64;
        let fate = {
            let r = rng.f64();
            if r < config.twitter_suspended_rate {
                AccountFate::Suspended
            } else if r < config.twitter_suspended_rate + config.twitter_deleted_rate {
                AccountFate::Deleted
            } else if r < config.twitter_suspended_rate
                + config.twitter_deleted_rate
                + config.twitter_protected_rate
            {
                AccountFate::Protected
            } else {
                AccountFate::Active
            }
        };
        // Per-user toxicity propensity: most users are clean; a minority
        // produce nearly all toxic posts. Correlated with engagement so
        // heavy posters skew the *corpus* rate above the per-user mean
        // (paper: 5.49% of tweets vs 4.02% per-user mean).
        let toxicity = (sample_toxicity(config.twitter_toxicity_mean / 1.11, rng)
            * (0.45 + 0.55 * engagement))
            .min(0.7);
        let username = username_for(i);
        users.push(TwitterUser {
            id: TwitterUserId::from_index(i),
            display_name: display_name_from(&username),
            bio: format!(
                "{} enthusiast. opinions my own. {}",
                primary_topic.to_string().to_lowercase(),
                if verified {
                    "press inquiries via dm."
                } else {
                    ""
                }
            )
            .trim_end()
            .to_string(),
            username,
            created: Day(-(age_days as i32)),
            verified,
            primary_topic,
            secondary_topic,
            engagement,
            toxicity,
            tweet_rate: config.tweets_per_day_mean * engagement,
            follower_count,
            followee_count,
            fate,
            is_migrant,
            preferred_client: usize::MAX, // assigned by the content model
        });
    }
    users
}

/// Heavy-tailed per-user toxic fraction with the requested mean: a small
/// core of "toxic" users and a clean majority.
fn sample_toxicity(mean: f64, rng: &mut DetRng) -> f64 {
    // 25% of users carry toxicity; within them Exp-distributed.
    if rng.chance(0.25) {
        (rng.exponential(1.0 / (mean * 4.0))).min(0.6)
    } else {
        0.0
    }
}

fn display_name_from(username: &str) -> String {
    username
        .split('_')
        .filter(|p| p.parse::<u64>().is_err())
        .map(|p| {
            let mut c = p.chars();
            match c.next() {
                Some(f) => f.to_uppercase().collect::<String>() + c.as_str(),
                None => String::new(),
            }
        })
        .collect::<Vec<_>>()
        .join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> WorldConfig {
        WorldConfig::small().with_seed(5)
    }

    #[test]
    fn usernames_unique_and_valid() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..5000 {
            let u = username_for(i);
            assert!(seen.insert(u.clone()), "dup {u}");
            assert!(flock_core::handle::is_valid_username(&u), "invalid {u}");
        }
    }

    #[test]
    fn population_size_and_migrant_fraction() {
        let c = cfg();
        let mut rng = DetRng::new(c.seed);
        let users = generate_users(&c, &mut rng);
        assert_eq!(users.len(), c.n_searchable_users);
        let migrants = users.iter().filter(|u| u.is_migrant).count();
        let expected = c.expected_migrants();
        assert!(
            (migrants as f64 - expected as f64).abs() < expected as f64 * 0.25,
            "{migrants} vs {expected}"
        );
    }

    #[test]
    fn verified_rate_close_to_config() {
        let c = WorldConfig::medium().with_seed(6);
        let mut rng = DetRng::new(c.seed);
        let users = generate_users(&c, &mut rng);
        let v = users.iter().filter(|u| u.verified).count() as f64 / users.len() as f64;
        assert!((v - c.verified_rate).abs() < 0.01, "verified rate {v}");
    }

    #[test]
    fn median_account_age_near_paper() {
        let c = WorldConfig::medium().with_seed(7);
        let mut rng = DetRng::new(c.seed);
        let users = generate_users(&c, &mut rng);
        let mut ages: Vec<i32> = users.iter().map(|u| -u.created.offset()).collect();
        ages.sort_unstable();
        let median_years = ages[ages.len() / 2] as f64 / 365.0;
        assert!(
            (9.0..14.0).contains(&median_years),
            "median age {median_years} years"
        );
    }

    #[test]
    fn degree_medians_near_paper() {
        let c = WorldConfig::medium().with_seed(8);
        let mut rng = DetRng::new(c.seed);
        let users = generate_users(&c, &mut rng);
        let mut fol: Vec<u64> = users.iter().map(|u| u.followee_count).collect();
        fol.sort_unstable();
        let median = fol[fol.len() / 2] as f64;
        assert!(
            (c.twitter_followee_median * 0.6..c.twitter_followee_median * 1.7).contains(&median),
            "median followees {median}"
        );
    }

    #[test]
    fn toxicity_mean_near_config() {
        let c = WorldConfig::medium().with_seed(9);
        let mut rng = DetRng::new(c.seed);
        let users = generate_users(&c, &mut rng);
        let mean: f64 = users.iter().map(|u| u.toxicity).sum::<f64>() / users.len() as f64;
        assert!(
            (c.twitter_toxicity_mean * 0.6..c.twitter_toxicity_mean * 1.5).contains(&mean),
            "toxicity mean {mean}"
        );
        // The majority of users are perfectly clean.
        let clean = users.iter().filter(|u| u.toxicity == 0.0).count();
        assert!(clean > users.len() / 2);
    }

    #[test]
    fn fates_roughly_match_rates() {
        let c = WorldConfig::paper().with_seed(10);
        let mut rng = DetRng::new(c.seed);
        let users = generate_users(&c, &mut rng);
        let n = users.len() as f64;
        let frac = |f: AccountFate| users.iter().filter(|u| u.fate == f).count() as f64 / n;
        assert!((frac(AccountFate::Deleted) - c.twitter_deleted_rate).abs() < 0.005);
        assert!((frac(AccountFate::Protected) - c.twitter_protected_rate).abs() < 0.005);
        assert!(frac(AccountFate::Suspended) < 0.005);
    }

    #[test]
    fn display_name_capitalizes() {
        assert_eq!(display_name_from("quiet_otter"), "Quiet Otter");
        assert_eq!(display_name_from("quiet_otter_7"), "Quiet Otter");
    }

    #[test]
    fn deterministic_generation() {
        let c = cfg();
        let mut a = DetRng::new(3);
        let mut b = DetRng::new(3);
        let ua = generate_users(&c, &mut a);
        let ub = generate_users(&c, &mut b);
        assert_eq!(ua.len(), ub.len());
        for (x, y) in ua.iter().zip(ub.iter()) {
            assert_eq!(x.username, y.username);
            assert_eq!(x.created, y.created);
            assert_eq!(x.is_migrant, y.is_migrant);
            assert_eq!(x.follower_count, y.follower_count);
        }
    }
}

//! The migration model: *when* users move and *which instance* they pick.
//!
//! Timing follows the event-driven intensity of Fig. 2 — a large wave right
//! after the takeover (most migrated accounts are ≥ 30 days old by the end
//! of the window, §4), a second bump at the Nov 4 layoffs and a third at
//! the Nov 17 resignations.
//!
//! Instance choice mixes three forces, which is what produces RQ1 + RQ2:
//!
//! 1. **popularity** — Zipf-weighted preference for big, well-known
//!    instances, *damped for high-engagement users* (dedicated users seek
//!    small communities: the Fig. 6 centralization paradox);
//! 2. **topic** — users with a niche interest often pick its topical
//!    instance (`sigmoid.social` for AI, …);
//! 3. **herding** — with some probability a user simply joins the modal
//!    instance of their already-migrated friends (the §5.2 network effect:
//!    14.72% of migrated followees end up on the user's instance).

use crate::config::WorldConfig;
use crate::graph::MigrantFriendGraph;
use crate::instances::Instance;
use crate::users::TwitterUser;
use flock_core::{
    Day, DetRng, FlockError, InstanceId, MastodonAccountId, MastodonHandle, Result, TwitterUserId,
};
use flock_obs::{Registry, Tier};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A completed instance switch (§5.3).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SwitchRecord {
    /// The instance the account was created on.
    pub from: InstanceId,
    /// The instance the account moved to.
    pub to: InstanceId,
    /// When the move happened.
    pub day: Day,
    /// Seconds within the day (real APIs return full timestamps; the mover
    /// analyses need sub-day resolution to order same-day events).
    pub tod_secs: u32,
}

/// A ground-truth Mastodon account created by a migrating Twitter user.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MastodonAccount {
    pub id: MastodonAccountId,
    /// The Twitter user who owns it (ground truth; the §3.1 matcher has to
    /// *recover* this mapping from announcements).
    pub owner: TwitterUserId,
    /// Current handle (changes on switch).
    pub handle: MastodonHandle,
    /// Handle on the first instance.
    pub first_handle: MastodonHandle,
    /// Current instance.
    pub instance: InstanceId,
    /// Instance the account was created on.
    pub first_instance: InstanceId,
    /// Account creation day (21% of accounts predate the takeover).
    pub created: Day,
    /// Creation time within the day, in seconds (ties on the big wave days
    /// are broken by this, like real `created_at` timestamps).
    pub created_tod_secs: u32,
    /// The day the user announced the move on Twitter.
    pub announced: Day,
    /// Handle is present in the Twitter bio (matched first by §3.1).
    pub in_bio: bool,
    /// Handle was tweeted (matched only if usernames are identical).
    pub in_tweet: bool,
    /// Instance switch, if the user performed one.
    pub switch: Option<SwitchRecord>,
}

impl MastodonAccount {
    /// `true` if the Mastodon username equals the Twitter username
    /// (paper: 72% of migrants).
    pub fn same_username(&self, twitter_username: &str) -> bool {
        self.first_handle.username() == twitter_username
    }
}

/// Per-day migration intensity over the collection window (Fig. 2's shape).
/// Out-of-window days have zero intensity.
pub fn migration_intensity(day: Day) -> f64 {
    match day.offset() {
        25 => 0.6,
        26 => 4.0,  // takeover closes
        27 => 42.0, // the big wave: most migrated accounts are ≥ 30 days
        28 => 48.0, // old by the end of the window (§4's 50.59%)
        29 => 28.0,
        30 => 17.0,
        31 => 7.0,
        32 => 4.0,
        33 => 3.0,
        34 => 8.5, // layoffs
        35 => 7.0,
        36 => 4.5,
        37 => 3.0,
        38 => 2.5,
        39..=46 => 2.0 - 0.1 * (day.offset() - 39) as f64,
        47 => 6.5, // resignations
        48 => 5.0,
        49 => 3.4,
        50 => 2.0,
        51 => 1.4,
        _ => 0.0,
    }
}

/// Sample an announcement day from the intensity curve.
pub fn sample_migration_day(rng: &mut DetRng) -> Day {
    let days: Vec<Day> = (Day::COLLECTION_START.offset()..=Day::COLLECTION_END.offset())
        .map(Day)
        .collect();
    let weights: Vec<f64> = days.iter().map(|d| migration_intensity(*d)).collect();
    days[rng.choose_weighted(&weights)]
}

/// Derive the Mastodon username: identical to the Twitter one with
/// probability `same_username_rate`, otherwise a recognizable variant.
fn mastodon_username(twitter_username: &str, same_rate: f64, rng: &mut DetRng) -> (String, bool) {
    if rng.chance(same_rate) {
        (twitter_username.to_string(), true)
    } else {
        // Variant suffixes are alphabetic only: numeric suffixes could
        // collide with the base population's generated usernames.
        let suffix = ["fedi", "toots", "masto", "online", "real"];
        let s = *rng.choose(&suffix);
        let mut name = format!("{twitter_username}_{s}");
        // Mastodon's 30-char limit. A plain `String::truncate(30)` panics
        // when byte 30 falls inside a multi-byte character (any long
        // username with accents or CJK), so cut at a char boundary.
        flock_core::text::truncate_to_boundary(&mut name, 30);
        (name, false)
    }
}

/// Rank-offset of the popularity law: a *shifted* Zipf
/// `w(rank) = 1/(rank + SHIFT)^s` flattens the head (the top handful of
/// general instances are comparably attractive — Fig. 4's histogram is not
/// a cliff) while keeping the long tail thin.
const RANK_SHIFT: f64 = 4.0;

/// Extra pull of `mastodon.social` beyond its rank: it is the instance the
/// press told everyone about (§4: "a flagship Mastodon instance operated by
/// Mastodon gGmbH receives the largest fraction of migrated Twitter
/// users").
const FLAGSHIP_BOOST: f64 = 1.8;

/// The engagement-damping quantization buckets of [`InstanceSampler`].
const DAMPING_BUCKETS: [f64; 7] = [0.5, 0.75, 1.0, 1.4, 2.0, 2.8, 3.5];

/// Precomputed instance-choice distributions, one per engagement-damping
/// bucket. High-engagement users get a flatter exponent (they seek out
/// small communities); sampling is a binary search over cumulative weights.
pub struct InstanceSampler {
    /// `(damping bucket value, cumulative weights by rank)`.
    tables: Vec<(f64, Vec<f64>)>,
}

impl InstanceSampler {
    /// Build the per-bucket cumulative tables.
    pub fn new(n_instances: usize, base_exponent: f64) -> Self {
        let tables = DAMPING_BUCKETS
            .iter()
            .map(|&damping| {
                let s = (base_exponent / damping).max(0.2);
                let mut acc = 0.0;
                let cumulative: Vec<f64> = (0..n_instances)
                    .map(|rank| {
                        let boost = if rank == 0 { FLAGSHIP_BOOST } else { 1.0 };
                        acc += boost / (rank as f64 + RANK_SHIFT).powf(s);
                        acc
                    })
                    .collect();
                (damping, cumulative)
            })
            .collect();
        InstanceSampler { tables }
    }

    /// Sample an instance rank for a user with the given engagement.
    pub fn sample(&self, engagement: f64, rng: &mut DetRng) -> usize {
        let damping = engagement.clamp(0.5, 3.5);
        let (_, table) = self
            .tables
            .iter()
            .min_by(|a, b| (a.0 - damping).abs().total_cmp(&(b.0 - damping).abs()))
            // flock-lint: allow(panic) DAMPING_BUCKETS is a non-empty const, so `new` always builds >=1 table
            .expect("non-empty buckets");
        // flock-lint: allow(panic) `new` builds each table with one entry per instance and n_instances >= 1
        let total = *table.last().expect("instances exist");
        let x = rng.f64() * total;
        table.partition_point(|c| *c < x).min(table.len() - 1)
    }
}

/// Rank from which instances count as "deep tail" for community snapping.
const TAIL_START: usize = 40;

/// Choose an instance for `user`, given the instances their already-migrated
/// friends picked and the tail instances already seeded by earlier movers.
#[allow(clippy::too_many_arguments)]
pub fn choose_instance(
    user: &TwitterUser,
    friend_instances: &[InstanceId],
    instances: &[Instance],
    sampler: &InstanceSampler,
    seeded_tail: &mut Vec<InstanceId>,
    config: &WorldConfig,
    rng: &mut DetRng,
) -> InstanceId {
    // 1. Herding: join the friends' modal instance.
    if !friend_instances.is_empty() && rng.chance(config.herding_probability) {
        let mut counts: BTreeMap<InstanceId, usize> = BTreeMap::new();
        for &i in friend_instances {
            *counts.entry(i).or_insert(0) += 1;
        }
        if let Some(modal) = counts
            .iter()
            .max_by_key(|(id, c)| (**c, std::cmp::Reverse(id.raw())))
            .map(|(id, _)| *id)
        {
            return modal;
        }
    }
    // 2. Topical: dedicated users with a niche interest go to its server.
    if user.primary_topic.has_topical_instance() {
        let affinity = (0.45 * user.engagement).min(0.80);
        if rng.chance(affinity) {
            let topical: Vec<&Instance> = instances
                .iter()
                .filter(|i| i.topic == Some(user.primary_topic))
                .collect();
            if !topical.is_empty() {
                let weights: Vec<f64> = topical.iter().map(|i| i.popularity.sqrt()).collect();
                return topical[rng.choose_weighted(&weights)].id;
            }
        }
    }
    // 3. Popularity with engagement damping: high engagement flattens the
    // law, pushing dedicated users into the tail.
    let rank = sampler.sample(user.engagement, rng);
    // Tail community formation (Fig. 6a): deep-tail joiners usually pick a
    // small server where *someone* already is (word of mouth) rather than a
    // uniformly random empty one. Only *dedicated* users strike out alone —
    // running or seeding a brand-new instance is a self-hoster move, which
    // is exactly why single-user instances host the most active users
    // (the §4 paradox).
    if rank >= TAIL_START {
        let dedicated = user.engagement > 1.6;
        if !dedicated {
            if !seeded_tail.is_empty() {
                return seeded_tail[rng.below_usize(seeded_tail.len())];
            }
            // No small community exists yet: settle for a mid-size server.
            let mid = TAIL_START.min(instances.len()) - 1;
            return instances[mid - rng.below_usize(mid / 2 + 1)].id;
        }
        if !seeded_tail.is_empty() && rng.chance(0.65) {
            return seeded_tail[rng.below_usize(seeded_tail.len())];
        }
        let id = instances[rank].id;
        if !seeded_tail.contains(&id) {
            seeded_tail.push(id);
        }
        return id;
    }
    instances[rank].id
}

/// Run the migration model: decide each migrant's announcement day,
/// instance, handle and account-creation date. Migrants are processed in
/// announcement-day order so herding can observe earlier movers.
///
/// `migrant_users` maps migrant index → user index; the returned accounts
/// are in migrant-index order (`accounts[i].id == MastodonAccountId(i)`).
pub fn run_migration(
    users: &[TwitterUser],
    migrant_users: &[usize],
    graph: &MigrantFriendGraph,
    instances: &[Instance],
    config: &WorldConfig,
    rng: &mut DetRng,
) -> Result<Vec<MastodonAccount>> {
    let n = migrant_users.len();
    assert_eq!(graph.len(), n, "graph must cover the migrant set");

    // Announcement days, sampled independently per migrant.
    let days: Vec<Day> = (0..n).map(|_| sample_migration_day(rng)).collect();

    // Process in day order (ties broken by index for determinism).
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| (days[i], i));

    let mut chosen_instance: Vec<Option<InstanceId>> = vec![None; n];
    let mut accounts: Vec<Option<MastodonAccount>> = vec![None; n];
    let sampler = InstanceSampler::new(instances.len(), config.instance_zipf_exponent);
    let mut seeded_tail: Vec<InstanceId> = Vec::new();

    for &mi in &order {
        let user = &users[migrant_users[mi]];
        let friend_instances: Vec<InstanceId> = graph
            .friends(mi)
            .iter()
            .filter_map(|&f| chosen_instance[f as usize])
            .collect();
        let inst = choose_instance(
            user,
            &friend_instances,
            instances,
            &sampler,
            &mut seeded_tail,
            config,
            rng,
        );
        chosen_instance[mi] = Some(inst);

        let (m_username, _same) = mastodon_username(&user.username, config.same_username_rate, rng);
        let handle = MastodonHandle::new(&m_username, &instances[inst.index()].domain)?;

        // 21% of accounts predate the takeover (early adopters who only
        // *announced* during the window); the rest are created when the
        // user announces (occasionally a day earlier — people set up the
        // account, then tweet).
        let announced = days[mi];
        let created = if rng.chance(config.early_adopter_rate) {
            let span = 25 - instances[inst.index()].created.offset().max(-1800);
            Day(25 - rng.range_i64(1, i64::from(span.max(2))) as i32)
        } else {
            let lag = if rng.chance(0.25) { 1 } else { 0 };
            Day((announced.offset() - lag).max(Day::COLLECTION_START.offset()))
        };

        let in_bio = rng.chance(config.handle_in_bio_rate);
        // Users who do not put the handle in their bio almost always tweet
        // it (otherwise nobody could find them — or the §3.1 matcher, which
        // is exactly how the paper under-counts).
        let in_tweet = if in_bio {
            rng.chance(config.handle_in_tweet_rate)
        } else {
            rng.chance(0.93)
        };

        accounts[mi] = Some(MastodonAccount {
            id: MastodonAccountId::from_index(mi),
            owner: user.id,
            handle: handle.clone(),
            first_handle: handle,
            instance: inst,
            first_instance: inst,
            created,
            created_tod_secs: rng.below(86_400) as u32,
            announced,
            in_bio,
            in_tweet,
            switch: None,
        });
    }

    accounts
        .into_iter()
        .enumerate()
        .map(|(mi, a)| {
            a.ok_or_else(|| {
                FlockError::InvalidConfig(format!("migrant {mi} was never assigned an account"))
            })
        })
        .collect()
}

/// Record the ground-truth migration shape into `obs`: a total-migrant
/// counter, per-wave account-creation counters for the three Fig. 2 event
/// waves (takeover, layoffs, resignations — each wave is the event day plus
/// the two days after it), and one point event per wave day carrying its
/// creation count. Everything here derives from generated world data, so
/// all of it is deterministic (data-tier).
pub fn emit_migration_telemetry(accounts: &[MastodonAccount], obs: &Registry) {
    let migrants = obs.counter("flock.fedisim.migration.migrants", Tier::Data);
    migrants.add(accounts.len() as u64);
    let waves: [(&str, Day); 3] = [
        ("takeover", Day::TAKEOVER),
        ("layoffs", Day::LAYOFFS),
        ("resignations", Day::RESIGNATIONS),
    ];
    for (name, start) in waves {
        let in_wave = accounts
            .iter()
            .filter(|a| (start.offset()..start.offset() + 3).contains(&a.created.offset()))
            .count() as u64;
        obs.counter(&format!("flock.fedisim.migration.wave_{name}"), Tier::Data)
            .add(in_wave);
        obs.event(
            start.offset().max(0) as u64 * 86_400,
            &format!("migration.wave.{name}"),
            &format!(
                "{in_wave} accounts created on days {}..={}",
                start.offset(),
                start.offset() + 2
            ),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::build_friend_graph;
    use crate::instances::generate_instances;
    use crate::users::generate_users;

    fn setup() -> (
        WorldConfig,
        Vec<TwitterUser>,
        Vec<usize>,
        MigrantFriendGraph,
        Vec<Instance>,
    ) {
        let config = WorldConfig::small().with_seed(21);
        let mut rng = DetRng::new(config.seed);
        let users = generate_users(&config, &mut rng.fork("users"));
        let migrants: Vec<usize> = users
            .iter()
            .enumerate()
            .filter(|(_, u)| u.is_migrant)
            .map(|(i, _)| i)
            .collect();
        let graph = build_friend_graph(migrants.len(), 12.0, 0.9, 0.04, &mut rng.fork("graph"));
        let instances = generate_instances(
            config.n_instances,
            config.instance_zipf_exponent,
            &mut rng.fork("inst"),
        );
        (config, users, migrants, graph, instances)
    }

    #[test]
    fn multibyte_usernames_truncate_without_panicking() {
        // Regression: `name.truncate(30)` panicked whenever byte 30 fell
        // inside a multi-byte character of `<twitter_username>_<suffix>`.
        let mut rng = DetRng::new(7);
        for base in [
            "ünïcödé_üser_with_ä_lööong_nam", // 2-byte chars straddling 30
            "日本語のユーザー名で長いもの",   // 3-byte chars
            "🦣🦣🦣🦣🦣🦣🦣🦣🦣🦣",           // 4-byte chars
        ] {
            for _ in 0..64 {
                let (name, same) = mastodon_username(base, 0.0, &mut rng);
                assert!(!same);
                assert!(name.len() <= 30, "{name:?} is {} bytes", name.len());
                assert!(name.is_char_boundary(name.len()));
            }
        }
    }

    #[test]
    fn intensity_peaks_after_takeover() {
        let peak = Day(28);
        for d in Day::study_days() {
            assert!(migration_intensity(d) <= migration_intensity(peak));
        }
        assert_eq!(migration_intensity(Day(0)), 0.0);
        assert_eq!(migration_intensity(Day(60)), 0.0);
        assert!(migration_intensity(Day::LAYOFFS) > migration_intensity(Day(33)));
        assert!(migration_intensity(Day::RESIGNATIONS) > migration_intensity(Day(46)));
    }

    #[test]
    fn sampled_days_lie_in_window_and_cluster_early() {
        let mut rng = DetRng::new(1);
        let days: Vec<Day> = (0..5000).map(|_| sample_migration_day(&mut rng)).collect();
        assert!(days.iter().all(|d| d.in_collection_window()));
        let early = days
            .iter()
            .filter(|d| (26..=30).contains(&d.offset()))
            .count();
        let frac = early as f64 / days.len() as f64;
        assert!((0.45..0.75).contains(&frac), "early-wave fraction {frac}");
    }

    #[test]
    fn accounts_cover_all_migrants_with_valid_handles() {
        let (config, users, migrants, graph, instances) = setup();
        let mut rng = DetRng::new(99);
        let accounts =
            run_migration(&users, &migrants, &graph, &instances, &config, &mut rng).unwrap();
        assert_eq!(accounts.len(), migrants.len());
        for (i, a) in accounts.iter().enumerate() {
            assert_eq!(a.id.index(), i);
            assert_eq!(a.owner, users[migrants[i]].id);
            assert_eq!(a.instance, a.first_instance);
            assert_eq!(a.handle.instance(), instances[a.instance.index()].domain);
            assert!(a.created <= Day::COLLECTION_END);
            assert!(a.announced.in_collection_window());
            assert!(a.switch.is_none());
        }
    }

    #[test]
    fn migration_telemetry_counts_waves() {
        let (config, users, migrants, graph, instances) = setup();
        let mut rng = DetRng::new(99);
        let accounts =
            run_migration(&users, &migrants, &graph, &instances, &config, &mut rng).unwrap();
        let obs = Registry::new();
        emit_migration_telemetry(&accounts, &obs);
        let get = |k: &str| {
            obs.counter_value(&format!("flock.fedisim.migration.{k}"))
                .unwrap_or(0)
        };
        assert_eq!(get("migrants"), accounts.len() as u64);
        // The takeover wave dominates Fig. 2 by construction.
        assert!(get("wave_takeover") > get("wave_layoffs"));
        assert!(get("wave_takeover") > get("wave_resignations"));
        let total = get("wave_takeover") + get("wave_layoffs") + get("wave_resignations");
        assert!(total <= get("migrants"));
        assert_eq!(obs.event_count(), 3);
        assert!(obs.export_text().contains("migration.wave.takeover"));
        // Emission is deterministic: a second registry sees the same shape.
        let obs2 = Registry::new();
        emit_migration_telemetry(&accounts, &obs2);
        assert_eq!(obs.snapshot(), obs2.snapshot());
    }

    #[test]
    fn same_username_rate_near_config() {
        let (config, users, migrants, graph, instances) = setup();
        let mut rng = DetRng::new(100);
        let accounts =
            run_migration(&users, &migrants, &graph, &instances, &config, &mut rng).unwrap();
        let same = accounts
            .iter()
            .enumerate()
            .filter(|(i, a)| a.same_username(&users[migrants[*i]].username))
            .count() as f64
            / accounts.len() as f64;
        assert!(
            (same - config.same_username_rate).abs() < 0.08,
            "same-rate {same}"
        );
    }

    #[test]
    fn early_adopter_rate_near_config() {
        let (config, users, migrants, graph, instances) = setup();
        let mut rng = DetRng::new(101);
        let accounts =
            run_migration(&users, &migrants, &graph, &instances, &config, &mut rng).unwrap();
        let early = accounts
            .iter()
            .filter(|a| !a.created.is_post_takeover())
            .count() as f64
            / accounts.len() as f64;
        assert!(
            (early - config.early_adopter_rate).abs() < 0.09,
            "early rate {early}"
        );
    }

    #[test]
    fn flagship_attracts_the_most_users() {
        let (config, users, migrants, graph, instances) = setup();
        let mut rng = DetRng::new(102);
        let accounts =
            run_migration(&users, &migrants, &graph, &instances, &config, &mut rng).unwrap();
        let mut counts = vec![0usize; instances.len()];
        for a in &accounts {
            counts[a.instance.index()] += 1;
        }
        let max = counts.iter().copied().max().unwrap();
        assert_eq!(counts[0], max, "mastodon.social must lead (fig 4)");
        assert!(counts[0] >= accounts.len() / 10);
    }

    #[test]
    fn herding_increases_same_instance_fraction() {
        let (mut config, users, migrants, graph, instances) = setup();
        let frac_same = |cfg: &WorldConfig, seed: u64| {
            let mut rng = DetRng::new(seed);
            let accounts =
                run_migration(&users, &migrants, &graph, &instances, cfg, &mut rng).unwrap();
            let mut same = 0.0;
            let mut total = 0.0;
            for (i, a) in accounts.iter().enumerate() {
                let friends = graph.friends(i);
                if friends.is_empty() {
                    continue;
                }
                let on_same = friends
                    .iter()
                    .filter(|&&f| accounts[f as usize].instance == a.instance)
                    .count();
                same += on_same as f64 / friends.len() as f64;
                total += 1.0;
            }
            same / total
        };
        config.herding_probability = 0.0;
        let low = frac_same(&config, 7);
        config.herding_probability = 0.5;
        let high = frac_same(&config, 7);
        assert!(
            high > low + 0.05,
            "herding must raise co-location: {low} -> {high}"
        );
    }

    #[test]
    fn usernames_variants_are_valid() {
        let mut rng = DetRng::new(11);
        for i in 0..200 {
            let base = crate::users::username_for(i);
            let (name, same) = mastodon_username(&base, 0.5, &mut rng);
            assert!(flock_core::handle::is_valid_username(&name), "{name}");
            if same {
                assert_eq!(name, base);
            } else {
                assert_ne!(name, base);
            }
        }
    }
}

#[cfg(test)]
mod sampler_tests {
    use super::*;

    #[test]
    fn sampler_ranks_in_bounds() {
        let sampler = InstanceSampler::new(500, 2.25);
        let mut rng = DetRng::new(1);
        for _ in 0..10_000 {
            let e = 0.3 + rng.f64() * 3.5;
            assert!(sampler.sample(e, &mut rng) < 500);
        }
    }

    #[test]
    fn higher_engagement_means_deeper_ranks() {
        let sampler = InstanceSampler::new(500, 2.25);
        let mut rng = DetRng::new(2);
        let mean_rank = |eng: f64, rng: &mut DetRng| -> f64 {
            (0..20_000)
                .map(|_| sampler.sample(eng, rng) as f64)
                .sum::<f64>()
                / 20_000.0
        };
        let casual = mean_rank(0.7, &mut rng);
        let dedicated = mean_rank(3.0, &mut rng);
        assert!(
            dedicated > casual * 2.0,
            "dedicated users must sample deeper: {casual:.1} vs {dedicated:.1}"
        );
    }

    #[test]
    fn flagship_is_boosted_over_rank_one() {
        let sampler = InstanceSampler::new(100, 2.25);
        let mut rng = DetRng::new(3);
        let mut counts = [0usize; 2];
        for _ in 0..50_000 {
            let r = sampler.sample(1.0, &mut rng);
            if r < 2 {
                counts[r] += 1;
            }
        }
        // With the 1.8 boost plus the shifted-Zipf ratio, rank 0 must beat
        // rank 1 by well over the no-boost ratio of (6/5)^2.25 ≈ 1.5.
        let ratio = counts[0] as f64 / counts[1] as f64;
        assert!(ratio > 1.8, "flagship/second ratio {ratio:.2}");
    }

    #[test]
    fn singleton_instances_are_seeded_by_dedicated_users_only() {
        use crate::graph::build_friend_graph;
        use crate::instances::generate_instances;
        use crate::users::generate_users;
        let config = WorldConfig::medium().with_seed(61);
        let mut rng = DetRng::new(config.seed);
        let users = generate_users(&config, &mut rng.fork("users"));
        let migrants: Vec<usize> = users
            .iter()
            .enumerate()
            .filter(|(_, u)| u.is_migrant)
            .map(|(i, _)| i)
            .collect();
        let graph = build_friend_graph(migrants.len(), 12.0, 0.55, 0.045, &mut rng.fork("g"));
        let instances = generate_instances(
            config.n_instances,
            config.instance_zipf_exponent,
            &mut rng.fork("i"),
        );
        let accounts = run_migration(
            &users,
            &migrants,
            &graph,
            &instances,
            &config,
            &mut rng.fork("m"),
        )
        .unwrap();
        // Users alone on their instance, deep in the tail, must all be
        // dedicated (the self-hoster rule).
        let mut count_per_instance = std::collections::BTreeMap::new();
        for a in &accounts {
            *count_per_instance.entry(a.first_instance).or_insert(0usize) += 1;
        }
        for (mi, a) in accounts.iter().enumerate() {
            if count_per_instance[&a.first_instance] == 1 && a.first_instance.index() >= TAIL_START
            {
                let eng = users[migrants[mi]].engagement;
                assert!(
                    eng > 1.25,
                    "casual user (engagement {eng:.2}) alone on tail instance {}",
                    a.first_instance
                );
            }
        }
    }
}

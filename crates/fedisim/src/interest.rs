//! Search-interest time series (Fig. 1).
//!
//! The paper opens with Google-Trends interest for "Twitter alternatives"
//! and for Mastodon/Koo/Hive Social, spiking on Oct 28, 2022 (the day after
//! the takeover). Google Trends is a closed external service, so we model
//! the series the way trends data behaves: a baseline, event-driven
//! impulses with exponential decay, weekly seasonality, and noise —
//! normalized to a 0–100 scale like the real product.

use flock_core::{Day, DetRng};
use serde::{Deserialize, Serialize};

/// A named 0–100 interest series over the study window.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InterestSeries {
    pub name: String,
    /// One value per study day (index = day offset).
    pub values: Vec<f64>,
}

/// All four series of Fig. 1.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InterestReport {
    /// Fig. 1a: "Twitter alternatives".
    pub twitter_alternatives: InterestSeries,
    /// Fig. 1b.
    pub mastodon: InterestSeries,
    pub koo: InterestSeries,
    pub hive: InterestSeries,
}

/// One event impulse: search interest jumps at the event and decays.
struct Impulse {
    day: Day,
    magnitude: f64,
    decay_days: f64,
}

fn series(name: &str, baseline: f64, impulses: &[Impulse], rng: &mut DetRng) -> InterestSeries {
    let mut raw: Vec<f64> = Vec::with_capacity(Day::STUDY_LEN);
    for day in Day::study_days() {
        let mut v = baseline;
        for imp in impulses {
            let dt = day - imp.day;
            if dt >= 0 {
                v += imp.magnitude * (-(dt as f64) / imp.decay_days).exp();
            }
        }
        // Weekend dip (trends for news-ish terms sag on weekends) + noise.
        let weekday = day.weekday();
        if weekday >= 5 {
            v *= 0.9;
        }
        v *= 1.0 + rng.normal(0.0, 0.04);
        raw.push(v.max(0.0));
    }
    // Normalize to Google's 0–100 scale.
    let max = raw.iter().cloned().fold(f64::MIN, f64::max).max(1e-9);
    InterestSeries {
        name: name.to_string(),
        values: raw.iter().map(|v| (v / max * 100.0).round()).collect(),
    }
}

/// Generate the Fig. 1 report.
pub fn generate_interest(rng: &mut DetRng) -> InterestReport {
    let takeover_spike = Day::TRENDS_SPIKE; // Oct 28, the spike the paper notes
    InterestReport {
        twitter_alternatives: series(
            "Twitter alternatives",
            1.5,
            &[
                Impulse {
                    day: takeover_spike,
                    magnitude: 100.0,
                    decay_days: 3.0,
                },
                Impulse {
                    day: Day::LAYOFFS,
                    magnitude: 25.0,
                    decay_days: 3.0,
                },
                Impulse {
                    day: Day::RESIGNATIONS,
                    magnitude: 30.0,
                    decay_days: 3.5,
                },
            ],
            rng,
        ),
        mastodon: series(
            "Mastodon",
            4.0,
            &[
                Impulse {
                    day: takeover_spike,
                    magnitude: 70.0,
                    decay_days: 4.0,
                },
                Impulse {
                    day: Day::LAYOFFS,
                    magnitude: 55.0,
                    decay_days: 5.0,
                },
                Impulse {
                    day: Day::RESIGNATIONS,
                    magnitude: 60.0,
                    decay_days: 5.0,
                },
            ],
            rng,
        ),
        koo: series(
            "Koo",
            1.0,
            &[
                Impulse {
                    day: takeover_spike,
                    magnitude: 12.0,
                    decay_days: 3.0,
                },
                Impulse {
                    day: Day::LAYOFFS,
                    magnitude: 6.0,
                    decay_days: 3.0,
                },
            ],
            rng,
        ),
        hive: series(
            "Hive Social",
            0.5,
            &[
                Impulse {
                    day: takeover_spike,
                    magnitude: 5.0,
                    decay_days: 3.0,
                },
                // Hive's moment came with the resignation wave in mid-November.
                Impulse {
                    day: Day::RESIGNATIONS - 1,
                    magnitude: 18.0,
                    decay_days: 4.0,
                },
            ],
            rng,
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> InterestReport {
        generate_interest(&mut DetRng::new(1))
    }

    #[test]
    fn series_cover_study_window_in_range() {
        let r = report();
        for s in [&r.twitter_alternatives, &r.mastodon, &r.koo, &r.hive] {
            assert_eq!(s.values.len(), Day::STUDY_LEN);
            assert!(s.values.iter().all(|v| (0.0..=100.0).contains(v)));
            assert!(s.values.contains(&100.0), "{} never peaks", s.name);
        }
    }

    #[test]
    fn alternatives_spike_lands_on_oct_28() {
        let r = report();
        let s = &r.twitter_alternatives.values;
        let peak = s
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(Day(peak as i32), Day::TRENDS_SPIKE);
        // Pre-takeover interest is flat and low.
        assert!(s[..25].iter().all(|v| *v < 20.0));
    }

    #[test]
    fn mastodon_interest_dwarfs_koo_and_hive_after_takeover() {
        let r = report();
        // Compare un-normalized scale via post-takeover mean relative to the
        // series' own peak: Mastodon stays elevated, Koo decays fast.
        let post_mean =
            |s: &InterestSeries| s.values[27..].iter().sum::<f64>() / (s.values.len() - 27) as f64;
        assert!(post_mean(&r.mastodon) > 25.0);
        assert!(post_mean(&r.koo) < post_mean(&r.mastodon));
    }

    #[test]
    fn hive_peaks_late() {
        let r = report();
        let peak = r
            .hive
            .values
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert!(
            (Day::RESIGNATIONS.offset() - 2..=Day::RESIGNATIONS.offset() + 3)
                .contains(&(peak as i32)),
            "hive peak at day {peak}"
        );
    }

    #[test]
    fn deterministic() {
        let a = generate_interest(&mut DetRng::new(9));
        let b = generate_interest(&mut DetRng::new(9));
        assert_eq!(a.mastodon.values, b.mastodon.values);
    }
}

//! # flock-fedisim — the two-platform world simulator
//!
//! The paper measures real Twitter and the real fediverse in October–
//! November 2022; neither is reachable today (dead APIs, unpublished
//! data), so this crate provides the **closest synthetic equivalent that
//! exercises the same code paths**: a deterministic, generative model of
//!
//! * the Twitter-side population that tweeted about the migration
//!   ([`users`]), with the searchable corpus they produced ([`content`]);
//! * the Mastodon instance landscape ([`instances`]) and its federation
//!   substrate (re-exported from `flock-activitypub`);
//! * the migration itself ([`migration`]): event-driven timing (takeover,
//!   layoffs, resignations), popularity/topic/herding instance choice;
//! * instance switching via real ActivityPub `Move`s ([`switching`]);
//! * the per-instance weekly activity ledger ([`activity`], Fig. 3) and
//!   Google-Trends-style interest series ([`interest`], Fig. 1).
//!
//! [`World::generate`] assembles everything. The crate exposes *ground
//! truth*; the simulated REST APIs (`flock-apis`) decide what a crawler is
//! allowed to see, and the crawler (`flock-crawler`) has to rediscover the
//! migration exactly the way §3 of the paper did.
//!
//! ```no_run
//! use flock_fedisim::prelude::*;
//!
//! let world = World::generate(&WorldConfig::small().with_seed(1)).unwrap();
//! println!("{} ground-truth migrants on {} instances",
//!          world.n_migrants(), world.instances.len());
//! ```

pub mod activity;
pub mod config;
pub mod content;
pub mod graph;
pub mod instances;
pub mod interest;
pub mod migration;
pub mod switching;
pub mod users;
pub mod world;

pub mod prelude {
    pub use crate::activity::{ActivityLedger, WeeklyActivity};
    pub use crate::config::WorldConfig;
    pub use crate::content::{MirrorBehavior, Status, Tweet, MIGRATION_PHRASES, SOURCES};
    pub use crate::instances::Instance;
    pub use crate::interest::{InterestReport, InterestSeries};
    pub use crate::migration::{emit_migration_telemetry, MastodonAccount, SwitchRecord};
    pub use crate::users::{AccountFate, TwitterUser};
    pub use crate::world::World;
}

pub use prelude::*;

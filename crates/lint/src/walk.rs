//! Workspace discovery: find the root, collect `.rs` files in a
//! deterministic order, and run the rules over all of them.

use crate::manifest::LockManifest;
use crate::rules::{classify, lint_source, Finding};
use std::io;
use std::path::{Path, PathBuf};

/// Directories never descended into.
const SKIP_DIRS: &[&str] = &["target", "vendor", ".git", "fixtures"];

/// Where the `lock-order` manifest lives, workspace-relative.
pub const LOCK_MANIFEST_PATH: &str = "crates/apis/lock-order.manifest";

/// Walk up from `start` to the directory whose `Cargo.toml` declares
/// `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let cargo = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&cargo) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Every `.rs` file under `root`, workspace-relative with `/` separators,
/// sorted (the scan order is part of the tool's output contract).
pub fn collect_rs_files(root: &Path) -> io::Result<Vec<String>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name.as_ref()) {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                if let Ok(rel) = path.strip_prefix(root) {
                    out.push(rel.to_string_lossy().replace('\\', "/"));
                }
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Load the lock-order manifest from its conventional location. A missing
/// manifest yields the empty manifest (every `.lock()` in scope is then an
/// undeclared-lock finding, which is the deny-by-default we want).
pub fn load_lock_manifest(root: &Path) -> Result<LockManifest, String> {
    let path = root.join(LOCK_MANIFEST_PATH);
    match std::fs::read_to_string(&path) {
        Ok(text) => LockManifest::parse(&text, LOCK_MANIFEST_PATH),
        Err(_) => Ok(LockManifest::empty()),
    }
}

/// Lint the whole workspace. Returns `(findings, files_scanned)`.
pub fn lint_workspace(root: &Path, manifest: &LockManifest) -> io::Result<(Vec<Finding>, usize)> {
    let mut findings = Vec::new();
    let mut scanned = 0usize;
    for rel in collect_rs_files(root)? {
        if !classify(&rel).any() {
            continue;
        }
        let src = std::fs::read_to_string(root.join(&rel))?;
        scanned += 1;
        findings.extend(lint_source(&rel, &src, manifest));
    }
    Ok((findings, scanned))
}

//! `flock-lint`: the workspace's static-analysis pass.
//!
//! The reproduction's claims rest on the pipeline being bit-reproducible
//! (workers=1 and workers=8 must produce byte-identical datasets — see
//! `tests/determinism.rs` at the workspace root). That guarantee is easy to
//! lose one innocuous edit at a time: a `HashMap` iteration that reaches a
//! CSV, an `Instant::now()` in a retry loop, a `.lock()` taken in the wrong
//! order, an `unwrap()` on a path a malformed dataset can reach. This crate
//! machine-checks those conventions as deny-by-default rules; see
//! [`rules`] for the rule list and DESIGN.md §6 for the policy.
//!
//! The build environment is offline, so the implementation is a small
//! hand-rolled lexer ([`lexer`]) rather than a real parser — the same
//! trade-off as the vendored shims under `vendor/`.

pub mod lexer;
pub mod manifest;
pub mod rules;
pub mod syntax;
pub mod walk;

pub use manifest::LockManifest;
pub use rules::{classify, lint_source, Finding};

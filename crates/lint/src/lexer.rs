//! A minimal, line-accurate Rust lexer.
//!
//! The build environment is offline, so `flock-lint` cannot pull in a real
//! parser (`syn`, `ra_ap_syntax`, …). The rules it enforces are lexical —
//! forbidden call patterns, forbidden type names, `.lock()` nesting — so a
//! token stream is enough, *provided* the lexer gets the hard parts right:
//! strings, raw strings, char literals vs lifetimes, and nested block
//! comments must never leak fake identifiers into the stream.
//!
//! Alongside the token stream the lexer collects `flock-lint:` control
//! comments (the escape hatch), because rules must be able to consult the
//! directive that suppresses them.

/// One lexed token: an identifier/number word, or a single punctuation char.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub text: String,
    pub line: u32,
    pub is_ident: bool,
}

impl Token {
    /// `true` if this token is the identifier `word`.
    pub fn is(&self, word: &str) -> bool {
        self.is_ident && self.text == word
    }

    /// `true` if this token is the punctuation character `ch`.
    pub fn punct(&self, ch: char) -> bool {
        !self.is_ident && self.text.len() == ch.len_utf8() && self.text.starts_with(ch)
    }
}

/// A parsed `// flock-lint: allow(<rule>) <reason>` control comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Directive {
    pub line: u32,
    pub rule: String,
    /// The justification text after the closing paren; `None` when absent.
    /// Rules treat a missing reason as its own finding.
    pub reason: Option<String>,
}

/// The result of lexing one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub directives: Vec<Directive>,
    /// Comments that *look like* control comments but did not parse
    /// (`flock-lint:` without a well-formed `allow(...)`).
    pub malformed_directives: Vec<u32>,
}

const DIRECTIVE_TAG: &str = "flock-lint:";

/// Lex `src` into identifier/punctuation tokens plus control comments.
pub fn lex(src: &str) -> Lexed {
    let chars: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;
    let n = chars.len();

    let is_ident_start = |c: char| c.is_alphanumeric() || c == '_';

    while i < n {
        let c = chars[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if i + 1 < n && chars[i + 1] == '/' => {
                let start = i + 2;
                // Doc comments (`///`, `//!`) are rendered prose, not
                // control comments — the tag may appear there as an example.
                let is_doc = matches!(chars.get(start), Some('/') | Some('!'));
                while i < n && chars[i] != '\n' {
                    i += 1;
                }
                if !is_doc {
                    let comment: String = chars[start..i].iter().collect();
                    scan_directive(&comment, line, &mut out);
                }
            }
            '/' if i + 1 < n && chars[i + 1] == '*' => {
                // Block comments nest in Rust.
                let mut depth = 1u32;
                i += 2;
                while i < n && depth > 0 {
                    if chars[i] == '\n' {
                        line += 1;
                        i += 1;
                    } else if chars[i] == '/' && i + 1 < n && chars[i + 1] == '*' {
                        depth += 1;
                        i += 2;
                    } else if chars[i] == '*' && i + 1 < n && chars[i + 1] == '/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            '"' => {
                i += 1;
                skip_string_body(&chars, &mut i, &mut line);
            }
            'r' | 'b' if raw_prefix_len(&chars, i) > 0 => {
                i += raw_prefix_len(&chars, i);
                if i < n && chars[i] == '\'' {
                    // b'x' byte char literal.
                    i += 1;
                    skip_char_body(&chars, &mut i);
                } else if i < n && chars[i] == '"' {
                    // b"...": escaped byte string.
                    i += 1;
                    skip_string_body(&chars, &mut i, &mut line);
                } else {
                    // r"...", r#"..."#, br#"..."#: raw string, no escapes.
                    let mut hashes = 0usize;
                    while i < n && chars[i] == '#' {
                        hashes += 1;
                        i += 1;
                    }
                    i += 1; // opening quote
                    loop {
                        if i >= n {
                            break;
                        }
                        if chars[i] == '\n' {
                            line += 1;
                            i += 1;
                            continue;
                        }
                        if chars[i] == '"' {
                            let mut j = i + 1;
                            let mut h = 0usize;
                            while j < n && chars[j] == '#' && h < hashes {
                                h += 1;
                                j += 1;
                            }
                            if h == hashes {
                                i = j;
                                break;
                            }
                        }
                        i += 1;
                    }
                }
            }
            '\'' => {
                // Char literal or lifetime. A lifetime is `'` + ident with
                // no closing quote; a char literal always closes.
                i += 1;
                if i < n && chars[i] == '\\' {
                    skip_char_body(&chars, &mut i);
                } else if i + 1 < n && chars[i + 1] == '\'' {
                    i += 2; // 'x'
                } else {
                    // Lifetime: consume the identifier and emit nothing.
                    while i < n && is_ident_start(chars[i]) {
                        i += 1;
                    }
                }
            }
            c if is_ident_start(c) => {
                let start = i;
                while i < n && is_ident_start(chars[i]) {
                    i += 1;
                }
                out.tokens.push(Token {
                    text: chars[start..i].iter().collect(),
                    line,
                    is_ident: true,
                });
            }
            _ => {
                out.tokens.push(Token {
                    text: c.to_string(),
                    line,
                    is_ident: false,
                });
                i += 1;
            }
        }
    }
    out
}

/// `r"`, `r#`, `b"`, `b'`, `br"`, `br#` — how many chars of prefix before
/// the quote machinery starts (0 if this is a plain identifier).
fn raw_prefix_len(chars: &[char], i: usize) -> usize {
    let peek = |k: usize| chars.get(i + k).copied().unwrap_or('\0');
    match chars[i] {
        'r' => match peek(1) {
            '"' | '#' => 1,
            _ => 0,
        },
        'b' => match peek(1) {
            '"' | '\'' => 1,
            'r' if matches!(peek(2), '"' | '#') => 2,
            _ => 0,
        },
        _ => 0,
    }
}

/// Consume an escaped (non-raw) string body; the opening quote is consumed.
fn skip_string_body(chars: &[char], i: &mut usize, line: &mut u32) {
    let n = chars.len();
    while *i < n {
        match chars[*i] {
            '\\' => *i += 2,
            '\n' => {
                *line += 1;
                *i += 1;
            }
            '"' => {
                *i += 1;
                return;
            }
            _ => *i += 1,
        }
    }
}

/// Consume a char-literal body starting at the escape or content char.
fn skip_char_body(chars: &[char], i: &mut usize) {
    let n = chars.len();
    if *i < n && chars[*i] == '\\' {
        *i += 2; // escape + escaped char
                 // \u{...} and \x.. tails run to the closing quote below.
    }
    while *i < n && chars[*i] != '\'' {
        *i += 1;
    }
    *i += 1; // closing quote
}

/// Parse a line comment into a control directive, if it carries the tag.
fn scan_directive(comment: &str, line: u32, out: &mut Lexed) {
    let Some(pos) = comment.find(DIRECTIVE_TAG) else {
        return;
    };
    let body = comment[pos + DIRECTIVE_TAG.len()..].trim();
    let parsed = body.strip_prefix("allow(").and_then(|rest| {
        let close = rest.find(')')?;
        let rule = rest[..close].trim();
        if rule.is_empty() || rule.contains(char::is_whitespace) {
            return None;
        }
        let reason = rest[close + 1..].trim();
        Some(Directive {
            line,
            rule: rule.to_string(),
            reason: (!reason.is_empty()).then(|| reason.to_string()),
        })
    });
    match parsed {
        Some(d) => out.directives.push(d),
        None => out.malformed_directives.push(line),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.is_ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_and_comments_emit_no_tokens() {
        let src = r##"
            let s = "unwrap() inside a string";
            let r = r#"HashMap in a raw "string""#;
            // unwrap() in a line comment
            /* nested /* SystemTime */ comment */
            let c = '"'; let esc = '\''; let lt: &'static str = "x";
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"unwrap".to_string()), "{ids:?}");
        assert!(!ids.contains(&"HashMap".to_string()), "{ids:?}");
        assert!(!ids.contains(&"SystemTime".to_string()), "{ids:?}");
        assert!(
            !ids.contains(&"static".to_string()),
            "lifetime leaked: {ids:?}"
        );
    }

    #[test]
    fn lines_are_accurate_across_multiline_constructs() {
        let src = "let a = \"two\nlines\";\nlet b = 1;\n";
        let lexed = lex(src);
        let b = lexed.tokens.iter().find(|t| t.is("b")).expect("b token");
        assert_eq!(b.line, 3);
    }

    #[test]
    fn directives_parse_with_and_without_reason() {
        let src = "
            // flock-lint: allow(panic) this index is checked two lines up
            // flock-lint: allow(hash-iter)
            // flock-lint: allow()
        ";
        let lexed = lex(src);
        assert_eq!(lexed.directives.len(), 2);
        assert_eq!(lexed.directives[0].rule, "panic");
        assert!(lexed.directives[0].reason.is_some());
        assert_eq!(lexed.directives[1].rule, "hash-iter");
        assert!(lexed.directives[1].reason.is_none());
        assert_eq!(lexed.malformed_directives.len(), 1);
    }

    #[test]
    fn raw_prefixes_do_not_swallow_identifiers() {
        let ids = idents("let br = b; let rb = r * b; let bytes = b\"x\";");
        assert!(ids.contains(&"br".to_string()));
        assert!(ids.contains(&"rb".to_string()));
        assert!(ids.contains(&"bytes".to_string()));
    }
}

//! The `flock-lint` binary.
//!
//! ```text
//! flock-lint --workspace            # lint every .rs file in the workspace
//! flock-lint FILE…                  # lint specific files
//! flock-lint --manifest PATH …      # override the lock-order manifest
//! ```
//!
//! Exit codes: 0 clean, 1 findings, 2 usage/configuration error.

use flock_lint::manifest::LockManifest;
use flock_lint::rules::lint_source;
use flock_lint::walk;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

struct Args {
    workspace: bool,
    manifest_override: Option<PathBuf>,
    files: Vec<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        workspace: false,
        manifest_override: None,
        files: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workspace" => args.workspace = true,
            "--manifest" => {
                let path = it.next().ok_or("--manifest requires a path")?;
                args.manifest_override = Some(PathBuf::from(path));
            }
            "--help" | "-h" => {
                return Err("usage: flock-lint [--workspace | FILE…] [--manifest PATH]".to_string())
            }
            other if other.starts_with('-') => return Err(format!("unknown flag {other}")),
            other => args.files.push(PathBuf::from(other)),
        }
    }
    if !args.workspace && args.files.is_empty() {
        return Err("nothing to lint: pass --workspace or file paths".to_string());
    }
    Ok(args)
}

fn run() -> Result<ExitCode, String> {
    let args = parse_args()?;
    let cwd = std::env::current_dir().map_err(|e| format!("cwd: {e}"))?;
    let root = walk::find_workspace_root(&cwd)
        .ok_or("no [workspace] Cargo.toml above the current directory")?;

    let manifest = match &args.manifest_override {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("read {}: {e}", path.display()))?;
            LockManifest::parse(&text, &path.display().to_string())?
        }
        None => walk::load_lock_manifest(&root)?,
    };

    let (findings, scanned) = if args.workspace {
        walk::lint_workspace(&root, &manifest).map_err(|e| format!("scan: {e}"))?
    } else {
        let mut findings = Vec::new();
        for path in &args.files {
            let rel = rel_to_root(&root, &cwd, path);
            let src = std::fs::read_to_string(path)
                .map_err(|e| format!("read {}: {e}", path.display()))?;
            findings.extend(lint_source(&rel, &src, &manifest));
        }
        let count = args.files.len();
        (findings, count)
    };

    for f in &findings {
        println!("{f}");
    }
    if findings.is_empty() {
        println!("flock-lint: clean ({scanned} files scanned)");
        Ok(ExitCode::SUCCESS)
    } else {
        println!(
            "flock-lint: {} finding(s) in {scanned} files scanned",
            findings.len()
        );
        Ok(ExitCode::from(1))
    }
}

/// Workspace-relative form of a CLI path (rule scoping keys off it).
fn rel_to_root(root: &Path, cwd: &Path, path: &Path) -> String {
    let abs = if path.is_absolute() {
        path.to_path_buf()
    } else {
        cwd.join(path)
    };
    let rel = abs.strip_prefix(root).unwrap_or(&abs);
    rel.to_string_lossy().replace('\\', "/")
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("flock-lint: {msg}");
            ExitCode::from(2)
        }
    }
}

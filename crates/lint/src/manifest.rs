//! The lock-hierarchy manifest.
//!
//! `crates/apis` declares its lock order in a plain-text manifest (the
//! environment is offline, so no TOML dependency): one line per level,
//! `<level> <name> [<name>…]`, lower levels must be acquired first. The
//! `lock-order` rule flags any `.lock()` on a receiver that is not declared
//! here (deny-by-default) and any acquisition that does not move strictly
//! down the hierarchy while another lock is held.

use std::collections::BTreeMap;

/// Parsed lock hierarchy: receiver field name → level.
#[derive(Debug, Clone, Default)]
pub struct LockManifest {
    levels: BTreeMap<String, u32>,
    /// Where the manifest came from, for messages.
    pub source: String,
}

impl LockManifest {
    /// An empty manifest: every `.lock()` receiver is undeclared.
    pub fn empty() -> LockManifest {
        LockManifest::default()
    }

    /// Parse the manifest format. Lines: `<level> <name> [<name>…]`;
    /// blank lines and `#` comments ignored.
    pub fn parse(text: &str, source: &str) -> Result<LockManifest, String> {
        let mut levels = BTreeMap::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut parts = line.split_whitespace();
            let level: u32 = parts
                .next()
                .and_then(|w| w.parse().ok())
                .ok_or_else(|| format!("{source}:{}: expected `<level> <name>…`", lineno + 1))?;
            let mut any = false;
            for name in parts {
                any = true;
                if levels.insert(name.to_string(), level).is_some() {
                    return Err(format!(
                        "{source}:{}: lock `{name}` declared twice",
                        lineno + 1
                    ));
                }
            }
            if !any {
                return Err(format!(
                    "{source}:{}: level {level} declares no locks",
                    lineno + 1
                ));
            }
        }
        Ok(LockManifest {
            levels,
            source: source.to_string(),
        })
    }

    /// The level of a declared lock receiver, if any.
    pub fn level_of(&self, name: &str) -> Option<u32> {
        self.levels.get(name).copied()
    }

    pub fn is_empty(&self) -> bool {
        self.levels.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_levels_and_comments() {
        let m = LockManifest::parse(
            "# hierarchy\n1 clock\n2 search users follows\n3 mastodon # shards\n",
            "test",
        )
        .expect("parse");
        assert_eq!(m.level_of("clock"), Some(1));
        assert_eq!(m.level_of("users"), Some(2));
        assert_eq!(m.level_of("mastodon"), Some(3));
        assert_eq!(m.level_of("other"), None);
    }

    #[test]
    fn rejects_duplicates_and_garbage() {
        assert!(LockManifest::parse("1 a\n2 a\n", "t").is_err());
        assert!(LockManifest::parse("x a\n", "t").is_err());
        assert!(LockManifest::parse("3\n", "t").is_err());
    }
}

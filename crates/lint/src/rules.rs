//! The rule engine: walks a lexed token stream and emits findings.
//!
//! Three deny-by-default rule families guard the invariants the pipeline's
//! reproducibility rests on (see DESIGN.md §6):
//!
//! * `determinism` — no wall-clock or ambient-randomness calls in pipeline
//!   code; virtual time and seeded [`DetRng`]s only.
//! * `hash-iter` — no `HashMap`/`HashSet` in the crates whose iteration
//!   order can reach output (`fedisim`, `analysis`, `repro`, `crawler`);
//!   use `BTreeMap`/`BTreeSet` or an explicit sort.
//! * `lock-order` — `.lock()` receivers in `crates/apis` must be declared
//!   in the lock-hierarchy manifest and acquired strictly downward.
//! * `panic` — no `unwrap()`/`expect()`/`panic!`/bare `assert!` in library
//!   code; errors propagate through `flock_core::error`. (`assert_eq!` and
//!   `debug_assert!` remain permitted.)
//! * `thread-spawn` — no ad-hoc OS-thread creation (`thread::spawn`,
//!   `thread::scope`, `crossbeam::scope`) outside `crates/sched` and the
//!   crawler's `worker_pool.rs`; logical concurrency multiplexes through
//!   `flock_sched::Executor`, OS parallelism through `worker_pool::run`.
//! * `float-in-data-tier` — no `f32`/`f64` arithmetic in `crates/crawler`,
//!   the code path that assembles the Data-tier dataset from concurrently
//!   produced pieces; float accumulation is sensitive to evaluation order,
//!   which is exactly the nondeterminism the tier contract forbids.
//!
//! Test code is exempt everywhere: files under `tests/`, `benches/`,
//! `examples/`, and items behind `#[cfg(test)]` / `#[test]`. The escape
//! hatch is `// flock-lint: allow(<rule>) <reason>` on the offending line
//! or the line above; the reason is mandatory.
//!
//! [`DetRng`]: flock_core::DetRng

use crate::lexer::{lex, Lexed};
use crate::manifest::LockManifest;
use crate::syntax::{receiver_of, scan_attr, skip_item};
use std::collections::BTreeSet;

pub const RULE_DETERMINISM: &str = "determinism";
pub const RULE_HASH_ITER: &str = "hash-iter";
pub const RULE_LOCK_ORDER: &str = "lock-order";
pub const RULE_PANIC: &str = "panic";
pub const RULE_THREAD_SPAWN: &str = "thread-spawn";
pub const RULE_FLOAT: &str = "float-in-data-tier";
/// Rules enforced by `flock-analyze` (the call-graph analyzer). They are
/// named here so `allow(...)` directives for them parse as known rules —
/// the two tools share one escape-hatch namespace.
pub const RULE_TIER_TAINT: &str = "tier-taint";
pub const RULE_CALL_LOCK_ORDER: &str = "call-lock-order";
/// Meta-rule for problems with the directives themselves.
pub const RULE_DIRECTIVE: &str = "directive";

/// Every rule name `allow(...)` may reference.
pub const KNOWN_RULES: &[&str] = &[
    RULE_DETERMINISM,
    RULE_HASH_ITER,
    RULE_LOCK_ORDER,
    RULE_PANIC,
    RULE_THREAD_SPAWN,
    RULE_FLOAT,
    RULE_TIER_TAINT,
    RULE_CALL_LOCK_ORDER,
];

/// One reported violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub path: String,
    pub line: u32,
    pub rule: &'static str,
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// Which rule families apply to a file, derived from its workspace-relative
/// path.
#[derive(Debug, Clone, Copy, Default)]
pub struct FileClass {
    pub determinism: bool,
    pub hash_iter: bool,
    pub lock_order: bool,
    pub panic: bool,
    pub thread_spawn: bool,
    pub float: bool,
}

impl FileClass {
    pub fn any(&self) -> bool {
        self.determinism
            || self.hash_iter
            || self.lock_order
            || self.panic
            || self.thread_spawn
            || self.float
    }
}

/// Classify a workspace-relative path into the rules that apply to it.
pub fn classify(rel_path: &str) -> FileClass {
    let comps: Vec<&str> = rel_path
        .split(['/', '\\'])
        .filter(|c| !c.is_empty())
        .collect();
    // Not our code / not pipeline code: vendored shims, build output,
    // lint fixtures (which must be free to contain violations).
    if comps
        .iter()
        .any(|c| matches!(*c, "target" | "vendor" | ".git" | "fixtures"))
    {
        return FileClass::default();
    }
    // Test code is exempt from every family.
    if comps
        .iter()
        .any(|c| matches!(*c, "tests" | "benches" | "examples"))
    {
        return FileClass::default();
    }
    let krate = match comps.first() {
        Some(&"crates") => comps.get(1).copied().unwrap_or(""),
        Some(&"src") => "flock",
        _ => "",
    };
    FileClass {
        // `crates/bench` measures wall-clock by design.
        determinism: krate != "bench",
        hash_iter: matches!(
            krate,
            "fedisim" | "analysis" | "repro" | "crawler" | "chaos" | "monitor"
        ),
        lock_order: krate == "apis",
        panic: true,
        // The scheduler crate and the crawler's worker pool are the only
        // sanctioned owners of OS threads.
        thread_spawn: krate != "sched" && comps.last() != Some(&"worker_pool.rs"),
        // The crawler assembles the Data-tier dataset from concurrently
        // produced pieces; float accumulation there is order-sensitive.
        float: krate == "crawler",
    }
}

/// Lint one file's source. `rel_path` is workspace-relative and selects the
/// applicable rules; `manifest` backs the `lock-order` rule.
pub fn lint_source(rel_path: &str, src: &str, manifest: &LockManifest) -> Vec<Finding> {
    let class = classify(rel_path);
    if !class.any() {
        return Vec::new();
    }
    let lexed = lex(src);
    let mut ctx = Ctx {
        path: rel_path,
        class,
        manifest,
        lexed: &lexed,
        findings: Vec::new(),
        hash_lines: BTreeSet::new(),
        float_lines: BTreeSet::new(),
        flagged_directives: BTreeSet::new(),
    };
    ctx.check_directives();
    ctx.run();
    ctx.findings.sort_by_key(|f| (f.line, f.rule));
    ctx.findings
}

/// A lock currently held (lexically) while scanning.
struct Held {
    name: String,
    level: u32,
    depth: u32,
    line: u32,
}

struct Ctx<'a> {
    path: &'a str,
    class: FileClass,
    manifest: &'a LockManifest,
    lexed: &'a Lexed,
    findings: Vec<Finding>,
    /// Lines already carrying a `hash-iter` finding (one per line).
    hash_lines: BTreeSet<u32>,
    /// Lines already carrying a `float-in-data-tier` finding (one per line).
    float_lines: BTreeSet<u32>,
    /// Directive lines already reported as missing a reason.
    flagged_directives: BTreeSet<u32>,
}

impl<'a> Ctx<'a> {
    fn check_directives(&mut self) {
        for &line in &self.lexed.malformed_directives {
            self.findings.push(Finding {
                path: self.path.to_string(),
                line,
                rule: RULE_DIRECTIVE,
                message: "malformed control comment; expected \
                          `flock-lint: allow(<rule>) <reason>`"
                    .to_string(),
            });
        }
        for d in &self.lexed.directives {
            if !KNOWN_RULES.contains(&d.rule.as_str()) {
                self.findings.push(Finding {
                    path: self.path.to_string(),
                    line: d.line,
                    rule: RULE_DIRECTIVE,
                    message: format!(
                        "allow({}) names an unknown rule (known: {})",
                        d.rule,
                        KNOWN_RULES.join(", ")
                    ),
                });
            }
        }
    }

    /// Report a violation unless an `allow` directive with a reason covers
    /// its line; an `allow` *without* a reason is itself a finding.
    fn emit(&mut self, line: u32, rule: &'static str, message: String) {
        for d in &self.lexed.directives {
            if d.rule == rule && (d.line == line || d.line + 1 == line) {
                if d.reason.is_some() {
                    return; // suppressed, justified
                }
                if self.flagged_directives.insert(d.line) {
                    self.findings.push(Finding {
                        path: self.path.to_string(),
                        line: d.line,
                        rule: RULE_DIRECTIVE,
                        message: format!("allow({rule}) requires a reason"),
                    });
                }
                return;
            }
        }
        self.findings.push(Finding {
            path: self.path.to_string(),
            line,
            rule,
            message,
        });
    }

    fn run(&mut self) {
        let t = &self.lexed.tokens;
        let mut i = 0usize;
        let mut depth = 0u32;
        let mut held: Vec<Held> = Vec::new();
        while i < t.len() {
            // Attributes: skip their token span entirely, and skip the whole
            // following item when the attribute marks test-only code.
            if t[i].punct('#') {
                let open = if t.get(i + 1).is_some_and(|n| n.punct('!')) {
                    i + 2 // inner attribute `#![…]`
                } else {
                    i + 1
                };
                if t.get(open).is_some_and(|n| n.punct('[')) {
                    let (is_test, after) = scan_attr(t, open);
                    i = if is_test { skip_item(t, after) } else { after };
                    continue;
                }
            }
            let tok = &t[i];
            if tok.punct('{') {
                depth += 1;
            } else if tok.punct('}') {
                held.retain(|h| h.depth < depth);
                depth = depth.saturating_sub(1);
            }

            if self.class.panic {
                if tok.punct('.')
                    && t.get(i + 1)
                        .is_some_and(|n| n.is("unwrap") || n.is("expect"))
                    && t.get(i + 2).is_some_and(|n| n.punct('('))
                {
                    let (line, what) = (t[i + 1].line, t[i + 1].text.clone());
                    self.emit(
                        line,
                        RULE_PANIC,
                        format!(
                            ".{what}() in library code; propagate through \
                             flock_core::error instead"
                        ),
                    );
                } else if tok.is("panic") && t.get(i + 1).is_some_and(|n| n.punct('!')) {
                    self.emit(
                        tok.line,
                        RULE_PANIC,
                        "panic! in library code; return a FlockError instead".to_string(),
                    );
                } else if tok.is("assert") && t.get(i + 1).is_some_and(|n| n.punct('!')) {
                    // Bare `assert!` only: `assert_eq!`/`debug_assert!` lex
                    // as distinct idents and stay permitted (the former is
                    // test idiom, the latter compiles out of release).
                    self.emit(
                        tok.line,
                        RULE_PANIC,
                        "assert! in library code; return a FlockError (or \
                         Option) instead of panicking on bad input"
                            .to_string(),
                    );
                }
            }

            if self.class.determinism {
                let path2 = |a: &str, b: &str| {
                    tok.is(a)
                        && t.get(i + 1).is_some_and(|n| n.punct(':'))
                        && t.get(i + 2).is_some_and(|n| n.punct(':'))
                        && t.get(i + 3).is_some_and(|n| n.is(b))
                };
                let wall_clock = path2("Instant", "now")
                    || path2("Utc", "now")
                    || path2("Local", "now")
                    || tok.is("SystemTime");
                let ambient_rng = tok.is("thread_rng") || path2("rand", "random");
                if wall_clock {
                    self.emit(
                        tok.line,
                        RULE_DETERMINISM,
                        format!(
                            "wall-clock call `{}` in pipeline code; use the \
                             virtual clock (ApiServer::now / flock_core::time)",
                            tok.text
                        ),
                    );
                } else if ambient_rng {
                    self.emit(
                        tok.line,
                        RULE_DETERMINISM,
                        format!(
                            "ambient randomness `{}` in pipeline code; use a \
                             seeded flock_core::DetRng",
                            tok.text
                        ),
                    );
                }
            }

            if self.class.thread_spawn {
                let path2 = |a: &str, b: &str| {
                    tok.is(a)
                        && t.get(i + 1).is_some_and(|n| n.punct(':'))
                        && t.get(i + 2).is_some_and(|n| n.punct(':'))
                        && t.get(i + 3).is_some_and(|n| n.is(b))
                };
                // `std::thread::spawn` ends in the same `thread :: spawn`
                // adjacency, so the two-segment match covers both spellings;
                // `crossbeam::thread::scope` likewise ends in `thread :: scope`.
                if path2("thread", "spawn")
                    || path2("thread", "scope")
                    || path2("crossbeam", "scope")
                {
                    self.emit(
                        tok.line,
                        RULE_THREAD_SPAWN,
                        format!(
                            "OS-thread creation `{}::{}` outside the scheduler; \
                             multiplex logical tasks on flock_sched::Executor or \
                             fan out via crawler worker_pool::run",
                            tok.text,
                            t[i + 3].text
                        ),
                    );
                }
            }

            if self.class.float {
                // `f32` / `f64` type mentions and casts, plus decimal float
                // literals (which the lexer splits into `<digits> . <digits>`).
                let float_type = tok.is("f32") || tok.is("f64");
                let float_literal = tok.is_ident
                    && tok.text.bytes().all(|b| b.is_ascii_digit())
                    && t.get(i + 1).is_some_and(|n| n.punct('.'))
                    && t.get(i + 2)
                        .is_some_and(|n| n.is_ident && n.text.bytes().all(|b| b.is_ascii_digit()));
                if (float_type || float_literal) && !self.float_lines.contains(&tok.line) {
                    self.float_lines.insert(tok.line);
                    self.emit(
                        tok.line,
                        RULE_FLOAT,
                        "float arithmetic on the Data-tier assembly path; \
                         accumulation order is nondeterministic across workers — \
                         use integer arithmetic (or justify with an allow)"
                            .to_string(),
                    );
                }
            }

            if self.class.hash_iter
                && (tok.is("HashMap") || tok.is("HashSet"))
                && !self.hash_lines.contains(&tok.line)
            {
                self.hash_lines.insert(tok.line);
                self.emit(
                    tok.line,
                    RULE_HASH_ITER,
                    format!(
                        "{} in an output-affecting crate; iteration order is \
                         nondeterministic — use BTreeMap/BTreeSet or sort \
                         explicitly",
                        tok.text
                    ),
                );
            }

            if self.class.lock_order
                && tok.punct('.')
                && t.get(i + 1).is_some_and(|n| n.is("lock"))
                && t.get(i + 2).is_some_and(|n| n.punct('('))
                && t.get(i + 3).is_some_and(|n| n.punct(')'))
            {
                let line = t[i + 1].line;
                match receiver_of(t, i) {
                    Some(name) => match self.manifest.level_of(&name) {
                        Some(level) => {
                            let violations: Vec<String> = held
                                .iter()
                                .filter(|h| level <= h.level)
                                .map(|h| {
                                    format!(
                                        "acquiring `{name}` (level {level}) while \
                                         holding `{}` (level {}, line {}); the \
                                         manifest orders locks strictly downward",
                                        h.name, h.level, h.line
                                    )
                                })
                                .collect();
                            for message in violations {
                                self.emit(line, RULE_LOCK_ORDER, message);
                            }
                            // Conservatively held until the enclosing block
                            // closes (lexical scope of a `let` guard).
                            held.push(Held {
                                name,
                                level,
                                depth,
                                line,
                            });
                        }
                        None => self.emit(
                            line,
                            RULE_LOCK_ORDER,
                            format!(
                                "`.lock()` on `{name}`, which is not declared in \
                                 the lock-order manifest ({})",
                                self.manifest.source
                            ),
                        ),
                    },
                    None => self.emit(
                        line,
                        RULE_LOCK_ORDER,
                        "`.lock()` on an unrecognized receiver expression; \
                         name the lock field so the manifest can order it"
                            .to_string(),
                    ),
                }
            }

            i += 1;
        }
    }
}
